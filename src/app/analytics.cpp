#include "app/analytics.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dlt::app {

std::size_t ChainAnalytics::nakamoto_coefficient() const {
    // miners is sorted descending by share.
    double cumulative = 0;
    std::size_t count = 0;
    for (const auto& m : miners) {
        cumulative += m.share;
        ++count;
        if (cumulative > 0.5) return count;
    }
    return miners.size();
}

double ChainAnalytics::miner_gini() const {
    if (miners.size() < 2) return 0.0;
    // Gini = sum_i sum_j |x_i - x_j| / (2 n^2 mean).
    double abs_diff_sum = 0;
    double total = 0;
    for (const auto& a : miners) {
        total += static_cast<double>(a.blocks);
        for (const auto& b : miners)
            abs_diff_sum += std::abs(static_cast<double>(a.blocks) -
                                     static_cast<double>(b.blocks));
    }
    const double n = static_cast<double>(miners.size());
    const double mean = total / n;
    if (mean <= 0) return 0.0;
    return abs_diff_sum / (2.0 * n * n * mean);
}

BranchStats branch_stats_full_walk(const ledger::ChainStore& chain,
                                   const Hash256& tip) {
    DLT_EXPECTS(chain.contains(tip));
    std::unordered_set<Hash256> canonical;
    for (const auto& hash : chain.path_from_genesis(tip)) canonical.insert(hash);

    BranchStats out;
    // BFS the whole DAG from genesis (the full walk the ReorgMonitor avoids).
    std::vector<Hash256> frontier{chain.genesis_hash()};
    while (!frontier.empty()) {
        const Hash256 hash = frontier.back();
        frontier.pop_back();
        const bool stale = !canonical.contains(hash);
        if (stale) ++out.stale_blocks;
        const auto& kids = chain.children(hash);
        for (const auto& child : kids) frontier.push_back(child);
        if (stale && kids.empty()) {
            ++out.stale_branches;
            std::uint64_t depth = 0;
            Hash256 cursor = hash;
            while (!canonical.contains(cursor)) {
                ++depth;
                cursor = chain.find(cursor)->block.header.prev_hash;
            }
            ++out.branch_depths[depth];
            out.max_branch_depth = std::max(out.max_branch_depth, depth);
        }
    }
    return out;
}

ReorgMonitor::ReorgMonitor(const Hash256& genesis, obs::Histogram* depth_histogram)
    : depth_histogram_(depth_histogram) {
    known_.emplace(genesis, genesis); // self-parent sentinel; genesis is canonical
    child_count_.emplace(genesis, 0);
}

void ReorgMonitor::on_block_inserted(const ledger::Block& block, SimTime) {
    const Hash256 hash = block.hash();
    if (!known_.emplace(hash, block.header.prev_hash).second) return;
    child_count_.emplace(hash, 0);
    ++child_count_[block.header.prev_hash];
    stale_.insert(hash); // off-chain until a connect event says otherwise
}

void ReorgMonitor::on_reorg(const std::vector<Hash256>& disconnected,
                            const std::vector<Hash256>& connected, SimTime) {
    for (const auto& hash : disconnected) stale_.insert(hash);
    for (const auto& hash : connected) stale_.erase(hash);
    if (disconnected.empty()) return; // pure extension, not a reorg event
    const auto depth = static_cast<std::uint64_t>(disconnected.size());
    ++reorg_count_;
    blocks_disconnected_ += depth;
    max_reorg_depth_ = std::max(max_reorg_depth_, depth);
    ++reorg_depths_[depth];
    if (depth_histogram_ != nullptr)
        depth_histogram_->record(static_cast<double>(depth));
}

BranchStats ReorgMonitor::branch_stats() const {
    BranchStats out;
    out.stale_blocks = stale_.size();
    for (const auto& hash : stale_) {
        if (child_count_.at(hash) != 0) continue;
        ++out.stale_branches;
        std::uint64_t depth = 0;
        Hash256 cursor = hash;
        while (stale_.contains(cursor)) {
            ++depth;
            cursor = known_.at(cursor);
        }
        ++out.branch_depths[depth];
        out.max_branch_depth = std::max(out.max_branch_depth, depth);
    }
    return out;
}

ChainAnalytics analyze_chain(const ledger::ChainStore& chain, const Hash256& tip) {
    DLT_EXPECTS(chain.contains(tip));
    ChainAnalytics out;
    out.total_blocks = chain.size() - 1; // exclude genesis
    out.height = chain.find(tip)->height;

    std::map<crypto::Address, std::uint64_t> by_miner;
    double prev_timestamp = -1;
    double interval_sum = 0;
    std::uint64_t intervals = 0;

    for (const auto& hash : chain.path_from_genesis(tip)) {
        const auto* entry = chain.find(hash);
        if (hash == chain.genesis_hash()) {
            prev_timestamp = entry->block.header.timestamp;
            continue;
        }
        ++out.canonical_blocks;
        ++by_miner[entry->block.header.proposer];
        for (const auto& tx : entry->block.txs) {
            if (tx.is_coinbase()) continue;
            ++out.total_transactions;
            out.total_fees += tx.declared_fee;
        }
        if (prev_timestamp >= 0) {
            interval_sum += entry->block.header.timestamp - prev_timestamp;
            ++intervals;
        }
        prev_timestamp = entry->block.header.timestamp;
    }

    if (intervals > 0)
        out.mean_block_interval = interval_sum / static_cast<double>(intervals);
    if (out.canonical_blocks > 0)
        out.mean_txs_per_block = static_cast<double>(out.total_transactions) /
                                 static_cast<double>(out.canonical_blocks);

    for (const auto& [miner, blocks] : by_miner) {
        MinerShare share;
        share.miner = miner;
        share.blocks = blocks;
        share.share = static_cast<double>(blocks) /
                      static_cast<double>(out.canonical_blocks);
        out.miners.push_back(share);
    }
    std::sort(out.miners.begin(), out.miners.end(),
              [](const MinerShare& a, const MinerShare& b) {
                  return a.blocks > b.blocks;
              });
    return out;
}

} // namespace dlt::app
