#include "app/analytics.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dlt::app {

std::size_t ChainAnalytics::nakamoto_coefficient() const {
    // miners is sorted descending by share.
    double cumulative = 0;
    std::size_t count = 0;
    for (const auto& m : miners) {
        cumulative += m.share;
        ++count;
        if (cumulative > 0.5) return count;
    }
    return miners.size();
}

double ChainAnalytics::miner_gini() const {
    if (miners.size() < 2) return 0.0;
    // Gini = sum_i sum_j |x_i - x_j| / (2 n^2 mean).
    double abs_diff_sum = 0;
    double total = 0;
    for (const auto& a : miners) {
        total += static_cast<double>(a.blocks);
        for (const auto& b : miners)
            abs_diff_sum += std::abs(static_cast<double>(a.blocks) -
                                     static_cast<double>(b.blocks));
    }
    const double n = static_cast<double>(miners.size());
    const double mean = total / n;
    if (mean <= 0) return 0.0;
    return abs_diff_sum / (2.0 * n * n * mean);
}

ChainAnalytics analyze_chain(const ledger::ChainStore& chain, const Hash256& tip) {
    DLT_EXPECTS(chain.contains(tip));
    ChainAnalytics out;
    out.total_blocks = chain.size() - 1; // exclude genesis
    out.height = chain.find(tip)->height;

    std::map<crypto::Address, std::uint64_t> by_miner;
    double prev_timestamp = -1;
    double interval_sum = 0;
    std::uint64_t intervals = 0;

    for (const auto& hash : chain.path_from_genesis(tip)) {
        const auto* entry = chain.find(hash);
        if (hash == chain.genesis_hash()) {
            prev_timestamp = entry->block.header.timestamp;
            continue;
        }
        ++out.canonical_blocks;
        ++by_miner[entry->block.header.proposer];
        for (const auto& tx : entry->block.txs) {
            if (tx.is_coinbase()) continue;
            ++out.total_transactions;
            out.total_fees += tx.declared_fee;
        }
        if (prev_timestamp >= 0) {
            interval_sum += entry->block.header.timestamp - prev_timestamp;
            ++intervals;
        }
        prev_timestamp = entry->block.header.timestamp;
    }

    if (intervals > 0)
        out.mean_block_interval = interval_sum / static_cast<double>(intervals);
    if (out.canonical_blocks > 0)
        out.mean_txs_per_block = static_cast<double>(out.total_transactions) /
                                 static_cast<double>(out.canonical_blocks);

    for (const auto& [miner, blocks] : by_miner) {
        MinerShare share;
        share.miner = miner;
        share.blocks = blocks;
        share.share = static_cast<double>(blocks) /
                      static_cast<double>(out.canonical_blocks);
        out.miners.push_back(share);
    }
    std::sort(out.miners.begin(), out.miners.end(),
              [](const MinerShare& a, const MinerShare& b) {
                  return a.blocks > b.blocks;
              });
    return out;
}

} // namespace dlt::app
