#include "app/scenario.hpp"

#include <algorithm>
#include <filesystem>
#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "common/serialize.hpp"

#include "app/workload.hpp"
#include "common/assert.hpp"
#include "consensus/attack.hpp"
#include "consensus/dag/network.hpp"
#include "consensus/events.hpp"
#include "consensus/nakamoto.hpp"
#include "consensus/pbft.hpp"
#include "core/persistent_node.hpp"
#include "crypto/sha256.hpp"
#include "ledger/mempool.hpp"
#include "storage/file.hpp"

namespace dlt::app {

const char* scenario_engine_name(ScenarioEngine e) {
    switch (e) {
    case ScenarioEngine::kNakamotoLongest: return "nakamoto";
    case ScenarioEngine::kGhost: return "ghost";
    case ScenarioEngine::kGhostDag: return "ghostdag";
    case ScenarioEngine::kPbft: return "pbft";
    }
    return "?";
}

const char* scenario_attack_name(ScenarioAttack a) {
    switch (a) {
    case ScenarioAttack::kHonest: return "honest";
    case ScenarioAttack::kSelfish: return "selfish";
    case ScenarioAttack::kEclipse: return "eclipse";
    case ScenarioAttack::kSpam: return "spam";
    case ScenarioAttack::kCrashReorg: return "crash_reorg";
    }
    return "?";
}

namespace {

/// Deterministic per-cell seed: every (engine, attack, load) cell gets an
/// independent stream, and the whole matrix replays bit-for-bit from
/// ScenarioConfig::seed alone.
std::uint64_t cell_seed(const ScenarioConfig& cfg, ScenarioEngine engine,
                        ScenarioAttack attack, double load_level) {
    std::uint64_t s = cfg.seed * 1'000'003ULL;
    s += static_cast<std::uint64_t>(engine) * 10'007ULL;
    s += static_cast<std::uint64_t>(attack) * 101ULL;
    s += static_cast<std::uint64_t>(load_level * 16.0);
    return s;
}

/// Per-node safety/liveness probe. Installs on_tip_changed + on_reorg only,
/// leaving on_block_inserted free for attack drivers (SelfishMiner chains onto
/// that one); the crash-reorg shadow replica chains onto on_reorg *after*
/// monitors attach, preserving these observers.
struct NodeMonitor {
    std::uint64_t finality_depth = 6;
    std::uint64_t best = 0;        // highest tip height / order position seen
    SimTime last_advance = 0;
    double max_gap = 0;            // longest interval without advancement
    std::uint64_t max_reorg = 0;   // deepest disconnect observed
    std::uint64_t deep_reorgs = 0; // disconnects deeper than finality_depth

    void attach(consensus::ChainEvents& ev) {
        ev.on_tip_changed = [this](const Hash256&, std::uint64_t height,
                                   SimTime at) {
            if (height > best) {
                max_gap = std::max(max_gap, at - last_advance);
                last_advance = at;
                best = height;
            }
        };
        ev.on_reorg = [this](const std::vector<Hash256>& disconnected,
                             const std::vector<Hash256>&, SimTime) {
            const auto depth = static_cast<std::uint64_t>(disconnected.size());
            max_reorg = std::max(max_reorg, depth);
            if (depth > finality_depth) ++deep_reorgs;
        };
    }

    void finish(SimTime end) { max_gap = std::max(max_gap, end - last_advance); }
};

/// Fold a vector of monitors into the cell's liveness/safety fields.
void fold_monitors(std::vector<NodeMonitor>& monitors, SimTime end,
                   CellResult& r) {
    for (auto& m : monitors) {
        m.finish(end);
        r.liveness_gap_s = std::max(r.liveness_gap_s, m.max_gap);
        r.max_reorg_depth = std::max(r.max_reorg_depth, m.max_reorg);
        r.safety_violations += m.deep_reorgs;
    }
}

void fill_mempool_stats(const ledger::Mempool& pool, CellResult& r) {
    const ledger::MempoolStats& s = pool.stats();
    r.drops_evicted = s.drops(ledger::MempoolDropReason::kEvicted);
    r.drops_expired = s.drops(ledger::MempoolDropReason::kExpired);
    r.drops_replaced = s.drops(ledger::MempoolDropReason::kReplaced);
    r.admission_queue_full = s.result(ledger::AdmissionResult::kQueueFull);
}

WorkloadParams honest_demand(const ScenarioConfig& cfg, double tps) {
    WorkloadParams w;
    w.population = cfg.population;
    w.base_tps = tps;
    w.payload_bytes = 96;
    w.min_fee_rate = 0.5;
    w.max_fee_rate = 8.0;
    w.submit_nodes = cfg.submit_nodes;
    return w;
}

/// Spam-flood demand: a small cohort hammering hot shared accounts at a flat
/// high bid (SpamFloodParams rendered as a WorkloadEngine configuration).
WorkloadParams spam_demand(const ScenarioConfig& cfg) {
    WorkloadParams w;
    w.population = 1'000;
    w.base_tps = cfg.spam_tps;
    w.payload_bytes = 96;
    w.hot_accounts = 16;
    w.hot_fraction = 0.5;
    w.min_fee_rate = cfg.spam_fee_rate;
    w.max_fee_rate = cfg.spam_fee_rate;
    w.submit_nodes = cfg.submit_nodes;
    return w;
}

/// The two-group partition used by crash-reorg cells: a small minority side
/// {0, 1, 2} (containing the crash victim) that almost surely loses the merge
/// reorg, and the majority rest.
std::vector<std::vector<net::NodeId>> crash_groups(std::size_t node_count) {
    std::vector<std::vector<net::NodeId>> groups(2);
    for (net::NodeId n = 0; n < node_count; ++n)
        groups[n < 3 ? 0 : 1].push_back(n);
    return groups;
}

// ---------------------------------------------------------------------------
// Crash-during-reorg shadow replica
// ---------------------------------------------------------------------------

/// Durable mirror of one simulated peer: every on_reorg delta is replayed as
/// PersistentNode disconnect/connect calls (block + undo + WAL commit per
/// transition). The harness arms the CrashInjector when the post-heal merge
/// reorg begins, so the WAL is cut mid-batch; reopen_and_reconcile() then
/// recovers from disk and catches up to the live peer through
/// ChainStore::reorg_path — the end-of-cell consistency check is the
/// scorecard's "crash-during-reorg is safe" evidence.
class ShadowReplica {
public:
    ShadowReplica(consensus::NakamotoNetwork& net, net::NodeId node,
                  std::filesystem::path dir, std::uint64_t wal_budget)
        : net_(net), node_(node), dir_(std::move(dir)), wal_budget_(wal_budget) {
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        const ledger::ChainStore& chain = net_.chain_of(node_);
        const auto* g = chain.find(chain.genesis_hash());
        DLT_EXPECTS(g != nullptr);
        genesis_ = g->block;
        options_.injector = &injector_;
        store_ = std::make_unique<core::PersistentNode>(dir_, genesis_, options_);

        consensus::ChainEvents& ev = net_.events(node_);
        auto prev = std::move(ev.on_reorg);
        ev.on_reorg = [this, prev = std::move(prev)](
                          const std::vector<Hash256>& disconnected,
                          const std::vector<Hash256>& connected, SimTime at) {
            if (prev) prev(disconnected, connected, at);
            mirror(disconnected, connected);
        };
    }

    /// Cut the WAL partway through the next real (nonempty-disconnect) reorg.
    void arm_on_next_reorg() { arm_pending_ = true; }

    bool dead() const { return dead_; }
    std::uint64_t wal_replayed() const { return wal_replayed_; }
    std::uint64_t recoveries() const { return recoveries_; }

    /// Reopen from disk (replaying the committed WAL suffix) and roll the
    /// recovered tip forward/back to the live peer's current tip.
    void reopen_and_reconcile() {
        // Neutralize the injector first: arm() with an unbounded budget also
        // clears a tripped crashed flag, so neither the recovery replay nor
        // the catch-up below can be cut a second time.
        arm_pending_ = false;
        injector_.arm(std::numeric_limits<std::uint64_t>::max());
        if (dead_) {
            store_.reset(); // close the torn files before recovery reopens them
            store_ = std::make_unique<core::PersistentNode>(dir_, genesis_,
                                                            options_);
            wal_replayed_ += store_->recovery().wal_records_replayed;
            ++recoveries_;
            dead_ = false;
        }
        reconcile();
    }

    bool consistent() const {
        return !dead_ && store_ != nullptr && store_->tip() == net_.tip_of(node_);
    }

private:
    void mirror(const std::vector<Hash256>& disconnected,
                const std::vector<Hash256>& connected) {
        if (dead_) return; // events while crashed are lost; reconcile replays
        // A merge reorg shows up as a nonempty disconnect, but under GHOST
        // the recovering side may simply extend (its fork was already the
        // heavier subtree) — a multi-block connect batch rides the same WAL
        // window, so it arms the cut too.
        if (arm_pending_ && (!disconnected.empty() || connected.size() > 1)) {
            arm_pending_ = false;
            injector_.arm(wal_budget_);
        }
        try {
            const ledger::ChainStore& chain = net_.chain_of(node_);
            for (std::size_t i = 0; i < disconnected.size(); ++i)
                store_->disconnect_tip();
            for (const Hash256& hash : connected)
                store_->connect_block(chain.find(hash)->block);
        } catch (const storage::CrashError&) {
            dead_ = true;
        }
    }

    void reconcile() {
        const ledger::ChainStore& chain = net_.chain_of(node_);
        const auto path = chain.reorg_path(store_->tip(), net_.tip_of(node_));
        for (std::size_t i = 0; i < path.disconnect.size(); ++i)
            store_->disconnect_tip();
        for (const Hash256& hash : path.connect)
            store_->connect_block(chain.find(hash)->block);
    }

    consensus::NakamotoNetwork& net_;
    net::NodeId node_;
    std::filesystem::path dir_;
    std::uint64_t wal_budget_;
    storage::CrashInjector injector_;
    core::PersistentNodeOptions options_;
    std::unique_ptr<core::PersistentNode> store_;
    ledger::Block genesis_;
    bool dead_ = false;
    bool arm_pending_ = false;
    std::uint64_t wal_replayed_ = 0;
    std::uint64_t recoveries_ = 0;
};

// ---------------------------------------------------------------------------
// Chain cells (Nakamoto longest-chain / GHOST)
// ---------------------------------------------------------------------------

CellResult run_chain_cell(const ScenarioConfig& cfg, ScenarioEngine engine,
                          ScenarioAttack attack, double load_level) {
    const std::uint64_t seed = cell_seed(cfg, engine, attack, load_level);
    const double interval = cfg.block_interval;
    // Selfish cells need enough blocks for the revenue share to be a
    // statistic rather than a seed lottery (see ScenarioConfig).
    const double duration =
        cfg.duration * (attack == ScenarioAttack::kSelfish
                            ? cfg.selfish_duration_multiplier
                            : 1.0);

    consensus::NakamotoParams params;
    params.node_count = cfg.node_count;
    params.block_interval = interval;
    params.branch_rule = engine == ScenarioEngine::kGhost
                             ? consensus::BranchRule::kGhost
                             : consensus::BranchRule::kLongestChain;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    params.max_block_txs = 400; // scarce block space so floods actually queue
    params.mempool.max_count = 2'000;
    params.mempool.min_fee_rate = 0.1;
    params.mempool.expiry = 600.0;
    params.finality_depth = cfg.finality_depth;
    params.chain_tag = std::string("e27/") + scenario_engine_name(engine) + "/" +
                       scenario_attack_name(attack);
    if (attack == ScenarioAttack::kSelfish || attack == ScenarioAttack::kEclipse) {
        const double share = attack == ScenarioAttack::kSelfish
                                 ? cfg.selfish_hash_share
                                 : cfg.eclipse_hash_share;
        params.hashrate_shares.assign(cfg.node_count,
                                      (1.0 - share) /
                                          static_cast<double>(cfg.node_count - 1));
        params.hashrate_shares[cfg.attacker] = share;
    }

    consensus::NakamotoNetwork net(params, seed);

    std::vector<NodeMonitor> monitors(cfg.node_count);
    for (net::NodeId n = 0; n < cfg.node_count; ++n) {
        monitors[n].finality_depth = cfg.finality_depth;
        monitors[n].attach(net.events(n));
    }

    WorkloadEngine demand(net, honest_demand(cfg, load_level), seed + 1);

    // Attack composition. disruption_end < 0 means the cell never diverges
    // on purpose (honest, spam) and reconvergence is reported as 0.
    double disruption_end = -1.0;
    std::optional<consensus::SelfishMiner> selfish;
    std::optional<consensus::EclipseAttack> eclipse;
    std::optional<WorkloadEngine> spam;
    std::optional<ShadowReplica> shadow;
    sim::Scheduler& sched = net.scheduler();

    switch (attack) {
    case ScenarioAttack::kHonest:
        break;
    case ScenarioAttack::kSelfish:
        // Runs for the whole window; finish() at the end of it releases the
        // last withheld fork, so that is when reconvergence starts counting.
        selfish.emplace(net, cfg.attacker);
        disruption_end = duration;
        break;
    case ScenarioAttack::kEclipse: {
        consensus::EclipseParams ep;
        ep.attacker = cfg.attacker;
        ep.victim = cfg.victim;
        sched.schedule_at(cfg.eclipse_start_frac * cfg.duration,
                          [&net, &eclipse, ep] { eclipse.emplace(net, ep); });
        disruption_end = cfg.eclipse_end_frac * cfg.duration;
        sched.schedule_at(disruption_end, [&eclipse] {
            if (eclipse) eclipse->heal();
        });
        break;
    }
    case ScenarioAttack::kSpam:
        spam.emplace(net, spam_demand(cfg), seed + 2);
        sched.schedule_at(cfg.spam_start_frac * cfg.duration,
                          [&spam] { spam->start(); });
        sched.schedule_at(cfg.spam_end_frac * cfg.duration,
                          [&spam] { spam->stop(); });
        break;
    case ScenarioAttack::kCrashReorg: {
        const double cut_at = cfg.crash_cut_frac * cfg.duration;
        const double heal_at = cut_at + cfg.crash_partition_intervals * interval;
        const double crash_at = heal_at - interval; // miss the merge while down
        const double recover_at = heal_at + 2 * interval;
        net::FaultPlan plan;
        plan.cut(cut_at, "e27/split", crash_groups(cfg.node_count));
        plan.crash(crash_at, cfg.victim);
        plan.heal(heal_at, "e27/split");
        plan.recover(recover_at, cfg.victim);
        net.network().apply(plan);
        disruption_end = recover_at;

        const std::string dir =
            cfg.shadow_dir.empty() ? std::string("e27_shadow") : cfg.shadow_dir;
        shadow.emplace(net, cfg.victim,
                       std::filesystem::path(dir) /
                           (std::string(scenario_engine_name(engine)) + "_l" +
                            std::to_string(static_cast<int>(load_level))),
                       cfg.crash_wal_budget);
        // The victim's catch-up reorg happens right after it recovers (it
        // learns the majority chain through gossip); cut the shadow WAL then,
        // and reopen one interval later.
        sched.schedule_at(heal_at, [&shadow] { shadow->arm_on_next_reorg(); });
        sched.schedule_at(recover_at + interval, [&shadow] {
            if (shadow->dead()) shadow->reopen_and_reconcile();
        });
        break;
    }
    }

    net.start();
    demand.start();

    // Main window in half-interval slices so reconvergence is observed with
    // bounded granularity.
    const double slice = interval / 2;
    double reconv = -1.0;
    while (net.now() < duration - 1e-9) {
        net.run_for(std::min(slice, duration - net.now()));
        if (disruption_end >= 0 && reconv < 0 && net.now() >= disruption_end &&
            net.converged())
            reconv = net.now() - disruption_end;
    }

    demand.stop();
    if (spam) spam->stop();
    if (selfish) selfish->finish(); // releases the final fork at disruption_end
    if (eclipse && !eclipse->healed()) eclipse->heal();

    // Reconvergence tail: keep mining until every tip agrees (or give up).
    while (net.now() < duration + cfg.tail) {
        if (net.converged()) {
            if (disruption_end >= 0 && reconv < 0)
                reconv = net.now() - disruption_end;
            break;
        }
        net.run_for(slice);
    }
    if (shadow) shadow->reopen_and_reconcile(); // final catch-up, then audit

    CellResult r;
    r.engine = engine;
    r.attack = attack;
    r.load_level = load_level;
    r.offered_tps = load_level;
    r.converged = net.converged();
    r.reconvergence_s = disruption_end < 0 ? 0.0 : reconv;
    r.confirmed_tps = static_cast<double>(net.confirmed_tx_count()) / duration;
    r.reorgs = net.stats().reorgs;
    fold_monitors(monitors, net.now(), r);
    fill_mempool_stats(net.mempool_of(0), r);

    // End-of-run finalized-prefix audit: every peer must agree on the chain
    // up to (min height - k); each disagreeing peer is a safety violation.
    std::uint64_t min_height = net.height_of(0);
    for (net::NodeId n = 1; n < cfg.node_count; ++n)
        min_height = std::min(min_height, net.height_of(n));
    if (min_height > cfg.finality_depth) {
        const std::uint64_t final_height = min_height - cfg.finality_depth;
        const Hash256 ref = net.chain_of(0).ancestor(
            net.tip_of(0), net.height_of(0) - final_height);
        for (net::NodeId n = 1; n < cfg.node_count; ++n)
            if (net.chain_of(n).ancestor(net.tip_of(n),
                                         net.height_of(n) - final_height) != ref)
                ++r.safety_violations;
    }

    if (selfish) {
        r.attacker_revenue_share = consensus::proposer_share(net, cfg.attacker);
        r.attacker_hash_share = cfg.selfish_hash_share;
        r.fork_blocks = selfish->stats().blocks_published;
    }
    if (eclipse) {
        r.attacker_revenue_share = consensus::proposer_share(net, cfg.attacker);
        r.attacker_hash_share = cfg.eclipse_hash_share;
        r.fork_blocks = eclipse->fork_blocks();
    }
    if (shadow) {
        r.shadow_wal_replayed = shadow->wal_replayed();
        r.shadow_recoveries = shadow->recoveries();
        r.shadow_consistent = shadow->consistent();
    }
    r.digest = net.tip_of(0).hex();
    return r;
}

// ---------------------------------------------------------------------------
// GHOSTDAG cells
// ---------------------------------------------------------------------------

/// DAG eclipse driver (the consensus::dag::DagNetwork analogue of EclipseAttack): same
/// partition-plus-relay-filter bridge, with the attacker withholding its own
/// records from the honest side and direct-feeding them to the victim.
struct DagEclipse {
    consensus::dag::DagNetwork& net;
    net::NodeId attacker;
    net::NodeId victim;
    std::string partition;
    std::vector<Hash256> fork;
    bool healed = false;

    void engage() {
        partition = "eclipse/" + std::to_string(victim);
        std::vector<net::NodeId> honest;
        for (net::NodeId n = 0; n < net.node_count(); ++n)
            if (n != attacker && n != victim) honest.push_back(n);
        net.network().partition(partition, {{victim}, honest});
        const net::NodeId a = attacker, v = victim;
        net.gossip().set_relay_filter(
            [a, v](net::NodeId at, net::NodeId to, const std::string&) {
                return !((at == a && to == v) || (at == v && to == a));
            });
        net.set_produced_record_hook(
            [this](net::NodeId node, const ledger::Block& record) {
                if (node != attacker || healed) return true;
                fork.push_back(record.hash());
                net.gossip().send_direct(attacker, victim, "d/block",
                                         encode_to_bytes(record));
                return false;
            });
    }

    void heal() {
        if (healed) return;
        healed = true;
        net.gossip().set_relay_filter(nullptr);
        net.set_produced_record_hook(nullptr);
        net.network().heal(partition);
        for (const Hash256& hash : fork) net.publish_record(attacker, hash);
    }
};

CellResult run_dag_cell(const ScenarioConfig& cfg, ScenarioAttack attack,
                        double load_level) {
    const std::uint64_t seed =
        cell_seed(cfg, ScenarioEngine::kGhostDag, attack, load_level);
    const double interval = cfg.record_interval;

    consensus::dag::DagParams params;
    params.node_count = cfg.node_count;
    params.record_interval = interval;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    params.max_block_txs = 400;
    params.mempool.max_count = 2'000;
    params.mempool.min_fee_rate = 0.1;
    params.mempool.expiry = 600.0;
    params.chain_tag = std::string("e27/ghostdag/") + scenario_attack_name(attack);

    consensus::dag::DagNetwork net(params, seed);

    std::vector<NodeMonitor> monitors(cfg.node_count);
    for (net::NodeId n = 0; n < cfg.node_count; ++n) {
        monitors[n].finality_depth = cfg.dag_finality_depth;
        monitors[n].attach(net.events(n));
    }

    TxHostFor<consensus::dag::DagNetwork> host(net);
    WorkloadEngine demand(host, honest_demand(cfg, load_level), seed + 1);

    double disruption_end = -1.0;
    std::optional<TxHostFor<consensus::dag::DagNetwork>> spam_host;
    std::optional<WorkloadEngine> spam;
    std::optional<DagEclipse> eclipse;
    std::vector<Hash256> withheld; // selfish burst buffer
    std::uint64_t withheld_total = 0;
    sim::Scheduler& sched = net.scheduler();

    switch (attack) {
    case ScenarioAttack::kHonest:
        break;
    case ScenarioAttack::kSelfish: {
        // Withhold/burst-release: the attacker keeps its records private and
        // dumps them every few intervals, forcing suffix re-linearizations at
        // every peer — the disruption GHOSTDAG's k-cluster rule is meant to
        // bound (relinearization depth must stay under dag_finality_depth).
        const net::NodeId attacker = cfg.attacker;
        net.set_produced_record_hook(
            [&withheld, &withheld_total, attacker](net::NodeId node,
                                                   const ledger::Block& record) {
                if (node != attacker) return true;
                withheld.push_back(record.hash());
                ++withheld_total;
                return false;
            });
        const double release_every = 4 * interval;
        for (double t = release_every; t < cfg.duration; t += release_every)
            sched.schedule_at(t, [&net, &withheld, attacker] {
                for (const Hash256& hash : withheld)
                    net.publish_record(attacker, hash);
                withheld.clear();
            });
        disruption_end = cfg.duration;
        break;
    }
    case ScenarioAttack::kEclipse:
        eclipse.emplace(DagEclipse{net, cfg.attacker, cfg.victim});
        sched.schedule_at(cfg.eclipse_start_frac * cfg.duration,
                          [&eclipse] { eclipse->engage(); });
        disruption_end = cfg.eclipse_end_frac * cfg.duration;
        sched.schedule_at(disruption_end, [&eclipse] { eclipse->heal(); });
        break;
    case ScenarioAttack::kSpam:
        spam_host.emplace(net);
        spam.emplace(*spam_host, spam_demand(cfg), seed + 2);
        sched.schedule_at(cfg.spam_start_frac * cfg.duration,
                          [&spam] { spam->start(); });
        sched.schedule_at(cfg.spam_end_frac * cfg.duration,
                          [&spam] { spam->stop(); });
        break;
    case ScenarioAttack::kCrashReorg: {
        // Fail-stop composition only: the DAG ledger has no durable node yet
        // (PersistentNode journals linear chains), so this cell measures the
        // relinearization storm of a partition-heal merge with a crashed-and-
        // recovered producer in the minority side.
        const double cut_at = cfg.crash_cut_frac * cfg.duration;
        const double heal_at = cut_at + cfg.crash_partition_intervals * interval;
        net::FaultPlan plan;
        plan.cut(cut_at, "e27/split", crash_groups(cfg.node_count));
        plan.crash(heal_at - interval, cfg.victim);
        plan.heal(heal_at, "e27/split");
        plan.recover(heal_at + 2 * interval, cfg.victim);
        net.network().apply(plan);
        disruption_end = heal_at + 2 * interval;
        break;
    }
    }

    net.start();
    demand.start();

    const double slice = std::max(interval, 2.0);
    double reconv = -1.0;
    while (net.now() < cfg.duration - 1e-9) {
        net.run_for(std::min(slice, cfg.duration - net.now()));
        if (disruption_end >= 0 && reconv < 0 && net.now() >= disruption_end &&
            net.converged())
            reconv = net.now() - disruption_end;
    }

    demand.stop();
    if (spam) spam->stop();
    if (eclipse) eclipse->heal();
    if (!withheld.empty()) {
        for (const Hash256& hash : withheld)
            net.publish_record(cfg.attacker, hash);
        withheld.clear();
    }
    net.set_produced_record_hook(nullptr);

    while (net.now() < cfg.duration + cfg.tail) {
        if (net.converged()) {
            if (disruption_end >= 0 && reconv < 0)
                reconv = net.now() - disruption_end;
            break;
        }
        net.run_for(slice);
    }

    CellResult r;
    r.engine = ScenarioEngine::kGhostDag;
    r.attack = attack;
    r.load_level = load_level;
    r.offered_tps = load_level;
    r.converged = net.converged();
    r.reconvergence_s = disruption_end < 0 ? 0.0 : reconv;
    r.confirmed_tps =
        static_cast<double>(net.confirmed_tx_count()) / cfg.duration;
    r.reorgs = net.stats().relinearizations;
    fold_monitors(monitors, net.now(), r);
    fill_mempool_stats(net.mempool_of(0), r);

    // Finalized-prefix audit over the GHOSTDAG total order: all peers must
    // share the order up to (min length - k).
    std::vector<std::vector<Hash256>> orders(cfg.node_count);
    std::size_t min_len = SIZE_MAX;
    for (net::NodeId n = 0; n < cfg.node_count; ++n) {
        orders[n] = net.linear_order(n);
        min_len = std::min(min_len, orders[n].size());
    }
    if (min_len > cfg.dag_finality_depth) {
        const std::size_t prefix = min_len - cfg.dag_finality_depth;
        for (net::NodeId n = 1; n < cfg.node_count; ++n)
            if (!std::equal(orders[0].begin(), orders[0].begin() + prefix,
                            orders[n].begin()))
                ++r.safety_violations;
    }

    if (attack == ScenarioAttack::kSelfish) {
        // Revenue share in the DAG: fraction of ordered records the attacker
        // proposed (no stale blocks — withheld records still merge in).
        const auto order = net.linear_order(0);
        std::size_t owned = 0, counted = 0;
        const crypto::Address& addr = net.miner_address(cfg.attacker);
        for (const Hash256& hash : order) {
            const auto* entry = net.store_of(0).find(hash);
            if (entry == nullptr) continue;
            ++counted;
            if (entry->block.header.proposer == addr) ++owned;
        }
        r.attacker_revenue_share =
            counted > 0 ? static_cast<double>(owned) / counted : 0.0;
        r.attacker_hash_share = 1.0 / static_cast<double>(cfg.node_count);
        r.fork_blocks = withheld_total;
    }
    if (eclipse) r.fork_blocks = eclipse->fork.size();
    r.digest = net.order_digest(0).hex();
    return r;
}

// ---------------------------------------------------------------------------
// PBFT cells
// ---------------------------------------------------------------------------

CellResult run_pbft_cell(const ScenarioConfig& cfg, ScenarioAttack attack,
                         double load_level) {
    const std::uint64_t seed =
        cell_seed(cfg, ScenarioEngine::kPbft, attack, load_level);
    const double duration = cfg.pbft_duration;
    const double offered = load_level * cfg.pbft_load_multiplier;

    consensus::PbftConfig config;
    config.f = 1; // n = 4
    config.batch_size = 20;
    config.batch_interval = 0.05;
    config.view_change_timeout = 2.0;
    consensus::PbftCluster cluster(config, seed);

    // Attack mapping. Observer replica is 1: never the equivocating primary
    // (0) and never the isolated/crashed replica (3).
    constexpr std::uint32_t kObserver = 1;
    constexpr std::uint32_t kVictim = 3;
    double disruption_end = -1.0;
    double spam_start = 0, spam_end = 0;
    switch (attack) {
    case ScenarioAttack::kHonest:
        break;
    case ScenarioAttack::kSelfish:
        // Equivocation is PBFT's strategic deviation: the primary of view 0
        // sends conflicting pre-prepares; quorum intersection must refuse both
        // and the view change must oust it (every fourth view it returns).
        cluster.set_fault(0, consensus::PbftFault::kEquivocating);
        break;
    case ScenarioAttack::kEclipse: {
        net::FaultPlan plan;
        plan.cut(cfg.eclipse_start_frac * duration, "e27/iso", {{kVictim}, {0, 1, 2}});
        disruption_end = cfg.eclipse_end_frac * duration;
        plan.heal(disruption_end, "e27/iso");
        cluster.network().apply(plan);
        break;
    }
    case ScenarioAttack::kSpam:
        spam_start = cfg.spam_start_frac * duration;
        spam_end = cfg.spam_end_frac * duration;
        break;
    case ScenarioAttack::kCrashReorg: {
        net::FaultPlan plan;
        plan.crash(cfg.crash_cut_frac * duration, kVictim);
        disruption_end = cfg.crash_cut_frac * duration + 0.2 * duration;
        plan.recover(disruption_end, kVictim);
        cluster.network().apply(plan);
        break;
    }
    }

    // Deterministic client arrival times (honest Poisson stream, plus a 10×
    // flood over the spam window), precomputed so the submit loop interleaves
    // exactly with liveness sampling.
    Rng rng(seed + 1);
    std::vector<double> arrivals;
    for (double t = rng.exponential(offered); t < duration;
         t += rng.exponential(offered))
        arrivals.push_back(t);
    if (attack == ScenarioAttack::kSpam) {
        for (double t = spam_start + rng.exponential(10.0 * offered);
             t < spam_end; t += rng.exponential(10.0 * offered))
            arrivals.push_back(t);
        std::sort(arrivals.begin(), arrivals.end());
    }

    const auto make_request = [seed](std::uint64_t counter) {
        Bytes request(32, 0);
        for (int i = 0; i < 8; ++i) {
            request[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(counter >> (8 * i));
            request[static_cast<std::size_t>(8 + i)] =
                static_cast<std::uint8_t>(seed >> (8 * i));
        }
        return request;
    };

    const double slice = 0.5;
    std::size_t next_arrival = 0;
    std::uint64_t counter = 0;
    std::uint64_t last_exec = 0;
    double last_advance = 0, max_gap = 0, reconv = -1.0;
    for (double t = slice; t <= duration + slice / 2; t += slice) {
        const double stop = std::min(t, duration);
        while (next_arrival < arrivals.size() && arrivals[next_arrival] <= stop) {
            const double dt = arrivals[next_arrival] - cluster.now();
            if (dt > 0) cluster.run_for(dt);
            cluster.submit(make_request(counter++));
            ++next_arrival;
        }
        cluster.run_for(stop - cluster.now());
        const std::uint64_t exec = cluster.executed_requests(kObserver);
        if (exec > last_exec) {
            max_gap = std::max(max_gap, cluster.now() - last_advance);
            last_advance = cluster.now();
            last_exec = exec;
            if (disruption_end >= 0 && reconv < 0 &&
                cluster.now() >= disruption_end)
                reconv = cluster.now() - disruption_end;
        }
    }
    cluster.run_for(10.0); // drain in-flight batches
    max_gap = std::max(max_gap, duration - last_advance);

    CellResult r;
    r.engine = ScenarioEngine::kPbft;
    r.attack = attack;
    r.load_level = load_level;
    r.offered_tps = offered;
    r.liveness_gap_s = max_gap;
    r.reconvergence_s = disruption_end < 0 ? 0.0 : reconv;
    r.confirmed_tps =
        static_cast<double>(cluster.executed_requests(kObserver)) / duration;
    r.reorgs = cluster.max_view(); // view changes are PBFT's "reorgs"

    // Safety: committed logs must be prefix-consistent across every replica
    // (a lagging isolated/crashed replica holds a strict prefix — there is no
    // state transfer — which is consistent; a *conflicting* entry is a
    // violation). "Converged" for PBFT is exactly that prefix agreement.
    const auto& ref = cluster.log_of(kObserver);
    for (std::uint32_t replica = 0; replica < cluster.replica_count(); ++replica) {
        if (replica == kObserver) continue;
        const auto& log = cluster.log_of(replica);
        const std::size_t common = std::min(log.size(), ref.size());
        for (std::size_t i = 0; i < common; ++i) {
            if (log[i].sequence != ref[i].sequence ||
                log[i].requests != ref[i].requests) {
                ++r.safety_violations;
                break;
            }
        }
    }
    r.converged = r.safety_violations == 0;

    Bytes transcript;
    for (const auto& batch : ref) {
        for (int i = 0; i < 8; ++i)
            transcript.push_back(
                static_cast<std::uint8_t>(batch.sequence >> (8 * i)));
        for (const Bytes& request : batch.requests)
            transcript.insert(transcript.end(), request.begin(), request.end());
    }
    r.digest = crypto::sha256(transcript).hex();
    return r;
}

} // namespace

CellResult run_scenario_cell(const ScenarioConfig& cfg, ScenarioEngine engine,
                             ScenarioAttack attack, double load_level) {
    DLT_EXPECTS(cfg.node_count >= 6);
    DLT_EXPECTS(load_level > 0);
    switch (engine) {
    case ScenarioEngine::kNakamotoLongest:
    case ScenarioEngine::kGhost:
        return run_chain_cell(cfg, engine, attack, load_level);
    case ScenarioEngine::kGhostDag:
        return run_dag_cell(cfg, attack, load_level);
    case ScenarioEngine::kPbft:
        return run_pbft_cell(cfg, attack, load_level);
    }
    DLT_EXPECTS(false);
    return {};
}

std::vector<CellResult> run_scenario_matrix(
    const ScenarioConfig& cfg, const std::vector<ScenarioEngine>& engines,
    const std::vector<ScenarioAttack>& attacks, const std::vector<double>& loads) {
    std::vector<CellResult> results;
    results.reserve(engines.size() * attacks.size() * loads.size());
    for (const ScenarioEngine engine : engines)
        for (const ScenarioAttack attack : attacks)
            for (const double load : loads)
                results.push_back(run_scenario_cell(cfg, engine, attack, load));
    return results;
}

} // namespace dlt::app
