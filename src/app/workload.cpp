#include "app/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/serialize.hpp"

namespace dlt::app {

namespace {

constexpr double kPi = 3.14159265358979323846;

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

// --- ZipfSampler (rejection-inversion, Hörmann & Derflinger 1996) -----------

ZipfSampler::ZipfSampler(std::uint64_t num_elements, double exponent)
    : n_(num_elements), exponent_(exponent) {
    DLT_EXPECTS(num_elements >= 1);
    DLT_EXPECTS(exponent > 0);
    h_integral_x1_ = h_integral(1.5) - 1.0;
    h_integral_n_ = h_integral(static_cast<double>(n_) + 0.5);
    s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfSampler::h_integral(double x) const {
    const double log_x = std::log(x);
    return helper2((1.0 - exponent_) * log_x) * log_x;
}

double ZipfSampler::h(double x) const {
    return std::exp(-exponent_ * std::log(x));
}

double ZipfSampler::h_integral_inverse(double x) const {
    double t = x * (1.0 - exponent_);
    if (t < -1.0) t = -1.0; // guard against round-off below the domain
    return std::exp(helper1(t) * x);
}

double ZipfSampler::helper1(double x) {
    return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x * (0.5 - x / 3.0);
}

double ZipfSampler::helper2(double x) {
    return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x * (0.5 + x / 6.0);
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
    for (;;) {
        const double u =
            h_integral_n_ + rng.uniform01() * (h_integral_x1_ - h_integral_n_);
        const double x = h_integral_inverse(u);
        std::uint64_t k = static_cast<std::uint64_t>(
            std::clamp(x, 1.0, static_cast<double>(n_)) + 0.5);
        if (k < 1) k = 1;
        if (k > n_) k = n_;
        // Accept k outright when it sits within the rejection-free band, else
        // run the acceptance test against the histogram bar at k.
        if (static_cast<double>(k) - x <= s_ ||
            u >= h_integral(static_cast<double>(k) + 0.5) -
                     h(static_cast<double>(k)))
            return k;
    }
}

// --- WorkloadEngine ----------------------------------------------------------

const char* fee_strategy_name(FeeStrategy s) {
    switch (s) {
        case FeeStrategy::kMinimal: return "minimal";
        case FeeStrategy::kStatic: return "static";
        case FeeStrategy::kMarketFollower: return "market_follower";
        case FeeStrategy::kUrgentBumper: return "urgent_bumper";
    }
    return "unknown";
}

WorkloadEngine::WorkloadEngine(TxHost& host, WorkloadParams params,
                               std::uint64_t seed)
    : net_(host),
      params_(params),
      rng_(seed),
      zipf_(params.population, params.zipf_exponent) {
    init();
}

WorkloadEngine::WorkloadEngine(consensus::NakamotoNetwork& net,
                               WorkloadParams params, std::uint64_t seed)
    : owned_host_(std::make_unique<TxHostFor<consensus::NakamotoNetwork>>(net)),
      net_(*owned_host_),
      params_(params),
      rng_(seed),
      zipf_(params.population, params.zipf_exponent) {
    init();
}

void WorkloadEngine::init() {
    DLT_EXPECTS(params_.base_tps > 0);
    DLT_EXPECTS(params_.fee_levels >= 1);
    DLT_EXPECTS(params_.max_fee_rate >= params_.min_fee_rate);
    DLT_EXPECTS(params_.submit_nodes >= 1);
    DLT_EXPECTS(params_.hot_fraction == 0.0 || params_.hot_accounts > 0);
    peak_rate_ = params_.base_tps * (1.0 + std::abs(params_.diurnal_amplitude));
    if (params_.burst_every > 0) peak_rate_ *= std::max(1.0, params_.burst_multiplier);
}

double WorkloadEngine::rate_at(SimTime t) const {
    double rate = params_.base_tps;
    if (params_.diurnal_amplitude != 0) {
        rate *= 1.0 + params_.diurnal_amplitude *
                          std::sin(2.0 * kPi * t / params_.diurnal_period);
    }
    if (params_.burst_every > 0 && params_.burst_duration > 0) {
        const double phase = std::fmod(t, params_.burst_every);
        if (phase < params_.burst_duration) rate *= params_.burst_multiplier;
    }
    return std::max(rate, 0.0);
}

AgentProfile WorkloadEngine::profile_of(std::uint64_t agent) const {
    // Profiles are a pure function of the agent id: a million-user population
    // stores nothing per agent. Mix in a tag so strategy and aggression are
    // independent bits of the same hash stream.
    const std::uint64_t h = splitmix64(agent ^ 0xFEE5'F00Dull);
    AgentProfile profile;
    // Strategy mix: 25% minimal, 40% static, 25% follower, 10% urgent.
    const double pick = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (pick < 0.25)
        profile.strategy = FeeStrategy::kMinimal;
    else if (pick < 0.65)
        profile.strategy = FeeStrategy::kStatic;
    else if (pick < 0.90)
        profile.strategy = FeeStrategy::kMarketFollower;
    else
        profile.strategy = FeeStrategy::kUrgentBumper;
    profile.aggression = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
    return profile;
}

double WorkloadEngine::quantize(double fee_rate) const {
    if (params_.fee_levels <= 1 || params_.max_fee_rate <= params_.min_fee_rate)
        return params_.min_fee_rate;
    const double span = params_.max_fee_rate - params_.min_fee_rate;
    const double step = span / static_cast<double>(params_.fee_levels - 1);
    const double clamped =
        std::clamp(fee_rate, params_.min_fee_rate, params_.max_fee_rate);
    const double level = std::round((clamped - params_.min_fee_rate) / step);
    return params_.min_fee_rate + level * step;
}

double WorkloadEngine::bid(const AgentProfile& profile, std::uint32_t node) {
    switch (profile.strategy) {
        case FeeStrategy::kMinimal:
            return quantize(params_.min_fee_rate);
        case FeeStrategy::kStatic: {
            // A fixed personal level in the lower 60% of the menu.
            const double span = params_.max_fee_rate - params_.min_fee_rate;
            return quantize(params_.min_fee_rate +
                            0.6 * span * profile.aggression);
        }
        case FeeStrategy::kMarketFollower: {
            // Wallet fee estimation: read the observed pool's admission floor
            // and bid 5–50% above it.
            const double floor = net_.mempool_of(node).fee_rate_floor();
            const double base = std::max(floor, params_.min_fee_rate);
            return quantize(base * (1.05 + 0.45 * profile.aggression));
        }
        case FeeStrategy::kUrgentBumper: {
            // Top 30% of the menu regardless of market state.
            const double span = params_.max_fee_rate - params_.min_fee_rate;
            return quantize(params_.max_fee_rate -
                            0.3 * span * profile.aggression);
        }
    }
    return params_.min_fee_rate;
}

void WorkloadEngine::start() {
    if (next_event_) return;
    schedule_next();
}

void WorkloadEngine::stop() {
    if (next_event_) {
        net_.scheduler().cancel(*next_event_);
        next_event_.reset();
    }
}

void WorkloadEngine::schedule_next() {
    const double gap = rng_.exponential(peak_rate_);
    next_event_ = net_.scheduler().schedule_after(gap, [this] {
        next_event_.reset();
        // Thinning: the homogeneous peak-rate stream is subsampled down to
        // the instantaneous rate, yielding an exact inhomogeneous Poisson
        // process without inverting the rate integral.
        const SimTime now = net_.scheduler().now();
        if (rng_.uniform01() * peak_rate_ <= rate_at(now))
            emit_one();
        else
            ++stats_.thinned;
        schedule_next();
    });
}

void WorkloadEngine::emit_one() {
    const SimTime now = net_.scheduler().now();
    // Zipf rank 1 = most active user. The rank *is* the agent id, so the
    // hottest agents keep their identity (and nonce sequence) across draws.
    const std::uint64_t agent = zipf_.sample(rng_);
    const AgentProfile profile = profile_of(agent);
    const std::uint32_t node =
        params_.submit_nodes <= 1
            ? 0
            : static_cast<std::uint32_t>(rng_.uniform(params_.submit_nodes));

    ledger::Transaction tx;
    tx.kind = ledger::TxKind::kRecord;
    tx.data.resize(params_.payload_bytes);
    for (auto& b : tx.data) b = static_cast<std::uint8_t>(rng_.next());

    double fee_rate = bid(profile, node);
    const bool hot = params_.hot_accounts > 0 && rng_.chance(params_.hot_fraction);
    if (hot) {
        // Contended shared account: several agents race for the same
        // (sender, nonce) slot; later writers either consciously out-bid the
        // incumbent (RBF) or bid blind and bounce off conflict resolution.
        const std::uint64_t h = rng_.uniform(params_.hot_accounts);
        HotSlot& slot = hot_slots_[h];
        // The slot advances after a few writers pile on, keeping contention
        // concentrated but finite (~3 bids per slot).
        if (slot.writers >= 3) {
            ++slot.nonce;
            slot.best_rate = 0;
            slot.writers = 0;
        }
        if (slot.writers > 0 && rng_.chance(params_.rbf_bump_fraction)) {
            // Deliberate replacement: out-bid the incumbent by >= 20%.
            fee_rate = quantize(std::max(fee_rate, slot.best_rate * 1.2));
            ++stats_.rbf_bids;
        }
        tx.sender_pubkey.assign(8, 0);
        for (std::size_t i = 0; i < 8; ++i)
            tx.sender_pubkey[i] = static_cast<std::uint8_t>((h >> (8 * i)) & 0xFF);
        tx.sender_pubkey.push_back(0xA5); // tag: hot shared account
        tx.nonce = slot.nonce;
        slot.best_rate = std::max(slot.best_rate, fee_rate);
        ++slot.writers;
        ++stats_.hot_submissions;
    } else {
        const auto [it, fresh] = agent_nonce_.try_emplace(agent, 0);
        if (fresh) ++stats_.distinct_agents;
        tx.sender_pubkey.assign(8, 0);
        for (std::size_t i = 0; i < 8; ++i)
            tx.sender_pubkey[i] =
                static_cast<std::uint8_t>((agent >> (8 * i)) & 0xFF);
        tx.nonce = it->second++;
    }

    // Price the declared fee so fee/size lands on the chosen menu level
    // (declared_fee is fixed-width in the encoding, so size is final here).
    const std::size_t size = tx.serialized_size();
    tx.declared_fee = static_cast<ledger::Amount>(
        std::llround(fee_rate * static_cast<double>(size)));
    const double actual_rate =
        static_cast<double>(tx.declared_fee) / static_cast<double>(size);

    const Hash256 txid = tx.txid();
    net_.submit_transaction(tx, node);
    submissions_.push_back(Submission{txid, actual_rate, now, agent});
    ++stats_.submitted;
}

} // namespace dlt::app
