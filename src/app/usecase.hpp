// Application layer (paper §4.1 and §5.1): the use-case description template —
// name, intent, actors, data objects, permissions, performance requirements —
// exactly as §5.1 enumerates it, plus a feasibility evaluator that maps the
// requirements onto a recommended ChainSpec ("defining which applications
// benefit the most ... and which platform is suitable for which applications").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/chainspec.hpp"

namespace dlt::app {

/// Blockchain application generations (paper §3).
enum class Generation {
    kCryptocurrency = 1, // 1.0
    kDApps = 2,          // 2.0
    kPervasive = 3,      // 3.0
};

enum class Permission { kSubmitTransactions, kCreateContracts, kMaintainLedger, kQueryOnly };

struct Actor {
    std::string name;
    bool trusted = false;    // known/trusted identity?
    std::vector<Permission> permissions;
};

struct DataObject {
    std::string name;
    bool on_chain = true;        // on-chain vs off-chain storage (§4.5)
    bool confidential = false;   // requires a privacy domain (§5.3)
};

struct PerformanceRequirements {
    std::size_t expected_actors = 10;
    double expected_tps = 10.0;
    double max_latency_seconds = 60.0;
    double annual_growth_factor = 1.5;
};

/// The §5.1 template, verbatim as a value type.
struct UseCase {
    std::string name;
    std::string intent; // "what is the problem solved?"
    Generation generation = Generation::kPervasive;
    std::vector<Actor> actors;
    std::vector<DataObject> data_objects;
    bool uses_smart_contracts = false;
    PerformanceRequirements performance;
};

/// The evaluator's output: a spec plus the reasoning trail.
struct Recommendation {
    core::ChainSpec spec;
    std::vector<std::string> rationale;
    bool needs_multichannel = false;   // confidential data objects present
    bool needs_offchain_store = false; // off-chain data objects present
    bool needs_payment_channels = false; // latency below block-interval floor
};

/// Rule-based feasibility analysis (§5.1's methodology made executable):
///  - untrusted maintainers  -> proof-based public consensus (D required)
///  - all-trusted consortium -> ordering/PBFT (CS, permissioned)
///  - high throughput        -> leader-based or short blocks
///  - confidential objects   -> multi-channel privacy domains
Recommendation recommend(const UseCase& use_case);

/// Canned §3 examples, one per generation.
UseCase cryptocurrency_usecase(); // 1.0: public payments
UseCase crowdfunding_usecase();   // 2.0: DApp with contracts
UseCase supply_chain_usecase();   // 3.0: consortium with IoT data
UseCase land_registry_usecase();  // 3.0: government registry
UseCase ehealth_usecase();        // 3.0: confidential records

const char* generation_name(Generation g);

} // namespace dlt::app
