// Analytics middleware (paper §5.2 closes its middleware list with
// "analytics"). Chain-level measurements over a ChainStore: miner concentration
// (the quantitative face of the D property), fee and volume statistics, block
// interval distribution, and reorg-depth telemetry.
//
// Reorg telemetry comes in two forms: `branch_stats_full_walk` recomputes
// stale-branch depths from the chain store on every call (O(blocks * height)
// path walks — the correctness oracle), while `ReorgMonitor` maintains the
// same statistics incrementally from the consensus::ChainEvents stream
// (O(reorg depth) per event, O(stale region) per query) and additionally
// counts the reorg *events* a finished chain store cannot reveal.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"
#include "crypto/keys.hpp"
#include "ledger/chain.hpp"
#include "obs/metrics.hpp"

namespace dlt::app {

struct MinerShare {
    crypto::Address miner;
    std::uint64_t blocks = 0;
    double share = 0;
};

struct ChainAnalytics {
    std::uint64_t height = 0;
    std::uint64_t total_blocks = 0;       // including stale branches
    std::uint64_t canonical_blocks = 0;
    std::uint64_t total_transactions = 0; // non-coinbase, canonical
    ledger::Amount total_fees = 0;        // declared fees, canonical
    double mean_block_interval = 0;
    double mean_txs_per_block = 0;
    std::vector<MinerShare> miners;       // sorted by share, descending

    /// Nakamoto coefficient: smallest number of miners controlling > 50% of
    /// canonical blocks — a standard decentralization metric (low = centralized).
    std::size_t nakamoto_coefficient() const;

    /// Gini coefficient over miner block counts (0 = perfectly equal).
    double miner_gini() const;
};

/// Analyze the chain ending at `tip`.
ChainAnalytics analyze_chain(const ledger::ChainStore& chain, const Hash256& tip);

/// Stale-branch depth telemetry relative to a canonical tip. A stale leaf's
/// branch depth is the number of blocks between it and its first canonical
/// ancestor (inclusive of the leaf, exclusive of the ancestor).
struct BranchStats {
    std::uint64_t stale_blocks = 0;   // blocks off the canonical chain
    std::uint64_t stale_branches = 0; // stale leaves (distinct dead ends)
    std::uint64_t max_branch_depth = 0;
    std::map<std::uint64_t, std::uint64_t> branch_depths; // depth -> leaf count

    bool operator==(const BranchStats&) const = default;
};

/// Reference implementation: full walk over the chain store (recomputes the
/// canonical set via path_from_genesis and BFS-enumerates every block on each
/// call). Correct but O(blocks * height); kept as the oracle the incremental
/// ReorgMonitor is pinned against in tests/test_analytics.cpp.
BranchStats branch_stats_full_walk(const ledger::ChainStore& chain,
                                   const Hash256& tip);

/// Incremental reorg telemetry, fed from consensus::ChainEvents (a pure
/// observer of peer 0's chain). Maintains canonical-set membership in
/// O(reorg depth) per event and answers branch_stats() touching only the
/// stale region — no full chain walks. Also records the reorg *event*
/// telemetry only the event stream can provide: event count, depth
/// distribution, and blocks disconnected.
class ReorgMonitor {
public:
    /// `depth_histogram`, when given, receives every observed reorg depth
    /// (e.g. a registry histogram named consensus_reorg_depth).
    explicit ReorgMonitor(const Hash256& genesis,
                          obs::Histogram* depth_histogram = nullptr);

    // --- Feed (wire to NakamotoNetwork::events()) -------------------------------
    void on_block_inserted(const ledger::Block& block, SimTime at);
    void on_reorg(const std::vector<Hash256>& disconnected,
                  const std::vector<Hash256>& connected, SimTime at);

    // --- Queries ----------------------------------------------------------------
    /// Identical to branch_stats_full_walk over the observed chain.
    BranchStats branch_stats() const;

    std::uint64_t reorg_count() const { return reorg_count_; }
    std::uint64_t max_reorg_depth() const { return max_reorg_depth_; }
    std::uint64_t blocks_disconnected() const { return blocks_disconnected_; }
    /// Observed reorg depths: depth -> event count.
    const std::map<std::uint64_t, std::uint64_t>& reorg_depths() const {
        return reorg_depths_;
    }

private:
    bool is_canonical(const Hash256& hash) const {
        return known_.contains(hash) && !stale_.contains(hash);
    }

    std::unordered_map<Hash256, Hash256> known_; // block -> parent (incl. genesis)
    std::unordered_map<Hash256, std::uint32_t> child_count_;
    std::unordered_set<Hash256> stale_; // known blocks off the canonical chain
    std::uint64_t reorg_count_ = 0;
    std::uint64_t max_reorg_depth_ = 0;
    std::uint64_t blocks_disconnected_ = 0;
    std::map<std::uint64_t, std::uint64_t> reorg_depths_;
    obs::Histogram* depth_histogram_;
};

} // namespace dlt::app
