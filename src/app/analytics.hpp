// Analytics middleware (paper §5.2 closes its middleware list with
// "analytics"). Chain-level measurements over a ChainStore: miner concentration
// (the quantitative face of the D property), fee and volume statistics, block
// interval distribution, and reorg-depth telemetry.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "crypto/keys.hpp"
#include "ledger/chain.hpp"

namespace dlt::app {

struct MinerShare {
    crypto::Address miner;
    std::uint64_t blocks = 0;
    double share = 0;
};

struct ChainAnalytics {
    std::uint64_t height = 0;
    std::uint64_t total_blocks = 0;       // including stale branches
    std::uint64_t canonical_blocks = 0;
    std::uint64_t total_transactions = 0; // non-coinbase, canonical
    ledger::Amount total_fees = 0;        // declared fees, canonical
    double mean_block_interval = 0;
    double mean_txs_per_block = 0;
    std::vector<MinerShare> miners;       // sorted by share, descending

    /// Nakamoto coefficient: smallest number of miners controlling > 50% of
    /// canonical blocks — a standard decentralization metric (low = centralized).
    std::size_t nakamoto_coefficient() const;

    /// Gini coefficient over miner block counts (0 = perfectly equal).
    double miner_gini() const;
};

/// Analyze the chain ending at `tip`.
ChainAnalytics analyze_chain(const ledger::ChainStore& chain, const Hash256& tip);

} // namespace dlt::app
