// Adversarial scenario matrix (paper §3.1 dependability × §2.4 consensus):
// run the cross-product of consensus engine × attack strategy × fault plan ×
// offered load through one harness and score every cell on the same axes —
// safety violations, liveness gap, reconvergence time, confirmed throughput,
// mempool drop mix, and maximum reorg depth. The matrix is the repo's
// resilience regression surface: E27 sweeps it into a scorecard JSON, CI
// smoke-runs a slice of it, and every bug the composition flushed out is
// pinned by a regression test next to the fix.
//
// Engines reuse the real networks (NakamotoNetwork under longest-chain or
// GHOST, dag::DagNetwork under GHOSTDAG, PbftCluster); attacks reuse the
// consensus-layer drivers (consensus::SelfishMiner, consensus::EclipseAttack)
// plus the higher-layer compositions only this layer can build: fee-market
// spam floods via a second app::WorkloadEngine, and crash-during-reorg via a
// core::PersistentNode shadow replica whose WAL is cut mid-reorg by a
// storage::CrashInjector and recovered from disk.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace dlt::app {

/// Which consensus family executes a cell.
enum class ScenarioEngine : std::uint8_t {
    kNakamotoLongest = 0, // NakamotoNetwork, BranchRule::kLongestChain
    kGhost,               // NakamotoNetwork, BranchRule::kGhost
    kGhostDag,            // dag::DagNetwork (GHOSTDAG ordering)
    kPbft,                // PbftCluster (f = 1, n = 4)
};
inline constexpr std::size_t kScenarioEngineCount = 4;
const char* scenario_engine_name(ScenarioEngine e); // "nakamoto", "ghost", ...

/// Which adversarial composition runs against the engine. Each attack maps to
/// the engine-appropriate analogue (PBFT has no mining to withhold, so
/// kSelfish becomes an equivocating primary; kCrashReorg becomes fail-stop +
/// recovery of a replica, and so on) — the mapping is documented per cell
/// runner in scenario.cpp and in DESIGN.md's attack-strategy table.
enum class ScenarioAttack : std::uint8_t {
    kHonest = 0,  // baseline: faults off, everyone follows the protocol
    kSelfish,     // withhold/release mining (chains), burst release (DAG),
                  // equivocating primary (PBFT)
    kEclipse,     // partition-one-victim behind an adversarial bridge; PBFT:
                  // isolate one replica for a window
    kSpam,        // fee-market flood via a second WorkloadEngine (10× client
                  // flood for PBFT)
    kCrashReorg,  // partition → heal → crash the node mid-merge-reorg, WAL
                  // recovery through a PersistentNode shadow replica
};
inline constexpr std::size_t kScenarioAttackCount = 5;
const char* scenario_attack_name(ScenarioAttack a); // "honest", "selfish", ...

/// Shared knobs for every cell. Times are virtual seconds; fractions are of
/// `duration`. Defaults are sized so disruption windows stay *inside* the
/// finality depth of each engine — the acceptance bar is that eclipse and
/// crash cells end with zero safety violations after heal/recovery, which is
/// only a meaningful claim if the windows could not have exceeded k anyway.
struct ScenarioConfig {
    std::size_t node_count = 12;  // chain/DAG peers (PBFT is fixed at 3f+1)
    double block_interval = 20.0; // chains
    double record_interval = 5.0; // DAG
    double duration = 1200.0;     // attack/load window
    double tail = 400.0;          // post-window reconvergence allowance
    double pbft_duration = 300.0; // PBFT cells commit in ms, not minutes
    std::uint64_t finality_depth = 6;      // k for chains (reorg > k = unsafe)
    std::uint64_t dag_finality_depth = 32; // relinearization-depth bound
    std::uint64_t seed = 2027;

    /// Selfish miner: hash share of the attacker (> ~1/3 so the revenue
    /// superlinearity is visible) and its node id.
    double selfish_hash_share = 0.40;
    /// Selfish chain cells run `duration × this` so the revenue share is a
    /// statistic, not a coin flip: at ~60 blocks the realized share of an
    /// α = 0.40 selfish miner spans 0.17–0.47 across seeds; at ~700 blocks it
    /// concentrates near the Eyal–Sirer prediction (≈ 0.49 for longest-chain).
    /// GHOST stays damped even at this length — stale honest siblings keep
    /// their subtree weight, which is the point of the rule.
    double selfish_duration_multiplier = 12.0;
    net::NodeId attacker = 1;
    net::NodeId victim = 2;

    /// Eclipse: attacker hash share (enough to grow a short private fork for
    /// the victim) and the disruption window.
    double eclipse_hash_share = 0.25;
    double eclipse_start_frac = 0.45;
    double eclipse_end_frac = 0.55;

    /// Spam flood: adversarial offered load and fee bid over the window.
    double spam_tps = 50.0;
    double spam_fee_rate = 6.0;
    double spam_start_frac = 0.25;
    double spam_end_frac = 0.75;

    /// Crash-during-reorg: cut at `crash_cut_frac`, heal after
    /// `crash_partition_intervals` block intervals; the victim is crashed just
    /// before the heal and recovered two intervals after it, so its catch-up
    /// reorg happens immediately post-recovery — which is when the shadow
    /// replica's WAL is cut.
    double crash_cut_frac = 0.30;
    double crash_partition_intervals = 8.0;
    /// Injector byte budget for the shadow WAL cut (dies mid-batch).
    std::uint64_t crash_wal_budget = 600;

    /// PBFT offered load is `load × pbft_load_multiplier` requests/s (BFT
    /// ordering runs orders of magnitude faster than PoW confirmation).
    double pbft_load_multiplier = 10.0;

    /// Where the crash-reorg shadow replica persists. Empty → "e27_shadow"
    /// under the working directory. Wiped per cell.
    std::string shadow_dir;

    /// Honest demand shape (population-scale fee-bidding agents).
    std::uint64_t population = 50'000;
    std::uint32_t submit_nodes = 4;
};

/// One cell of the matrix, scored on the shared resilience axes. Everything
/// here is virtual-time or count data — no wall-clock values — so reruns and
/// DLT_THREADS sweeps produce byte-identical scorecards.
struct CellResult {
    ScenarioEngine engine{};
    ScenarioAttack attack{};
    double load_level = 0; // requested level (chains/DAG tps; PBFT ×multiplier)
    double offered_tps = 0; // actual offered rate after engine mapping

    /// Finality breaches: reorgs deeper than the engine's k, plus end-of-run
    /// finalized-prefix conflicts across peers (each conflicting peer counts).
    std::uint64_t safety_violations = 0;
    /// Longest interval (s) any peer went without its tip/order/log advancing.
    double liveness_gap_s = 0;
    /// Disruption-end → first global convergence (s); 0 when the cell has no
    /// divergence window; -1 when the network never reconverged in the tail.
    double reconvergence_s = 0;
    bool converged = false; // all peers agree at end of run
    double confirmed_tps = 0;
    std::uint64_t max_reorg_depth = 0; // deepest disconnect (relinearization
                                       // suffix for DAG; 0 for PBFT)
    std::uint64_t reorgs = 0;          // chain reorgs / relinearizations /
                                       // PBFT view changes
    /// Observed replica's mempool shed mix (zeros for PBFT).
    std::uint64_t drops_evicted = 0;
    std::uint64_t drops_expired = 0;
    std::uint64_t drops_replaced = 0;
    std::uint64_t admission_queue_full = 0;

    /// Selfish cells: canonical-chain revenue share vs hash share.
    double attacker_revenue_share = 0;
    double attacker_hash_share = 0;
    std::uint64_t fork_blocks = 0; // blocks/records withheld by the attacker

    /// Crash-reorg cells: shadow-replica recovery evidence.
    std::uint64_t shadow_wal_replayed = 0;
    std::uint64_t shadow_recoveries = 0;
    bool shadow_consistent = true; // recovered tip == simulated node's tip

    /// Engine-specific end-state digest (tip hash / order digest / log hash):
    /// the determinism probe CI diffs across reruns and thread counts.
    std::string digest;
};

/// Run one cell. `load_level` is the demand knob the matrix sweeps; chains
/// and the DAG offer it as tx/s, PBFT multiplies it by pbft_load_multiplier.
CellResult run_scenario_cell(const ScenarioConfig& cfg, ScenarioEngine engine,
                             ScenarioAttack attack, double load_level);

/// Sweep the full cross-product (row-major: engine, then attack, then load).
std::vector<CellResult> run_scenario_matrix(const ScenarioConfig& cfg,
                                            const std::vector<ScenarioEngine>& engines,
                                            const std::vector<ScenarioAttack>& attacks,
                                            const std::vector<double>& loads);

} // namespace dlt::app
