#include "app/dataintegration.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace dlt::app {

Hash256 SensorReading::digest() const {
    Writer w;
    w.str(sensor_id);
    w.f64(value);
    w.f64(timestamp);
    return crypto::tagged_hash("dlt/sensor-reading", w.data());
}

SensorGateway::SensorGateway(std::size_t window, double outlier_factor)
    : window_(window), outlier_factor_(outlier_factor) {
    DLT_EXPECTS(window >= 4);
    DLT_EXPECTS(outlier_factor > 0);
}

void SensorGateway::register_sensor(const std::string& sensor_id,
                                    const crypto::PublicKey& key) {
    sensors_.emplace(sensor_id, SensorState{key, {}});
}

SensorReading SensorGateway::make_signed_reading(const std::string& sensor_id,
                                                 double value, double timestamp,
                                                 const crypto::PrivateKey& key) {
    SensorReading reading{sensor_id, value, timestamp, {}};
    reading.signature = key.sign(reading.digest()).encode();
    return reading;
}

namespace {
double median(std::vector<double> values) {
    DLT_EXPECTS(!values.empty());
    std::sort(values.begin(), values.end());
    const std::size_t mid = values.size() / 2;
    if (values.size() % 2 == 1) return values[mid];
    return (values[mid - 1] + values[mid]) / 2.0;
}
} // namespace

IngestResult SensorGateway::ingest(const SensorReading& reading) {
    const auto it = sensors_.find(reading.sensor_id);
    if (it == sensors_.end()) return {ReadingStatus::kUnknownSensor, 0};

    // Authenticate: tampered values or impersonation fail here.
    try {
        if (!it->second.key.verify(reading.digest(),
                                   crypto::secp256k1::Signature::decode(
                                       reading.signature)))
            return {ReadingStatus::kBadSignature, 0};
    } catch (const Error&) {
        return {ReadingStatus::kBadSignature, 0};
    }

    SensorState& state = it->second;
    IngestResult result;

    if (state.window.size() >= 4) {
        std::vector<double> window(state.window.begin(), state.window.end());
        const double med = median(window);
        std::vector<double> deviations;
        deviations.reserve(window.size());
        for (const double v : window) deviations.push_back(std::abs(v - med));
        const double mad = std::max(median(deviations), 1e-9);
        result.deviation = std::abs(reading.value - med) / mad;
        if (result.deviation > outlier_factor_) {
            result.status = ReadingStatus::kOutlier;
            ++pending_flagged_;
        }
    }

    state.window.push_back(reading.value);
    if (state.window.size() > window_) state.window.pop_front();

    // Accepted (possibly flagged) readings are anchored either way: the chain
    // records what the sensor reported; the flag records what physics thought.
    pending_.push_back(reading.digest());
    return result;
}

ReadingBatch SensorGateway::seal_batch() {
    ReadingBatch batch;
    batch.leaves = std::move(pending_);
    pending_.clear();
    batch.flagged = pending_flagged_;
    pending_flagged_ = 0;
    batch.root = datastruct::merkle_root(batch.leaves);
    return batch;
}

bool SensorGateway::verify_anchored(const SensorReading& reading,
                                    const datastruct::MerkleProof& proof,
                                    const Hash256& anchored_root) {
    return datastruct::merkle_root_from_proof(reading.digest(), proof) ==
           anchored_root;
}

datastruct::MerkleProof SensorGateway::prove_in_batch(const ReadingBatch& batch,
                                                      std::size_t index) {
    const datastruct::MerkleTree tree(batch.leaves);
    return tree.prove(index);
}

} // namespace dlt::app
