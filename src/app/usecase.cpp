#include "app/usecase.hpp"

namespace dlt::app {

namespace {

bool any_untrusted_maintainer(const UseCase& uc) {
    for (const auto& actor : uc.actors) {
        for (const auto perm : actor.permissions) {
            if (perm == Permission::kMaintainLedger && !actor.trusted) return true;
        }
    }
    return false;
}

bool has_confidential_objects(const UseCase& uc) {
    for (const auto& obj : uc.data_objects)
        if (obj.confidential) return true;
    return false;
}

bool has_offchain_objects(const UseCase& uc) {
    for (const auto& obj : uc.data_objects)
        if (!obj.on_chain) return true;
    return false;
}

} // namespace

Recommendation recommend(const UseCase& uc) {
    Recommendation rec;

    const bool trustless = any_untrusted_maintainer(uc);
    const double tps = uc.performance.expected_tps;
    const double latency = uc.performance.max_latency_seconds;

    if (trustless) {
        // Decentralization is non-negotiable: proof-based public consensus.
        rec.rationale.push_back(
            "untrusted ledger maintainers -> public proof-based consensus (D)");
        if (latency < 600) {
            rec.spec = core::ChainSpec::ethereum_like();
            rec.rationale.push_back(
                "sub-10-minute confirmations -> short blocks with GHOST");
        } else {
            rec.spec = core::ChainSpec::bitcoin_like();
            rec.rationale.push_back("modest workload -> Nakamoto consensus suffices");
        }
        // Feasibility check (§5.1: requirements must be satisfiable): if the
        // offered load exceeds the chosen chain's block capacity, escalate to
        // the higher-throughput public option.
        const double capacity = static_cast<double>(rec.spec.txs_per_block()) /
                                rec.spec.block_interval;
        const double pos_capacity =
            static_cast<double>(core::ChainSpec::pos_chain().txs_per_block()) /
            core::ChainSpec::pos_chain().block_interval;
        if (tps > 0.8 * capacity || latency < 60) {
            if (tps > 0.8 * pos_capacity)
                rec.rationale.push_back(
                    "WARNING: load exceeds every public option; expect saturation "
                    "or add off-chain scaling");
            rec.spec = core::ChainSpec::pos_chain();
            rec.rationale.push_back(
                "throughput/latency beyond PoW block capacity -> proof-of-stake "
                "with short slots");
        }
    } else {
        rec.rationale.push_back(
            "all maintainers are known/trusted -> permissioned consortium (CS)");
        if (uc.actors.size() <= 16 && tps > 1000) {
            rec.spec = core::ChainSpec::hyperledger_like();
            rec.rationale.push_back(
                "small consortium, high throughput -> ordering service");
        } else {
            rec.spec = core::ChainSpec::pbft_cluster();
            rec.rationale.push_back(
                "Byzantine members possible inside the consortium -> PBFT quorum");
        }
    }

    if (has_confidential_objects(uc)) {
        rec.needs_multichannel = true;
        rec.rationale.push_back(
            "confidential data objects -> multi-channel privacy domains (§5.3)");
    }
    if (has_offchain_objects(uc)) {
        rec.needs_offchain_store = true;
        rec.rationale.push_back(
            "bulky/off-chain data objects -> off-chain store with on-chain digests "
            "(§4.5)");
    }
    if (latency < rec.spec.block_interval) {
        rec.needs_payment_channels = true;
        rec.rationale.push_back(
            "latency requirement below the block interval -> off-chain payment "
            "channels (§5.4)");
    }

    rec.spec.name = uc.name + "/" + rec.spec.name;
    return rec;
}

UseCase cryptocurrency_usecase() {
    UseCase uc;
    uc.name = "open-cryptocurrency";
    uc.intent = "peer-to-peer electronic cash without a trusted third party";
    uc.generation = Generation::kCryptocurrency;
    uc.actors = {
        Actor{"wallet-user", false, {Permission::kSubmitTransactions}},
        Actor{"miner", false, {Permission::kMaintainLedger}},
        Actor{"exchange", false,
              {Permission::kSubmitTransactions, Permission::kQueryOnly}},
    };
    uc.data_objects = {DataObject{"payments", true, false}};
    // Offered load sits under Bitcoin's ~6.7 tps capacity (the paper's §2.7
    // figure); pushing the requirement to 7+ makes plain PoW infeasible and the
    // recommender escalates to PoS.
    uc.performance = {100000, 5.0, 3600.0, 1.3};
    return uc;
}

UseCase crowdfunding_usecase() {
    UseCase uc;
    uc.name = "crowdfunding-dapp";
    uc.intent = "trustless fundraising with automatic refunds";
    uc.generation = Generation::kDApps;
    uc.uses_smart_contracts = true;
    uc.actors = {
        Actor{"campaign-owner", false,
              {Permission::kCreateContracts, Permission::kSubmitTransactions}},
        Actor{"donor", false, {Permission::kSubmitTransactions}},
        Actor{"validator", false, {Permission::kMaintainLedger}},
    };
    uc.data_objects = {DataObject{"pledges", true, false},
                       DataObject{"campaign-media", false, false}};
    uc.performance = {10000, 50.0, 120.0, 2.0};
    return uc;
}

UseCase supply_chain_usecase() {
    UseCase uc;
    uc.name = "supply-chain";
    uc.intent = "end-to-end provenance across a manufacturer consortium";
    uc.generation = Generation::kPervasive;
    uc.uses_smart_contracts = true;
    uc.actors = {
        Actor{"manufacturer", true,
              {Permission::kMaintainLedger, Permission::kSubmitTransactions,
               Permission::kCreateContracts}},
        Actor{"carrier", true, {Permission::kSubmitTransactions}},
        Actor{"retailer", true,
              {Permission::kMaintainLedger, Permission::kSubmitTransactions}},
        Actor{"iot-sensor", true, {Permission::kSubmitTransactions}},
        Actor{"auditor", true, {Permission::kQueryOnly}},
    };
    uc.data_objects = {DataObject{"shipment-events", true, false},
                       DataObject{"sensor-telemetry", false, false},
                       DataObject{"pricing-terms", true, true}};
    uc.performance = {50, 2000.0, 2.0, 1.8};
    return uc;
}

UseCase land_registry_usecase() {
    UseCase uc;
    uc.name = "land-registry";
    uc.intent = "tamper-evident public record of land titles";
    uc.generation = Generation::kPervasive;
    uc.uses_smart_contracts = true;
    uc.actors = {
        Actor{"registry-office", true,
              {Permission::kMaintainLedger, Permission::kCreateContracts}},
        Actor{"notary", true, {Permission::kSubmitTransactions}},
        Actor{"bank", true,
              {Permission::kMaintainLedger, Permission::kSubmitTransactions}},
        Actor{"citizen", false, {Permission::kQueryOnly}},
    };
    uc.data_objects = {DataObject{"title-transfers", true, false},
                       DataObject{"deeds-scans", false, false}};
    uc.performance = {20, 100.0, 30.0, 1.1};
    return uc;
}

UseCase ehealth_usecase() {
    UseCase uc;
    uc.name = "ehealth-records";
    uc.intent = "patient-consented sharing of medical records across providers";
    uc.generation = Generation::kPervasive;
    uc.uses_smart_contracts = true;
    uc.actors = {
        Actor{"hospital", true,
              {Permission::kMaintainLedger, Permission::kSubmitTransactions}},
        Actor{"clinic", true, {Permission::kSubmitTransactions}},
        Actor{"insurer", true, {Permission::kQueryOnly}},
        Actor{"patient", false, {Permission::kQueryOnly}},
    };
    uc.data_objects = {DataObject{"consent-grants", true, true},
                       DataObject{"medical-images", false, true},
                       DataObject{"access-audit-log", true, false}};
    uc.performance = {100, 500.0, 5.0, 1.4};
    return uc;
}

const char* generation_name(Generation g) {
    switch (g) {
        case Generation::kCryptocurrency: return "Blockchain 1.0 (cryptocurrency)";
        case Generation::kDApps: return "Blockchain 2.0 (DApps)";
        case Generation::kPervasive: return "Blockchain 3.0 (pervasive)";
    }
    return "?";
}

} // namespace dlt::app
