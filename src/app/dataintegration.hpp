// Data-integration middleware for physical sources (paper §5.2: 3.0
// applications "require a data integration service which takes into account
// the constraints of the physical world. For instance, real-life sensors can
// be tampered with or produce inaccurate readings, which must be taken into
// account when stored on the blockchain"). Sensors sign their readings; the
// gateway authenticates, median-filters a sliding window to flag outliers, and
// anchors accepted batches on-chain as Merkle digests so auditors can verify
// any individual reading later.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/keys.hpp"
#include "datastruct/merkle.hpp"

namespace dlt::app {

struct SensorReading {
    std::string sensor_id;
    double value = 0;
    double timestamp = 0;
    Bytes signature; // by the sensor's registered key

    /// The digest the sensor signs (and the Merkle leaf for anchoring).
    Hash256 digest() const;
};

enum class ReadingStatus {
    kAccepted,
    kBadSignature,   // tampered or impersonated
    kUnknownSensor,
    kOutlier,        // accepted into the log but flagged (physical-world noise)
};

struct IngestResult {
    ReadingStatus status = ReadingStatus::kAccepted;
    double deviation = 0; // distance from the window median, in medians
};

/// An anchored batch: the Merkle root of accepted reading digests.
struct ReadingBatch {
    Hash256 root;
    std::vector<Hash256> leaves;
    std::size_t flagged = 0;
};

class SensorGateway {
public:
    /// `window` readings per sensor feed the outlier filter; a reading more
    /// than `outlier_factor` x the median absolute deviation from the window
    /// median is flagged.
    SensorGateway(std::size_t window = 16, double outlier_factor = 5.0);

    /// Register a sensor's public key (installation-time provisioning).
    void register_sensor(const std::string& sensor_id, const crypto::PublicKey& key);

    /// Build a signed reading (what firmware on the sensor would do).
    static SensorReading make_signed_reading(const std::string& sensor_id,
                                             double value, double timestamp,
                                             const crypto::PrivateKey& key);

    /// Authenticate + filter one reading.
    IngestResult ingest(const SensorReading& reading);

    /// Seal the pending accepted readings into an anchorable batch.
    ReadingBatch seal_batch();

    /// Verify that a reading is covered by an anchored batch root.
    static bool verify_anchored(const SensorReading& reading,
                                const datastruct::MerkleProof& proof,
                                const Hash256& anchored_root);

    /// Produce the inclusion proof for leaf `index` of a batch.
    static datastruct::MerkleProof prove_in_batch(const ReadingBatch& batch,
                                                  std::size_t index);

    std::size_t accepted_count() const { return pending_.size(); }

private:
    struct SensorState {
        crypto::PublicKey key;
        std::deque<double> window;
    };

    std::size_t window_;
    double outlier_factor_;
    std::map<std::string, SensorState> sensors_;
    std::vector<Hash256> pending_;
    std::size_t pending_flagged_ = 0;
};

} // namespace dlt::app
