#include "app/identity.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace dlt::app {

Hash256 identity_op_digest(std::string_view op, const std::string& name,
                           ByteView payload) {
    Writer w;
    w.str(std::string(op));
    w.str(name);
    w.blob(payload);
    return crypto::tagged_hash("dlt/identity", w.data());
}

void IdentityRegistry::register_name(const std::string& name,
                                     const crypto::PrivateKey& key) {
    if (name.empty()) throw ValidationError("identity: empty name");
    if (records_.contains(name)) throw ValidationError("identity: name taken");

    const Bytes pubkey = key.public_key().encode();
    // Self-signed registration: proves possession of the private key.
    const Hash256 digest = identity_op_digest("register", name, pubkey);
    const auto signature = key.sign(digest);
    if (!key.public_key().verify(digest, signature))
        throw ValidationError("identity: self-signature failed");

    records_.emplace(name, IdentityRecord{name, pubkey, 1, false});
}

const IdentityRecord* IdentityRegistry::active_record(const std::string& name) const {
    const auto it = records_.find(name);
    if (it == records_.end() || it->second.revoked) return nullptr;
    return &it->second;
}

void IdentityRegistry::rotate_key(const std::string& name,
                                  const crypto::PrivateKey& old_key,
                                  const crypto::PublicKey& new_key) {
    const auto it = records_.find(name);
    if (it == records_.end()) throw ValidationError("identity: unknown name");
    if (it->second.revoked) throw ValidationError("identity: revoked");
    if (old_key.public_key().encode() != it->second.pubkey)
        throw ValidationError("identity: rotation not signed by the current key");

    // The old key signs the new pubkey: a verifiable chain of custody.
    const Bytes new_pub = new_key.encode();
    const Hash256 digest = identity_op_digest("rotate", name, new_pub);
    const auto signature = old_key.sign(digest);
    const crypto::PublicKey current = crypto::PublicKey::decode(it->second.pubkey);
    if (!current.verify(digest, signature))
        throw ValidationError("identity: rotation proof invalid");

    it->second.pubkey = new_pub;
    ++it->second.version;
}

void IdentityRegistry::revoke(const std::string& name, const crypto::PrivateKey& key) {
    const auto it = records_.find(name);
    if (it == records_.end()) throw ValidationError("identity: unknown name");
    if (it->second.revoked) throw ValidationError("identity: already revoked");
    if (key.public_key().encode() != it->second.pubkey)
        throw ValidationError("identity: revocation not signed by the current key");
    it->second.revoked = true;
}

std::optional<IdentityRecord> IdentityRegistry::lookup(const std::string& name) const {
    const auto it = records_.find(name);
    if (it == records_.end()) return std::nullopt;
    return it->second;
}

std::optional<crypto::Address> IdentityRegistry::resolve(const std::string& name) const {
    const IdentityRecord* record = active_record(name);
    if (record == nullptr) return std::nullopt;
    return crypto::PublicKey::decode(record->pubkey).address();
}

bool IdentityRegistry::verify_as(const std::string& name, const Hash256& message_hash,
                                 const crypto::secp256k1::Signature& signature) const {
    const IdentityRecord* record = active_record(name);
    if (record == nullptr) return false;
    try {
        return crypto::PublicKey::decode(record->pubkey).verify(message_hash, signature);
    } catch (const CryptoError&) {
        return false;
    }
}

} // namespace dlt::app
