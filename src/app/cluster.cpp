#include "app/cluster.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace dlt::app {

using net::transport::FrameDecoder;
using net::transport::FrameKind;

namespace {

/// Ask the kernel for a currently free loopback port. The tiny window between
/// closing this probe socket and the daemon binding it is acceptable for a
/// single-host test harness (SO_REUSEADDR smooths over TIME_WAIT).
std::uint16_t free_port() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw Error("cluster: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw Error("cluster: bind() failed while probing for a free port");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ::close(fd);
    return ntohs(addr.sin_port);
}

double monotonic_now() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

// --- RpcClient --------------------------------------------------------------

RpcClient::RpcClient(RpcClient&& other) noexcept
    : fd_(other.fd_), decoder_(std::move(other.decoder_)) {
    other.fd_ = -1;
}

RpcClient& RpcClient::operator=(RpcClient&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        decoder_ = std::move(other.decoder_);
        other.fd_ = -1;
    }
    return *this;
}

bool RpcClient::connect(const std::string& host, std::uint16_t port,
                        double timeout_s) {
    close();
    const double deadline = monotonic_now() + timeout_s;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
    while (monotonic_now() < deadline) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return false;
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            fd_ = fd;
            decoder_ = FrameDecoder();
            return true;
        }
        ::close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return false;
}

void RpcClient::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::optional<Bytes> RpcClient::request(const std::string& topic, ByteView body) {
    if (fd_ < 0) return std::nullopt;
    const Bytes out = net::transport::encode_message_frame(topic, body);
    std::size_t off = 0;
    while (off < out.size()) {
        const ssize_t n =
            ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            close();
            return std::nullopt;
        }
        off += static_cast<std::size_t>(n);
    }
    std::uint8_t buf[65536];
    while (true) {
        try {
            if (auto frame = decoder_.next()) {
                if (frame->kind != FrameKind::kMessage) {
                    close();
                    return std::nullopt;
                }
                auto msg =
                    net::transport::decode_message_payload(ByteView(frame->payload));
                return std::move(msg.body);
            }
        } catch (const DecodeError&) {
            close();
            return std::nullopt;
        }
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            close();
            return std::nullopt;
        }
        decoder_.feed(ByteView(buf, static_cast<std::size_t>(n)));
    }
}

bool RpcClient::submit(const ledger::Transaction& tx) {
    const auto reply = request("submit", ByteView(encode_to_bytes(tx)));
    return reply && !reply->empty() && (*reply)[0] == 1;
}

std::optional<NodeStatus> RpcClient::status() {
    const auto reply = request("status", ByteView());
    if (!reply) return std::nullopt;
    try {
        Reader r{ByteView(*reply)};
        NodeStatus s;
        s.height = r.u64();
        s.tip = r.fixed<32>();
        s.confirmed_txs = r.u64();
        s.mempool_size = r.u64();
        s.connected_peers = r.u32();
        s.clock = r.f64();
        r.expect_done();
        return s;
    } catch (const DecodeError&) {
        return std::nullopt;
    }
}

std::vector<double> RpcClient::latencies() {
    const auto reply = request("latencies", ByteView());
    if (!reply) return {};
    try {
        Reader r{ByteView(*reply)};
        const std::uint64_t n = r.varint_count(8);
        std::vector<double> out;
        out.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.f64());
        r.expect_done();
        return out;
    } catch (const DecodeError&) {
        return {};
    }
}

std::string RpcClient::metrics_json() {
    const auto reply = request("metrics", ByteView());
    if (!reply) return {};
    try {
        Reader r{ByteView(*reply)};
        std::string text = r.str();
        r.expect_done();
        return text;
    } catch (const DecodeError&) {
        return {};
    }
}

bool RpcClient::shutdown_node() {
    const auto reply = request("shutdown", ByteView());
    close();
    return reply && !reply->empty() && (*reply)[0] == 1;
}

// --- ClusterDriver ----------------------------------------------------------

ClusterDriver::ClusterDriver(ClusterConfig config) : config_(std::move(config)) {
    if (config_.node_count == 0)
        throw ValidationError("cluster: node_count must be positive");
    if (config_.work_dir.empty())
        throw ValidationError("cluster: work_dir must be set");
}

ClusterDriver::~ClusterDriver() {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].pid > 0) {
            ::kill(nodes_[i].pid, SIGKILL);
            wait_node(i);
        }
    }
}

std::string ClusterDriver::resolve_binary() const {
    if (!config_.node_binary.empty()) return config_.node_binary;
    if (const char* env = std::getenv("DLT_NODE_BIN"); env != nullptr && *env != 0)
        return env;
    for (const char* candidate :
         {"examples/dlt-node", "./dlt-node", "../examples/dlt-node",
          "build/examples/dlt-node"}) {
        if (::access(candidate, X_OK) == 0) return candidate;
    }
    throw Error(
        "cluster: dlt-node binary not found (set DLT_NODE_BIN or "
        "ClusterConfig::node_binary)");
}

void ClusterDriver::start() {
    DLT_EXPECTS(nodes_.empty());
    std::filesystem::create_directories(config_.work_dir);
    nodes_.resize(config_.node_count);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        nodes_[i].listen_port = free_port();
        nodes_[i].rpc_port = free_port();
        nodes_[i].dir = config_.work_dir / ("node" + std::to_string(i));
        std::filesystem::create_directories(nodes_[i].dir);
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) spawn(i);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (!nodes_[i].client.connect("127.0.0.1", nodes_[i].rpc_port, 10.0))
            throw Error("cluster: node " + std::to_string(i) +
                        " RPC did not come up");
    }
}

void ClusterDriver::spawn(std::size_t node) {
    Node& n = nodes_.at(node);
    DLT_EXPECTS(n.pid <= 0);
    const std::string binary = resolve_binary();

    std::vector<std::string> args;
    args.push_back(binary);
    args.push_back("--id");
    args.push_back(std::to_string(node));
    args.push_back("--data");
    args.push_back(n.dir.string());
    args.push_back("--listen");
    args.push_back("127.0.0.1:" + std::to_string(n.listen_port));
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
        if (j == node) continue;
        args.push_back("--peer");
        args.push_back(std::to_string(j) + "=127.0.0.1:" +
                       std::to_string(nodes_[j].listen_port));
    }
    args.push_back("--rpc-port");
    args.push_back(std::to_string(n.rpc_port));
    args.push_back("--engine");
    args.push_back(config_.engine == core::ReplicaEngine::kNakamoto ? "nakamoto"
                                                                    : "pbft");
    args.push_back("--nodes");
    args.push_back(std::to_string(nodes_.size()));
    args.push_back("--interval");
    args.push_back(std::to_string(config_.block_interval));
    args.push_back("--seed");
    args.push_back(std::to_string(config_.seed));
    args.push_back("--state");
    args.push_back(config_.lsm_state ? "lsm" : "mem");
    args.push_back("--chain-tag");
    args.push_back(config_.chain_tag);
    args.push_back("--sync-interval");
    args.push_back(std::to_string(config_.sync_interval));

    const int pid = ::fork();
    if (pid < 0) throw Error("cluster: fork() failed");
    if (pid == 0) {
        // Child: route stdout/stderr to a per-node log, then exec.
        const std::string log = (n.dir / "node.log").string();
        const int log_fd =
            ::open(log.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
        if (log_fd >= 0) {
            ::dup2(log_fd, STDOUT_FILENO);
            ::dup2(log_fd, STDERR_FILENO);
            ::close(log_fd);
        }
        std::vector<char*> argv;
        argv.reserve(args.size() + 1);
        for (std::string& a : args) argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(binary.c_str(), argv.data());
        ::_exit(127); // exec failed
    }
    n.pid = pid;
}

RpcClient& ClusterDriver::rpc(std::size_t node) {
    Node& n = nodes_.at(node);
    if (!n.client.connected())
        n.client.connect("127.0.0.1", n.rpc_port, 10.0);
    return n.client;
}

void ClusterDriver::signal_node(std::size_t node, int sig) {
    const Node& n = nodes_.at(node);
    DLT_EXPECTS(n.pid > 0);
    ::kill(n.pid, sig);
}

int ClusterDriver::wait_node(std::size_t node) {
    Node& n = nodes_.at(node);
    DLT_EXPECTS(n.pid > 0);
    int status = 0;
    while (::waitpid(n.pid, &status, 0) < 0 && errno == EINTR) {
    }
    n.pid = -1;
    n.client.close();
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return -WTERMSIG(status);
    return -1;
}

void ClusterDriver::restart_node(std::size_t node) {
    spawn(node);
    Node& n = nodes_.at(node);
    if (!n.client.connect("127.0.0.1", n.rpc_port, 10.0))
        throw Error("cluster: node " + std::to_string(node) +
                    " RPC did not come back after restart");
}

std::vector<int> ClusterDriver::stop_all() {
    std::vector<int> codes(nodes_.size(), -1);
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i].pid > 0) rpc(i).shutdown_node();
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i].pid > 0) codes[i] = wait_node(i);
    return codes;
}

} // namespace dlt::app
