// Population-scale demand generator: millions of lightweight user agents
// submitting fee-bidding transactions into the Nakamoto network (the demand
// side of the paper's 7-vs-10K tps tension, §2.4/§4). The engine is O(1)
// memory per *inactive* agent — agent identity, activity rank, and bidding
// profile are all derived by hashing the agent id, so a 10-million-user
// population costs nothing until an agent actually transacts.
//
//   activity skew   -> Zipf(s) over the population via rejection-inversion
//                      sampling (Hörmann & Derflinger; the algorithm behind
//                      commons-math's RejectionInversionZipfSampler): O(1)
//                      per draw, no per-rank tables
//   arrival process -> inhomogeneous Poisson by thinning: a homogeneous
//                      peak-rate stream accepted with probability
//                      rate(t)/peak, giving diurnal sinusoid + square bursts
//   contention      -> a small set of hot shared accounts (exchange wallets,
//                      popular contracts) whose (sender, nonce) slots collide,
//                      exercising the mempool's conflict/RBF machinery — the
//                      account-model analogue of hot-UTXO contention
//   fee bidding     -> per-agent strategy (minimal / static / market-follower
//                      / urgent-bumper); followers query the observed
//                      mempool's fee_rate_floor() like a wallet fee estimator
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "consensus/nakamoto.hpp"
#include "sim/scheduler.hpp"

namespace dlt::app {

/// The minimal surface the workload engine needs from a transaction host:
/// virtual time, a fee market to observe, and a submission entry point. Any
/// consensus family with the NakamotoNetwork-style surface satisfies it via
/// TxHostFor — the engine itself stays consensus-agnostic, so the same
/// million-user demand stream drives chains and the DAG ledger alike (E26's
/// apples-to-apples requirement).
class TxHost {
public:
    virtual ~TxHost() = default;
    virtual sim::Scheduler& scheduler() = 0;
    virtual const ledger::Mempool& mempool_of(net::NodeId node) const = 0;
    virtual void submit_transaction(const ledger::Transaction& tx,
                                    net::NodeId origin) = 0;
};

/// Adapter binding TxHost to any network exposing scheduler() / mempool_of()
/// / submit_transaction() — NakamotoNetwork, consensus::dag::DagNetwork, ...
template <typename Net>
class TxHostFor final : public TxHost {
public:
    explicit TxHostFor(Net& net) : net_(net) {}
    sim::Scheduler& scheduler() override { return net_.scheduler(); }
    const ledger::Mempool& mempool_of(net::NodeId node) const override {
        return net_.mempool_of(node);
    }
    void submit_transaction(const ledger::Transaction& tx,
                            net::NodeId origin) override {
        net_.submit_transaction(tx, origin);
    }

private:
    Net& net_;
};

/// Zipf-distributed ranks in [1, n] by rejection-inversion sampling; O(1)
/// state and O(1) expected work per draw for any population size.
class ZipfSampler {
public:
    /// `num_elements` ranks, skew `exponent` > 0 (1.0 = classic Zipf).
    ZipfSampler(std::uint64_t num_elements, double exponent);

    /// Draw a rank in [1, num_elements]; rank 1 is the most active.
    std::uint64_t sample(Rng& rng) const;

private:
    double h_integral(double x) const;
    double h(double x) const;
    double h_integral_inverse(double x) const;
    static double helper1(double x); // log1p(x)/x, stable near 0
    static double helper2(double x); // expm1(x)/x, stable near 0

    std::uint64_t n_;
    double exponent_;
    double h_integral_x1_;
    double h_integral_n_;
    double s_;
};

/// How an agent prices its transactions (who wins when block space is scarce).
enum class FeeStrategy : std::uint8_t {
    kMinimal = 0,    // always bids the relay floor
    kStatic,         // fixed personal feerate, ignores the market
    kMarketFollower, // queries the mempool floor and bids a margin above it
    kUrgentBumper,   // bids high; re-bids (RBF) if still unconfirmed
};
inline constexpr std::size_t kFeeStrategyCount = 4;
const char* fee_strategy_name(FeeStrategy s);

/// Derived (not stored) per-agent bidding profile.
struct AgentProfile {
    FeeStrategy strategy = FeeStrategy::kStatic;
    /// Strategy-specific aggressiveness in [0, 1) (static level, follower
    /// margin, bumper patience).
    double aggression = 0;
};

struct WorkloadParams {
    /// Distinct user agents; memory scales with *active* agents only.
    std::uint64_t population = 1'000'000;
    /// Zipf activity skew (> 0); ~1.1 matches observed blockchain usage.
    double zipf_exponent = 1.1;
    /// Mean offered load (tx/s of virtual time) before modulation.
    double base_tps = 10'000;

    /// Diurnal sinusoid: rate *= 1 + amplitude * sin(2π t / period).
    double diurnal_amplitude = 0.0; // 0 disables
    double diurnal_period = 86'400.0;
    /// Square-wave bursts: every `burst_every` seconds the rate multiplies by
    /// `burst_multiplier` for `burst_duration` seconds. 0 disables.
    double burst_every = 0.0;
    double burst_duration = 0.0;
    double burst_multiplier = 1.0;

    /// Hot shared accounts (exchange wallets / popular contracts): a fraction
    /// of traffic targets one of `hot_accounts` senders whose nonce slots
    /// deliberately collide, forcing conflict/RBF resolution in the mempool.
    std::uint64_t hot_accounts = 0;
    double hot_fraction = 0.0;
    /// Probability a colliding hot-account bid re-bids above the incumbent
    /// (an RBF attempt) instead of bidding blind.
    double rbf_bump_fraction = 0.5;

    /// Record payload bytes per transaction.
    std::size_t payload_bytes = 96;

    /// Discrete feerate menu (real wallets quantize; ties exercise the
    /// index's tie-breaking): `fee_levels` levels spanning [min, max].
    double min_fee_rate = 0.5;
    double max_fee_rate = 8.0;
    std::uint64_t fee_levels = 32;

    /// Submissions are spread uniformly over the first `submit_nodes` peers.
    std::uint32_t submit_nodes = 1;
};

struct WorkloadStats {
    std::uint64_t submitted = 0;      // transactions handed to the network
    std::uint64_t thinned = 0;        // arrivals rejected by rate thinning
    std::uint64_t hot_submissions = 0;
    std::uint64_t rbf_bids = 0;       // deliberate conflicting re-bids
    std::uint64_t distinct_agents = 0;
};

/// One submitted transaction, for latency-vs-fee analysis downstream.
struct Submission {
    Hash256 txid;
    double fee_rate = 0;
    SimTime at = 0;
    std::uint64_t agent = 0;
};

class WorkloadEngine {
public:
    /// Drive any transaction host (non-owning; `host` must outlive the engine).
    WorkloadEngine(TxHost& host, WorkloadParams params, std::uint64_t seed);
    /// Convenience overload for the historical Nakamoto-only surface.
    WorkloadEngine(consensus::NakamotoNetwork& net, WorkloadParams params,
                   std::uint64_t seed);

    /// Schedule the arrival process (idempotent). Arrivals continue until
    /// stop() or the end of the simulation run.
    void start();
    void stop();

    /// Offered rate (tx/s) at virtual time `t` after diurnal/burst modulation.
    double rate_at(SimTime t) const;

    /// Deterministically derived profile of any agent id (no storage).
    AgentProfile profile_of(std::uint64_t agent) const;

    const WorkloadStats& stats() const { return stats_; }
    const std::vector<Submission>& submissions() const { return submissions_; }
    const WorkloadParams& params() const { return params_; }

private:
    void init(); // shared ctor validation + peak-rate derivation
    void schedule_next();
    void emit_one();
    /// Quantize a desired feerate onto the discrete fee menu.
    double quantize(double fee_rate) const;
    double bid(const AgentProfile& profile, std::uint32_t node);

    /// Owns the adapter when constructed from a concrete network type.
    std::unique_ptr<TxHost> owned_host_;
    TxHost& net_;
    WorkloadParams params_;
    Rng rng_;
    ZipfSampler zipf_;
    double peak_rate_; // thinning envelope
    std::optional<sim::EventId> next_event_;
    /// Next nonce per *active* sender (agents that transacted at least once).
    std::unordered_map<std::uint64_t, std::uint64_t> agent_nonce_;
    /// Hot accounts: latest (possibly contested) nonce slot and its best bid.
    struct HotSlot {
        std::uint64_t nonce = 0;
        double best_rate = 0;
        std::uint32_t writers = 0; // bids on the current slot so far
    };
    std::unordered_map<std::uint64_t, HotSlot> hot_slots_;
    WorkloadStats stats_;
    std::vector<Submission> submissions_;
};

} // namespace dlt::app
