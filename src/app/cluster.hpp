// ClusterDriver: spawn and drive an N-process loopback cluster of dlt-node
// daemons — the harness behind experiment E29 (bench_e29_cluster) and the
// deployment-mode tests. The driver
//
//   - pre-allocates loopback ports (consensus + RPC per node), writes one
//     data directory per node under work_dir, and fork/execs the dlt-node
//     binary with the full peer list,
//   - talks to each daemon over its RPC port with RpcClient (frame-codec
//     request/response — the same wire format the consensus sockets use),
//   - injects faults by signal: SIGTERM for the graceful-shutdown path
//     (exit 0, WAL flushed at every connect), SIGKILL for the crash path,
//     and restart_node() respawns a node on its old directory and ports so
//     WAL recovery + protocol catch-up can be observed from outside.
//
// The dlt-node binary is found through (in order) ClusterConfig::node_binary,
// the DLT_NODE_BIN environment variable, and conventional build-tree
// locations relative to the current directory.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/replica.hpp"
#include "ledger/transaction.hpp"
#include "net/transport/frame.hpp"

namespace dlt::app {

/// One node's answer to the "status" RPC.
struct NodeStatus {
    std::uint64_t height = 0;
    Hash256 tip;
    std::uint64_t confirmed_txs = 0;
    std::uint64_t mempool_size = 0;
    std::uint32_t connected_peers = 0;
    double clock = 0; // the daemon's transport clock (seconds since start)
};

/// Blocking frame-codec RPC connection to one daemon.
class RpcClient {
public:
    RpcClient() = default;
    ~RpcClient() { close(); }
    RpcClient(RpcClient&& other) noexcept;
    RpcClient& operator=(RpcClient&& other) noexcept;

    /// Connect with retry until `timeout_s` elapses (daemons need a moment
    /// between exec and listen).
    bool connect(const std::string& host, std::uint16_t port, double timeout_s);
    void close();
    bool connected() const { return fd_ >= 0; }

    /// True when the daemon's mempool accepted the transaction.
    bool submit(const ledger::Transaction& tx);
    std::optional<NodeStatus> status();
    /// Submit→inclusion latencies of transactions submitted via this node.
    std::vector<double> latencies();
    /// The daemon's obs registry snapshot (JSON text).
    std::string metrics_json();
    /// Ask the daemon to exit cleanly; the connection dies with it.
    bool shutdown_node();

private:
    std::optional<Bytes> request(const std::string& topic, ByteView body);

    int fd_ = -1;
    net::transport::FrameDecoder decoder_;
};

struct ClusterConfig {
    std::size_t node_count = 4;
    core::ReplicaEngine engine = core::ReplicaEngine::kNakamoto;
    double block_interval = 0.5;
    /// Root for per-node data dirs (created; survives restarts).
    std::filesystem::path work_dir;
    /// Path to the dlt-node binary; empty resolves via DLT_NODE_BIN / build tree.
    std::string node_binary;
    std::uint64_t seed = 1;
    /// LSM state engine (kPersistent) — required by the zero-replay reopen
    /// check; mem-backed nodes replay their WAL instead.
    bool lsm_state = true;
    std::string chain_tag = "e29";
    double sync_interval = 0.25;
};

class ClusterDriver {
public:
    explicit ClusterDriver(ClusterConfig config);
    /// Kills any still-running node (SIGKILL) and reaps it.
    ~ClusterDriver();

    ClusterDriver(const ClusterDriver&) = delete;
    ClusterDriver& operator=(const ClusterDriver&) = delete;

    /// Spawn every node and wait until all RPC ports answer. Throws
    /// dlt::Error when a node fails to come up.
    void start();

    std::size_t node_count() const { return nodes_.size(); }
    bool alive(std::size_t node) const { return nodes_.at(node).pid > 0; }
    std::uint16_t rpc_port(std::size_t node) const { return nodes_.at(node).rpc_port; }
    std::filesystem::path data_dir(std::size_t node) const {
        return nodes_.at(node).dir;
    }

    /// RPC handle for one node (reconnects after a restart).
    RpcClient& rpc(std::size_t node);

    /// Send `sig` (e.g. SIGTERM, SIGKILL) to one node.
    void signal_node(std::size_t node, int sig);
    /// Reap one node; returns its exit code (0 = clean), or -N when it died
    /// on signal N. Blocks until the process exits.
    int wait_node(std::size_t node);
    /// Respawn an exited node on its original directory and ports.
    void restart_node(std::size_t node);

    /// Graceful cluster shutdown: shutdown RPC to every live node, reap all,
    /// and return each node's exit code (wait_node semantics).
    std::vector<int> stop_all();

private:
    struct Node {
        int pid = -1;
        std::uint16_t listen_port = 0;
        std::uint16_t rpc_port = 0;
        std::filesystem::path dir;
        RpcClient client;
    };

    void spawn(std::size_t node);
    std::string resolve_binary() const;

    ClusterConfig config_;
    std::vector<Node> nodes_;
};

} // namespace dlt::app
