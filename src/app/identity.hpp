// Identity-management middleware (paper §5.2 lists "identity management" among
// the blockchain middleware services). A registry binding human-readable names
// to public keys, with every registration, rotation, and revocation
// authenticated by signature — name ownership follows key ownership, and key
// rotation requires a proof of the old key.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/keys.hpp"

namespace dlt::app {

struct IdentityRecord {
    std::string name;
    Bytes pubkey;           // compressed encoding of the current key
    std::uint64_t version = 1; // bumps on rotation
    bool revoked = false;
};

class IdentityRegistry {
public:
    /// Claim a free name for the holder of `key` (signed self-registration).
    /// Throws ValidationError when the name is taken.
    void register_name(const std::string& name, const crypto::PrivateKey& key);

    /// Rotate the key bound to `name`: the OLD key signs over the NEW pubkey.
    /// Throws ValidationError on unknown name, revoked identity, or bad proof.
    void rotate_key(const std::string& name, const crypto::PrivateKey& old_key,
                    const crypto::PublicKey& new_key);

    /// Revoke an identity (signed by its current key). Irreversible; the name
    /// stays burned so it cannot be re-claimed by a squatter.
    void revoke(const std::string& name, const crypto::PrivateKey& key);

    std::optional<IdentityRecord> lookup(const std::string& name) const;

    /// Resolve a name to an address (hash160 of its current key); nullopt for
    /// unknown or revoked identities.
    std::optional<crypto::Address> resolve(const std::string& name) const;

    /// Verify that `signature` over `message` was produced by the identity
    /// currently bound to `name`.
    bool verify_as(const std::string& name, const Hash256& message_hash,
                   const crypto::secp256k1::Signature& signature) const;

    std::size_t size() const { return records_.size(); }

private:
    const IdentityRecord* active_record(const std::string& name) const;

    std::map<std::string, IdentityRecord> records_;
};

/// The digest an owner signs to authorize an operation on a name.
Hash256 identity_op_digest(std::string_view op, const std::string& name,
                           ByteView payload);

} // namespace dlt::app
