#include "contract/engine.hpp"

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "crypto/ripemd160.hpp"
#include "crypto/sha256.hpp"
#include "datastruct/mpt.hpp"

namespace dlt::contract {

// --- WorldState -----------------------------------------------------------------------

Amount WorldState::balance_of(const Address& addr) const {
    const auto it = balances_.find(addr);
    return it == balances_.end() ? 0 : it->second;
}

void WorldState::credit(const Address& addr, Amount amount) {
    DLT_EXPECTS(amount >= 0);
    balances_[addr] += amount;
}

void WorldState::debit(const Address& addr, Amount amount) {
    DLT_EXPECTS(amount >= 0);
    const auto it = balances_.find(addr);
    if (it == balances_.end() || it->second < amount)
        throw ValidationError("insufficient balance");
    it->second -= amount;
}

std::uint64_t WorldState::nonce_of(const Address& addr) const {
    const auto it = nonces_.find(addr);
    return it == nonces_.end() ? 0 : it->second;
}

void WorldState::bump_nonce(const Address& addr) { ++nonces_[addr]; }

const ContractAccount* WorldState::contract_at(const Address& addr) const {
    const auto it = contracts_.find(addr);
    return it == contracts_.end() ? nullptr : &it->second;
}

ContractAccount& WorldState::contract_mut(const Address& addr) {
    const auto it = contracts_.find(addr);
    if (it == contracts_.end()) throw ValidationError("no contract at address");
    return it->second;
}

Hash256 WorldState::state_root() const {
    // Gather every known address, then serialize each account into the trie.
    datastruct::MerklePatriciaTrie trie;
    auto add_account = [&](const Address& addr) {
        if (trie.get(addr.view()).has_value()) return;
        Writer w;
        w.i64(balance_of(addr));
        w.varint(nonce_of(addr));
        const ContractAccount* contract = contract_at(addr);
        if (contract != nullptr) {
            w.u8(1);
            w.fixed(crypto::sha256(contract->code));
            // Storage digest: fold the (sorted) map into a running hash.
            Hash256 acc{};
            for (const auto& [key, value] : contract->storage)
                acc = crypto::hash_pair(acc,
                                        crypto::hash_pair(key.to_be_bytes(),
                                                          value.to_be_bytes()));
            w.fixed(acc);
        } else {
            w.u8(0);
        }
        trie.put(addr.view(), std::move(w).take());
    };
    for (const auto& [addr, bal] : balances_) add_account(addr);
    for (const auto& [addr, nonce] : nonces_) add_account(addr);
    for (const auto& [addr, contract] : contracts_) add_account(addr);
    return trie.root_hash();
}

// --- Host binding ------------------------------------------------------------------------

namespace {

class WorldHost final : public HostInterface {
public:
    WorldHost(WorldState& world, const Address& self, double now, bool read_only)
        : world_(world), self_(self), now_(now), read_only_(read_only) {}

    Word storage_load(const Word& key) override {
        const auto it = world_.contract_at(self_)->storage.find(key);
        const auto& storage = world_.contract_at(self_)->storage;
        return it == storage.end() ? Word::zero() : it->second;
    }

    void storage_store(const Word& key, const Word& value) override {
        if (read_only_) throw ContractError("storage write in view call");
        storage_mut()[key] = value;
    }

    std::int64_t balance_of(const Word& address_word) override {
        return world_.balance_of(word_to_address(address_word));
    }

    bool transfer(const Word& to, std::int64_t amount) override {
        if (read_only_) throw ContractError("transfer in view call");
        if (amount < 0) return false;
        if (world_.balance_of(self_) < amount) return false;
        world_.debit(self_, amount);
        world_.credit(word_to_address(to), amount);
        return true;
    }

    void emit(const Event& event) override {
        if (read_only_) throw ContractError("event in view call");
        world_.append_event(WorldState::LoggedEvent{self_, event});
    }

    double timestamp() override { return now_; }

private:
    std::map<Word, Word>& storage_mut() { return world_.contract_mut(self_).storage; }

    WorldState& world_;
    Address self_;
    double now_;
    bool read_only_;
};

/// Snapshot of everything a single call can touch, for revert rollback.
struct StateSnapshot {
    std::unordered_map<Address, Amount> balances;
    std::map<Word, Word> target_storage;
    std::size_t event_count;
};

} // namespace

// --- Engine ---------------------------------------------------------------------------------

Address derive_contract_address(const Address& creator, std::uint64_t nonce) {
    Writer w;
    w.fixed(creator);
    w.varint(nonce);
    return crypto::hash160(w.data());
}

Receipt ContractEngine::deploy(const CompiledContract& compiled, const Address& creator,
                               const std::vector<Word>& init_args, Amount endowment,
                               std::uint64_t gas_limit, Amount gas_price,
                               const Address& miner) {
    const Address addr = derive_contract_address(creator, world_->nonce_of(creator));
    world_->bump_nonce(creator);

    // Code storage gas, charged before execution.
    const std::uint64_t code_gas = compiled.bytecode.size() * gas_.deploy_per_byte;
    Receipt receipt;
    receipt.contract = addr;
    if (code_gas > gas_limit) {
        receipt.status = VmStatus::kOutOfGas;
        receipt.gas_used = gas_limit;
        receipt.fee_paid = static_cast<Amount>(gas_limit) * gas_price;
        world_->debit(creator, receipt.fee_paid);
        world_->credit(miner, receipt.fee_paid);
        return receipt;
    }

    ContractAccount account;
    account.code = compiled.bytecode;
    account.abi = compiled.functions;
    world_->contracts_.emplace(addr, std::move(account));

    if (compiled.has_init()) {
        Receipt init_receipt =
            execute_on(addr, encode_call("init", init_args), creator, endowment,
                       gas_limit - code_gas, gas_price, miner);
        init_receipt.contract = addr;
        init_receipt.gas_used += code_gas;
        const Amount code_fee = static_cast<Amount>(code_gas) * gas_price;
        world_->debit(creator, code_fee);
        world_->credit(miner, code_fee);
        init_receipt.fee_paid += code_fee;
        if (!init_receipt.ok()) world_->contracts_.erase(addr);
        return init_receipt;
    }

    // No constructor: move the endowment and charge code gas only.
    if (endowment > 0) {
        world_->debit(creator, endowment);
        world_->credit(addr, endowment);
    }
    receipt.gas_used = code_gas;
    receipt.fee_paid = static_cast<Amount>(code_gas) * gas_price;
    world_->debit(creator, receipt.fee_paid);
    world_->credit(miner, receipt.fee_paid);
    return receipt;
}

Receipt ContractEngine::call(const Address& target, std::string_view fn,
                             const std::vector<Word>& args, const Address& caller,
                             Amount value, std::uint64_t gas_limit, Amount gas_price,
                             const Address& miner) {
    world_->bump_nonce(caller);
    return execute_on(target, encode_call(fn, args), caller, value, gas_limit,
                      gas_price, miner);
}

Receipt ContractEngine::execute_on(const Address& target,
                                   const std::vector<Word>& calldata,
                                   const Address& caller, Amount value,
                                   std::uint64_t gas_limit, Amount gas_price,
                                   const Address& miner) {
    Receipt receipt;
    receipt.contract = target;

    const ContractAccount* account = world_->contract_at(target);
    if (account == nullptr) throw ValidationError("call to non-contract address");

    // Up-front solvency: worst-case gas plus attached value.
    const Amount max_fee = static_cast<Amount>(gas_limit) * gas_price;
    if (world_->balance_of(caller) < max_fee + value)
        throw ValidationError("caller cannot cover gas and value");

    // Snapshot for rollback.
    StateSnapshot snapshot;
    snapshot.balances = world_->balances_;
    snapshot.target_storage = account->storage;
    snapshot.event_count = world_->events_.size();

    // Move the attached value before execution (visible via `balance(self)`).
    if (value > 0) {
        world_->debit(caller, value);
        world_->credit(target, value);
    }

    CallContext ctx;
    ctx.caller = address_to_word(caller);
    ctx.self = address_to_word(target);
    ctx.value = value;
    ctx.calldata = calldata;
    ctx.gas_limit = gas_limit;

    WorldHost host(*world_, target, now_, /*read_only=*/false);
    const VmResult result = execute(account->code, ctx, host, gas_);

    receipt.status = result.status;
    receipt.gas_used = result.gas_used;
    receipt.return_value = result.return_value;
    receipt.events = result.events;

    if (!result.ok()) {
        // Roll back everything but the gas charge.
        world_->balances_ = std::move(snapshot.balances);
        world_->contracts_.at(target).storage = std::move(snapshot.target_storage);
        world_->events_.resize(snapshot.event_count);
    }

    receipt.fee_paid = static_cast<Amount>(receipt.gas_used) * gas_price;
    world_->debit(caller, receipt.fee_paid);
    world_->credit(miner, receipt.fee_paid);
    return receipt;
}

VmResult ContractEngine::view(const Address& target, std::string_view fn,
                              const std::vector<Word>& args,
                              const Address& caller) const {
    const ContractAccount* account = world_->contract_at(target);
    if (account == nullptr) throw ValidationError("view on non-contract address");

    CallContext ctx;
    ctx.caller = address_to_word(caller);
    ctx.self = address_to_word(target);
    ctx.value = 0;
    ctx.calldata = encode_call(fn, args);
    ctx.gas_limit = 10'000'000; // views are free; the limit only bounds loops

    WorldHost host(*world_, target, now_, /*read_only=*/true);
    try {
        return execute(account->code, ctx, host, gas_);
    } catch (const ContractError&) {
        VmResult result;
        result.status = VmStatus::kReverted;
        return result;
    }
}

} // namespace dlt::contract
