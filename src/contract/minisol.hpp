// MiniSol: the contract language of the platform's contract layer (§4.3). A
// small, Solidity-flavoured language compiled to VM bytecode:
//
//   contract Crowdfund {
//       storage owner;
//       storage goal;
//       storage raised;
//       map pledged;
//
//       fn init(g) { owner = caller; goal = g; }
//
//       fn donate() payable {
//           pledged[caller] = pledged[caller] + callvalue;
//           raised = raised + callvalue;
//           emit Donated(callvalue);
//       }
//
//       fn refund() {
//           require(raised < goal);
//           let amount = pledged[caller];
//           require(amount > 0);
//           pledged[caller] = 0;
//           raised = raised - amount;
//           transfer(caller, amount);
//       }
//
//       fn total() view { return raised; }
//   }
//
// Semantics: all values are 256-bit words; `storage` declares a persistent
// scalar slot, `map` a persistent word->word mapping; `view` functions are
// executed read-only and cost the caller nothing (the paper's "constant"
// functions); non-`payable` functions reject attached value. Functions are
// dispatched by a selector word (calldata word 0), arguments follow as words.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "contract/vm.hpp"

namespace dlt::contract {

struct FunctionInfo {
    std::string name;
    Word selector;
    std::size_t arity = 0;
    bool is_view = false;
    bool is_payable = false;
};

struct CompiledContract {
    std::string name;
    Bytes bytecode;
    std::vector<FunctionInfo> functions;

    const FunctionInfo* find_function(std::string_view fn) const;
    bool has_init() const { return find_function("init") != nullptr; }
};

/// Compile MiniSol source; throws ContractError with a line number on any
/// lexical, syntactic, or semantic error.
CompiledContract compile(std::string_view source);

/// The dispatch selector for a function name.
Word selector_of(std::string_view fn_name);

/// Topic word for `emit Name(...)` events.
Word event_topic(std::string_view event_name);

/// Build calldata for a call: [selector, args...].
std::vector<Word> encode_call(std::string_view fn, const std::vector<Word>& args);

} // namespace dlt::contract
