// Standard contract library: reusable MiniSol sources for the contract-layer
// middleware the paper calls for (§5.2 — "reusable services and middleware
// components can be expressed as smart contracts"). Each function returns the
// source; compile with minisol::compile.
#pragma once

#include <string>

namespace dlt::contract::stdlib {

/// The paper's §2.5 HelloWorld example translated to MiniSol: setGreeting costs
/// gas (it is a transaction), say() is a free constant function.
std::string hello_world_source();

/// Fungible token: init(supply) mints to the creator; transfer/approve/
/// transferFrom/balanceOf/allowance in the ERC-20 tradition.
std::string token_source();

/// Crowdfunding campaign (a canonical Blockchain-2.0 DApp from §3.2):
/// donate() payable, claim() by the owner once the goal is met, refund()
/// otherwise.
std::string crowdfund_source();

/// Escrow between a buyer and a seller with an arbiter release/refund switch.
std::string escrow_source();

/// Document notary / registry (the Fig. 3 contract-layer example): register a
/// document digest; proves existence and ownership at a timestamp.
std::string notary_source();

} // namespace dlt::contract::stdlib
