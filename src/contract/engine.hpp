// Contract engine: account-model world state plus the deploy/call machinery
// around the VM (paper §3.2): contract accounts with code and storage, gas
// bought by the caller and paid to the miner, value transfer, receipts, and
// free read-only ("constant") view calls.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "contract/minisol.hpp"
#include "contract/vm.hpp"
#include "crypto/keys.hpp"
#include "ledger/amount.hpp"

namespace dlt::contract {

using crypto::Address;
using ledger::Amount;

struct ContractAccount {
    Bytes code;
    std::vector<FunctionInfo> abi;
    std::map<Word, Word> storage;
};

/// Account-model world state (balances, nonces, contract accounts, event log).
class WorldState {
public:
    Amount balance_of(const Address& addr) const;
    void credit(const Address& addr, Amount amount);
    /// Throws ValidationError on insufficient funds.
    void debit(const Address& addr, Amount amount);

    std::uint64_t nonce_of(const Address& addr) const;
    void bump_nonce(const Address& addr);

    bool is_contract(const Address& addr) const { return contracts_.contains(addr); }
    const ContractAccount* contract_at(const Address& addr) const;

    /// Authenticated root over every account (balances, nonces, code, storage),
    /// computed via the Merkle-Patricia trie.
    Hash256 state_root() const;

    struct LoggedEvent {
        Address contract;
        Event event;
    };
    const std::vector<LoggedEvent>& event_log() const { return events_; }

    /// Mutable access for the executing host; throws ValidationError when the
    /// address holds no contract.
    ContractAccount& contract_mut(const Address& addr);
    void append_event(LoggedEvent event) { events_.push_back(std::move(event)); }

private:
    friend class ContractEngine;

    std::unordered_map<Address, Amount> balances_;
    std::unordered_map<Address, std::uint64_t> nonces_;
    std::unordered_map<Address, ContractAccount> contracts_;
    std::vector<LoggedEvent> events_;
};

/// Outcome of a deploy or call.
struct Receipt {
    VmStatus status = VmStatus::kSuccess;
    std::optional<Word> return_value;
    std::uint64_t gas_used = 0;
    Amount fee_paid = 0; // gas_used * gas_price, credited to the miner
    std::vector<Event> events;
    Address contract; // target (or newly deployed) contract

    bool ok() const { return status == VmStatus::kSuccess; }
};

class ContractEngine {
public:
    explicit ContractEngine(WorldState& world, GasSchedule gas = {})
        : world_(&world), gas_(gas) {}

    /// Simulation time exposed to contracts via `timestamp`.
    void set_time(double now) { now_ = now; }

    /// Deploy a compiled contract. Charges deploy gas (per byte) plus the cost
    /// of running `init(args)` when present. The new address is derived from
    /// (creator, creator nonce).
    Receipt deploy(const CompiledContract& compiled, const Address& creator,
                   const std::vector<Word>& init_args, Amount endowment,
                   std::uint64_t gas_limit, Amount gas_price, const Address& miner);

    /// Invoke `fn(args)` on a deployed contract with a transaction. Gas is paid
    /// to the miner even when the call reverts; state effects of reverted calls
    /// are rolled back.
    Receipt call(const Address& target, std::string_view fn,
                 const std::vector<Word>& args, const Address& caller, Amount value,
                 std::uint64_t gas_limit, Amount gas_price, const Address& miner);

    /// Execute a `view` function without a transaction: free, read-only (any
    /// write attempt reverts), no miner involved — the paper's say() example.
    VmResult view(const Address& target, std::string_view fn,
                  const std::vector<Word>& args, const Address& caller) const;

private:
    Receipt execute_on(const Address& target, const std::vector<Word>& calldata,
                       const Address& caller, Amount value, std::uint64_t gas_limit,
                       Amount gas_price, const Address& miner);

    WorldState* world_;
    GasSchedule gas_;
    double now_ = 0;
};

/// Deterministic contract address: hash160(creator || nonce).
Address derive_contract_address(const Address& creator, std::uint64_t nonce);

} // namespace dlt::contract
