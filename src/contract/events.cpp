#include "contract/events.hpp"

#include "common/assert.hpp"

namespace dlt::contract {

std::size_t EventBus::subscribe(EventFilter filter, Handler handler,
                                bool from_start) {
    DLT_EXPECTS(handler != nullptr);
    Subscription sub;
    sub.id = next_id_++;
    sub.filter = std::move(filter);
    sub.handler = std::move(handler);
    sub.cursor = from_start ? 0 : world_->event_log().size();
    subs_.push_back(std::move(sub));
    return subs_.back().id;
}

bool EventBus::unsubscribe(std::size_t id) {
    for (auto& sub : subs_) {
        if (sub.id == id && sub.active) {
            sub.active = false;
            return true;
        }
    }
    return false;
}

std::size_t EventBus::poll() {
    const auto& log = world_->event_log();
    std::size_t delivered = 0;
    for (auto& sub : subs_) {
        if (!sub.active) continue;
        while (sub.cursor < log.size()) {
            const auto& entry = log[sub.cursor];
            if (sub.filter.matches(entry)) {
                sub.handler(Notification{sub.cursor, entry.contract, entry.event});
                ++delivered;
            }
            ++sub.cursor;
        }
    }
    return delivered;
}

} // namespace dlt::contract
