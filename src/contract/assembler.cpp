#include "contract/assembler.hpp"

#include <charconv>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "contract/vm.hpp"

namespace dlt::contract {

namespace {

const std::unordered_map<std::string, OpCode>& mnemonic_table() {
    static const std::unordered_map<std::string, OpCode> table = {
        {"STOP", OpCode::kStop},         {"PUSH", OpCode::kPush},
        {"POP", OpCode::kPop},           {"DUP", OpCode::kDup},
        {"SWAP", OpCode::kSwap},         {"ADD", OpCode::kAdd},
        {"SUB", OpCode::kSub},           {"MUL", OpCode::kMul},
        {"DIV", OpCode::kDiv},           {"MOD", OpCode::kMod},
        {"LT", OpCode::kLt},             {"GT", OpCode::kGt},
        {"EQ", OpCode::kEq},             {"ISZERO", OpCode::kIsZero},
        {"AND", OpCode::kAnd},           {"OR", OpCode::kOr},
        {"JUMP", OpCode::kJump},         {"JUMPI", OpCode::kJumpI},
        {"SLOAD", OpCode::kSLoad},       {"SSTORE", OpCode::kSStore},
        {"CALLER", OpCode::kCaller},     {"CALLVALUE", OpCode::kCallValue},
        {"SELF", OpCode::kSelfAddr},     {"BALANCE", OpCode::kBalance},
        {"GASLEFT", OpCode::kGasLeft},   {"TIMESTAMP", OpCode::kTimestamp},
        {"CALLDATALOAD", OpCode::kCallDataLoad},
        {"CALLDATASIZE", OpCode::kCallDataSize},
        {"SHA3", OpCode::kSha3},         {"MLOAD", OpCode::kMLoad},
        {"MSTORE", OpCode::kMStore},     {"TRANSFER", OpCode::kTransfer},
        {"EMIT", OpCode::kEmit},         {"RETURN", OpCode::kReturn},
        {"REVERT", OpCode::kRevert},     {"REQUIRE", OpCode::kRequire},
    };
    return table;
}

struct Token {
    std::string mnemonic;
    std::string operand;
    int line;
};

[[noreturn]] void fail(int line, const std::string& message) {
    throw ContractError("asm line " + std::to_string(line) + ": " + message);
}

crypto::U256 parse_immediate(const std::string& text, int line) {
    try {
        if (text.starts_with("0x") || text.starts_with("0X"))
            return crypto::U256::from_hex(text.substr(2));
        std::uint64_t value = 0;
        const auto [ptr, ec] =
            std::from_chars(text.data(), text.data() + text.size(), value);
        if (ec != std::errc() || ptr != text.data() + text.size())
            fail(line, "bad immediate '" + text + "'");
        return crypto::U256(value);
    } catch (const Error&) {
        fail(line, "bad immediate '" + text + "'");
    }
}

} // namespace

Bytes assemble(std::string_view source) {
    // Pass 1: tokenize, record label offsets.
    std::vector<Token> tokens;
    std::unordered_map<std::string, std::uint64_t> labels;
    std::size_t offset = 0;

    std::istringstream stream{std::string(source)};
    std::string raw_line;
    int line_no = 0;
    while (std::getline(stream, raw_line)) {
        ++line_no;
        const std::size_t comment = raw_line.find(';');
        if (comment != std::string::npos) raw_line.resize(comment);

        std::istringstream words(raw_line);
        std::string word;
        if (!(words >> word)) continue;

        if (word.back() == ':') {
            word.pop_back();
            if (labels.contains(word)) fail(line_no, "duplicate label " + word);
            labels.emplace(word, offset);
            if (!(words >> word)) continue; // label-only line
        }

        Token token;
        token.mnemonic = word;
        token.line = line_no;
        const auto it = mnemonic_table().find(word);
        if (it == mnemonic_table().end()) fail(line_no, "unknown mnemonic " + word);
        if (it->second == OpCode::kPush) {
            if (!(words >> token.operand)) fail(line_no, "PUSH needs an operand");
            offset += 1 + 32;
        } else if (it->second == OpCode::kDup || it->second == OpCode::kSwap) {
            if (!(words >> token.operand)) fail(line_no, "DUP/SWAP need a depth");
            offset += 2;
        } else {
            offset += 1;
        }
        std::string extra;
        if (words >> extra) fail(line_no, "trailing junk '" + extra + "'");
        tokens.push_back(std::move(token));
    }

    // Pass 2: emit.
    Bytes code;
    code.reserve(offset);
    for (const auto& token : tokens) {
        const OpCode op = mnemonic_table().at(token.mnemonic);
        code.push_back(static_cast<std::uint8_t>(op));
        if (op == OpCode::kPush) {
            crypto::U256 value;
            if (token.operand.starts_with("@")) {
                const auto it = labels.find(token.operand.substr(1));
                if (it == labels.end())
                    fail(token.line, "unresolved label " + token.operand);
                value = crypto::U256(it->second);
            } else {
                value = parse_immediate(token.operand, token.line);
            }
            append(code, value.to_be_bytes().view());
        } else if (op == OpCode::kDup || op == OpCode::kSwap) {
            const crypto::U256 depth = parse_immediate(token.operand, token.line);
            if (depth > crypto::U256(255)) fail(token.line, "depth out of range");
            code.push_back(static_cast<std::uint8_t>(depth.low64()));
        }
    }
    return code;
}

std::string disassemble(const Bytes& code) {
    // Reverse mnemonic lookup.
    std::unordered_map<std::uint8_t, std::string> names;
    for (const auto& [name, op] : mnemonic_table())
        names.emplace(static_cast<std::uint8_t>(op), name);

    std::ostringstream out;
    std::size_t pc = 0;
    while (pc < code.size()) {
        out << pc << ": ";
        const std::uint8_t byte = code[pc++];
        const auto it = names.find(byte);
        if (it == names.end()) {
            out << "<bad 0x" << std::hex << int(byte) << std::dec << ">\n";
            continue;
        }
        out << it->second;
        const OpCode op = static_cast<OpCode>(byte);
        if (op == OpCode::kPush) {
            if (pc + 32 <= code.size()) {
                const auto w = crypto::U256::from_be_bytes(ByteView{code.data() + pc, 32});
                out << " " << (w.highest_bit() < 64
                                   ? std::to_string(w.low64())
                                   : "0x" + w.hex());
                pc += 32;
            } else {
                out << " <truncated>";
                pc = code.size();
            }
        } else if (op == OpCode::kDup || op == OpCode::kSwap) {
            if (pc < code.size()) out << " " << int(code[pc++]);
        }
        out << '\n';
    }
    return out.str();
}

} // namespace dlt::contract
