// Textual assembler for the contract VM: one mnemonic per line, decimal or
// 0x-hex immediates for PUSH, `name:` labels, and `PUSH @name` label
// references. Used by VM tests and as a debugging aid for compiler output.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace dlt::contract {

/// Assemble source text to bytecode. Throws ContractError with a line number
/// on unknown mnemonics, bad immediates, or unresolved labels.
Bytes assemble(std::string_view source);

/// Disassemble bytecode to one-instruction-per-line text (for debugging and
/// golden tests).
std::string disassemble(const Bytes& code);

} // namespace dlt::contract
