#include "contract/vm.hpp"

#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace dlt::contract {

namespace {

class Machine {
public:
    Machine(const Bytes& code, const CallContext& ctx, HostInterface& host,
            const GasSchedule& gas)
        : code_(code), ctx_(ctx), host_(host), gas_(gas), gas_left_(ctx.gas_limit) {}

    VmResult run();

private:
    bool charge(std::uint64_t amount) {
        if (gas_left_ < amount) return false;
        gas_left_ -= amount;
        return true;
    }

    bool push(const Word& w) {
        if (stack_.size() >= 1024) return false;
        stack_.push_back(w);
        return true;
    }

    bool pop(Word& out) {
        if (stack_.empty()) return false;
        out = stack_.back();
        stack_.pop_back();
        return true;
    }

    const Bytes& code_;
    const CallContext& ctx_;
    HostInterface& host_;
    const GasSchedule& gas_;
    std::uint64_t gas_left_;
    std::vector<Word> stack_;
    std::vector<Word> memory_;
    std::vector<Event> events_;
};

VmResult Machine::run() {
    VmResult result;
    std::size_t pc = 0;

    auto finish = [&](VmStatus status) {
        result.status = status;
        result.gas_used = ctx_.gas_limit - gas_left_;
        if (status == VmStatus::kSuccess) result.events = std::move(events_);
        return result;
    };

    while (pc < code_.size()) {
        const OpCode op = static_cast<OpCode>(code_[pc]);
        ++pc;
        if (!charge(gas_.base)) return finish(VmStatus::kOutOfGas);

        Word a, b;
        switch (op) {
            case OpCode::kStop:
                return finish(VmStatus::kSuccess);

            case OpCode::kPush: {
                if (pc + 32 > code_.size()) return finish(VmStatus::kBadInstruction);
                const Word w = Word::from_be_bytes(ByteView{code_.data() + pc, 32});
                pc += 32;
                if (!push(w)) return finish(VmStatus::kStackError);
                break;
            }

            case OpCode::kPop:
                if (!pop(a)) return finish(VmStatus::kStackError);
                break;

            case OpCode::kDup: {
                if (pc >= code_.size()) return finish(VmStatus::kBadInstruction);
                const std::size_t depth = code_[pc++];
                if (depth >= stack_.size()) return finish(VmStatus::kStackError);
                if (!push(stack_[stack_.size() - 1 - depth]))
                    return finish(VmStatus::kStackError);
                break;
            }

            case OpCode::kSwap: {
                if (pc >= code_.size()) return finish(VmStatus::kBadInstruction);
                const std::size_t depth = code_[pc++];
                if (depth == 0 || depth >= stack_.size())
                    return finish(VmStatus::kStackError);
                std::swap(stack_.back(), stack_[stack_.size() - 1 - depth]);
                break;
            }

            case OpCode::kAdd:
            case OpCode::kSub:
            case OpCode::kMul:
            case OpCode::kDiv:
            case OpCode::kMod:
            case OpCode::kLt:
            case OpCode::kGt:
            case OpCode::kEq:
            case OpCode::kAnd:
            case OpCode::kOr: {
                if (!pop(b) || !pop(a)) return finish(VmStatus::kStackError);
                Word out;
                switch (op) {
                    case OpCode::kAdd: out = a + b; break;
                    case OpCode::kSub: out = a - b; break;
                    case OpCode::kMul: out = a.mul_wide(b).lo; break;
                    case OpCode::kDiv: out = b.is_zero() ? Word::zero() : a / b; break;
                    case OpCode::kMod: out = b.is_zero() ? Word::zero() : a % b; break;
                    case OpCode::kLt: out = a < b ? Word::one() : Word::zero(); break;
                    case OpCode::kGt: out = a > b ? Word::one() : Word::zero(); break;
                    case OpCode::kEq: out = a == b ? Word::one() : Word::zero(); break;
                    case OpCode::kAnd:
                        out = (!a.is_zero() && !b.is_zero()) ? Word::one() : Word::zero();
                        break;
                    case OpCode::kOr:
                        out = (!a.is_zero() || !b.is_zero()) ? Word::one() : Word::zero();
                        break;
                    default: break;
                }
                if (!push(out)) return finish(VmStatus::kStackError);
                break;
            }

            case OpCode::kIsZero:
                if (!pop(a)) return finish(VmStatus::kStackError);
                if (!push(a.is_zero() ? Word::one() : Word::zero()))
                    return finish(VmStatus::kStackError);
                break;

            case OpCode::kJump: {
                if (!pop(a)) return finish(VmStatus::kStackError);
                const std::uint64_t target = a.low64();
                if (target > code_.size()) return finish(VmStatus::kBadInstruction);
                pc = static_cast<std::size_t>(target);
                break;
            }

            case OpCode::kJumpI: {
                if (!pop(b) || !pop(a)) return finish(VmStatus::kStackError);
                // a = target, b = condition.
                if (!b.is_zero()) {
                    const std::uint64_t target = a.low64();
                    if (target > code_.size()) return finish(VmStatus::kBadInstruction);
                    pc = static_cast<std::size_t>(target);
                }
                break;
            }

            case OpCode::kSLoad:
                if (!charge(gas_.sload)) return finish(VmStatus::kOutOfGas);
                if (!pop(a)) return finish(VmStatus::kStackError);
                if (!push(host_.storage_load(a))) return finish(VmStatus::kStackError);
                break;

            case OpCode::kSStore:
                if (!charge(gas_.sstore)) return finish(VmStatus::kOutOfGas);
                if (!pop(b) || !pop(a)) return finish(VmStatus::kStackError);
                host_.storage_store(a, b);
                break;

            case OpCode::kCaller:
                if (!push(ctx_.caller)) return finish(VmStatus::kStackError);
                break;
            case OpCode::kCallValue:
                if (!push(Word(static_cast<std::uint64_t>(ctx_.value))))
                    return finish(VmStatus::kStackError);
                break;
            case OpCode::kSelfAddr:
                if (!push(ctx_.self)) return finish(VmStatus::kStackError);
                break;
            case OpCode::kBalance:
                if (!pop(a)) return finish(VmStatus::kStackError);
                if (!push(Word(static_cast<std::uint64_t>(host_.balance_of(a)))))
                    return finish(VmStatus::kStackError);
                break;
            case OpCode::kGasLeft:
                if (!push(Word(gas_left_))) return finish(VmStatus::kStackError);
                break;
            case OpCode::kTimestamp: {
                const auto t = static_cast<std::uint64_t>(host_.timestamp());
                if (!push(Word(t))) return finish(VmStatus::kStackError);
                break;
            }

            case OpCode::kCallDataLoad: {
                if (!pop(a)) return finish(VmStatus::kStackError);
                const std::uint64_t index = a.low64();
                const Word w = index < ctx_.calldata.size()
                                   ? ctx_.calldata[static_cast<std::size_t>(index)]
                                   : Word::zero();
                if (!push(w)) return finish(VmStatus::kStackError);
                break;
            }
            case OpCode::kCallDataSize:
                if (!push(Word(ctx_.calldata.size())))
                    return finish(VmStatus::kStackError);
                break;

            case OpCode::kMLoad: {
                if (!pop(a)) return finish(VmStatus::kStackError);
                const std::uint64_t slot = a.low64();
                const Word w = slot < memory_.size()
                                   ? memory_[static_cast<std::size_t>(slot)]
                                   : Word::zero();
                if (!push(w)) return finish(VmStatus::kStackError);
                break;
            }

            case OpCode::kMStore: {
                if (!pop(b) || !pop(a)) return finish(VmStatus::kStackError);
                const std::uint64_t slot = a.low64();
                if (slot >= 4096) return finish(VmStatus::kBadInstruction);
                if (slot >= memory_.size())
                    memory_.resize(static_cast<std::size_t>(slot) + 1);
                memory_[static_cast<std::size_t>(slot)] = b;
                break;
            }

            case OpCode::kSha3: {
                if (!charge(gas_.sha3)) return finish(VmStatus::kOutOfGas);
                if (!pop(b) || !pop(a)) return finish(VmStatus::kStackError);
                const Hash256 digest =
                    crypto::hash_pair(a.to_be_bytes(), b.to_be_bytes());
                if (!push(Word::from_hash(digest))) return finish(VmStatus::kStackError);
                break;
            }

            case OpCode::kTransfer: {
                if (!charge(gas_.transfer)) return finish(VmStatus::kOutOfGas);
                if (!pop(b) || !pop(a)) return finish(VmStatus::kStackError);
                // a = to, b = amount.
                const std::uint64_t amount = b.low64();
                if (!host_.transfer(a, static_cast<std::int64_t>(amount)))
                    return finish(VmStatus::kReverted);
                break;
            }

            case OpCode::kEmit: {
                if (!charge(gas_.emit_event)) return finish(VmStatus::kOutOfGas);
                if (!pop(b) || !pop(a)) return finish(VmStatus::kStackError);
                const Event event{a, b};
                host_.emit(event);
                events_.push_back(event);
                break;
            }

            case OpCode::kReturn:
                if (!pop(a)) return finish(VmStatus::kStackError);
                result.return_value = a;
                return finish(VmStatus::kSuccess);

            case OpCode::kRevert:
                return finish(VmStatus::kReverted);

            case OpCode::kRequire:
                if (!pop(a)) return finish(VmStatus::kStackError);
                if (a.is_zero()) return finish(VmStatus::kReverted);
                break;

            default:
                return finish(VmStatus::kBadInstruction);
        }
    }
    return finish(VmStatus::kSuccess);
}

} // namespace

VmResult execute(const Bytes& code, const CallContext& ctx, HostInterface& host,
                 const GasSchedule& gas) {
    Machine machine(code, ctx, host, gas);
    return machine.run();
}

Word address_to_word(const crypto::Address& addr) {
    Hash256 padded{};
    for (std::size_t i = 0; i < 20; ++i) padded[12 + i] = addr[i];
    return Word::from_hash(padded);
}

crypto::Address word_to_address(const Word& word) {
    const Hash256 be = word.to_be_bytes();
    crypto::Address addr;
    for (std::size_t i = 0; i < 20; ++i) addr[i] = be[12 + i];
    return addr;
}

const char* vm_status_name(VmStatus status) {
    switch (status) {
        case VmStatus::kSuccess: return "success";
        case VmStatus::kReverted: return "reverted";
        case VmStatus::kOutOfGas: return "out-of-gas";
        case VmStatus::kBadInstruction: return "bad-instruction";
        case VmStatus::kStackError: return "stack-error";
    }
    return "?";
}

} // namespace dlt::contract
