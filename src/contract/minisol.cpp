#include "contract/minisol.hpp"

#include <charconv>
#include <optional>
#include <unordered_map>

#include "common/error.hpp"
#include "crypto/sha256.hpp"

namespace dlt::contract {

namespace {

// --- Lexer ------------------------------------------------------------------------

enum class TokKind {
    kIdent,
    kNumber,
    kPunct, // single/double char punctuation, stored in text
    kEnd,
};

struct Tok {
    TokKind kind;
    std::string text;
    int line;
};

[[noreturn]] void fail(int line, const std::string& message) {
    throw ContractError("minisol line " + std::to_string(line) + ": " + message);
}

std::vector<Tok> lex(std::string_view src) {
    std::vector<Tok> out;
    int line = 1;
    std::size_t i = 0;
    const auto peek = [&](std::size_t k = 0) -> char {
        return i + k < src.size() ? src[i + k] : '\0';
    };

    while (i < src.size()) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r') {
            ++i;
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            while (i < src.size() && src[i] != '\n') ++i;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = i;
            while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                      src[i] == '_'))
                ++i;
            out.push_back(Tok{TokKind::kIdent, std::string(src.substr(start, i - start)),
                              line});
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = i;
            while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i]))))
                ++i;
            out.push_back(Tok{TokKind::kNumber, std::string(src.substr(start, i - start)),
                              line});
            continue;
        }
        // Two-char operators first.
        static const char* kTwo[] = {"==", "!=", "<=", ">=", "&&", "||"};
        bool matched = false;
        for (const char* op : kTwo) {
            if (c == op[0] && peek(1) == op[1]) {
                out.push_back(Tok{TokKind::kPunct, op, line});
                i += 2;
                matched = true;
                break;
            }
        }
        if (matched) continue;
        static const std::string kSingle = "{}()[];,=+-*/%<>!";
        if (kSingle.find(c) != std::string::npos) {
            out.push_back(Tok{TokKind::kPunct, std::string(1, c), line});
            ++i;
            continue;
        }
        fail(line, std::string("unexpected character '") + c + "'");
    }
    out.push_back(Tok{TokKind::kEnd, "", line});
    return out;
}

// --- Code emission helpers -----------------------------------------------------------

class Emitter {
public:
    void op(OpCode o) { code_.push_back(static_cast<std::uint8_t>(o)); }

    void push_word(const Word& w) {
        op(OpCode::kPush);
        append(code_, w.to_be_bytes().view());
    }

    void push_u64(std::uint64_t v) { push_word(Word(v)); }

    void dup(std::uint8_t depth) {
        op(OpCode::kDup);
        code_.push_back(depth);
    }

    void swap(std::uint8_t depth) {
        op(OpCode::kSwap);
        code_.push_back(depth);
    }

    /// Emit PUSH <label> with a backpatched 32-byte immediate.
    void push_label(int label) {
        op(OpCode::kPush);
        patches_.emplace_back(code_.size(), label);
        code_.insert(code_.end(), 32, 0);
    }

    int new_label() { return next_label_++; }

    void bind(int label) { bound_[label] = code_.size(); }

    /// Jump unconditionally to `label`.
    void jump(int label) {
        push_label(label);
        op(OpCode::kJump);
    }

    /// Consume the condition on top of the stack; jump when non-zero.
    void jumpi(int label) {
        push_label(label);
        swap(1);
        op(OpCode::kJumpI);
    }

    Bytes finish() {
        for (const auto& [pos, label] : patches_) {
            const auto it = bound_.find(label);
            if (it == bound_.end()) throw ContractError("internal: unbound label");
            const Hash256 be = Word(it->second).to_be_bytes();
            std::copy(be.data.begin(), be.data.end(),
                      code_.begin() + static_cast<std::ptrdiff_t>(pos));
        }
        return std::move(code_);
    }

    std::size_t offset() const { return code_.size(); }

private:
    Bytes code_;
    int next_label_ = 0;
    std::vector<std::pair<std::size_t, int>> patches_;
    std::unordered_map<int, std::size_t> bound_;
};

// --- Parser / single-pass code generator ---------------------------------------------

class Compiler {
public:
    explicit Compiler(std::string_view source) : tokens_(lex(source)) {}

    CompiledContract compile();

private:
    // Token helpers.
    const Tok& cur() const { return tokens_[pos_]; }
    const Tok& next() { return tokens_[pos_++]; }
    bool at_punct(std::string_view p) const {
        return cur().kind == TokKind::kPunct && cur().text == p;
    }
    bool at_ident(std::string_view name) const {
        return cur().kind == TokKind::kIdent && cur().text == name;
    }
    void expect_punct(std::string_view p) {
        if (!at_punct(p)) fail(cur().line, "expected '" + std::string(p) + "'");
        ++pos_;
    }
    std::string expect_ident() {
        if (cur().kind != TokKind::kIdent) fail(cur().line, "expected identifier");
        return next().text;
    }
    bool accept_punct(std::string_view p) {
        if (at_punct(p)) {
            ++pos_;
            return true;
        }
        return false;
    }
    bool accept_ident(std::string_view name) {
        if (at_ident(name)) {
            ++pos_;
            return true;
        }
        return false;
    }

    // Declarations.
    void parse_contract();

    // Statements and expressions (single pass: parse directly to bytecode).
    void block();
    void statement();
    void expression() { or_expr(); }
    void or_expr();
    void and_expr();
    void cmp_expr();
    void add_expr();
    void mul_expr();
    void unary_expr();
    void primary_expr();

    // Symbols.
    struct FunctionBody {
        FunctionInfo info;
        int label;
        std::size_t token_start; // position of '{'
    };

    bool is_storage(const std::string& name) const { return storage_.contains(name); }
    bool is_map(const std::string& name) const { return maps_.contains(name); }

    std::size_t local_slot(const std::string& name, bool define, int line) {
        const auto it = locals_.find(name);
        if (it != locals_.end()) {
            if (define) fail(line, "redefinition of '" + name + "'");
            return it->second;
        }
        if (!define) fail(line, "unknown identifier '" + name + "'");
        const std::size_t slot = locals_.size();
        locals_.emplace(name, slot);
        return slot;
    }

    /// Emit code leaving the storage key of map element `name[<expr>]` on the
    /// stack; expects the caller to have consumed the tokens for '['.
    void map_key(const std::string& name) {
        emit_.push_u64(maps_.at(name));
        expression();
        expect_punct("]");
        emit_.op(OpCode::kSha3);
    }

    std::vector<Tok> tokens_;
    std::size_t pos_ = 0;

    std::string contract_name_;
    std::unordered_map<std::string, std::uint64_t> storage_; // name -> slot
    std::unordered_map<std::string, std::uint64_t> maps_;    // name -> slot
    std::vector<FunctionInfo> functions_;

    Emitter emit_;
    std::unordered_map<std::string, std::size_t> locals_; // per-function
    bool in_view_fn_ = false;
};

CompiledContract Compiler::compile() {
    parse_contract();
    CompiledContract out;
    out.name = contract_name_;
    out.bytecode = emit_.finish();
    out.functions = std::move(functions_);
    return out;
}

void Compiler::parse_contract() {
    if (!accept_ident("contract")) fail(cur().line, "expected 'contract'");
    contract_name_ = expect_ident();
    expect_punct("{");

    // First pass over declarations: storage slots and function signatures, so
    // forward references work. We scan, recording function token positions.
    std::uint64_t next_slot = 0;
    std::vector<std::size_t> function_starts;
    const std::size_t body_start = pos_;
    int depth = 1;
    while (depth > 0) {
        if (cur().kind == TokKind::kEnd) fail(cur().line, "unterminated contract");
        if (at_punct("{")) ++depth;
        if (at_punct("}")) {
            --depth;
            if (depth == 0) break;
        }
        if (depth == 1 && cur().kind == TokKind::kIdent) {
            if (cur().text == "storage") {
                ++pos_;
                const std::string name = expect_ident();
                expect_punct(";");
                if (storage_.contains(name) || maps_.contains(name))
                    fail(cur().line, "duplicate declaration '" + name + "'");
                storage_.emplace(name, next_slot++);
                continue;
            }
            if (cur().text == "map") {
                ++pos_;
                const std::string name = expect_ident();
                expect_punct(";");
                if (storage_.contains(name) || maps_.contains(name))
                    fail(cur().line, "duplicate declaration '" + name + "'");
                maps_.emplace(name, next_slot++);
                continue;
            }
            if (cur().text == "fn") {
                function_starts.push_back(pos_);
            }
        }
        ++pos_;
    }

    // --- Dispatch preamble -----------------------------------------------------
    // Selector on stack; compare against each function, jump to its body.
    pos_ = body_start;
    std::unordered_map<std::string, int> fn_labels;

    // Pre-scan signatures to build the dispatch table.
    std::vector<FunctionInfo> signatures;
    for (const std::size_t start : function_starts) {
        pos_ = start + 1; // skip 'fn'
        FunctionInfo info;
        info.name = expect_ident();
        info.selector = selector_of(info.name);
        expect_punct("(");
        if (!at_punct(")")) {
            for (;;) {
                expect_ident();
                ++info.arity;
                if (!accept_punct(",")) break;
            }
        }
        expect_punct(")");
        while (cur().kind == TokKind::kIdent &&
               (cur().text == "view" || cur().text == "payable")) {
            if (cur().text == "view") info.is_view = true;
            else info.is_payable = true;
            ++pos_;
        }
        for (const auto& existing : signatures)
            if (existing.name == info.name)
                fail(cur().line, "duplicate function '" + info.name + "'");
        signatures.push_back(info);
    }

    emit_.push_u64(0);
    emit_.op(OpCode::kCallDataLoad); // selector
    for (const auto& info : signatures) {
        const int label = emit_.new_label();
        fn_labels.emplace(info.name, label);
        emit_.dup(0);
        emit_.push_word(info.selector);
        emit_.op(OpCode::kEq);
        emit_.jumpi(label);
    }
    emit_.op(OpCode::kRevert); // unknown selector

    // --- Function bodies ---------------------------------------------------------
    for (std::size_t f = 0; f < function_starts.size(); ++f) {
        pos_ = function_starts[f] + 1;
        FunctionInfo info = signatures[f];
        expect_ident();   // name
        expect_punct("(");
        locals_.clear();
        std::vector<std::string> params;
        if (!at_punct(")")) {
            for (;;) {
                params.push_back(expect_ident());
                if (!accept_punct(",")) break;
            }
        }
        expect_punct(")");
        while (accept_ident("view") || accept_ident("payable")) {
        }

        emit_.bind(fn_labels.at(info.name));
        emit_.op(OpCode::kPop); // drop the selector copy

        if (!info.is_payable) {
            emit_.op(OpCode::kCallValue);
            emit_.op(OpCode::kIsZero);
            emit_.op(OpCode::kRequire);
        }

        // Bind parameters: calldata words 1..n into memory slots.
        for (std::size_t p = 0; p < params.size(); ++p) {
            const std::size_t slot = local_slot(params[p], /*define=*/true, cur().line);
            emit_.push_u64(slot);
            emit_.push_u64(p + 1);
            emit_.op(OpCode::kCallDataLoad);
            emit_.op(OpCode::kMStore);
        }

        in_view_fn_ = info.is_view;
        expect_punct("{");
        while (!at_punct("}")) statement();
        expect_punct("}");
        emit_.op(OpCode::kStop); // implicit return

        functions_.push_back(std::move(info));
    }
}


void Compiler::block() {
    expect_punct("{");
    while (!at_punct("}")) statement();
    expect_punct("}");
}

void Compiler::statement() {
    const int line = cur().line;

    if (accept_ident("let")) {
        const std::string name = expect_ident();
        expect_punct("=");
        const std::size_t slot = local_slot(name, /*define=*/true, line);
        emit_.push_u64(slot);
        expression();
        emit_.op(OpCode::kMStore);
        expect_punct(";");
        return;
    }

    if (accept_ident("if")) {
        expect_punct("(");
        expression();
        expect_punct(")");
        const int else_label = emit_.new_label();
        const int end_label = emit_.new_label();
        emit_.op(OpCode::kIsZero);
        emit_.jumpi(else_label);
        block();
        if (accept_ident("else")) {
            emit_.jump(end_label);
            emit_.bind(else_label);
            block();
            emit_.bind(end_label);
        } else {
            emit_.bind(else_label);
        }
        return;
    }

    if (accept_ident("while")) {
        const int head = emit_.new_label();
        const int exit = emit_.new_label();
        emit_.bind(head);
        expect_punct("(");
        expression();
        expect_punct(")");
        emit_.op(OpCode::kIsZero);
        emit_.jumpi(exit);
        block();
        emit_.jump(head);
        emit_.bind(exit);
        return;
    }

    if (accept_ident("return")) {
        if (accept_punct(";")) {
            emit_.op(OpCode::kStop);
            return;
        }
        expression();
        expect_punct(";");
        emit_.op(OpCode::kReturn);
        return;
    }

    if (accept_ident("revert")) {
        expect_punct(";");
        emit_.op(OpCode::kRevert);
        return;
    }

    if (accept_ident("require")) {
        expect_punct("(");
        expression();
        expect_punct(")");
        expect_punct(";");
        emit_.op(OpCode::kRequire);
        return;
    }

    if (accept_ident("emit")) {
        const std::string event_name = expect_ident();
        expect_punct("(");
        emit_.push_word(event_topic(event_name));
        expression();
        expect_punct(")");
        expect_punct(";");
        if (in_view_fn_) fail(line, "emit not allowed in view function");
        emit_.op(OpCode::kEmit);
        return;
    }

    if (accept_ident("transfer")) {
        expect_punct("(");
        expression(); // to
        expect_punct(",");
        expression(); // amount
        expect_punct(")");
        expect_punct(";");
        if (in_view_fn_) fail(line, "transfer not allowed in view function");
        emit_.op(OpCode::kTransfer);
        return;
    }

    // Assignment: IDENT = expr; | IDENT [ expr ] = expr;
    if (cur().kind == TokKind::kIdent) {
        const std::string name = next().text;
        if (accept_punct("[")) {
            if (!is_map(name)) fail(line, "'" + name + "' is not a map");
            if (in_view_fn_) fail(line, "storage write in view function");
            map_key(name);
            expect_punct("=");
            expression();
            expect_punct(";");
            emit_.op(OpCode::kSStore);
            return;
        }
        expect_punct("=");
        if (is_storage(name)) {
            if (in_view_fn_) fail(line, "storage write in view function");
            emit_.push_u64(storage_.at(name));
            expression();
            expect_punct(";");
            emit_.op(OpCode::kSStore);
            return;
        }
        const std::size_t slot = local_slot(name, /*define=*/false, line);
        emit_.push_u64(slot);
        expression();
        expect_punct(";");
        emit_.op(OpCode::kMStore);
        return;
    }

    fail(line, "unexpected token '" + cur().text + "'");
}

void Compiler::or_expr() {
    and_expr();
    while (accept_punct("||")) {
        and_expr();
        emit_.op(OpCode::kOr);
    }
}

void Compiler::and_expr() {
    cmp_expr();
    while (accept_punct("&&")) {
        cmp_expr();
        emit_.op(OpCode::kAnd);
    }
}

void Compiler::cmp_expr() {
    add_expr();
    for (;;) {
        if (accept_punct("==")) {
            add_expr();
            emit_.op(OpCode::kEq);
        } else if (accept_punct("!=")) {
            add_expr();
            emit_.op(OpCode::kEq);
            emit_.op(OpCode::kIsZero);
        } else if (accept_punct("<")) {
            add_expr();
            emit_.op(OpCode::kLt);
        } else if (accept_punct(">")) {
            add_expr();
            emit_.op(OpCode::kGt);
        } else if (accept_punct("<=")) {
            add_expr();
            emit_.op(OpCode::kGt);
            emit_.op(OpCode::kIsZero);
        } else if (accept_punct(">=")) {
            add_expr();
            emit_.op(OpCode::kLt);
            emit_.op(OpCode::kIsZero);
        } else {
            return;
        }
    }
}

void Compiler::add_expr() {
    mul_expr();
    for (;;) {
        if (accept_punct("+")) {
            mul_expr();
            emit_.op(OpCode::kAdd);
        } else if (accept_punct("-")) {
            mul_expr();
            emit_.op(OpCode::kSub);
        } else {
            return;
        }
    }
}

void Compiler::mul_expr() {
    unary_expr();
    for (;;) {
        if (accept_punct("*")) {
            unary_expr();
            emit_.op(OpCode::kMul);
        } else if (accept_punct("/")) {
            unary_expr();
            emit_.op(OpCode::kDiv);
        } else if (accept_punct("%")) {
            unary_expr();
            emit_.op(OpCode::kMod);
        } else {
            return;
        }
    }
}

void Compiler::unary_expr() {
    if (accept_punct("!")) {
        unary_expr();
        emit_.op(OpCode::kIsZero);
        return;
    }
    if (accept_punct("-")) {
        unary_expr();
        emit_.push_u64(0);
        emit_.swap(1);
        emit_.op(OpCode::kSub);
        return;
    }
    primary_expr();
}

void Compiler::primary_expr() {
    const int line = cur().line;

    if (accept_punct("(")) {
        expression();
        expect_punct(")");
        return;
    }

    if (cur().kind == TokKind::kNumber) {
        const std::string text = next().text;
        try {
            if (text.starts_with("0x") || text.starts_with("0X")) {
                emit_.push_word(Word::from_hex(text.substr(2)));
            } else {
                std::uint64_t value = 0;
                const auto [ptr, ec] =
                    std::from_chars(text.data(), text.data() + text.size(), value);
                if (ec != std::errc() || ptr != text.data() + text.size())
                    fail(line, "bad number '" + text + "'");
                emit_.push_u64(value);
            }
        } catch (const Error&) {
            fail(line, "bad number '" + text + "'");
        }
        return;
    }

    if (cur().kind != TokKind::kIdent) fail(line, "expected expression");
    const std::string name = next().text;

    if (name == "caller") {
        emit_.op(OpCode::kCaller);
        return;
    }
    if (name == "callvalue") {
        emit_.op(OpCode::kCallValue);
        return;
    }
    if (name == "self") {
        emit_.op(OpCode::kSelfAddr);
        return;
    }
    if (name == "timestamp") {
        emit_.op(OpCode::kTimestamp);
        return;
    }
    if (name == "gasleft") {
        emit_.op(OpCode::kGasLeft);
        return;
    }
    if (name == "balance") {
        expect_punct("(");
        expression();
        expect_punct(")");
        emit_.op(OpCode::kBalance);
        return;
    }

    if (accept_punct("[")) {
        if (!is_map(name)) fail(line, "'" + name + "' is not a map");
        map_key(name);
        emit_.op(OpCode::kSLoad);
        return;
    }

    if (is_storage(name)) {
        emit_.push_u64(storage_.at(name));
        emit_.op(OpCode::kSLoad);
        return;
    }

    const std::size_t slot = local_slot(name, /*define=*/false, line);
    emit_.push_u64(slot);
    emit_.op(OpCode::kMLoad);
}

} // namespace

const FunctionInfo* CompiledContract::find_function(std::string_view fn) const {
    for (const auto& info : functions)
        if (info.name == fn) return &info;
    return nullptr;
}

CompiledContract compile(std::string_view source) {
    Compiler compiler(source);
    return compiler.compile();
}

Word selector_of(std::string_view fn_name) {
    const Hash256 digest = crypto::tagged_hash("dlt/selector", to_bytes(fn_name));
    // Use the low 8 bytes as the selector word (collisions are negligible at
    // contract scale and checked per contract at compile time).
    std::uint64_t sel = 0;
    for (int i = 0; i < 8; ++i) sel = (sel << 8) | digest[static_cast<std::size_t>(i)];
    return Word(sel);
}

Word event_topic(std::string_view event_name) {
    return Word::from_hash(crypto::tagged_hash("dlt/event", to_bytes(event_name)));
}

std::vector<Word> encode_call(std::string_view fn, const std::vector<Word>& args) {
    std::vector<Word> calldata;
    calldata.reserve(args.size() + 1);
    calldata.push_back(selector_of(fn));
    for (const auto& a : args) calldata.push_back(a);
    return calldata;
}

} // namespace dlt::contract
