#include "contract/stdlib.hpp"

namespace dlt::contract::stdlib {

std::string hello_world_source() {
    return R"(
contract HelloWorld {
    storage greeting;

    fn init(g) { greeting = g; }

    fn setGreeting(g) { greeting = g; }

    fn say() view { return greeting; }
}
)";
}

std::string token_source() {
    return R"(
contract Token {
    storage supply;
    storage minter;
    map balances;
    map allowances;

    fn init(initialSupply) {
        minter = caller;
        supply = initialSupply;
        balances[caller] = initialSupply;
    }

    fn balanceOf(who) view { return balances[who]; }

    fn totalSupply() view { return supply; }

    fn transfer(to, amount) {
        require(balances[caller] >= amount);
        balances[caller] = balances[caller] - amount;
        balances[to] = balances[to] + amount;
        emit Transfer(amount);
    }

    fn approve(spender, amount) {
        // Allowance key: hash of (owner, spender) folded into one map key.
        allowances[caller * 7919 + spender] = amount;
        emit Approval(amount);
    }

    fn allowance(owner, spender) view {
        return allowances[owner * 7919 + spender];
    }

    fn transferFrom(owner, to, amount) {
        require(allowances[owner * 7919 + caller] >= amount);
        require(balances[owner] >= amount);
        allowances[owner * 7919 + caller] = allowances[owner * 7919 + caller] - amount;
        balances[owner] = balances[owner] - amount;
        balances[to] = balances[to] + amount;
        emit Transfer(amount);
    }
}
)";
}

std::string crowdfund_source() {
    return R"(
contract Crowdfund {
    storage owner;
    storage goal;
    storage deadline;
    storage raised;
    storage claimed;
    map pledged;

    fn init(g, d) {
        owner = caller;
        goal = g;
        deadline = d;
        raised = 0;
        claimed = 0;
    }

    fn donate() payable {
        require(timestamp < deadline);
        require(callvalue > 0);
        pledged[caller] = pledged[caller] + callvalue;
        raised = raised + callvalue;
        emit Donated(callvalue);
    }

    fn claim() {
        require(caller == owner);
        require(raised >= goal);
        require(claimed == 0);
        claimed = 1;
        transfer(owner, raised);
        emit Claimed(raised);
    }

    fn refund() {
        require(timestamp >= deadline);
        require(raised < goal);
        let amount = pledged[caller];
        require(amount > 0);
        pledged[caller] = 0;
        raised = raised - amount;
        transfer(caller, amount);
        emit Refunded(amount);
    }

    fn totalRaised() view { return raised; }

    fn pledgeOf(who) view { return pledged[who]; }
}
)";
}

std::string escrow_source() {
    return R"(
contract Escrow {
    storage buyer;
    storage seller;
    storage arbiter;
    storage amount;
    storage settled;

    fn init(sellerAddr, arbiterAddr) payable {
        buyer = caller;
        seller = sellerAddr;
        arbiter = arbiterAddr;
        amount = callvalue;
        settled = 0;
    }

    fn release() {
        require(caller == arbiter || caller == buyer);
        require(settled == 0);
        settled = 1;
        transfer(seller, amount);
        emit Released(amount);
    }

    fn refund() {
        require(caller == arbiter || caller == seller);
        require(settled == 0);
        settled = 1;
        transfer(buyer, amount);
        emit Refunded(amount);
    }

    fn status() view { return settled; }
}
)";
}

std::string notary_source() {
    return R"(
contract Notary {
    map documentOwner;
    map documentTime;

    fn registerDocument(digest) {
        require(documentOwner[digest] == 0);
        documentOwner[digest] = caller;
        documentTime[digest] = timestamp;
        emit Registered(digest);
    }

    fn ownerOf(digest) view { return documentOwner[digest]; }

    fn registeredAt(digest) view { return documentTime[digest]; }

    fn verify(digest, claimedOwner) view {
        return documentOwner[digest] == claimedOwner;
    }
}
)";
}

} // namespace dlt::contract::stdlib
