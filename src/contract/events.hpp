// Messaging / event-notification middleware (paper §5.2: "we envision that
// blockchain middleware will be developed for the following services:
// messaging and event notification, ..."). Applications subscribe to contract
// events by contract address and/or topic; the bus polls the world event log
// with a cursor so subscribers see each matching event exactly once, in order.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "contract/engine.hpp"

namespace dlt::contract {

/// Subscription filter: match by contract, by topic, both, or everything.
struct EventFilter {
    std::optional<Address> contract;
    std::optional<Word> topic;

    bool matches(const WorldState::LoggedEvent& e) const {
        if (contract && e.contract != *contract) return false;
        if (topic && e.event.topic != *topic) return false;
        return true;
    }
};

/// A delivered notification.
struct Notification {
    std::size_t log_index = 0; // position in the world event log
    Address contract;
    Event event;
};

class EventBus {
public:
    explicit EventBus(const WorldState& world) : world_(&world) {}

    using Handler = std::function<void(const Notification&)>;

    /// Register a subscription; returns its id. Delivery starts from the
    /// current end of the log (new events only) unless `from_start` is set.
    std::size_t subscribe(EventFilter filter, Handler handler,
                          bool from_start = false);

    /// Cancel a subscription; returns false when the id is unknown.
    bool unsubscribe(std::size_t id);

    /// Deliver all new matching events to every subscriber (call after
    /// executing transactions). Returns the number of notifications delivered.
    std::size_t poll();

private:
    struct Subscription {
        std::size_t id;
        EventFilter filter;
        Handler handler;
        std::size_t cursor; // next log index to examine
        bool active = true;
    };

    const WorldState* world_;
    std::vector<Subscription> subs_;
    std::size_t next_id_ = 1;
};

} // namespace dlt::contract
