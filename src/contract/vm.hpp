// Smart-contract virtual machine (paper §2.5, contract layer of §4.3): a
// gas-metered 256-bit stack machine in the EVM tradition. Every instruction
// costs gas; state-mutating instructions cost more; running out of gas or
// hitting REVERT aborts the call and rolls back its state effects. Constant
// (read-only) calls execute without a transaction and cost the caller nothing —
// exactly the say()/setGreeting() distinction in the paper's Solidity example.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/keys.hpp"
#include "crypto/uint256.hpp"

namespace dlt::contract {

using Word = crypto::U256;

enum class OpCode : std::uint8_t {
    kStop = 0x00,
    kPush = 0x01,      // followed by 32-byte immediate
    kPop = 0x02,
    kDup = 0x03,       // followed by 1-byte depth (0 = top)
    kSwap = 0x04,      // followed by 1-byte depth (swap top with top-n)
    kAdd = 0x10,
    kSub = 0x11,
    kMul = 0x12,
    kDiv = 0x13,       // x / 0 == 0 (EVM convention)
    kMod = 0x14,
    kLt = 0x15,
    kGt = 0x16,
    kEq = 0x17,
    kIsZero = 0x18,
    kAnd = 0x19,       // logical
    kOr = 0x1A,        // logical
    kJump = 0x20,      // target from stack
    kJumpI = 0x21,     // target, condition from stack
    kSLoad = 0x30,     // key -> value
    kSStore = 0x31,    // key, value ->
    kCaller = 0x40,    // push caller address (zero-extended)
    kCallValue = 0x41,
    kSelfAddr = 0x42,
    kBalance = 0x43,   // address -> balance
    kGasLeft = 0x44,
    kTimestamp = 0x45,
    kCallDataLoad = 0x50, // word index -> word
    kCallDataSize = 0x51,
    kSha3 = 0x52,      // two words -> hash word (keyed pair hash)
    kMLoad = 0x53,     // memory slot -> word (scratch memory, zero-initialized)
    kMStore = 0x54,    // slot, word ->

    kTransfer = 0x60,  // to, amount -> (moves value out of the contract)
    kEmit = 0x70,      // topic, value -> appends an event
    kReturn = 0x80,    // top of stack is the return word
    kRevert = 0x81,
    kRequire = 0x82,   // condition -> (reverts when zero)
};

/// Gas schedule (ratios mirror the EVM's shape: storage writes dominate).
struct GasSchedule {
    std::uint64_t base = 1;        // most opcodes
    std::uint64_t sload = 20;
    std::uint64_t sstore = 100;
    std::uint64_t transfer = 50;
    std::uint64_t emit_event = 30;
    std::uint64_t sha3 = 10;
    std::uint64_t deploy_per_byte = 2;
};

/// Event emitted during execution.
struct Event {
    Word topic;
    Word value;

    friend bool operator==(const Event&, const Event&) = default;
};

/// Mutable world the VM executes against. The engine (engine.hpp) implements
/// this over real account state; tests may stub it.
class HostInterface {
public:
    virtual ~HostInterface() = default;

    virtual Word storage_load(const Word& key) = 0;
    virtual void storage_store(const Word& key, const Word& value) = 0;
    virtual std::int64_t balance_of(const Word& address_word) = 0;
    /// Move `amount` from the executing contract to `to`; returns false (and
    /// the VM reverts) when the contract balance is insufficient.
    virtual bool transfer(const Word& to, std::int64_t amount) = 0;
    virtual void emit(const Event& event) = 0;
    virtual double timestamp() = 0;
};

struct CallContext {
    Word caller;        // address word of the caller
    Word self;          // address word of the executing contract
    std::int64_t value = 0; // coins attached
    std::vector<Word> calldata;
    std::uint64_t gas_limit = 100'000;
};

enum class VmStatus { kSuccess, kReverted, kOutOfGas, kBadInstruction, kStackError };

struct VmResult {
    VmStatus status = VmStatus::kSuccess;
    std::optional<Word> return_value;
    std::uint64_t gas_used = 0;
    std::vector<Event> events;

    bool ok() const { return status == VmStatus::kSuccess; }
};

/// Execute `code` to completion. Storage effects go through `host` as they
/// happen; the engine wraps execution in a rollback scope.
VmResult execute(const Bytes& code, const CallContext& ctx, HostInterface& host,
                 const GasSchedule& gas = {});

/// Pack an address into a stack word (zero-extended big-endian).
Word address_to_word(const crypto::Address& addr);
/// Truncate a word back to an address (low 20 bytes of the BE encoding).
crypto::Address word_to_address(const Word& word);

const char* vm_status_name(VmStatus status);

} // namespace dlt::contract
