// Discrete-event scheduler: the heart of the simulation substrate (see DESIGN.md
// substitutions). Events are (time, sequence) ordered for full determinism;
// handlers may schedule further events. Virtual time is decoupled from wall
// clock, so simulating a day of a 10-minute-block network takes milliseconds.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"

namespace dlt::sim {

/// Token identifying a scheduled event; usable to cancel timers.
using EventId = std::uint64_t;

class Scheduler {
public:
    Scheduler() = default;

    SimTime now() const { return now_; }

    /// Schedule `fn` at absolute time `t` (>= now). Returns a cancellation token.
    EventId schedule_at(SimTime t, std::function<void()> fn);

    /// Schedule `fn` after a delay (>= 0).
    EventId schedule_after(SimDuration delay, std::function<void()> fn) {
        return schedule_at(now_ + delay, std::move(fn));
    }

    /// Cancel a pending event; returns false when already fired or cancelled.
    bool cancel(EventId id);

    /// Run the next event; returns false when the queue is empty.
    bool step();

    /// Run events until the queue empties or virtual time would exceed `t`.
    /// Returns the number of events processed. The clock is advanced to `t`
    /// even if the queue empties earlier.
    std::size_t run_until(SimTime t);

    /// Run until the queue is empty or `max_events` have fired.
    std::size_t run(std::size_t max_events = std::numeric_limits<std::size_t>::max());

    bool idle() const { return handlers_.empty(); }
    std::size_t pending() const { return handlers_.size(); }
    std::uint64_t events_processed() const { return processed_; }

private:
    struct Entry {
        SimTime time;
        std::uint64_t seq;
        EventId id;

        bool operator>(const Entry& other) const {
            if (time != other.time) return time > other.time;
            return seq > other.seq;
        }
    };

    SimTime now_ = kSimStart;
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
    std::uint64_t processed_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    std::unordered_map<EventId, std::function<void()>> handlers_;
};

} // namespace dlt::sim
