// Discrete-event scheduler: the heart of the simulation substrate (see DESIGN.md
// substitutions). Events are (time, id) ordered for full determinism; handlers
// may schedule further events. Virtual time is decoupled from wall clock, so
// simulating a day of a 10-minute-block network takes milliseconds.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace dlt::sim {

/// Token identifying a scheduled event; usable to cancel timers.
using EventId = std::uint64_t;

/// Event ids are issued monotonically, so the id doubles as the FIFO tie-break
/// within a timestamp, and handlers live in a contiguous sliding window indexed
/// by id instead of a hash map: scheduling is a heap push + deque append, and
/// cancellation just nulls the handler slot (a tombstone the heap pop skips).
/// This removes the per-event hash insert/find/erase of the old
/// unordered_map-based design from the hottest loop in the simulator.
class Scheduler {
public:
    Scheduler() = default;

    SimTime now() const { return now_; }

    /// Schedule `fn` at absolute time `t` (>= now). Returns a cancellation token.
    EventId schedule_at(SimTime t, std::function<void()> fn);

    /// Schedule `fn` after a delay (>= 0).
    EventId schedule_after(SimDuration delay, std::function<void()> fn) {
        return schedule_at(now_ + delay, std::move(fn));
    }

    /// Cancel a pending event; returns false when already fired or cancelled.
    bool cancel(EventId id);

    /// Run the next event; returns false when the queue is empty.
    bool step();

    /// Run events until the queue empties or virtual time would exceed `t`.
    /// Returns the number of events processed. The clock is advanced to `t`
    /// even if the queue empties earlier.
    std::size_t run_until(SimTime t);

    /// Run until the queue is empty or `max_events` have fired.
    std::size_t run(std::size_t max_events = std::numeric_limits<std::size_t>::max());

    bool idle() const { return live_ == 0; }
    std::size_t pending() const { return live_; }
    std::uint64_t events_processed() const { return processed_; }

private:
    struct Entry {
        SimTime time;
        EventId id; // monotonic: orders FIFO within equal times

        bool operator>(const Entry& other) const {
            if (time != other.time) return time > other.time;
            return id > other.id;
        }
    };

    /// Handler for the event with id base_id_ + index; empty when the event
    /// already fired or was cancelled (tombstone).
    struct Slot {
        std::function<void()> fn;
    };

    /// Slot for `id`, or nullptr when outside the live window.
    Slot* slot_of(EventId id) {
        if (id < base_id_ || id >= next_id_) return nullptr;
        return &slots_[static_cast<std::size_t>(id - base_id_)];
    }

    /// Drop consumed slots from the front of the window.
    void trim_front() {
        while (!slots_.empty() && slots_.front().fn == nullptr) {
            slots_.pop_front();
            ++base_id_;
        }
    }

    SimTime now_ = kSimStart;
    EventId next_id_ = 1;
    EventId base_id_ = 1; // id of slots_.front()
    std::size_t live_ = 0;
    std::uint64_t processed_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    std::deque<Slot> slots_;
};

} // namespace dlt::sim
