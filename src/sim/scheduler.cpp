#include "sim/scheduler.hpp"

#include "common/assert.hpp"

namespace dlt::sim {

EventId Scheduler::schedule_at(SimTime t, std::function<void()> fn) {
    DLT_EXPECTS(t >= now_);
    DLT_EXPECTS(fn != nullptr);
    const EventId id = next_id_++;
    queue_.push(Entry{t, next_seq_++, id});
    handlers_.emplace(id, std::move(fn));
    return id;
}

bool Scheduler::cancel(EventId id) { return handlers_.erase(id) > 0; }

bool Scheduler::step() {
    while (!queue_.empty()) {
        const Entry entry = queue_.top();
        queue_.pop();
        const auto it = handlers_.find(entry.id);
        if (it == handlers_.end()) continue; // cancelled
        now_ = entry.time;
        // Move the handler out before invoking: it may schedule or cancel events,
        // invalidating iterators.
        std::function<void()> fn = std::move(it->second);
        handlers_.erase(it);
        ++processed_;
        fn();
        return true;
    }
    return false;
}

std::size_t Scheduler::run_until(SimTime t) {
    std::size_t count = 0;
    while (!queue_.empty()) {
        // Skip over cancelled entries to find the true next event time.
        const auto it = handlers_.find(queue_.top().id);
        if (it == handlers_.end()) {
            queue_.pop();
            continue;
        }
        if (queue_.top().time > t) break;
        step();
        ++count;
    }
    now_ = t > now_ ? t : now_;
    return count;
}

std::size_t Scheduler::run(std::size_t max_events) {
    std::size_t count = 0;
    while (count < max_events && step()) ++count;
    return count;
}

} // namespace dlt::sim
