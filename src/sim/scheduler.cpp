#include "sim/scheduler.hpp"

#include "common/assert.hpp"

namespace dlt::sim {

EventId Scheduler::schedule_at(SimTime t, std::function<void()> fn) {
    DLT_EXPECTS(t >= now_);
    DLT_EXPECTS(fn != nullptr);
    const EventId id = next_id_++;
    queue_.push(Entry{t, id});
    slots_.push_back(Slot{std::move(fn)});
    ++live_;
    return id;
}

bool Scheduler::cancel(EventId id) {
    Slot* slot = slot_of(id);
    if (slot == nullptr || slot->fn == nullptr) return false;
    slot->fn = nullptr; // tombstone; the heap entry is skipped when popped
    --live_;
    trim_front();
    return true;
}

bool Scheduler::step() {
    while (!queue_.empty()) {
        const Entry entry = queue_.top();
        queue_.pop();
        Slot* slot = slot_of(entry.id);
        if (slot == nullptr || slot->fn == nullptr) continue; // cancelled
        now_ = entry.time;
        // Move the handler out before invoking: it may schedule or cancel
        // events, growing or trimming the slot window.
        std::function<void()> fn = std::move(slot->fn);
        slot->fn = nullptr;
        --live_;
        trim_front();
        ++processed_;
        fn();
        return true;
    }
    return false;
}

std::size_t Scheduler::run_until(SimTime t) {
    std::size_t count = 0;
    while (!queue_.empty()) {
        // Skip over cancelled entries to find the true next event time.
        const Entry& top = queue_.top();
        Slot* slot = slot_of(top.id);
        if (slot == nullptr || slot->fn == nullptr) {
            queue_.pop();
            continue;
        }
        if (top.time > t) break;
        step();
        ++count;
    }
    now_ = t > now_ ? t : now_;
    return count;
}

std::size_t Scheduler::run(std::size_t max_events) {
    std::size_t count = 0;
    while (count < max_events && step()) ++count;
    return count;
}

} // namespace dlt::sim
