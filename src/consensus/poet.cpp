#include "consensus/poet.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace dlt::consensus {

Bytes WaitCertificate::encode() const {
    Writer w;
    w.u64(round);
    w.u32(peer);
    w.f64(wait_seconds);
    return std::move(w).take();
}

WaitCertificate WaitCertificate::decode(ByteView raw) {
    Reader r(raw);
    WaitCertificate cert;
    cert.round = r.u64();
    cert.peer = r.u32();
    cert.wait_seconds = r.f64();
    r.expect_done();
    return cert;
}

WaitCertificate poet_draw(const Hash256& seed, std::uint64_t round,
                          std::uint32_t peer, double mean_wait) {
    DLT_EXPECTS(mean_wait > 0);
    Writer w;
    w.fixed(seed);
    w.u64(round);
    w.u32(peer);
    const Hash256 digest = crypto::tagged_hash("dlt/poet-wait", w.data());

    // Uniform in (0,1] from the top 53 bits, then an exponential via inversion.
    std::uint64_t top = 0;
    for (int i = 0; i < 8; ++i) top = (top << 8) | digest[static_cast<std::size_t>(i)];
    const double u = (static_cast<double>(top >> 11) + 1.0) * 0x1.0p-53;
    const double wait = -std::log(u) * mean_wait;

    return WaitCertificate{round, peer, wait};
}

bool verify_wait_certificate(const WaitCertificate& cert, const Hash256& seed,
                             double mean_wait) {
    const WaitCertificate expected = poet_draw(seed, cert.round, cert.peer, mean_wait);
    return expected.wait_seconds == cert.wait_seconds;
}

std::uint32_t poet_round_winner(const Hash256& seed, std::uint64_t round,
                                std::uint32_t peer_count, double mean_wait) {
    DLT_EXPECTS(peer_count > 0);
    std::uint32_t winner = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::uint32_t peer = 0; peer < peer_count; ++peer) {
        const double wait = poet_draw(seed, round, peer, mean_wait).wait_seconds;
        if (wait < best) {
            best = wait;
            winner = peer;
        }
    }
    return winner;
}

double poet_round_duration(const Hash256& seed, std::uint64_t round,
                           std::uint32_t peer_count, double mean_wait) {
    DLT_EXPECTS(peer_count > 0);
    double best = std::numeric_limits<double>::infinity();
    for (std::uint32_t peer = 0; peer < peer_count; ++peer)
        best = std::min(best, poet_draw(seed, round, peer, mean_wait).wait_seconds);
    return best;
}

} // namespace dlt::consensus
