#include "consensus/ordering.hpp"

#include <memory>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "ledger/validation.hpp"
#include "obs/metrics.hpp"

namespace dlt::consensus {

using ledger::Transaction;

OrderingService::OrderingService(OrderingParams params, std::uint64_t seed)
    : params_(std::move(params)), rng_(seed) {
    DLT_EXPECTS(params_.peer_count >= 2);
    DLT_EXPECTS(params_.batch_size >= 1);
    network_ = std::make_unique<net::Network>(scheduler_, rng_.fork(3));
    if (params_.fee_market) fee_pool_.emplace(params_.mempool);
    ledgers_.resize(params_.peer_count);
    reorder_.resize(params_.peer_count);
    next_seq_.assign(params_.peer_count, 1);
    for (std::uint32_t i = 0; i < params_.peer_count; ++i) {
        const net::NodeId id = network_->add_node(
            [this, i](const net::Delivery& d) { on_deliver(i, d); });
        DLT_ENSURES(id == i);
    }
    network_->build_full_mesh(params_.link);
}

std::uint32_t OrderingService::current_orderer() const {
    if (params_.mode == OrdererMode::kStaticLeader) return 0;
    // Rotating: leadership advances with each block (periodic election).
    return static_cast<std::uint32_t>(next_sequence_ %
                                      static_cast<std::uint64_t>(params_.peer_count));
}

void OrderingService::submit(Transaction tx) {
    std::size_t queued = 0;
    if (params_.fee_market) {
        // Admission control replaces the unbounded FIFO: the pool may refuse
        // (full / fee floor / duplicate) or RBF-replace; only admitted txs are
        // eligible for batching, highest feerate first.
        const Hash256 txid = tx.txid();
        const auto verdict = fee_pool_->admit(std::move(tx), scheduler_.now());
        if (verdict != ledger::AdmissionResult::kAccepted &&
            verdict != ledger::AdmissionResult::kRbfReplaced)
            return;
        submit_times_[txid] = scheduler_.now();
        queued = fee_pool_->size();
    } else {
        pending_.emplace_back(std::move(tx), scheduler_.now());
        queued = pending_.size();
    }
    if (queued >= params_.batch_size) {
        if (batch_timer_) {
            scheduler_.cancel(*batch_timer_);
            batch_timer_.reset();
        }
        cut_batch();
        return;
    }
    arm_timer();
}

void OrderingService::arm_timer() {
    const bool idle = params_.fee_market ? fee_pool_->empty() : pending_.empty();
    if (batch_timer_ || idle) return;
    batch_timer_ = scheduler_.schedule_after(params_.batch_interval, [this] {
        batch_timer_.reset();
        cut_batch();
    });
}

void OrderingService::cut_batch() {
    // Gather the batch first: FIFO order off the pending queue, or highest
    // feerate first off the fee pool's maintained index.
    std::vector<Transaction> batch;
    std::vector<SimTime> times;
    if (params_.fee_market) {
        fee_pool_->expire(scheduler_.now());
        const auto tmpl = fee_pool_->build_template(
            std::numeric_limits<std::size_t>::max(), params_.batch_size);
        std::vector<Hash256> cut_ids;
        cut_ids.reserve(tmpl.size());
        for (const auto& entry : tmpl) {
            batch.push_back(*entry.tx);
            const Hash256 id = batch.back().txid();
            cut_ids.push_back(id);
            const auto it = submit_times_.find(id);
            times.push_back(it != submit_times_.end() ? it->second
                                                      : scheduler_.now());
            if (it != submit_times_.end()) submit_times_.erase(it);
        }
        fee_pool_->remove_confirmed(cut_ids);
    } else {
        const std::size_t take = std::min(params_.batch_size, pending_.size());
        for (std::size_t i = 0; i < take; ++i) {
            batch.push_back(std::move(pending_[i].first));
            times.push_back(pending_[i].second);
        }
        pending_.erase(pending_.begin(),
                       pending_.begin() + static_cast<std::ptrdiff_t>(take));
    }
    if (batch.empty()) return; // expiry can drain the fee pool under the timer

    const std::uint32_t orderer = current_orderer();
    const std::uint64_t seq = next_sequence_++;

    const std::size_t take = batch.size();
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("ordering_batches_cut_total", "Batches cut by the orderer")
        .inc();
    registry
        .histogram("ordering_batch_size", "Transactions per cut batch",
                   {1.0, 2.0, 16})
        .record(static_cast<double>(take));
    Writer w;
    w.u64(seq);
    w.u32(orderer);
    w.varint(take);
    for (const auto& tx : batch) tx.encode(w);
    batch_submit_times_.emplace(seq, std::move(times));

    const auto payload = std::make_shared<const Bytes>(w.data());
    // Deliver to every committing peer, including the orderer's own peer; all
    // deliveries share one payload buffer.
    for (std::uint32_t to = 0; to < params_.peer_count; ++to) {
        if (to == orderer) {
            scheduler_.schedule_after(0.0, [this, to, payload] {
                on_deliver(to, net::Delivery{to, "block", payload});
            });
        } else {
            network_->send(orderer, to, "block", payload);
        }
    }
    arm_timer();
}

void OrderingService::on_deliver(std::uint32_t peer, const net::Delivery& d) {
    if (d.topic != "block") return;
    try {
        Reader r(d.payload());
        OrderedBlock block;
        block.sequence = r.u64();
        block.orderer = r.u32();
        const std::uint64_t count = r.varint();
        block.txs.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i)
            block.txs.push_back(Transaction::decode(r));
        r.expect_done();
        block.delivered_at = scheduler_.now();

        if (peer == 0) {
            ++total_ordered_; // count blocks once, at the observation peer
            const auto it = batch_submit_times_.find(block.sequence);
            if (it != batch_submit_times_.end()) {
                for (const SimTime t : it->second)
                    latencies_.push_back(scheduler_.now() - t);
                batch_submit_times_.erase(it);
            }
        }

        // Append strictly in sequence order; buffer early arrivals. When
        // signature verification is on, each batch is checked (one parallel
        // CheckQueue batch; the sigcache makes peers 2..N nearly free) as it
        // is consumed — a failing batch is skipped identically at every peer,
        // so ledgers stay in lockstep.
        reorder_[peer].emplace(block.sequence, std::move(block));
        auto& buffer = reorder_[peer];
        auto& ledger = ledgers_[peer];
        while (!buffer.empty() && buffer.begin()->first == next_seq_[peer]) {
            OrderedBlock next = std::move(buffer.begin()->second);
            buffer.erase(buffer.begin());
            ++next_seq_[peer];
            if (params_.verify_signatures &&
                !ledger::verify_batch_signatures(next.txs)) {
                if (peer == 0) ++rejected_batches_;
                continue;
            }
            ledger.push_back(std::move(next));
        }
    } catch (const Error&) {
    }
}

void OrderingService::run_for(SimDuration duration) {
    scheduler_.run_until(scheduler_.now() + duration);
}

const ledger::Mempool& OrderingService::mempool() const {
    DLT_EXPECTS(fee_pool_.has_value());
    return *fee_pool_;
}

const std::vector<OrderedBlock>& OrderingService::ledger_of(std::uint32_t peer) const {
    return ledgers_.at(peer);
}

bool OrderingService::ledgers_identical() const {
    for (std::size_t p = 1; p < ledgers_.size(); ++p) {
        if (ledgers_[p].size() != ledgers_[0].size()) return false;
        for (std::size_t i = 0; i < ledgers_[0].size(); ++i) {
            if (ledgers_[p][i].sequence != ledgers_[0][i].sequence) return false;
            if (ledgers_[p][i].txs.size() != ledgers_[0][i].txs.size()) return false;
        }
    }
    return true;
}

std::optional<double> OrderingService::mean_delivery_latency() const {
    if (latencies_.empty()) return std::nullopt;
    double sum = 0;
    for (const double lat : latencies_) sum += lat;
    return sum / static_cast<double>(latencies_.size());
}

} // namespace dlt::consensus
