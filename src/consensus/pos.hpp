// Proof-of-Stake (paper §2.4, §5.4: "requires participants to commit a share of
// the digital currency in order to forge new blocks, which substantially reduces
// the computational efforts"). Slot-based stake lottery: each slot's leader is
// drawn proportionally to stake from a deterministic beacon, so the whole
// network agrees on the winner with a single hash evaluation — the basis of the
// E5 energy/effort comparison against PoW.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/keys.hpp"
#include "ledger/amount.hpp"
#include "ledger/block.hpp"

namespace dlt::consensus {

struct Staker {
    crypto::Address address;
    ledger::Amount stake = 0;
};

class StakeDistribution {
public:
    explicit StakeDistribution(std::vector<Staker> stakers);

    std::size_t size() const { return stakers_.size(); }
    const Staker& at(std::size_t i) const { return stakers_.at(i); }
    ledger::Amount total_stake() const { return total_; }

    /// Index of the staker owning the coin at `offset` in [0, total_stake()):
    /// "follow-the-satoshi" selection.
    std::size_t owner_of(ledger::Amount offset) const;

private:
    std::vector<Staker> stakers_;
    std::vector<ledger::Amount> cumulative_; // exclusive prefix sums
    ledger::Amount total_ = 0;
};

/// Deterministic slot leader: hash(seed, slot) picks a coin uniformly; its owner
/// leads the slot. Every peer evaluates one hash — no grinding.
std::size_t slot_leader(const Hash256& seed, std::uint64_t slot,
                        const StakeDistribution& dist);

/// Stake proof carried in a block's annex: the slot and the forger's index,
/// checkable by any peer holding the same distribution and seed.
struct StakeProof {
    std::uint64_t slot = 0;
    std::uint64_t forger_index = 0;

    Bytes encode() const;
    static StakeProof decode(ByteView raw);
};

/// Validate that `header` was forged by the rightful leader of its slot.
bool verify_stake_proof(const ledger::BlockHeader& header, const Hash256& seed,
                        const StakeDistribution& dist);

/// Forge a PoS block for `slot` on top of `parent` (throws ValidationError when
/// the given forger is not the slot leader).
ledger::Block forge_block(const ledger::Block& parent, std::uint64_t slot,
                          std::size_t forger_index, const Hash256& seed,
                          const StakeDistribution& dist, double timestamp);

/// E5 accounting: expected hash evaluations to produce one block.
struct ConsensusEffort {
    double hashes_per_block_pow;  // 2^difficulty_bits expected grinds
    double hashes_per_block_pos;  // one lottery evaluation per peer
};

ConsensusEffort compare_effort(unsigned pow_difficulty_bits, std::size_t peer_count);

} // namespace dlt::consensus
