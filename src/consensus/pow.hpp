// Proof-of-Work block proposal (paper §2.4): real SHA-256d nonce grinding for
// low-difficulty tests/demos, plus the analytic tools of the Poisson mining
// model that the simulated-time miners (nakamoto.hpp) are built on.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "crypto/uint256.hpp"
#include "ledger/block.hpp"
#include "ledger/difficulty.hpp"

namespace dlt::consensus {

/// Grind the header nonce until the block hash meets the target encoded in
/// header.bits. Returns the winning nonce or nullopt after `max_iterations`.
/// This is the real Fig. 2 "computational puzzle"; use only at low difficulty.
std::optional<std::uint64_t> mine_nonce(ledger::BlockHeader header,
                                        std::uint64_t max_iterations,
                                        std::uint64_t start_nonce = 0);

/// True when the block's own hash satisfies its declared difficulty bits.
bool check_proof_of_work(const ledger::BlockHeader& header);

/// Draw the time (seconds) until a miner holding `hashrate_share` of the
/// network finds the next block, when the whole network averages one block per
/// `block_interval` seconds. Exponential: mining is memoryless.
double sample_block_time(double hashrate_share, double block_interval, Rng& rng);

} // namespace dlt::consensus
