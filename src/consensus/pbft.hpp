// Practical Byzantine Fault Tolerance (paper §2.4: Hyperledger's committing
// peers "execute a Practical Byzantine Fault-Tolerance protocol"). A full
// three-phase implementation over the simulated network: PRE-PREPARE / PREPARE /
// COMMIT with 2f+1 quorums, request batching at the primary, and view changes
// with NEW-VIEW re-proposal when the primary stalls or equivocates. Drives
// experiments E4 (ordering throughput) and E17 (fault tolerance).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "obs/txlifecycle.hpp"
#include "sim/scheduler.hpp"

namespace dlt::consensus {

struct PbftConfig {
    std::uint32_t f = 1;                  // tolerated Byzantine replicas; n = 3f+1
    std::size_t batch_size = 100;         // requests per proposal
    SimDuration batch_interval = 0.2;     // cut a partial batch after this long
    SimDuration view_change_timeout = 5.0;
    net::LinkParams link{};
};

/// Byzantine behaviour injected into a replica (for tests and E17).
enum class PbftFault {
    kNone,
    kCrashed,      // fail-stop: drops everything
    kEquivocating, // as primary, sends conflicting pre-prepares to halves
};

/// One committed batch in a replica's ledger.
struct CommittedBatch {
    std::uint64_t sequence = 0;
    std::uint32_t view = 0;
    std::vector<Bytes> requests;
    SimTime committed_at = 0;
};

class PbftCluster {
public:
    PbftCluster(PbftConfig config, std::uint64_t seed);

    std::uint32_t replica_count() const { return n_; }
    std::uint32_t primary_of_view(std::uint32_t view) const { return view % n_; }

    /// Submit a client request; it is forwarded to every replica (clients
    /// multicast so a faulty primary cannot censor silently).
    void submit(Bytes request);

    /// Inject a fault into one replica.
    void set_fault(std::uint32_t replica, PbftFault fault);

    void run_for(SimDuration duration);
    SimTime now() const { return scheduler_.now(); }

    /// Committed batches at one replica (in sequence order).
    const std::vector<CommittedBatch>& log_of(std::uint32_t replica) const;

    /// Total requests executed at one replica.
    std::size_t executed_requests(std::uint32_t replica) const;

    /// True when all non-faulty replicas have identical logs.
    bool logs_consistent() const;

    /// Highest view number reached by any correct replica (counts view changes).
    std::uint32_t max_view() const;

    /// Mean commit latency (submit -> commit at replica 0) over committed
    /// requests; nullopt when nothing committed.
    std::optional<double> mean_commit_latency() const;

    const net::TrafficStats& traffic() const { return network_->stats(); }
    /// Underlying simulated network (fault injection: apply a FaultPlan,
    /// partition/heal the cluster).
    net::Network& network() { return *network_; }

    /// Request lifecycle telemetry keyed by request digest, observed at
    /// replica 0: submit → pre-prepare (first-seen) → commit (inclusion at the
    /// batch sequence) → execute (deterministic finality). The mempool stage
    /// has no PBFT analogue and stays unstamped.
    const obs::TxLifecycleTracker& lifecycle() const { return lifecycle_; }
    obs::TxLifecycleTracker& lifecycle() { return lifecycle_; }

private:
    struct SlotState {
        Bytes digest;                       // digest of the proposed batch
        std::vector<Bytes> requests;        // payload (known once pre-prepared)
        std::uint32_t view = 0;
        std::set<std::uint32_t> prepares;   // replicas that sent matching PREPARE
        std::set<std::uint32_t> commits;    // replicas that sent matching COMMIT
        bool pre_prepared = false;
        bool prepared = false;
        bool committed = false;
    };

    struct Replica {
        std::uint32_t id = 0;
        std::uint32_t view = 0;
        std::uint64_t next_sequence = 1;    // primary: next seq to assign
        std::uint64_t last_executed = 0;
        PbftFault fault = PbftFault::kNone;
        std::deque<std::pair<Bytes, SimTime>> pending; // un-proposed requests
        std::map<std::uint64_t, SlotState> slots;      // by sequence
        std::vector<CommittedBatch> log;
        std::optional<sim::EventId> batch_timer;
        std::optional<sim::EventId> view_timer;
        std::map<std::uint32_t, std::set<std::uint32_t>> view_votes; // target view -> voters
    };

    bool is_primary(const Replica& r) const { return primary_of_view(r.view) == r.id; }
    void on_message(std::uint32_t replica, const net::Delivery& d);
    void broadcast(std::uint32_t from, const std::string& topic, const Bytes& payload);

    void handle_request(std::uint32_t replica, const Bytes& payload);
    void maybe_cut_batch(std::uint32_t replica);
    void propose_batch(std::uint32_t replica);
    void handle_pre_prepare(std::uint32_t replica, const Bytes& payload);
    void handle_prepare(std::uint32_t replica, const Bytes& payload);
    void handle_commit(std::uint32_t replica, const Bytes& payload);
    void try_advance(std::uint32_t replica, std::uint64_t sequence);
    void execute_ready(std::uint32_t replica);

    void arm_view_timer(std::uint32_t replica);
    void start_view_change(std::uint32_t replica);
    void handle_view_change(std::uint32_t replica, const Bytes& payload);
    void handle_new_view(std::uint32_t replica, const Bytes& payload);
    void enter_view(std::uint32_t replica, std::uint32_t view);

    PbftConfig config_;
    std::uint32_t n_;
    obs::Counter* batches_committed_ = nullptr; // pbft_batches_committed_total
    obs::Counter* requests_executed_ = nullptr; // pbft_requests_executed_total
    obs::Counter* view_changes_ = nullptr;      // pbft_view_changes_total
    sim::Scheduler scheduler_;
    Rng rng_;
    std::unique_ptr<net::Network> network_;
    std::vector<Replica> replicas_;
    std::unordered_map<Hash256, SimTime> submit_times_;
    std::vector<double> commit_latencies_;
    obs::TxLifecycleTracker lifecycle_;
};

} // namespace dlt::consensus
