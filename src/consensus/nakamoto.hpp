// Nakamoto-consensus network simulation: N mining peers on a gossip overlay,
// exponential-race block discovery (the standard Poisson model of PoW),
// longest-chain or GHOST branch selection, full UTXO state with reorgs, and
// the telemetry behind experiments E1-E3 (convergence, throughput vs block
// interval, stale/branch rates).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "consensus/events.hpp"
#include "crypto/keys.hpp"
#include "ledger/chain.hpp"
#include "ledger/difficulty.hpp"
#include "ledger/mempool.hpp"
#include "ledger/utxo.hpp"
#include "ledger/validation.hpp"
#include "net/gossip.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/txlifecycle.hpp"
#include "sim/scheduler.hpp"

namespace dlt::consensus {

/// Branch-selection policy (paper §2.4: "a branch selection algorithm is used
/// by peers to decide which branch to accept").
enum class BranchRule { kLongestChain, kGhost };

struct NakamotoParams {
    std::size_t node_count = 16;
    /// Expected seconds between blocks network-wide (Bitcoin: 600, Ethereum: ~15).
    double block_interval = 600.0;
    BranchRule branch_rule = BranchRule::kLongestChain;
    std::size_t max_block_bytes = 1'000'000;
    std::size_t max_block_txs = 10'000;
    ledger::ValidationRules validation{};
    net::GossipParams gossip{};
    net::LinkParams link{};
    std::size_t overlay_degree = 4;
    /// Per-peer mempool policy (bounds, relay floor, expiry, RBF bump). The
    /// default reproduces the historical greedy pool exactly.
    ledger::MempoolConfig mempool{};
    /// Relative hash power per node; empty means uniform. Normalized internally.
    std::vector<double> hashrate_shares;
    std::string chain_tag = "nakamoto";

    /// Difficulty retargeting (the mechanism that keeps Bitcoin's interval at
    /// 10 minutes no matter how much hash power joins — E2's flat-scaling
    /// claim). When disabled, difficulty stays at genesis bits.
    bool enable_retargeting = false;
    ledger::RetargetParams retarget{};

    /// Confirmations needed before the lifecycle tracker stamps a transaction
    /// k-deep-final (the k of §2.4's probabilistic finality).
    std::uint64_t finality_depth = 6;
};

/// Aggregate results captured while the simulation runs. Mirrored into the
/// global MetricsRegistry (consensus_blocks_mined_total, consensus_reorgs_total,
/// consensus_invalid_blocks_total).
struct NakamotoStats {
    std::uint64_t blocks_mined = 0;
    std::uint64_t reorgs = 0;
    std::uint64_t invalid_blocks = 0;
};

// ChainEvents (the per-peer observer hook set) lives in consensus/events.hpp,
// shared with the DAG ledger.

class NakamotoNetwork {
public:
    explicit NakamotoNetwork(NakamotoParams params, std::uint64_t seed);

    /// Begin mining at every node.
    void start();

    /// Advance virtual time.
    void run_for(SimDuration duration);
    SimTime now() const { return scheduler_.now(); }

    /// Inject a signed transaction at `origin`; it gossips to all peers.
    void submit_transaction(const ledger::Transaction& tx, net::NodeId origin = 0);

    /// Mined-block interposition hook for attack strategies. Invoked after a
    /// node assembles a block, before it is broadcast. Returning true keeps
    /// the honest path (broadcast + local adoption via gossip). Returning
    /// false *withholds* the block: it is inserted into the miner's own chain
    /// only (the miner keeps extending its private fork), and the strategy
    /// decides when — if ever — to release it via publish_block(). Pass
    /// nullptr to restore honest behaviour for every node.
    using MinedBlockHook = std::function<bool(net::NodeId, const ledger::Block&)>;
    void set_mined_block_hook(MinedBlockHook hook) { mined_hook_ = std::move(hook); }

    /// Broadcast a block already stored in `node`'s chain (the release half of
    /// a withhold/release strategy). No-op semantics match normal gossip:
    /// peers that already have the block deduplicate it.
    void publish_block(net::NodeId node, const Hash256& hash);

    /// Gossip overlay (attack drivers install relay filters / send direct
    /// block pushes through this).
    net::GossipOverlay& gossip() { return *gossip_; }

    /// Scale total network hash power (1.0 = one block per block_interval at
    /// genesis difficulty). With retargeting enabled, the interval recovers
    /// after the next adjustment; without it, blocks stay proportionally
    /// faster — the experiment behind §2.7's scalability observation.
    void set_network_hashrate(double multiplier);
    double network_hashrate() const { return network_hashrate_; }

    /// Difficulty bits a block extending `tip` must carry (per the retarget
    /// schedule; genesis bits when retargeting is off).
    std::uint32_t next_bits(net::NodeId node, const Hash256& tip) const;

    /// Observed mean block interval over the last `window` blocks of the
    /// canonical chain (timestamp deltas).
    std::optional<double> observed_interval(std::size_t window = 32) const;

    // --- Inspection -------------------------------------------------------------

    std::size_t node_count() const { return peers_.size(); }

    /// Active tip of one peer.
    const Hash256& tip_of(net::NodeId node) const;

    /// Chain height at one peer's active tip.
    std::uint64_t height_of(net::NodeId node) const;

    /// True when every peer's active tip is identical.
    bool converged() const;

    /// The tip held by a strict majority of peers (nullopt when none).
    std::optional<Hash256> majority_tip() const;

    /// Blocks on peer-0's active chain, excluding genesis.
    std::vector<ledger::Block> canonical_chain() const;

    /// Total non-coinbase transactions confirmed on peer-0's active chain.
    std::uint64_t confirmed_tx_count() const;

    /// Stale blocks known to peer 0 (mined but not on its active chain).
    std::size_t stale_blocks() const;
    /// Stale fraction: stale / total mined (the consistency cost in E3).
    double stale_rate() const;

    /// Depth (confirmations) of the block containing `txid` at peer 0, nullopt
    /// while unconfirmed.
    std::optional<std::uint64_t> confirmations_of(const Hash256& txid) const;

    const NakamotoStats& stats() const { return stats_; }
    const net::TrafficStats& traffic() const { return network_->stats(); }

    /// Transaction lifecycle telemetry (submit → first-seen → mempool →
    /// inclusion → k-deep-final), observed from peer 0's chain.
    const obs::TxLifecycleTracker& lifecycle() const { return lifecycle_; }
    obs::TxLifecycleTracker& lifecycle() { return lifecycle_; }

    /// Observer hooks for one peer's chain events (see ChainEvents). Any node
    /// may be observed; an observer set is materialized on first access.
    /// Defaults to peer 0, the historically observed replica.
    ChainEvents& events(net::NodeId node = 0) { return observers_[node]; }
    /// Underlying simulated network (fault injection: apply a FaultPlan,
    /// partition/heal, churn).
    net::Network& network() { return *network_; }
    const ledger::ChainStore& chain_of(net::NodeId node) const;
    /// One peer's mempool (admission stats, fee-rate floor, resident size) —
    /// how fee-bidding wallets in the workload engine read the market.
    const ledger::Mempool& mempool_of(net::NodeId node) const;
    const ledger::UtxoSet& utxo_of(net::NodeId node) const;
    const crypto::Address& miner_address(net::NodeId node) const;
    sim::Scheduler& scheduler() { return scheduler_; }

private:
    struct Peer {
        std::unique_ptr<ledger::ChainStore> chain;
        Hash256 active_tip;
        ledger::UtxoSet utxo; // state at active_tip
        std::unordered_map<Hash256, ledger::UtxoUndo> undo; // connected blocks
        ledger::Mempool mempool;
        crypto::Address miner;
        double hashrate_share = 0;
        std::optional<sim::EventId> mining_event;
        std::unordered_map<Hash256, std::vector<ledger::Block>> orphans; // by parent
        std::unordered_set<Hash256> invalid;
        std::unordered_set<Hash256> sync_requested; // ancestor fetches in flight
        Rng rng;
    };

    void on_gossip(net::NodeId node, net::NodeId from, const std::string& topic,
                   ByteView payload);
    void handle_block(net::NodeId node, const ledger::Block& block,
                      net::NodeId from);
    /// Ask `from` for a block we are missing (orphan-parent fetch; the request
    /// walks back one hop per round trip until the branch roots in our chain —
    /// how peers resynchronize after a partition heals).
    void request_block(net::NodeId node, const Hash256& hash, net::NodeId from);
    void try_insert_and_update(net::NodeId node, const ledger::Block& block);
    void update_active_tip(net::NodeId node);
    Hash256 select_tip(const Peer& peer) const;
    bool path_contains_invalid(const Peer& peer, const Hash256& tip) const;
    void reorg_to(net::NodeId node, const Hash256& new_tip);
    void schedule_mining(net::NodeId node);
    ledger::Block assemble_block(net::NodeId node);
    /// Observer set for `node`, or nullptr when none was registered.
    ChainEvents* find_events(net::NodeId node);

    NakamotoParams params_;
    MinedBlockHook mined_hook_;
    double network_hashrate_ = 1.0;
    sim::Scheduler scheduler_;
    Rng rng_;
    std::unique_ptr<net::Network> network_;
    std::unique_ptr<net::GossipOverlay> gossip_;
    std::vector<Peer> peers_;
    ledger::Block genesis_;
    NakamotoStats stats_;
    obs::TxLifecycleTracker lifecycle_;
    /// Per-node chain-event observers, materialized on first events() access.
    std::unordered_map<net::NodeId, ChainEvents> observers_;
    obs::Counter* blocks_mined_ = nullptr;   // consensus_blocks_mined_total
    obs::Counter* reorgs_ = nullptr;         // consensus_reorgs_total
    obs::Counter* invalid_blocks_ = nullptr; // consensus_invalid_blocks_total
};

} // namespace dlt::consensus
