#include "consensus/pos.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"
#include "crypto/uint256.hpp"

namespace dlt::consensus {

StakeDistribution::StakeDistribution(std::vector<Staker> stakers)
    : stakers_(std::move(stakers)) {
    DLT_EXPECTS(!stakers_.empty());
    cumulative_.reserve(stakers_.size());
    for (const auto& s : stakers_) {
        DLT_EXPECTS(s.stake > 0);
        cumulative_.push_back(total_);
        total_ += s.stake;
    }
}

std::size_t StakeDistribution::owner_of(ledger::Amount offset) const {
    DLT_EXPECTS(offset >= 0 && offset < total_);
    // Last staker whose cumulative start <= offset.
    const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), offset);
    return static_cast<std::size_t>(std::distance(cumulative_.begin(), it)) - 1;
}

std::size_t slot_leader(const Hash256& seed, std::uint64_t slot,
                        const StakeDistribution& dist) {
    Writer w;
    w.fixed(seed);
    w.u64(slot);
    const Hash256 digest = crypto::tagged_hash("dlt/pos-lottery", w.data());
    const crypto::U256 draw = crypto::U256::from_hash(digest);
    const crypto::U256 offset =
        draw % crypto::U256(static_cast<std::uint64_t>(dist.total_stake()));
    return dist.owner_of(static_cast<ledger::Amount>(offset.low64()));
}

Bytes StakeProof::encode() const {
    Writer w;
    w.u64(slot);
    w.u64(forger_index);
    return std::move(w).take();
}

StakeProof StakeProof::decode(ByteView raw) {
    Reader r(raw);
    StakeProof proof;
    proof.slot = r.u64();
    proof.forger_index = r.u64();
    r.expect_done();
    return proof;
}

bool verify_stake_proof(const ledger::BlockHeader& header, const Hash256& seed,
                        const StakeDistribution& dist) {
    try {
        const StakeProof proof = StakeProof::decode(header.annex);
        if (proof.forger_index >= dist.size()) return false;
        if (slot_leader(seed, proof.slot, dist) != proof.forger_index) return false;
        return dist.at(proof.forger_index).address == header.proposer;
    } catch (const Error&) {
        return false;
    }
}

ledger::Block forge_block(const ledger::Block& parent, std::uint64_t slot,
                          std::size_t forger_index, const Hash256& seed,
                          const StakeDistribution& dist, double timestamp) {
    if (slot_leader(seed, slot, dist) != forger_index)
        throw ValidationError("not the slot leader");
    ledger::Block block;
    block.header.prev_hash = parent.hash();
    block.header.height = parent.header.height + 1;
    block.header.timestamp = timestamp;
    block.header.proposer = dist.at(forger_index).address;
    block.header.annex = StakeProof{slot, forger_index}.encode();
    block.header.merkle_root = block.compute_merkle_root();
    return block;
}

ConsensusEffort compare_effort(unsigned pow_difficulty_bits, std::size_t peer_count) {
    DLT_EXPECTS(pow_difficulty_bits < 63);
    ConsensusEffort effort;
    effort.hashes_per_block_pow =
        static_cast<double>(std::uint64_t(1) << pow_difficulty_bits);
    effort.hashes_per_block_pos = static_cast<double>(peer_count);
    return effort;
}

} // namespace dlt::consensus
