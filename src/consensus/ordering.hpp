// Leader-based ordering service (paper §2.4: "Hyperledger employs an ordering
// service to determine the order of incoming transactions ... either centralized
// (static leader) or distributed (periodic leader election). The ordering
// service has full control of the block proposal process: there is no
// possibility of branching"). Clients submit transactions to the orderer, which
// cuts batches by size or timeout and delivers them to committing peers; peers
// append in order — a fork-free CS-mode ledger (E4).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "ledger/block.hpp"
#include "ledger/mempool.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace dlt::consensus {

enum class OrdererMode {
    kStaticLeader,   // one fixed orderer
    kRotatingLeader, // round-robin leadership per batch (periodic election)
};

struct OrderingParams {
    std::size_t peer_count = 4;        // committing peers (incl. orderer hosts)
    OrdererMode mode = OrdererMode::kStaticLeader;
    std::size_t batch_size = 500;      // transactions per block
    SimDuration batch_interval = 0.5;  // cut a partial batch after this long
    net::LinkParams link{};
    std::string chain_tag = "ordering";
    /// Verify every delivered batch's transaction signatures (as one parallel
    /// CheckQueue batch on the global pool) and discard batches that fail.
    /// Off by default: E04/E11's workloads submit unsigned transactions, and
    /// ordering throughput experiments isolate sequencing cost.
    bool verify_signatures = false;
    /// Route submissions through a fee-market Mempool: admission control
    /// (bounds, relay floor, RBF) applies, and batches are cut highest-feerate
    /// first off the maintained index instead of FIFO. Off by default — the
    /// historical FIFO path stays byte-identical (E04).
    bool fee_market = false;
    /// Admission policy when fee_market is on.
    ledger::MempoolConfig mempool{};
};

/// One delivered block at a committing peer.
struct OrderedBlock {
    std::uint64_t sequence = 0;
    std::uint32_t orderer = 0;
    std::vector<ledger::Transaction> txs;
    SimTime delivered_at = 0;
};

class OrderingService {
public:
    OrderingService(OrderingParams params, std::uint64_t seed);

    /// Submit a transaction to the current orderer.
    void submit(ledger::Transaction tx);

    void run_for(SimDuration duration);
    SimTime now() const { return scheduler_.now(); }

    /// Ledger at a committing peer (identical across peers — no branching).
    const std::vector<OrderedBlock>& ledger_of(std::uint32_t peer) const;

    /// True when all peers hold identical ledger prefixes and equal lengths
    /// after quiescence.
    bool ledgers_identical() const;

    std::uint64_t total_ordered() const { return total_ordered_; }

    /// Batches a peer discarded for failing signature verification (counted
    /// once, at peer 0). Always 0 unless params.verify_signatures is set.
    std::uint64_t rejected_batches() const { return rejected_batches_; }

    /// The orderer's admission-control pool (fee_market mode only): admission
    /// stats, resident size, fee-rate floor.
    const ledger::Mempool& mempool() const;

    /// Mean submit->deliver latency at peer 0.
    std::optional<double> mean_delivery_latency() const;

    const net::TrafficStats& traffic() const { return network_->stats(); }

private:
    std::uint32_t current_orderer() const;
    void cut_batch();
    void arm_timer();
    void on_deliver(std::uint32_t peer, const net::Delivery& d);

    OrderingParams params_;
    sim::Scheduler scheduler_;
    Rng rng_;
    std::unique_ptr<net::Network> network_;

    std::vector<std::pair<ledger::Transaction, SimTime>> pending_; // FIFO mode
    /// Fee-market mode: the orderer's pool plus submit-time stamps for the
    /// latency ledger (keyed by txid; erased when the tx is cut into a batch).
    std::optional<ledger::Mempool> fee_pool_;
    std::unordered_map<Hash256, SimTime> submit_times_;
    std::uint64_t next_sequence_ = 1;
    std::optional<sim::EventId> batch_timer_;

    std::vector<std::vector<OrderedBlock>> ledgers_;
    /// Per-peer reorder buffer: the network can deliver block k+1 before block
    /// k (independent latency samples), but committing peers append strictly in
    /// sequence order, like a real ordered-delivery channel.
    std::vector<std::map<std::uint64_t, OrderedBlock>> reorder_;
    /// Next sequence each peer will consume (appended or, when signature
    /// verification rejects the batch, skipped — ledger.size()+1 no longer
    /// tracks the expected sequence once batches can be discarded).
    std::vector<std::uint64_t> next_seq_;
    std::uint64_t total_ordered_ = 0;
    std::uint64_t rejected_batches_ = 0;
    std::unordered_map<std::uint64_t, std::vector<SimTime>> batch_submit_times_;
    std::vector<double> latencies_;
};

} // namespace dlt::consensus
