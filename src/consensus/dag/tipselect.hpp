// Tailing-tip selection, in the dledger idiom: a proposer keeps the current
// "tailing record list" (DAG blocks with no children yet), shuffles it with
// its own deterministic RNG stream, and approves the first k entries. The
// shuffle spreads approvals across the whole tip frontier — every tip
// eventually gathers approvers, which is what drives the weight/entropy
// confirmation counters forward — while staying fully reproducible under the
// simulation seed.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace dlt::consensus::dag {

/// Blue-score lookup for ordering the chosen parents (the proposer puts the
/// highest-blue-score parent first so prev_hash doubles as its selected
/// parent). Signature avoids a store dependency for testability.
using BlueScoreOf = std::uint64_t (*)(const void* ctx, const Hash256& tip);

/// Pick up to `k` parents from `tips` by deterministic shuffle (dledger's
/// tailing-list selection), then order the chosen set best-first by
/// (blue score desc, hash asc) so element 0 is the proposer's selected
/// parent. `tips` must be non-empty; the input order matters (it is the
/// shuffle's starting permutation), so callers must maintain the tailing
/// list deterministically.
std::vector<Hash256> select_parents(const std::vector<Hash256>& tips,
                                    std::size_t k, Rng& rng,
                                    const void* score_ctx, BlueScoreOf score);

} // namespace dlt::consensus::dag
