// DAG record format: a block that references *several* tailing tips instead of
// one parent (the dledger `approverNames` idiom — each new record approves k
// tailing records). The record reuses ledger::Block wholesale so the existing
// serialization, Merkle commitment, gossip framing, and signature validation
// all apply unchanged:
//
//   header.prev_hash   = parents[0], the proposer's selected parent (the
//                        highest-blue-score tip it chose — kept first so
//                        single-chain tooling sees a sensible "previous hash")
//   header.annex       = varint count + the remaining parent hashes
//
// The annex is part of the serialized header, so the block id commits to the
// full parent list. A record with an empty annex is an ordinary single-parent
// block — chains are the k=1 special case of the DAG.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "ledger/block.hpp"

namespace dlt::consensus::dag {

/// Hard cap on parents per record (sanity bound for decode; policy typically
/// uses a smaller k from DagParams).
inline constexpr std::size_t kMaxParentsAbsolute = 16;

/// Write `parents` into the header: parents[0] becomes prev_hash, the rest are
/// serialized into the annex. Requires 1 <= parents.size() <= kMaxParentsAbsolute
/// and invalidates the header hash cache.
void set_parents(ledger::BlockHeader& header, const std::vector<Hash256>& parents);

/// Full parent list of a record (prev_hash first, then the annex extras).
/// Throws DecodeError on a malformed annex.
std::vector<Hash256> parents_of(const ledger::BlockHeader& header);

/// Structural sanity of the parent list: 1..max_parents entries, all distinct.
/// Returns false (rather than throwing) so callers can mark-and-ignore.
bool parents_well_formed(const std::vector<Hash256>& parents,
                         std::size_t max_parents);

} // namespace dlt::consensus::dag
