#include "consensus/dag/store.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <tuple>

#include "common/assert.hpp"
#include "consensus/dag/record.hpp"

namespace dlt::consensus::dag {

namespace {

/// Candidate-processing and mergeset order: ascending blue score (a
/// topological order — blue score strictly increases along every child edge),
/// hash as the deterministic tiebreak.
struct ScoreHashLess {
    bool operator()(const std::pair<std::uint64_t, Hash256>& a,
                    const std::pair<std::uint64_t, Hash256>& b) const {
        if (a.first != b.first) return a.first < b.first;
        return a.second < b.second;
    }
};

} // namespace

DagStore::DagStore(const ledger::Block& genesis, Config cfg)
    : cfg_(cfg), genesis_hash_(genesis.hash()) {
    Entry e;
    e.block = genesis;
    e.height = 0;
    e.gd.blue_score = 0;
    e.ordered_mergeset = {genesis_hash_};
    // Genesis is trivially final; marking it confirmed lets every approval
    // walk prune there. Not counted in confirmed_ (which tracks records
    // confirmed *by approvals*).
    e.confirmed = true;
    entries_.emplace(genesis_hash_, std::move(e));
    tips_.push_back(genesis_hash_);
}

const DagStore::Entry* DagStore::find(const Hash256& hash) const {
    auto it = entries_.find(hash);
    return it == entries_.end() ? nullptr : &it->second;
}

const DagStore::Entry& DagStore::entry(const Hash256& hash) const {
    auto it = entries_.find(hash);
    DLT_EXPECTS(it != entries_.end());
    return it->second;
}

DagStore::Entry& DagStore::mutable_entry(const Hash256& hash) {
    auto it = entries_.find(hash);
    DLT_EXPECTS(it != entries_.end());
    return it->second;
}

std::uint64_t DagStore::blue_score_of(const Hash256& hash) const {
    return entry(hash).gd.blue_score;
}

bool DagStore::is_ancestor(const Hash256& a, const Hash256& b) const {
    if (a == b) return false;
    auto ia = entries_.find(a);
    auto ib = entries_.find(b);
    DLT_EXPECTS(ia != entries_.end() && ib != entries_.end());
    const std::uint64_t floor = ia->second.height;
    if (floor >= ib->second.height) return false;
    // Upward BFS from b; ancestors sit at strictly lower heights, so any
    // node at height <= height(a) other than a itself cannot lead to a.
    std::deque<const Entry*> queue{&ib->second};
    std::unordered_set<Hash256> seen{b};
    while (!queue.empty()) {
        const Entry* cur = queue.front();
        queue.pop_front();
        for (const Hash256& p : cur->parents) {
            if (p == a) return true;
            if (!seen.insert(p).second) continue;
            const Entry& pe = entry(p);
            if (pe.height > floor) queue.push_back(&pe);
        }
    }
    return false;
}

std::uint32_t DagStore::blue_anticone_size(const Hash256& x,
                                           const GhostdagData& top) const {
    const GhostdagData* chain = &top;
    while (true) {
        auto it = chain->blues_anticone_sizes.find(x);
        if (it != chain->blues_anticone_sizes.end()) return it->second;
        // A blue is recorded by the chain block that merged it, so the walk
        // must find x before running off the bottom of the chain.
        DLT_EXPECTS(chain->selected_parent != Hash256{});
        chain = &entry(chain->selected_parent).gd;
    }
}

bool DagStore::check_blue_candidate(
    const Hash256& c, const GhostdagData& data, std::uint32_t& c_anticone,
    std::unordered_map<Hash256, std::uint32_t>& updates) const {
    // A blue mergeset holds at most k+1 records (selected parent + k in its
    // anticone).
    if (data.mergeset_blues.size() == cfg_.ghostdag_k + std::size_t{1})
        return false;
    c_anticone = 0;
    updates.clear();
    const GhostdagData* chain = &data;
    while (true) {
        for (const Hash256& x : chain->mergeset_blues) {
            if (is_ancestor(x, c)) continue; // x ∈ past(c): outside anticone
            // x is blue and in anticone(c): counts against c's own bound and
            // grows x's blue anticone by one.
            if (++c_anticone > cfg_.ghostdag_k) return false;
            const std::uint32_t x_size = blue_anticone_size(x, data);
            if (x_size == cfg_.ghostdag_k) return false;
            updates[x] = x_size + 1;
        }
        const Hash256& next = chain->selected_parent;
        if (next == Hash256{}) break;            // bottomed out at genesis
        if (is_ancestor(next, c) || next == c) break; // rest of chain ⊆ past(c)
        chain = &entry(next).gd;
    }
    return true;
}

std::vector<Hash256> DagStore::compute_mergeset(
    const std::vector<Hash256>& parents, const Hash256& sp) const {
    std::vector<std::pair<std::uint64_t, Hash256>> found;
    std::deque<Hash256> queue;
    std::unordered_set<Hash256> seen{sp};
    for (const Hash256& p : parents)
        if (seen.insert(p).second) queue.push_back(p);
    while (!queue.empty()) {
        const Hash256 h = queue.front();
        queue.pop_front();
        const Entry& e = entry(h);
        if (is_ancestor(h, sp)) continue; // already covered by sp's past
        found.emplace_back(e.gd.blue_score, h);
        for (const Hash256& p : e.parents)
            if (seen.insert(p).second) queue.push_back(p);
    }
    std::sort(found.begin(), found.end(), ScoreHashLess{});
    std::vector<Hash256> out;
    out.reserve(found.size());
    for (const auto& [score, h] : found) out.push_back(h);
    return out;
}

GhostdagData DagStore::ghostdag_of_parents(
    const std::vector<Hash256>& parents) const {
    DLT_EXPECTS(!parents.empty());
    GhostdagData gd;
    // Selected parent: highest blue score, lower hash on ties.
    gd.selected_parent = parents.front();
    for (const Hash256& p : parents) {
        const std::uint64_t s = blue_score_of(p);
        const std::uint64_t best = blue_score_of(gd.selected_parent);
        if (s > best || (s == best && p < gd.selected_parent))
            gd.selected_parent = p;
    }
    gd.mergeset_blues.push_back(gd.selected_parent);
    gd.blues_anticone_sizes[gd.selected_parent] = 0;

    std::uint32_t c_anticone = 0;
    std::unordered_map<Hash256, std::uint32_t> updates;
    for (const Hash256& c : compute_mergeset(parents, gd.selected_parent)) {
        if (check_blue_candidate(c, gd, c_anticone, updates)) {
            gd.mergeset_blues.push_back(c);
            gd.blues_anticone_sizes[c] = c_anticone;
            for (const auto& [x, size] : updates)
                gd.blues_anticone_sizes[x] = size;
        } else {
            gd.mergeset_reds.push_back(c);
        }
    }
    gd.blue_score =
        entry(gd.selected_parent).gd.blue_score + gd.mergeset_blues.size();
    return gd;
}

std::vector<Hash256> DagStore::topo_order_merged(
    const GhostdagData& gd, const std::optional<Hash256>& self,
    const std::vector<Hash256>& self_parents) const {
    // merged set = mergeset minus the selected parent, plus self (if any).
    std::unordered_set<Hash256> reds(gd.mergeset_reds.begin(),
                                     gd.mergeset_reds.end());
    std::vector<Hash256> members;
    for (std::size_t i = 1; i < gd.mergeset_blues.size(); ++i)
        members.push_back(gd.mergeset_blues[i]);
    members.insert(members.end(), gd.mergeset_reds.begin(),
                   gd.mergeset_reds.end());
    if (self) members.push_back(*self);

    std::unordered_set<Hash256> member_set(members.begin(), members.end());
    auto parents_in_set = [&](const Hash256& h) {
        const std::vector<Hash256>& ps =
            (self && h == *self) ? self_parents : entry(h).parents;
        std::vector<Hash256> in;
        for (const Hash256& p : ps)
            if (member_set.count(p)) in.push_back(p);
        return in;
    };

    // Kahn's algorithm; the ready set is ordered (blues first, then ascending
    // blue score, then hash) so the output is deterministic and blues of the
    // same generation precede reds. Any ancestry between two members runs
    // through members only (intermediates in past(sp) would drag the whole
    // path into past(sp)), so direct parent edges within the set suffice.
    std::unordered_map<Hash256, std::size_t> in_deg;
    std::unordered_map<Hash256, std::vector<Hash256>> adj;
    for (const Hash256& v : members) {
        auto in = parents_in_set(v);
        in_deg[v] = in.size();
        for (const Hash256& p : in) adj[p].push_back(v);
    }
    auto score_of = [&](const Hash256& h) {
        return (self && h == *self) ? gd.blue_score : entry(h).gd.blue_score;
    };
    using Key = std::tuple<bool, std::uint64_t, Hash256>; // (is_red, score, hash)
    auto key_of = [&](const Hash256& h) {
        return Key{reds.count(h) != 0, score_of(h), h};
    };
    std::set<Key> ready;
    for (const Hash256& v : members)
        if (in_deg[v] == 0) ready.insert(key_of(v));
    std::vector<Hash256> out;
    out.reserve(members.size());
    while (!ready.empty()) {
        const Hash256 v = std::get<2>(*ready.begin());
        ready.erase(ready.begin());
        out.push_back(v);
        for (const Hash256& c : adj[v])
            if (--in_deg[c] == 0) ready.insert(key_of(c));
    }
    DLT_ENSURES(out.size() == members.size());
    return out;
}

const DagStore::Entry& DagStore::insert(const ledger::Block& block, double at) {
    const Hash256 hash = block.hash();
    DLT_EXPECTS(!contains(hash));
    Entry e;
    e.block = block;
    e.parents = parents_of(block.header);
    for (const Hash256& p : e.parents) {
        const Entry& pe = entry(p); // parents must already be present
        e.height = std::max(e.height, pe.height + 1);
    }
    e.gd = ghostdag_of_parents(e.parents);
    e.ordered_mergeset = topo_order_merged(e.gd, hash, e.parents);

    Entry& stored = entries_.emplace(hash, std::move(e)).first->second;
    for (const Hash256& p : stored.parents) {
        mutable_entry(p).children.push_back(hash);
        auto it = std::find(tips_.begin(), tips_.end(), p);
        if (it != tips_.end()) tips_.erase(it);
    }
    tips_.push_back(hash);

    propagate_approval(stored, at);
    return stored;
}

void DagStore::propagate_approval(const Entry& fresh, double at) {
    // Every record in past(fresh) gains one approver (fresh) — the dledger
    // weight — and fresh's proposer joins its approver-proposer set (the
    // entropy). Confirmed records prune the walk: confirmation is
    // ancestor-monotone (an ancestor's future cone and proposer set are
    // supersets of its descendant's), so everything below one is confirmed.
    std::deque<Hash256> queue;
    std::unordered_set<Hash256> seen;
    for (const Hash256& p : fresh.parents)
        if (seen.insert(p).second) queue.push_back(p);
    const crypto::Address& approver = fresh.block.header.proposer;
    while (!queue.empty()) {
        const Hash256 h = queue.front();
        queue.pop_front();
        Entry& e = mutable_entry(h);
        if (e.confirmed) continue;
        ++e.weight;
        e.approver_proposers.insert(approver);
        e.entropy = static_cast<std::uint32_t>(e.approver_proposers.size());
        if (e.weight >= cfg_.confirm_weight && e.entropy >= cfg_.confirm_entropy) {
            e.confirmed = true;
            e.confirmed_at = at;
            ++confirmed_;
            std::unordered_set<crypto::Address>().swap(e.approver_proposers);
            if (on_confirm_) on_confirm_(h, e, at);
        }
        for (const Hash256& p : e.parents)
            if (seen.insert(p).second) queue.push_back(p);
    }
}

DagStore::LinearOrder DagStore::linear_order() const {
    LinearOrder lo;
    const GhostdagData vgd = ghostdag_of_parents(tips_);
    // Selected-parent chain of the virtual, genesis first.
    std::vector<Hash256> chain;
    for (Hash256 cur = vgd.selected_parent;; cur = entry(cur).gd.selected_parent) {
        chain.push_back(cur);
        if (cur == genesis_hash_) break;
    }
    std::reverse(chain.begin(), chain.end());
    lo.order.reserve(entries_.size());
    for (const Hash256& h : chain) {
        const Entry& e = entry(h);
        lo.order.insert(lo.order.end(), e.ordered_mergeset.begin(),
                        e.ordered_mergeset.end());
        // merged(H)'s blues = mergeset blues minus sp (counted at its own
        // step) plus H itself; genesis contributes itself.
        lo.blue_count += h == genesis_hash_ ? 1 : e.gd.mergeset_blues.size();
    }
    const std::vector<Hash256> vrest = topo_order_merged(vgd, std::nullopt, {});
    lo.order.insert(lo.order.end(), vrest.begin(), vrest.end());
    lo.blue_count += vgd.mergeset_blues.size() - 1; // minus sp, no self
    DLT_ENSURES(lo.order.size() == entries_.size());
    return lo;
}

} // namespace dlt::consensus::dag
