#include "consensus/dag/record.hpp"

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"

namespace dlt::consensus::dag {

void set_parents(ledger::BlockHeader& header,
                 const std::vector<Hash256>& parents) {
    DLT_EXPECTS(!parents.empty());
    DLT_EXPECTS(parents.size() <= kMaxParentsAbsolute);
    header.prev_hash = parents.front();
    if (parents.size() == 1) {
        // Single parent = plain chain block: byte-identical to one that never
        // went through the DAG codec.
        header.annex.clear();
    } else {
        Writer w;
        w.varint(parents.size() - 1);
        for (std::size_t i = 1; i < parents.size(); ++i) w.fixed(parents[i]);
        header.annex = std::move(w).take();
    }
    header.invalidate_hash_cache();
}

std::vector<Hash256> parents_of(const ledger::BlockHeader& header) {
    std::vector<Hash256> parents{header.prev_hash};
    if (header.annex.empty()) return parents;
    Reader r(header.annex);
    const std::uint64_t extra = r.varint_count(32);
    if (extra + 1 > kMaxParentsAbsolute)
        throw DecodeError("record exceeds absolute parent cap");
    parents.reserve(1 + static_cast<std::size_t>(extra));
    for (std::uint64_t i = 0; i < extra; ++i) parents.push_back(r.fixed<32>());
    r.expect_done();
    return parents;
}

bool parents_well_formed(const std::vector<Hash256>& parents,
                         std::size_t max_parents) {
    if (parents.empty() || parents.size() > max_parents) return false;
    for (std::size_t i = 0; i < parents.size(); ++i)
        for (std::size_t j = i + 1; j < parents.size(); ++j)
            if (parents[i] == parents[j]) return false;
    return true;
}

} // namespace dlt::consensus::dag
