// Fourth-generation DAG-ledger network simulation (paper §2.6): N peers on a
// gossip overlay, each independently producing multi-parent records against
// its current tailing tips instead of racing for one chain head. There are no
// stale blocks — parallel records are *merged*, not discarded: GHOSTDAG
// coloring (DagStore) linearizes the whole DAG into a total order, and each
// peer executes that order against the stock UTXO machine, skipping
// duplicates and first-in-order-resolving conflicts. Late-arriving parallel
// records re-linearize a suffix of the order (the DAG analogue of a reorg);
// the execution layer diffs old vs new order and undoes/replays only the
// changed suffix.
//
// The surface deliberately mirrors NakamotoNetwork (submit_transaction,
// run_for, lifecycle(), events(node), mempool_of, ...) so the workload
// engine, fault injection, and observability stack drive both families
// through the same code paths — E26 compares them head-to-head.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "consensus/dag/store.hpp"
#include "consensus/events.hpp"
#include "crypto/keys.hpp"
#include "ledger/mempool.hpp"
#include "ledger/utxo.hpp"
#include "ledger/validation.hpp"
#include "net/gossip.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/txlifecycle.hpp"
#include "sim/scheduler.hpp"

namespace dlt::consensus::dag {

struct DagParams {
    std::size_t node_count = 16;
    /// Expected seconds between records network-wide. Unlike a chain, pushing
    /// this below the network delay raises throughput instead of the stale
    /// rate — the point E26 measures.
    double record_interval = 10.0;
    /// Max tailing tips a record approves (dledger's k approvals).
    std::size_t max_parents = 3;
    /// PHANTOM's k for the blue-cluster rule.
    std::uint32_t ghostdag_k = 4;
    /// dledger confirmation thresholds: future-cone size and distinct
    /// approver proposers.
    std::uint64_t confirm_weight = 8;
    std::uint32_t confirm_entropy = 3;
    std::size_t max_block_bytes = 1'000'000;
    std::size_t max_block_txs = 10'000;
    ledger::ValidationRules validation{};
    net::GossipParams gossip{};
    net::LinkParams link{};
    std::size_t overlay_degree = 4;
    ledger::MempoolConfig mempool{};
    /// Seconds before an unanswered orphan-parent fetch is retried toward the
    /// next peer (round-robin). Without retries a single dropped d/getblock or
    /// d/block during a partition/crash window pins the hash in the
    /// requested-set forever and the orphan never resolves — flushed out by
    /// E27's eclipse and crash-during-reorg cells.
    double sync_retry_interval = 15.0;
    std::string chain_tag = "dag";
};

/// Aggregates mirrored into the MetricsRegistry (dag_records_total,
/// dag_relinearizations_total, dag_skipped_txs_total, ...).
struct DagStats {
    std::uint64_t records_produced = 0;
    std::uint64_t invalid_records = 0;
    /// Execution-order suffix rewrites (the DAG's reorg analogue).
    std::uint64_t relinearizations = 0;
    /// Transactions skipped during execution as duplicates or conflict losers.
    std::uint64_t skipped_txs = 0;
    /// Orphan-parent fetches re-sent after a lost request/reply (faulty links).
    std::uint64_t sync_retries = 0;
};

class DagNetwork {
public:
    explicit DagNetwork(DagParams params, std::uint64_t seed);

    /// Begin producing records at every node.
    void start();
    void run_for(SimDuration duration);
    SimTime now() const { return scheduler_.now(); }

    /// Inject a signed transaction at `origin`; it gossips to all peers.
    void submit_transaction(const ledger::Transaction& tx, net::NodeId origin = 0);

    /// Produced-record interposition hook (the DAG analogue of the Nakamoto
    /// mined-block hook). Returning true keeps the honest broadcast path;
    /// returning false withholds the record — it is inserted into the
    /// producer's own DAG only, so its later release via publish_record()
    /// forces a suffix re-linearization at every peer (the withhold/release
    /// attack GHOSTDAG is designed to bound). Pass nullptr to clear.
    using ProducedRecordHook = std::function<bool(net::NodeId, const ledger::Block&)>;
    void set_produced_record_hook(ProducedRecordHook hook) {
        produced_hook_ = std::move(hook);
    }

    /// Broadcast a record already stored in `node`'s DAG (the release half of
    /// a withhold/release strategy).
    void publish_record(net::NodeId node, const Hash256& hash);

    /// Gossip overlay (attack drivers install relay filters through this).
    net::GossipOverlay& gossip() { return *gossip_; }

    // --- Inspection -------------------------------------------------------------

    std::size_t node_count() const { return peers_.size(); }

    /// One peer's tailing tips (first-seen order).
    const std::vector<Hash256>& tips_of(net::NodeId node) const;

    /// True when every peer holds the same record set (tip sets identical).
    bool converged() const;

    /// GHOSTDAG total order at one peer (genesis first).
    std::vector<Hash256> linear_order(net::NodeId node = 0) const;

    /// sha256 over the concatenated linear order — byte-identical order ⇔
    /// identical digest (the determinism probe of E26's tests and CI).
    Hash256 order_digest(net::NodeId node = 0) const;

    /// Blue fraction of peer 0's DAG under the current virtual coloring.
    double blue_ratio() const;

    /// Non-coinbase transactions currently executed on peer 0's linear order
    /// (duplicates and conflict losers excluded).
    std::uint64_t confirmed_tx_count() const;

    /// Records confirmed by the weight/entropy thresholds at peer 0.
    std::uint64_t confirmed_record_count() const { return peers_[0].store->confirmed_count(); }

    const DagStats& stats() const { return stats_; }
    const net::TrafficStats& traffic() const { return network_->stats(); }

    /// Transaction lifecycle telemetry (submit → first-seen → mempool →
    /// DAG-inclusion → confirmation-weight-final), observed from peer 0.
    const obs::TxLifecycleTracker& lifecycle() const { return lifecycle_; }
    obs::TxLifecycleTracker& lifecycle() { return lifecycle_; }

    /// Observer hooks for one peer's linearized-order events: `height` is the
    /// position in the GHOSTDAG total order, a "reorg" is a re-linearization.
    ChainEvents& events(net::NodeId node = 0) { return observers_[node]; }
    net::Network& network() { return *network_; }
    const DagStore& store_of(net::NodeId node) const { return *peers_.at(node).store; }
    const ledger::Mempool& mempool_of(net::NodeId node) const;
    const ledger::UtxoSet& utxo_of(net::NodeId node) const;
    const crypto::Address& miner_address(net::NodeId node) const;
    sim::Scheduler& scheduler() { return scheduler_; }

private:
    /// Execution bookkeeping for one record in the current linear order.
    struct ExecRecord {
        ledger::UtxoUndo undo;
        std::vector<Hash256> applied; // txids actually applied (coinbase included)
        std::uint64_t applied_payload = 0; // non-coinbase applied count
    };

    struct Peer {
        std::unique_ptr<DagStore> store;
        ledger::UtxoSet utxo; // state after executing exec_order
        std::vector<Hash256> exec_order; // currently executed linear order
        std::unordered_map<Hash256, ExecRecord> exec_records;
        /// Global txid dedup across the executed order: account-family txs
        /// bypass the UTXO set entirely, so duplicates across parallel records
        /// need explicit txid-level suppression.
        std::unordered_set<Hash256> applied_txids;
        std::uint64_t confirmed_txs = 0; // non-coinbase txs currently executed
        ledger::Mempool mempool;
        crypto::Address miner;
        std::optional<sim::EventId> production_event;
        std::unordered_map<Hash256, ledger::Block> orphans; // by record hash
        std::unordered_map<Hash256, std::vector<Hash256>> waiting_on; // parent → orphans
        std::unordered_set<Hash256> invalid;
        /// Parent fetches in flight, hash → attempt generation. The generation
        /// invalidates stale retry timers: any resend (timeout or d/notfound)
        /// bumps it, so only the latest outstanding attempt may retry.
        std::unordered_map<Hash256, std::uint64_t> sync_requested;
        Rng rng;
    };

    void on_gossip(net::NodeId node, net::NodeId from, const std::string& topic,
                   ByteView payload);
    void handle_record(net::NodeId node, const ledger::Block& block,
                       net::NodeId from);
    void request_record(net::NodeId node, const Hash256& hash, net::NodeId from);
    /// Send one d/getblock attempt and arm its retry timer; `generation` must
    /// match the peer's sync_requested entry for the retry to fire.
    void send_sync_request(net::NodeId node, const Hash256& hash, net::NodeId target,
                           std::uint64_t generation);
    /// Next fetch target after `current`, round-robin, skipping `node` itself.
    net::NodeId next_sync_peer(net::NodeId node, net::NodeId current) const;
    /// Insert `block` plus any orphans it unblocks, then re-linearize and
    /// diff-execute.
    void insert_and_update(net::NodeId node, const ledger::Block& block);
    /// Recompute the linear order and roll execution forward/back across the
    /// changed suffix.
    void update_execution(net::NodeId node);
    void schedule_production(net::NodeId node);
    ledger::Block assemble_record(net::NodeId node);
    ChainEvents* find_events(net::NodeId node);

    DagParams params_;
    ProducedRecordHook produced_hook_;
    sim::Scheduler scheduler_;
    Rng rng_;
    std::unique_ptr<net::Network> network_;
    std::unique_ptr<net::GossipOverlay> gossip_;
    std::vector<Peer> peers_;
    ledger::Block genesis_;
    DagStats stats_;
    obs::TxLifecycleTracker lifecycle_;
    std::unordered_map<net::NodeId, ChainEvents> observers_;
    /// Records confirmed at peer 0 during the current insert batch; their
    /// transactions get lifecycle finality stamps once execution has caught
    /// up (confirmation may land in the same batch as first inclusion).
    std::vector<std::pair<Hash256, double>> pending_confirmed_;
    obs::Counter* records_total_ = nullptr;        // dag_records_total
    obs::Counter* invalid_records_ = nullptr;      // dag_invalid_records_total
    obs::Counter* relinearizations_ = nullptr;     // dag_relinearizations_total
    obs::Counter* skipped_txs_ = nullptr;          // dag_skipped_txs_total
    obs::Counter* sync_retries_ = nullptr;         // dag_sync_retries_total
    obs::Counter* confirmed_records_ = nullptr;    // dag_confirmed_records_total
    obs::Gauge* tips_gauge_ = nullptr;             // dag_tips (peer 0)
    obs::Histogram* reorder_depth_ = nullptr;      // dag_reorder_depth
};

} // namespace dlt::consensus::dag
