// DagStore: the block-DAG index plus the two ordering/confirmation brains of
// the fourth-generation ledger (paper §2.6 "consensus based on DAGs"):
//
//  1. GHOSTDAG/PHANTOM coloring. Every inserted record gets a selected parent
//     (highest blue score among its parents), a mergeset (its past minus the
//     selected parent's past), and a blue/red coloring of that mergeset under
//     the k-cluster rule: a candidate is blue only while every blue keeps at
//     most k blues in its anticone. Honest records mined within one network
//     delay of each other stay mutually blue; a withheld chain turns red.
//     Blue scores then induce a total order over the whole DAG — the chain of
//     selected parents is walked from genesis and each chain block appends its
//     topologically-sorted mergeset (blues before reds) — so the sequential
//     UTXO machine can execute a parallel DAG unmodified.
//
//  2. dledger-style confirmation counters. Each record tracks its *weight*
//     (how many later records approve it, transitively — the size of its
//     future cone) and *entropy* (how many distinct proposers those approvers
//     span). A record is confirmed once both cross their thresholds; because
//     every new record increments all unconfirmed ancestors, confirmation
//     propagates ancestor-first and the per-record approver sets can be freed
//     at confirmation time.
//
// Everything here is a pure function of DAG structure — no clocks, no
// randomness — which is what makes the linearization byte-identical across
// thread counts and reruns.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/keys.hpp"
#include "ledger/block.hpp"

namespace dlt::consensus::dag {

/// GHOSTDAG metadata of one record (kaspad's BlockGHOSTDAGData shape).
struct GhostdagData {
    Hash256 selected_parent;
    /// Blues in the mergeset, selected parent first, then in acceptance order
    /// (ascending blue score — a topological order, since blue score strictly
    /// increases along every child edge).
    std::vector<Hash256> mergeset_blues;
    /// Reds in the mergeset, in the candidate-processing order they failed.
    std::vector<Hash256> mergeset_reds;
    /// Number of blue records in this record's past (genesis = 0).
    std::uint64_t blue_score = 0;
    /// Copy-on-write overlay of blue-anticone sizes: |anticone(X) ∩ blues| as
    /// seen from this record, for X in its mergeset blues *and* for deeper
    /// blues whose count grew here. Lookup walks the selected chain and the
    /// first map containing X wins (newer overlays shadow older values).
    std::unordered_map<Hash256, std::uint32_t> blues_anticone_sizes;
};

class DagStore {
public:
    struct Config {
        /// PHANTOM's k: max blues tolerated in a blue record's anticone.
        std::uint32_t ghostdag_k = 4;
        /// Approvers (future-cone size) needed before a record confirms.
        std::uint64_t confirm_weight = 8;
        /// Distinct approver proposers needed before a record confirms.
        std::uint32_t confirm_entropy = 3;
    };

    struct Entry {
        ledger::Block block;
        std::vector<Hash256> parents;
        std::vector<Hash256> children;
        /// Topological height: 1 + max parent height (genesis = 0). Strictly
        /// greater than every parent's, which prunes ancestry walks.
        std::uint64_t height = 0;
        GhostdagData gd;
        /// Cached topological order of merged(B) = (past(B) ∪ {B}) minus
        /// (past(sp) ∪ {sp}) — what this record contributes to the linear
        /// order beyond its selected parent's. Always ends with B itself.
        std::vector<Hash256> ordered_mergeset;

        // dledger confirmation counters.
        std::uint64_t weight = 0;   // |future(B)| so far
        std::uint32_t entropy = 0;  // distinct proposers in future(B)
        bool confirmed = false;
        double confirmed_at = 0;    // SimTime of confirmation
        /// Approver proposer set; freed (cleared) once confirmed.
        std::unordered_set<crypto::Address> approver_proposers;
    };

    /// Fired when a record's weight/entropy cross the thresholds. `at` is the
    /// caller-provided insertion time of the approving record that tipped it.
    using ConfirmObserver =
        std::function<void(const Hash256& hash, const Entry& entry, double at)>;

    DagStore(const ledger::Block& genesis, Config cfg);

    bool contains(const Hash256& hash) const { return entries_.count(hash) != 0; }
    const Entry* find(const Hash256& hash) const;
    const Entry& entry(const Hash256& hash) const;
    std::size_t size() const { return entries_.size(); }
    const Hash256& genesis_hash() const { return genesis_hash_; }

    /// Insert a record whose parents are all present (callers hold orphans
    /// elsewhere). Runs GHOSTDAG coloring, caches the mergeset order, updates
    /// the tailing-tip list, and bumps weight/entropy of every unconfirmed
    /// ancestor (firing the confirm observer for records that cross the
    /// thresholds). `at` is virtual arrival time, used only for confirmation
    /// stamps. Returns the stored entry.
    const Entry& insert(const ledger::Block& block, double at);

    /// True iff `a` is a strict ancestor of `b` (a ∈ past(b)). Height-pruned
    /// upward BFS.
    bool is_ancestor(const Hash256& a, const Hash256& b) const;

    /// Tailing records (no children yet), in first-seen order — the
    /// deterministic base permutation for shuffle-based tip selection.
    const std::vector<Hash256>& tips() const { return tips_; }

    std::uint64_t blue_score_of(const Hash256& hash) const;

    /// GHOSTDAG data for a hypothetical record with these parents (the
    /// "virtual" when passed the current tips). Parents must exist.
    GhostdagData ghostdag_of_parents(const std::vector<Hash256>& parents) const;

    struct LinearOrder {
        /// Every record in the store, genesis first, in GHOSTDAG total order.
        std::vector<Hash256> order;
        /// Records blue from the virtual's viewpoint (rest are red).
        std::uint64_t blue_count = 0;
    };

    /// Total order over the whole DAG: virtual coloring over the current
    /// tips, then the selected-parent chain walked from genesis, each chain
    /// block appending its cached mergeset order, the virtual's own mergeset
    /// last. Pure function of DAG contents.
    LinearOrder linear_order() const;

    std::uint64_t confirmed_count() const { return confirmed_; }
    void set_confirm_observer(ConfirmObserver cb) { on_confirm_ = std::move(cb); }

private:
    Entry& mutable_entry(const Hash256& hash);
    /// Blue-anticone size of `X` as seen from a record whose partial data is
    /// `top` (chain-walk lookup through the copy-on-write overlays).
    std::uint32_t blue_anticone_size(const Hash256& x,
                                     const GhostdagData& top) const;
    /// k-cluster test for mergeset candidate `c` against the partial coloring
    /// `data`. On success returns the anticone-size overlay updates to apply.
    bool check_blue_candidate(
        const Hash256& c, const GhostdagData& data,
        std::uint32_t& c_anticone,
        std::unordered_map<Hash256, std::uint32_t>& updates) const;
    /// Mergeset of a record with `parents` and selected parent `sp`:
    /// past ∪ {parents} minus past(sp) ∪ {sp}, ascending (blue_score, hash) —
    /// the candidate-processing order.
    std::vector<Hash256> compute_mergeset(const std::vector<Hash256>& parents,
                                          const Hash256& sp) const;
    /// Topological order of gd's merged set. `self` (if set) is the record
    /// being inserted: its hash is appended last, its parents supplied by the
    /// caller; when unset (the virtual) only the mergeset minus sp is sorted.
    std::vector<Hash256> topo_order_merged(
        const GhostdagData& gd, const std::optional<Hash256>& self,
        const std::vector<Hash256>& self_parents) const;
    /// Bump weight/entropy of every unconfirmed ancestor of the new record.
    void propagate_approval(const Entry& fresh, double at);

    Config cfg_;
    Hash256 genesis_hash_;
    std::unordered_map<Hash256, Entry> entries_;
    std::vector<Hash256> tips_; // first-seen order
    std::uint64_t confirmed_ = 0;
    ConfirmObserver on_confirm_;
};

} // namespace dlt::consensus::dag
