#include "consensus/dag/tipselect.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dlt::consensus::dag {

std::vector<Hash256> select_parents(const std::vector<Hash256>& tips,
                                    std::size_t k, Rng& rng,
                                    const void* score_ctx, BlueScoreOf score) {
    DLT_EXPECTS(!tips.empty());
    DLT_EXPECTS(k > 0);
    std::vector<Hash256> pool = tips;
    rng.shuffle(pool);
    if (pool.size() > k) pool.resize(k);
    std::sort(pool.begin(), pool.end(),
              [&](const Hash256& a, const Hash256& b) {
                  const auto sa = score(score_ctx, a);
                  const auto sb = score(score_ctx, b);
                  if (sa != sb) return sa > sb;
                  return a < b;
              });
    return pool;
}

} // namespace dlt::consensus::dag
