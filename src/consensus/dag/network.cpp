#include "consensus/dag/network.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"
#include "consensus/dag/record.hpp"
#include "consensus/dag/tipselect.hpp"
#include "consensus/pow.hpp"
#include "crypto/sha256.hpp"
#include "ledger/difficulty.hpp"

namespace dlt::consensus::dag {

using ledger::Block;
using ledger::Transaction;
using net::NodeId;

namespace {

std::uint64_t store_blue_score(const void* ctx, const Hash256& tip) {
    return static_cast<const DagStore*>(ctx)->blue_score_of(tip);
}

} // namespace

DagNetwork::DagNetwork(DagParams params, std::uint64_t seed)
    : params_(std::move(params)),
      rng_(seed),
      // Finality is weight-driven (on_finalized), never depth-driven; a huge
      // depth keeps the tracker's k-deep rule inert.
      lifecycle_(std::numeric_limits<std::uint64_t>::max() / 2,
                 &obs::Tracer::global()) {
    DLT_EXPECTS(params_.node_count >= 2);
    DLT_EXPECTS(params_.record_interval > 0);
    DLT_EXPECTS(params_.max_parents >= 1 &&
                params_.max_parents <= kMaxParentsAbsolute);

    auto& registry = obs::MetricsRegistry::global();
    records_total_ = &registry.counter("dag_records_total",
                                       "Records produced across all peers");
    invalid_records_ = &registry.counter("dag_invalid_records_total",
                                         "Records failing structural checks");
    relinearizations_ = &registry.counter(
        "dag_relinearizations_total",
        "Execution-order suffix rewrites (DAG reorg analogue)");
    skipped_txs_ = &registry.counter(
        "dag_skipped_txs_total",
        "Txs skipped in execution as duplicates or conflict losers");
    sync_retries_ = &registry.counter(
        "dag_sync_retries_total",
        "Orphan-parent fetches re-sent after a lost request/reply");
    confirmed_records_ = &registry.counter(
        "dag_confirmed_records_total",
        "Records past the weight/entropy thresholds at peer 0");
    tips_gauge_ = &registry.gauge("dag_tips", "Tailing tips at peer 0");
    reorder_depth_ = &registry.histogram(
        "dag_reorder_depth", "Records undone per re-linearization",
        obs::HistogramOptions{1.0, 2.0, 16});

    genesis_ = ledger::make_genesis(params_.chain_tag, ledger::easy_bits(1));

    network_ = std::make_unique<net::Network>(scheduler_, rng_.fork(0xA));
    gossip_ = std::make_unique<net::GossipOverlay>(
        *network_, params_.node_count, params_.gossip,
        [this](NodeId node, NodeId from, const std::string& topic,
               ByteView payload) { on_gossip(node, from, topic, payload); });
    network_->build_unstructured_overlay(params_.overlay_degree, params_.link);

    const DagStore::Config store_cfg{params_.ghostdag_k, params_.confirm_weight,
                                     params_.confirm_entropy};
    peers_.resize(params_.node_count);
    for (std::size_t i = 0; i < params_.node_count; ++i) {
        Peer& peer = peers_[i];
        peer.store = std::make_unique<DagStore>(genesis_, store_cfg);
        peer.exec_order.push_back(genesis_.hash());
        peer.exec_records.emplace(genesis_.hash(), ExecRecord{});
        peer.mempool = ledger::Mempool(params_.mempool);
        peer.miner = crypto::PrivateKey::from_seed(params_.chain_tag + "/miner/" +
                                                   std::to_string(i))
                         .address();
        peer.rng = rng_.fork(0x100 + i);
    }

    // Peer 0 is the observed replica: mempool drops become lifecycle terminal
    // events, and record confirmations become finality stamps (deferred to
    // pending_confirmed_ so inclusion always precedes finality).
    peers_[0].mempool.set_drop_observer(
        [this](const Hash256& txid, ledger::MempoolDropReason reason, SimTime at) {
            lifecycle_.on_dropped(
                txid, 0, at,
                static_cast<obs::TxDropReason>(static_cast<std::uint8_t>(reason)));
        });
    peers_[0].store->set_confirm_observer(
        [this](const Hash256& hash, const DagStore::Entry&, double at) {
            pending_confirmed_.emplace_back(hash, at);
            confirmed_records_->inc();
        });
}

void DagNetwork::start() {
    for (NodeId i = 0; i < peers_.size(); ++i) schedule_production(i);
}

void DagNetwork::run_for(SimDuration duration) {
    scheduler_.run_until(scheduler_.now() + duration);
}

void DagNetwork::submit_transaction(const Transaction& tx, NodeId origin) {
    lifecycle_.on_submitted(tx.txid(), scheduler_.now(), origin);
    gossip_->broadcast(origin, "tx", encode_to_bytes(tx));
}

void DagNetwork::on_gossip(NodeId node, NodeId from, const std::string& topic,
                           ByteView payload) {
    const ScopedLogTime log_time(scheduler_.now());
    const ScopedLogNode log_node(node);
    if (topic == "tx") {
        try {
            auto tx = decode_from_bytes<Transaction>(payload);
            const Hash256 txid = tx.txid();
            if (node != from) lifecycle_.on_first_seen(txid, node, scheduler_.now());
            const ledger::AdmissionResult verdict =
                peers_[node].mempool.admit(std::move(tx), scheduler_.now());
            if (verdict == ledger::AdmissionResult::kAccepted ||
                verdict == ledger::AdmissionResult::kRbfReplaced)
                lifecycle_.on_mempool_accepted(txid, node, scheduler_.now());
        } catch (const Error&) {
        }
        return;
    }
    if (topic == "block" || topic == "d/block") {
        try {
            handle_record(node, decode_from_bytes<Block>(payload), from);
        } catch (const Error&) {
        }
        return;
    }
    if (topic == "d/getblock") {
        // Orphan-parent fetch: reply with the record if we hold it, or admit
        // we can't so the asker may retry toward a better peer.
        if (payload.size() != 32) return;
        const Hash256 want = Hash256::from_bytes(payload);
        const auto* entry = peers_[node].store->find(want);
        if (entry != nullptr) {
            gossip_->send_direct(node, from, "d/block",
                                 encode_to_bytes(entry->block));
        } else if (const auto it = peers_[node].orphans.find(want);
                   it != peers_[node].orphans.end()) {
            gossip_->send_direct(node, from, "d/block",
                                 encode_to_bytes(it->second));
        } else {
            gossip_->send_direct(node, from, "d/notfound", want.bytes());
        }
        return;
    }
    if (topic == "d/notfound") {
        if (payload.size() != 32) return;
        const Hash256 want = Hash256::from_bytes(payload);
        Peer& peer = peers_[node];
        const auto it = peer.sync_requested.find(want);
        if (it == peer.sync_requested.end()) return;
        if (peer.waiting_on.count(want) != 0) {
            // Orphans still need this record: rotate to the peer after the one
            // that answered "not found" instead of abandoning the fetch.
            ++it->second;
            ++stats_.sync_retries;
            sync_retries_->inc();
            send_sync_request(node, want, next_sync_peer(node, from), it->second);
        } else {
            peer.sync_requested.erase(it);
        }
        return;
    }
}

void DagNetwork::handle_record(NodeId node, const Block& block, NodeId from) {
    Peer& peer = peers_[node];
    const Hash256 hash = block.hash();
    if (peer.store->contains(hash) || peer.orphans.count(hash) != 0 ||
        peer.invalid.count(hash) != 0)
        return;

    std::vector<Hash256> parents;
    try {
        parents = parents_of(block.header);
    } catch (const Error&) {
        peer.invalid.insert(hash);
        ++stats_.invalid_records;
        invalid_records_->inc();
        return;
    }
    if (!parents_well_formed(parents, params_.max_parents)) {
        peer.invalid.insert(hash);
        ++stats_.invalid_records;
        invalid_records_->inc();
        return;
    }

    // A record can wait on several parents at once; park it until the last
    // one arrives, fetching each missing ancestor in parallel. A parent that
    // is itself parked needs no fetch — its own ancestor requests are already
    // in flight.
    std::vector<Hash256> unresolved;
    for (const Hash256& p : parents)
        if (!peer.store->contains(p)) unresolved.push_back(p);
    if (!unresolved.empty()) {
        peer.orphans.emplace(hash, block);
        for (const Hash256& p : unresolved) {
            peer.waiting_on[p].push_back(hash);
            if (peer.orphans.count(p) == 0) request_record(node, p, from);
        }
        return;
    }
    insert_and_update(node, block);
}

void DagNetwork::request_record(NodeId node, const Hash256& hash, NodeId from) {
    Peer& peer = peers_[node];
    if (from == node) return; // locally produced: nobody to ask
    if (!peer.sync_requested.emplace(hash, 0).second) return;
    send_sync_request(node, hash, from, 0);
}

void DagNetwork::send_sync_request(NodeId node, const Hash256& hash, NodeId target,
                                   std::uint64_t generation) {
    gossip_->send_direct(node, target, "d/getblock", hash.bytes());
    // Arm the retry: if the request or its reply is lost on a faulty link
    // (partition, crash window), the entry would otherwise pin the hash in
    // sync_requested forever and the waiting orphans could never resolve.
    // The generation check makes the timer a no-op once any other path (a
    // d/notfound rotation or the record landing) has superseded this attempt.
    scheduler_.schedule_after(
        params_.sync_retry_interval, [this, node, hash, target, generation] {
            Peer& peer = peers_[node];
            const auto it = peer.sync_requested.find(hash);
            if (it == peer.sync_requested.end() || it->second != generation)
                return;
            ++it->second;
            ++stats_.sync_retries;
            sync_retries_->inc();
            send_sync_request(node, hash, next_sync_peer(node, target),
                              it->second);
        });
}

NodeId DagNetwork::next_sync_peer(NodeId node, NodeId current) const {
    NodeId next = static_cast<NodeId>((current + 1) % peers_.size());
    if (next == node) next = static_cast<NodeId>((next + 1) % peers_.size());
    return next;
}

void DagNetwork::insert_and_update(NodeId node, const Block& block) {
    Peer& peer = peers_[node];

    std::vector<Block> pending{block};
    while (!pending.empty()) {
        const Block current = std::move(pending.back());
        pending.pop_back();
        const Hash256 hash = current.hash();
        peer.sync_requested.erase(hash);
        if (!peer.store->contains(hash)) {
            try {
                // CheckQueue-parallel structural validation: with a non-serial
                // global pool, every signature in the record is verified as
                // one batch while concurrent records queue behind it.
                ledger::check_block_structure(current, params_.validation);
            } catch (const ValidationError&) {
                peer.invalid.insert(hash);
                ++stats_.invalid_records;
                invalid_records_->inc();
                continue;
            }
            peer.store->insert(current, scheduler_.now());
            if (node == 0) records_total_->inc();
            if (ChainEvents* ev = find_events(node);
                ev != nullptr && ev->on_block_inserted)
                ev->on_block_inserted(current, scheduler_.now());
        }
        // Unblock orphans that were waiting on this record; they insert only
        // once their *last* missing parent lands.
        const auto wit = peer.waiting_on.find(hash);
        if (wit != peer.waiting_on.end()) {
            const std::vector<Hash256> waiters = std::move(wit->second);
            peer.waiting_on.erase(wit);
            for (const Hash256& w : waiters) {
                const auto oit = peer.orphans.find(w);
                if (oit == peer.orphans.end()) continue;
                const auto ps = parents_of(oit->second.header);
                const bool ready = std::all_of(
                    ps.begin(), ps.end(),
                    [&](const Hash256& p) { return peer.store->contains(p); });
                if (ready) {
                    pending.push_back(std::move(oit->second));
                    peer.orphans.erase(oit);
                }
            }
        }
    }

    update_execution(node);

    if (node == 0) {
        tips_gauge_->set(static_cast<double>(peer.store->tips().size()));
        // Finality stamps for records confirmed during this batch — execution
        // has caught up, so their txs carry inclusion stamps by now.
        for (const auto& [h, at] : pending_confirmed_) {
            const DagStore::Entry* e = peer.store->find(h);
            if (e == nullptr) continue;
            for (const auto& tx : e->block.txs)
                lifecycle_.on_finalized(tx.txid(), at);
        }
        pending_confirmed_.clear();
    }
}

void DagNetwork::update_execution(NodeId node) {
    Peer& peer = peers_[node];
    const DagStore::LinearOrder lo = peer.store->linear_order();
    const SimTime at = scheduler_.now();

    // Common prefix of the old and new orders: only the suffix re-executes.
    std::size_t p = 0;
    while (p < peer.exec_order.size() && p < lo.order.size() &&
           peer.exec_order[p] == lo.order[p])
        ++p;

    const std::size_t undone = peer.exec_order.size() - p;
    std::vector<Hash256> disconnected; // newest first, like a chain reorg
    if (undone > 0) {
        ++stats_.relinearizations;
        relinearizations_->inc();
        reorder_depth_->record(static_cast<double>(undone));
        for (std::size_t i = peer.exec_order.size(); i-- > p;) {
            const Hash256 h = peer.exec_order[i];
            const auto rit = peer.exec_records.find(h);
            DLT_INVARIANT(rit != peer.exec_records.end());
            peer.utxo.undo_block(rit->second.undo);
            for (const Hash256& txid : rit->second.applied)
                peer.applied_txids.erase(txid);
            peer.confirmed_txs -= rit->second.applied_payload;
            if (node == 0)
                lifecycle_.on_block_disconnected(i, rit->second.applied);
            // Return the record's payload to the mempool; records that stay
            // in the DAG re-confirm on the replay below.
            const Block& blk = peer.store->entry(h).block;
            std::vector<Transaction> back;
            for (const auto& tx : blk.txs)
                if (!tx.is_coinbase()) back.push_back(tx);
            peer.mempool.add_back(back, at);
            peer.exec_records.erase(rit);
            disconnected.push_back(h);
        }
        peer.exec_order.resize(p);
    }

    // Replay the new suffix in linear order. Per-tx skip on ValidationError
    // is the conflict rule: of two transactions spending the same coin in
    // parallel records, the first in the total order wins. The explicit txid
    // set additionally suppresses byte-identical duplicates (account-family
    // txs never touch the UTXO set, so they need txid-level dedup).
    std::vector<Hash256> connected;
    for (std::size_t i = p; i < lo.order.size(); ++i) {
        const Hash256& h = lo.order[i];
        const Block& blk = peer.store->entry(h).block;
        ExecRecord rec;
        for (const auto& tx : blk.txs) {
            const Hash256 txid = tx.txid();
            if (!peer.applied_txids.insert(txid).second) {
                ++stats_.skipped_txs;
                skipped_txs_->inc();
                continue;
            }
            try {
                peer.utxo.check_and_apply(tx, rec.undo);
                rec.applied.push_back(txid);
                if (!tx.is_coinbase()) ++rec.applied_payload;
            } catch (const ValidationError&) {
                peer.applied_txids.erase(txid);
                ++stats_.skipped_txs;
                skipped_txs_->inc();
            }
        }
        peer.confirmed_txs += rec.applied_payload;
        peer.mempool.remove_confirmed(blk.txids());
        if (node == 0) lifecycle_.on_block_connected(i, rec.applied, at);
        peer.exec_records.emplace(h, std::move(rec));
        peer.exec_order.push_back(h);
        connected.push_back(h);
    }

    if ((undone > 0 || !connected.empty())) {
        if (node == 0 && undone > 0) {
            auto& tracer = obs::Tracer::global();
            if (tracer.enabled()) {
                tracer.instant(
                    "dag.relinearize", "consensus", at, node,
                    {{"depth", obs::trace_arg(static_cast<std::uint64_t>(undone))},
                     {"connected", obs::trace_arg(
                          static_cast<std::uint64_t>(connected.size()))}});
            }
        }
        if (ChainEvents* ev = find_events(node); ev != nullptr) {
            if (ev->on_reorg && undone > 0) ev->on_reorg(disconnected, connected, at);
            if (ev->on_tip_changed && !peer.exec_order.empty())
                ev->on_tip_changed(peer.exec_order.back(),
                                   peer.exec_order.size() - 1, at);
        }
    }
}

void DagNetwork::schedule_production(NodeId node) {
    Peer& peer = peers_[node];
    if (peer.production_event) scheduler_.cancel(*peer.production_event);
    // Every peer produces at an equal share of the network rate; the
    // exponential keeps production a Poisson process like PoW discovery, so
    // interval/delay ratios compare one-to-one with the chain families.
    const double share = 1.0 / static_cast<double>(peers_.size());
    const double delay =
        sample_block_time(share, params_.record_interval, peer.rng);
    peer.production_event = scheduler_.schedule_after(delay, [this, node] {
        peers_[node].production_event.reset();
        const Block record = assemble_record(node);
        ++stats_.records_produced;
        auto& tracer = obs::Tracer::global();
        if (tracer.enabled()) {
            tracer.instant("record.produced", "consensus", scheduler_.now(), node,
                           {{"parents", obs::trace_arg(static_cast<std::uint64_t>(
                                 parents_of(record.header).size()))},
                            {"txs", obs::trace_arg(static_cast<std::uint64_t>(
                                 record.txs.size()))}});
        }
        // Local delivery runs through the gossip handler, so the producer
        // adopts its own record exactly like any other peer.
        if (produced_hook_ && !produced_hook_(node, record)) {
            // Withheld: adopt privately; new production keeps approving the
            // secret records until publish_record() releases them.
            insert_and_update(node, record);
        } else {
            gossip_->broadcast(node, "block", encode_to_bytes(record));
        }
        schedule_production(node);
    });
}

void DagNetwork::publish_record(NodeId node, const Hash256& hash) {
    const auto* entry = peers_.at(node).store->find(hash);
    DLT_EXPECTS(entry != nullptr);
    gossip_->broadcast(node, "block", encode_to_bytes(entry->block));
}

ledger::Block DagNetwork::assemble_record(NodeId node) {
    Peer& peer = peers_[node];
    const std::vector<Hash256> parents =
        select_parents(peer.store->tips(), params_.max_parents, peer.rng,
                       peer.store.get(), &store_blue_score);

    Block block;
    set_parents(block.header, parents);
    std::uint64_t height = 0;
    for (const Hash256& p : parents)
        height = std::max(height, peer.store->entry(p).height + 1);
    block.header.height = height;
    block.header.timestamp = scheduler_.now();
    block.header.bits = genesis_.header.bits;
    block.header.nonce = peer.rng.next(); // simulated proof, as in Nakamoto
    block.header.proposer = peer.miner;

    peer.mempool.expire(scheduler_.now());
    const std::size_t budget = params_.max_block_bytes > 512
                                   ? params_.max_block_bytes - 512
                                   : params_.max_block_bytes;
    const auto candidates =
        peer.mempool.build_template(budget, params_.max_block_txs);
    ledger::UtxoSet scratch = peer.utxo;
    ledger::UtxoUndo scratch_undo;
    ledger::Amount fees = 0;
    std::vector<Transaction> chosen;
    for (const auto& entry : candidates) {
        try {
            fees += scratch.check_and_apply(*entry.tx, scratch_undo);
            chosen.push_back(*entry.tx);
        } catch (const ValidationError&) {
            // Stale against the current linear order; skip.
        }
    }

    const ledger::Amount reward = ledger::block_subsidy(height) + fees;
    Transaction coinbase = ledger::make_coinbase(peer.miner, reward, height);
    // Parallel records can share (height, proposer, reward); salt the nonce so
    // every record's coinbase txid is unique.
    coinbase.nonce = peer.rng.next();
    coinbase.invalidate_txid_cache();
    block.txs.push_back(std::move(coinbase));
    for (auto& tx : chosen) block.txs.push_back(std::move(tx));
    block.header.merkle_root = block.compute_merkle_root();
    return block;
}

ChainEvents* DagNetwork::find_events(NodeId node) {
    const auto it = observers_.find(node);
    return it == observers_.end() ? nullptr : &it->second;
}

const std::vector<Hash256>& DagNetwork::tips_of(NodeId node) const {
    return peers_.at(node).store->tips();
}

bool DagNetwork::converged() const {
    auto sorted_tips = [](const Peer& p) {
        std::vector<Hash256> t = p.store->tips();
        std::sort(t.begin(), t.end());
        return t;
    };
    const auto ref = sorted_tips(peers_[0]);
    for (std::size_t i = 1; i < peers_.size(); ++i)
        if (sorted_tips(peers_[i]) != ref) return false;
    return true;
}

std::vector<Hash256> DagNetwork::linear_order(NodeId node) const {
    return peers_.at(node).store->linear_order().order;
}

Hash256 DagNetwork::order_digest(NodeId node) const {
    const auto order = linear_order(node);
    crypto::Sha256 ctx;
    for (const Hash256& h : order) ctx.update(h.bytes());
    return ctx.finalize();
}

double DagNetwork::blue_ratio() const {
    const auto lo = peers_[0].store->linear_order();
    if (lo.order.empty()) return 1.0;
    return static_cast<double>(lo.blue_count) /
           static_cast<double>(lo.order.size());
}

std::uint64_t DagNetwork::confirmed_tx_count() const {
    return peers_[0].confirmed_txs;
}

const ledger::Mempool& DagNetwork::mempool_of(NodeId node) const {
    return peers_.at(node).mempool;
}

const ledger::UtxoSet& DagNetwork::utxo_of(NodeId node) const {
    return peers_.at(node).utxo;
}

const crypto::Address& DagNetwork::miner_address(NodeId node) const {
    return peers_.at(node).miner;
}

} // namespace dlt::consensus::dag
