#include "consensus/pow.hpp"

#include "common/assert.hpp"

namespace dlt::consensus {

std::optional<std::uint64_t> mine_nonce(ledger::BlockHeader header,
                                        std::uint64_t max_iterations,
                                        std::uint64_t start_nonce) {
    const crypto::U256 target = ledger::compact_to_target(header.bits);
    for (std::uint64_t i = 0; i < max_iterations; ++i) {
        header.nonce = start_nonce + i;
        header.invalidate_hash_cache(); // grinding mutates a hashed header
        if (ledger::hash_meets_target(header.hash(), target)) return header.nonce;
    }
    return std::nullopt;
}

bool check_proof_of_work(const ledger::BlockHeader& header) {
    const crypto::U256 target = ledger::compact_to_target(header.bits);
    return ledger::hash_meets_target(header.hash(), target);
}

double sample_block_time(double hashrate_share, double block_interval, Rng& rng) {
    DLT_EXPECTS(hashrate_share > 0 && hashrate_share <= 1.0);
    DLT_EXPECTS(block_interval > 0);
    return rng.exponential(hashrate_share / block_interval);
}

} // namespace dlt::consensus
