#include "consensus/attack.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/serialize.hpp"
#include "consensus/nakamoto.hpp"
#include "ledger/block.hpp"

namespace dlt::consensus {

double attacker_success_probability(double q, unsigned z) {
    DLT_EXPECTS(q >= 0 && q <= 1);
    if (q <= 0) return 0.0;
    if (q >= 0.5) return 1.0;
    const double p = 1.0 - q;
    const double lambda = static_cast<double>(z) * (q / p);

    // 1 - sum_{k=0..z} Poisson(lambda, k) * (1 - (q/p)^(z-k))
    double sum = 1.0;
    double poisson = std::exp(-lambda);
    for (unsigned k = 0; k <= z; ++k) {
        if (k > 0) poisson *= lambda / static_cast<double>(k);
        sum -= poisson * (1.0 - std::pow(q / p, static_cast<double>(z - k)));
    }
    if (sum < 0) sum = 0;
    if (sum > 1) sum = 1;
    return sum;
}

double simulate_attack_success(double q, unsigned z, std::size_t trials, Rng& rng,
                               std::size_t max_steps) {
    DLT_EXPECTS(trials > 0);
    std::size_t wins = 0;
    for (std::size_t t = 0; t < trials; ++t) {
        // Phase 1 (the whitepaper's head start): while the honest chain produces
        // the z confirmation blocks, the attacker mines privately. Each block
        // found network-wide is the attacker's with probability q.
        std::int64_t deficit = 0; // honest lead over the private fork
        std::uint64_t honest = 0;
        while (honest < z) {
            if (rng.chance(q)) {
                --deficit;
            } else {
                ++deficit;
                ++honest;
            }
        }

        // Phase 2: the race. "Catching up" (whitepaper §11) means reaching a
        // tie, after which the attacker publishes and keeps extending.
        bool won = deficit <= 0;
        for (std::size_t step = 0; !won && step < max_steps; ++step) {
            if (rng.chance(q)) {
                --deficit;
            } else {
                ++deficit;
            }
            if (deficit <= 0) won = true;
            // Walks drifting far behind cannot practically recover for q<0.5;
            // cut them off to keep the estimator fast (bias < (q/p)^64).
            if (deficit > static_cast<std::int64_t>(z) + 64) break;
        }
        if (won) ++wins;
    }
    return static_cast<double>(wins) / static_cast<double>(trials);
}

// ---------------------------------------------------------------------------
// Selfish mining
// ---------------------------------------------------------------------------

SelfishMiner::SelfishMiner(NakamotoNetwork& net, net::NodeId attacker)
    : net_(&net), attacker_(attacker) {
    DLT_EXPECTS(attacker < net.node_count());
    net.set_mined_block_hook([this](net::NodeId node, const ledger::Block& block) {
        return on_mined(node, block);
    });
    // Honest-chain growth is observed through the attacker's own replica;
    // chain onto any observer already installed there (scenario monitors).
    ChainEvents& ev = net.events(attacker_);
    auto prev = std::move(ev.on_block_inserted);
    ev.on_block_inserted = [this, prev = std::move(prev)](
                               const ledger::Block& block, SimTime at) {
        if (prev) prev(block, at);
        if (block.header.proposer != net_->miner_address(attacker_))
            on_honest_block(block);
    };
}

bool SelfishMiner::on_mined(net::NodeId node, const ledger::Block& block) {
    if (node != attacker_ || finished_) return true; // honest miners broadcast
    ++stats_.blocks_mined;
    private_height_ = std::max(private_height_, block.header.height);
    if (tie_race_) {
        // State 0': we matched the public chain and just found the decider —
        // publish at once and take both blocks.
        tie_race_ = false;
        ++stats_.blocks_published;
        return true;
    }
    withheld_.emplace_back(block.hash(), block.header.height);
    if (private_height_ > public_height_)
        stats_.max_lead = std::max(stats_.max_lead, private_height_ - public_height_);
    return false;
}

void SelfishMiner::on_honest_block(const ledger::Block& block) {
    const std::uint64_t h = block.header.height;
    if (h <= public_height_) return; // stale / backfill arrival
    const std::uint64_t lead_before =
        private_height_ > public_height_ ? private_height_ - public_height_ : 0;
    public_height_ = h;
    tie_race_ = false; // honest progress resolves any pending race
    if (withheld_.empty()) {
        if (private_height_ < public_height_) private_height_ = public_height_;
        return;
    }
    if (private_height_ <= public_height_) {
        // The honest chain caught our secret fork: it is dead weight, abandon
        // it. The attacker's own tip re-selects the honest branch by work.
        withheld_.clear();
        ++stats_.forks_abandoned;
        private_height_ = public_height_;
        return;
    }
    if (lead_before == 1) {
        // Honest pulled even: release everything and force the tie race.
        while (!withheld_.empty()) publish_front();
        tie_race_ = true;
        ++stats_.tie_races;
    } else if (lead_before == 2) {
        // Releasing now makes our fork longer by one — we win outright.
        while (!withheld_.empty()) publish_front();
    } else {
        // Comfortable lead: trickle out just enough to match the public
        // height, keeping the honest network wasting work on a doomed branch.
        while (!withheld_.empty() && withheld_.front().second <= public_height_)
            publish_front();
    }
}

void SelfishMiner::publish_front() {
    net_->publish_block(attacker_, withheld_.front().first);
    withheld_.pop_front();
    ++stats_.blocks_published;
}

void SelfishMiner::finish() {
    if (finished_) return;
    finished_ = true;
    while (!withheld_.empty()) publish_front();
    net_->set_mined_block_hook(nullptr);
}

double proposer_share(const NakamotoNetwork& net, net::NodeId node) {
    const auto chain = net.canonical_chain();
    if (chain.empty()) return 0.0;
    std::size_t owned = 0;
    const crypto::Address& addr = net.miner_address(node);
    for (const auto& block : chain)
        if (block.header.proposer == addr) ++owned;
    return static_cast<double>(owned) / static_cast<double>(chain.size());
}

// ---------------------------------------------------------------------------
// Eclipse
// ---------------------------------------------------------------------------

EclipseAttack::EclipseAttack(NakamotoNetwork& net, EclipseParams params)
    : net_(&net),
      params_(params),
      partition_("eclipse/" + std::to_string(params.victim)) {
    DLT_EXPECTS(params_.attacker < net.node_count());
    DLT_EXPECTS(params_.victim < net.node_count());
    DLT_EXPECTS(params_.attacker != params_.victim);

    // The victim alone in one group, every honest peer in the other, and the
    // attacker in neither — partitions ignore absent nodes, so the attacker
    // keeps links to both sides and becomes the victim's only window.
    std::vector<net::NodeId> honest;
    for (net::NodeId n = 0; n < net.node_count(); ++n)
        if (n != params_.attacker && n != params_.victim) honest.push_back(n);
    net.network().partition(partition_, {{params_.victim}, honest});

    // Refuse to bridge gossip in either direction. Direct "d/" sync replies
    // are deliberately left open: the victim may backfill ancestors of blocks
    // the attacker *chooses* to push at it.
    const net::NodeId attacker = params_.attacker;
    const net::NodeId victim = params_.victim;
    net.gossip().set_relay_filter(
        [attacker, victim](net::NodeId at, net::NodeId to, const std::string&) {
            if (at == attacker && to == victim) return false;
            if (at == victim && to == attacker) return false;
            return true;
        });

    if (params_.feed_private_fork) {
        net.set_mined_block_hook(
            [this](net::NodeId node, const ledger::Block& block) {
                return on_mined(node, block);
            });
    }
}

bool EclipseAttack::on_mined(net::NodeId node, const ledger::Block& block) {
    if (node != params_.attacker || healed_) return true;
    // Withhold from the honest network, but hand the block straight to the
    // victim: it orphan-fetches any missing ancestors back through us, so the
    // victim converges on the attacker's view of the chain.
    fork_.push_back(block.hash());
    net_->gossip().send_direct(params_.attacker, params_.victim, "d/block",
                               encode_to_bytes(block));
    return false;
}

void EclipseAttack::heal() {
    if (healed_) return;
    healed_ = true;
    net_->gossip().set_relay_filter(nullptr);
    if (params_.feed_private_fork) net_->set_mined_block_hook(nullptr);
    net_->network().heal(partition_);
    // Publish the withheld fork so every peer sees — and, given the honest
    // chain's greater work, deterministically discards — it.
    for (const auto& hash : fork_) net_->publish_block(params_.attacker, hash);
}

} // namespace dlt::consensus
