#include "consensus/attack.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace dlt::consensus {

double attacker_success_probability(double q, unsigned z) {
    DLT_EXPECTS(q >= 0 && q <= 1);
    if (q <= 0) return 0.0;
    if (q >= 0.5) return 1.0;
    const double p = 1.0 - q;
    const double lambda = static_cast<double>(z) * (q / p);

    // 1 - sum_{k=0..z} Poisson(lambda, k) * (1 - (q/p)^(z-k))
    double sum = 1.0;
    double poisson = std::exp(-lambda);
    for (unsigned k = 0; k <= z; ++k) {
        if (k > 0) poisson *= lambda / static_cast<double>(k);
        sum -= poisson * (1.0 - std::pow(q / p, static_cast<double>(z - k)));
    }
    if (sum < 0) sum = 0;
    if (sum > 1) sum = 1;
    return sum;
}

double simulate_attack_success(double q, unsigned z, std::size_t trials, Rng& rng,
                               std::size_t max_steps) {
    DLT_EXPECTS(trials > 0);
    std::size_t wins = 0;
    for (std::size_t t = 0; t < trials; ++t) {
        // Phase 1 (the whitepaper's head start): while the honest chain produces
        // the z confirmation blocks, the attacker mines privately. Each block
        // found network-wide is the attacker's with probability q.
        std::int64_t deficit = 0; // honest lead over the private fork
        std::uint64_t honest = 0;
        while (honest < z) {
            if (rng.chance(q)) {
                --deficit;
            } else {
                ++deficit;
                ++honest;
            }
        }

        // Phase 2: the race. "Catching up" (whitepaper §11) means reaching a
        // tie, after which the attacker publishes and keeps extending.
        bool won = deficit <= 0;
        for (std::size_t step = 0; !won && step < max_steps; ++step) {
            if (rng.chance(q)) {
                --deficit;
            } else {
                ++deficit;
            }
            if (deficit <= 0) won = true;
            // Walks drifting far behind cannot practically recover for q<0.5;
            // cut them off to keep the estimator fast (bias < (q/p)^64).
            if (deficit > static_cast<std::int64_t>(z) + 64) break;
        }
        if (won) ++wins;
    }
    return static_cast<double>(wins) / static_cast<double>(trials);
}

} // namespace dlt::consensus
