#include "consensus/nakamoto.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"
#include "consensus/pow.hpp"
#include "ledger/difficulty.hpp"

namespace dlt::consensus {

using ledger::Block;
using ledger::Transaction;
using net::NodeId;

NakamotoNetwork::NakamotoNetwork(NakamotoParams params, std::uint64_t seed)
    : params_(std::move(params)),
      rng_(seed),
      lifecycle_(params_.finality_depth, &obs::Tracer::global()) {
    DLT_EXPECTS(params_.node_count >= 2);
    DLT_EXPECTS(params_.block_interval > 0);

    auto& registry = obs::MetricsRegistry::global();
    blocks_mined_ = &registry.counter("consensus_blocks_mined_total",
                                      "Blocks mined across all peers");
    reorgs_ = &registry.counter("consensus_reorgs_total",
                                "Reorganizations across all peers");
    invalid_blocks_ = &registry.counter("consensus_invalid_blocks_total",
                                        "Blocks rejected during connect");

    genesis_ = ledger::make_genesis(params_.chain_tag, ledger::easy_bits(1));

    network_ = std::make_unique<net::Network>(scheduler_, rng_.fork(0xA));
    gossip_ = std::make_unique<net::GossipOverlay>(
        *network_, params_.node_count, params_.gossip,
        [this](NodeId node, NodeId from, const std::string& topic,
               ByteView payload) { on_gossip(node, from, topic, payload); });
    network_->build_unstructured_overlay(params_.overlay_degree, params_.link);

    // Normalize hash power.
    std::vector<double> shares = params_.hashrate_shares;
    if (shares.empty()) shares.assign(params_.node_count, 1.0);
    DLT_EXPECTS(shares.size() == params_.node_count);
    double total = 0;
    for (const double s : shares) total += s;
    DLT_EXPECTS(total > 0);

    peers_.resize(params_.node_count);
    for (std::size_t i = 0; i < params_.node_count; ++i) {
        Peer& peer = peers_[i];
        peer.chain = std::make_unique<ledger::ChainStore>(genesis_);
        peer.active_tip = genesis_.hash();
        peer.mempool = ledger::Mempool(params_.mempool);
        peer.miner = crypto::PrivateKey::from_seed(params_.chain_tag + "/miner/" +
                                                   std::to_string(i))
                         .address();
        peer.hashrate_share = shares[i] / total;
        peer.rng = rng_.fork(0x100 + i);
    }

    // Peer 0 is the observed replica: its mempool drops become explicit
    // lifecycle terminal events (reasons share the enumeration order).
    peers_[0].mempool.set_drop_observer(
        [this](const Hash256& txid, ledger::MempoolDropReason reason, SimTime at) {
            lifecycle_.on_dropped(
                txid, 0, at,
                static_cast<obs::TxDropReason>(static_cast<std::uint8_t>(reason)));
        });
}

void NakamotoNetwork::start() {
    for (NodeId i = 0; i < peers_.size(); ++i) schedule_mining(i);
}

void NakamotoNetwork::run_for(SimDuration duration) {
    scheduler_.run_until(scheduler_.now() + duration);
}

void NakamotoNetwork::submit_transaction(const Transaction& tx, NodeId origin) {
    lifecycle_.on_submitted(tx.txid(), scheduler_.now(), origin);
    gossip_->broadcast(origin, "tx", encode_to_bytes(tx));
}

void NakamotoNetwork::on_gossip(NodeId node, NodeId from, const std::string& topic,
                                ByteView payload) {
    // Stamp log lines emitted while handling this delivery with the virtual
    // time and acting node, so interleaved multi-node logs stay attributable.
    const ScopedLogTime log_time(scheduler_.now());
    const ScopedLogNode log_node(node);
    if (topic == "tx") {
        try {
            auto tx = decode_from_bytes<Transaction>(payload);
            // Lifecycle stamps are no-ops for untracked ids; the txid is
            // computed by mempool admission anyway (cached), so this is cheap.
            const Hash256 txid = tx.txid();
            if (node != from) lifecycle_.on_first_seen(txid, node, scheduler_.now());
            const ledger::AdmissionResult verdict =
                peers_[node].mempool.admit(std::move(tx), scheduler_.now());
            if (verdict == ledger::AdmissionResult::kAccepted ||
                verdict == ledger::AdmissionResult::kRbfReplaced)
                lifecycle_.on_mempool_accepted(txid, node, scheduler_.now());
        } catch (const Error&) {
            // Undecodable gossip is dropped silently, as a real peer would.
        }
        return;
    }
    if (topic == "block" || topic == "d/block") {
        try {
            handle_block(node, decode_from_bytes<Block>(payload), from);
        } catch (const Error&) {
        }
        return;
    }
    if (topic == "d/getblock") {
        // Peer `from` asks for one block by hash; reply when we have it so its
        // ancestor walk makes progress, or tell it we can't help so it may
        // retry elsewhere.
        if (payload.size() != 32) return;
        const Hash256 want = Hash256::from_bytes(payload);
        const auto* entry = peers_[node].chain->find(want);
        if (entry != nullptr) {
            gossip_->send_direct(node, from, "d/block", encode_to_bytes(entry->block));
        } else {
            gossip_->send_direct(node, from, "d/notfound", want.bytes());
        }
        return;
    }
    if (topic == "d/notfound") {
        // The peer we asked lacks the block; clear the in-flight marker so a
        // later arrival can trigger a fresh request toward a better peer.
        if (payload.size() != 32) return;
        peers_[node].sync_requested.erase(Hash256::from_bytes(payload));
        return;
    }
}

void NakamotoNetwork::handle_block(NodeId node, const Block& block, NodeId from) {
    Peer& peer = peers_[node];
    if (peer.chain->contains(block.hash())) return;
    if (!peer.chain->contains(block.header.prev_hash)) {
        auto& siblings = peer.orphans[block.header.prev_hash];
        const Hash256 hash = block.hash();
        const bool duplicate =
            std::any_of(siblings.begin(), siblings.end(),
                        [&](const Block& b) { return b.hash() == hash; });
        if (!duplicate) siblings.push_back(block);
        request_block(node, block.header.prev_hash, from);
        return;
    }
    try_insert_and_update(node, block);
}

void NakamotoNetwork::request_block(NodeId node, const Hash256& hash, NodeId from) {
    Peer& peer = peers_[node];
    if (from == node) return; // locally injected: nobody to ask
    if (!peer.sync_requested.insert(hash).second) return; // already in flight
    gossip_->send_direct(node, from, "d/getblock", hash.bytes());
}

void NakamotoNetwork::try_insert_and_update(NodeId node, const Block& block) {
    Peer& peer = peers_[node];

    // Insert the block and any orphans it unblocks (BFS).
    std::vector<Block> pending{block};
    while (!pending.empty()) {
        const Block current = std::move(pending.back());
        pending.pop_back();
        const Hash256 hash = current.hash();
        peer.sync_requested.erase(hash); // a pending ancestor fetch is satisfied
        if (!peer.chain->contains(hash)) {
            const auto target = ledger::compact_to_target(current.header.bits);
            peer.chain->insert(current, ledger::work_from_target(target),
                               scheduler_.now());
            if (ChainEvents* ev = find_events(node);
                ev != nullptr && ev->on_block_inserted)
                ev->on_block_inserted(current, scheduler_.now());
        }
        const auto it = peer.orphans.find(hash);
        if (it != peer.orphans.end()) {
            for (auto& orphan : it->second) pending.push_back(std::move(orphan));
            peer.orphans.erase(it);
        }
    }

    update_active_tip(node);
}

Hash256 NakamotoNetwork::select_tip(const Peer& peer) const {
    return params_.branch_rule == BranchRule::kGhost ? peer.chain->best_tip_by_ghost()
                                                     : peer.chain->best_tip_by_work();
}

bool NakamotoNetwork::path_contains_invalid(const Peer& peer,
                                            const Hash256& tip) const {
    if (peer.invalid.empty()) return false;
    for (const auto& hash : peer.chain->path_from_genesis(tip))
        if (peer.invalid.contains(hash)) return true;
    return false;
}

void NakamotoNetwork::update_active_tip(NodeId node) {
    Peer& peer = peers_[node];
    for (;;) {
        const Hash256 best = select_tip(peer);
        if (best == peer.active_tip) return;
        if (path_contains_invalid(peer, best)) {
            // Fall back to most-work valid leaf.
            Hash256 fallback = peer.active_tip;
            crypto::U256 fallback_work =
                peer.chain->find(peer.active_tip)->cumulative_work;
            for (const auto& leaf : peer.chain->leaves()) {
                if (path_contains_invalid(peer, leaf)) continue;
                const auto* entry = peer.chain->find(leaf);
                if (entry->cumulative_work > fallback_work) {
                    fallback = leaf;
                    fallback_work = entry->cumulative_work;
                }
            }
            if (fallback == peer.active_tip) return;
            reorg_to(node, fallback);
            return;
        }
        reorg_to(node, best);
        // A failed connect marks blocks invalid and restores the old tip; loop to
        // re-select. A successful reorg leaves active_tip == best and we exit.
        if (peer.active_tip == best) return;
    }
}

void NakamotoNetwork::reorg_to(NodeId node, const Hash256& new_tip) {
    Peer& peer = peers_[node];
    if (new_tip == peer.active_tip) return;
    const auto path = peer.chain->reorg_path(peer.active_tip, new_tip);
    if (!path.disconnect.empty()) {
        ++stats_.reorgs;
        reorgs_->inc();
    }

    // Disconnect the old branch (tip first), returning its txs to the mempool.
    for (const auto& hash : path.disconnect) {
        const auto undo_it = peer.undo.find(hash);
        DLT_INVARIANT(undo_it != peer.undo.end());
        peer.utxo.undo_block(undo_it->second);
        peer.undo.erase(undo_it);
        peer.mempool.add_back(peer.chain->find(hash)->block.txs, scheduler_.now());
    }
    Hash256 reached = path.disconnect.empty()
                          ? peer.active_tip
                          : peer.chain->find(path.disconnect.back())->block.header.prev_hash;

    // Connect the new branch (oldest first).
    std::vector<Hash256> connected;
    for (const auto& hash : path.connect) {
        const Block& blk = peer.chain->find(hash)->block;
        try {
            peer.undo.emplace(hash, ledger::connect_block(blk, peer.utxo,
                                                          params_.validation));
        } catch (const ValidationError&) {
            ++stats_.invalid_blocks;
            invalid_blocks_->inc();
            peer.invalid.insert(hash);
            // Roll back whatever we connected from this branch (newest first),
            // then restore the old branch so state matches active_tip again.
            for (auto rit = connected.rbegin(); rit != connected.rend(); ++rit) {
                const auto undo_it = peer.undo.find(*rit);
                peer.utxo.undo_block(undo_it->second);
                peer.undo.erase(undo_it);
            }
            for (auto it = path.disconnect.rbegin(); it != path.disconnect.rend();
                 ++it) {
                const Block& old_blk = peer.chain->find(*it)->block;
                peer.undo.emplace(*it, ledger::connect_block(old_blk, peer.utxo,
                                                             params_.validation));
            }
            return; // active_tip unchanged
        }
        peer.mempool.remove_confirmed(blk.txids());
        connected.push_back(hash);
        reached = hash;
    }

    peer.active_tip = reached;

    // Observers fire only after the reorg fully succeeded (a failed connect
    // rolls everything back above, so nothing is emitted for it). Peer 0 is
    // the lifecycle-observed replica; chain events go to whichever nodes
    // registered an observer set.
    if (node == 0) {
        const SimTime at = scheduler_.now();
        for (const auto& hash : path.disconnect) {
            const auto* entry = peer.chain->find(hash);
            lifecycle_.on_block_disconnected(entry->height, entry->block.txids());
        }
        for (const auto& hash : connected) {
            const auto* entry = peer.chain->find(hash);
            lifecycle_.on_block_connected(entry->height, entry->block.txids(), at);
        }
        const std::uint64_t tip_height = peer.chain->find(reached)->height;
        lifecycle_.on_tip_height(tip_height, at);
        auto& tracer = obs::Tracer::global();
        if (tracer.enabled() && !path.disconnect.empty()) {
            tracer.instant("chain.reorg", "consensus", at, node,
                           {{"depth", obs::trace_arg(static_cast<std::uint64_t>(
                                 path.disconnect.size()))},
                            {"connected", obs::trace_arg(static_cast<std::uint64_t>(
                                 connected.size()))}});
        }
    }
    if (ChainEvents* ev = find_events(node); ev != nullptr) {
        const SimTime at = scheduler_.now();
        const std::uint64_t tip_height = peer.chain->find(reached)->height;
        if (ev->on_reorg) ev->on_reorg(path.disconnect, connected, at);
        if (ev->on_tip_changed) ev->on_tip_changed(reached, tip_height, at);
    }

    schedule_mining(node); // re-point mining at the new tip
}

void NakamotoNetwork::set_network_hashrate(double multiplier) {
    DLT_EXPECTS(multiplier > 0);
    network_hashrate_ = multiplier;
    // Reschedule every miner at the new rate (exponentials are memoryless).
    for (NodeId i = 0; i < peers_.size(); ++i)
        if (peers_[i].mining_event) schedule_mining(i);
}

std::uint32_t NakamotoNetwork::next_bits(NodeId node, const Hash256& tip) const {
    if (!params_.enable_retargeting) return genesis_.header.bits;
    const Peer& peer = peers_.at(node);
    const auto* entry = peer.chain->find(tip);
    DLT_EXPECTS(entry != nullptr);
    const std::uint64_t next_height = entry->height + 1;
    if (next_height % params_.retarget.interval_blocks != 0)
        return entry->block.header.bits;

    // Actual time the last interval took, from block timestamps. Walk back
    // `interval_blocks` parents so the window spans interval_blocks gaps
    // (avoiding Bitcoin's famous off-by-one, which at our short retarget
    // windows would bias difficulty ~12% high).
    const Hash256 first = peer.chain->ancestor(tip, params_.retarget.interval_blocks);
    const auto* first_entry = peer.chain->find(first);
    const std::uint64_t gaps = entry->height - first_entry->height;
    if (gaps == 0) return entry->block.header.bits;
    double actual =
        entry->block.header.timestamp - first_entry->block.header.timestamp;
    // Normalize to a full window when clipped at genesis.
    actual *= static_cast<double>(params_.retarget.interval_blocks) /
              static_cast<double>(gaps);
    if (actual <= 0) return entry->block.header.bits;
    return ledger::retarget(entry->block.header.bits, actual, params_.retarget);
}

std::optional<double> NakamotoNetwork::observed_interval(std::size_t window) const {
    const Peer& peer = peers_.front();
    const auto path = peer.chain->path_from_genesis(peer.active_tip);
    if (path.size() < 3) return std::nullopt;
    const std::size_t take = std::min(window + 1, path.size());
    const auto& newest = peer.chain->find(path.back())->block.header;
    const auto& oldest =
        peer.chain->find(path[path.size() - take])->block.header;
    return (newest.timestamp - oldest.timestamp) / static_cast<double>(take - 1);
}

void NakamotoNetwork::schedule_mining(NodeId node) {
    Peer& peer = peers_[node];
    if (peer.hashrate_share <= 0) return;
    if (peer.mining_event) scheduler_.cancel(*peer.mining_event);
    // Expected network interval scales with the current difficulty relative to
    // genesis, and inversely with total hash power.
    double interval = params_.block_interval / network_hashrate_;
    if (params_.enable_retargeting) {
        const auto to_double = [](const crypto::U256& v) {
            double out = 0;
            for (int i = 3; i >= 0; --i)
                out = out * 18446744073709551616.0 +
                      static_cast<double>(v.limbs[static_cast<std::size_t>(i)]);
            return out;
        };
        const auto genesis_target = ledger::compact_to_target(genesis_.header.bits);
        const auto current_target =
            ledger::compact_to_target(next_bits(node, peer.active_tip));
        // difficulty ratio = genesis_target / current_target (smaller target =
        // harder); double precision is ample for interval scaling.
        interval *= to_double(genesis_target) / to_double(current_target);
    }
    const double delay = sample_block_time(peer.hashrate_share, interval, peer.rng);
    peer.mining_event = scheduler_.schedule_after(delay, [this, node] {
        peers_[node].mining_event.reset();
        const Block block = assemble_block(node);
        ++stats_.blocks_mined;
        blocks_mined_->inc();
        auto& tracer = obs::Tracer::global();
        if (tracer.enabled()) {
            tracer.instant("block.mined", "consensus", scheduler_.now(), node,
                           {{"height", obs::trace_arg(block.header.height)},
                            {"txs", obs::trace_arg(static_cast<std::uint64_t>(
                                 block.txs.size()))}});
        }
        if (mined_hook_ && !mined_hook_(node, block)) {
            // Withheld: the miner adopts the block privately (it has the most
            // work locally, so mining continues on the secret fork) and no
            // frame ever enters the overlay. publish_block() releases it.
            try_insert_and_update(node, block);
        } else {
            gossip_->broadcast(node, "block", encode_to_bytes(block));
        }
        // Local delivery runs through the gossip handler, so the miner adopts its
        // own block exactly like any other peer; mining then restarts via reorg.
        schedule_mining(node);
    });
}

void NakamotoNetwork::publish_block(NodeId node, const Hash256& hash) {
    const auto* entry = peers_.at(node).chain->find(hash);
    DLT_EXPECTS(entry != nullptr);
    gossip_->broadcast(node, "block", encode_to_bytes(entry->block));
}

ledger::Block NakamotoNetwork::assemble_block(NodeId node) {
    Peer& peer = peers_[node];
    const auto* tip_entry = peer.chain->find(peer.active_tip);
    DLT_INVARIANT(tip_entry != nullptr);

    Block block;
    block.header.prev_hash = peer.active_tip;
    block.header.height = tip_entry->height + 1;
    block.header.timestamp = scheduler_.now();
    block.header.bits = next_bits(node, peer.active_tip);
    block.header.nonce = peer.rng.next(); // simulated proof (see DESIGN.md)
    block.header.proposer = peer.miner;

    // Feerate-ordered template straight off the mempool's maintained index
    // (no per-block re-sort); only transactions that remain valid in order
    // are copied into the block.
    peer.mempool.expire(scheduler_.now());
    const std::size_t budget = params_.max_block_bytes > 512
                                   ? params_.max_block_bytes - 512
                                   : params_.max_block_bytes;
    const auto candidates =
        peer.mempool.build_template(budget, params_.max_block_txs);
    ledger::UtxoSet scratch = peer.utxo;
    ledger::UtxoUndo scratch_undo;
    ledger::Amount fees = 0;
    std::vector<Transaction> chosen;
    for (const auto& entry : candidates) {
        try {
            fees += scratch.check_and_apply(*entry.tx, scratch_undo);
            chosen.push_back(*entry.tx);
        } catch (const ValidationError&) {
            // Stale mempool entry (already spent on this branch); skip it.
        }
    }

    const ledger::Amount reward = ledger::block_subsidy(block.header.height) + fees;
    block.txs.push_back(ledger::make_coinbase(peer.miner, reward, block.header.height));
    for (auto& tx : chosen) block.txs.push_back(std::move(tx));
    block.header.merkle_root = block.compute_merkle_root();
    return block;
}

const Hash256& NakamotoNetwork::tip_of(NodeId node) const {
    return peers_.at(node).active_tip;
}

std::uint64_t NakamotoNetwork::height_of(NodeId node) const {
    const Peer& peer = peers_.at(node);
    return peer.chain->find(peer.active_tip)->height;
}

bool NakamotoNetwork::converged() const {
    for (std::size_t i = 1; i < peers_.size(); ++i)
        if (peers_[i].active_tip != peers_[0].active_tip) return false;
    return true;
}

std::optional<Hash256> NakamotoNetwork::majority_tip() const {
    std::unordered_map<Hash256, std::size_t> votes;
    for (const auto& peer : peers_) ++votes[peer.active_tip];
    for (const auto& [tip, count] : votes)
        if (count * 2 > peers_.size()) return tip;
    return std::nullopt;
}

std::vector<Block> NakamotoNetwork::canonical_chain() const {
    const Peer& peer = peers_.front();
    std::vector<Block> blocks;
    for (const auto& hash : peer.chain->path_from_genesis(peer.active_tip)) {
        if (hash == peer.chain->genesis_hash()) continue;
        blocks.push_back(peer.chain->find(hash)->block);
    }
    return blocks;
}

std::uint64_t NakamotoNetwork::confirmed_tx_count() const {
    std::uint64_t count = 0;
    for (const auto& block : canonical_chain())
        for (const auto& tx : block.txs)
            if (!tx.is_coinbase()) ++count;
    return count;
}

std::size_t NakamotoNetwork::stale_blocks() const {
    const Peer& peer = peers_.front();
    return peer.chain->stale_count(peer.active_tip);
}

double NakamotoNetwork::stale_rate() const {
    const Peer& peer = peers_.front();
    const std::size_t total = peer.chain->size() - 1; // exclude genesis
    if (total == 0) return 0.0;
    return static_cast<double>(stale_blocks()) / static_cast<double>(total);
}

std::optional<std::uint64_t> NakamotoNetwork::confirmations_of(
    const Hash256& txid) const {
    const Peer& peer = peers_.front();
    const auto path = peer.chain->path_from_genesis(peer.active_tip);
    const std::uint64_t tip_height = peer.chain->find(peer.active_tip)->height;
    for (const auto& hash : path) {
        const auto* entry = peer.chain->find(hash);
        for (const auto& tx : entry->block.txs)
            if (tx.txid() == txid) return tip_height - entry->height + 1;
    }
    return std::nullopt;
}

const ledger::ChainStore& NakamotoNetwork::chain_of(NodeId node) const {
    return *peers_.at(node).chain;
}

const ledger::Mempool& NakamotoNetwork::mempool_of(NodeId node) const {
    return peers_.at(node).mempool;
}

ChainEvents* NakamotoNetwork::find_events(NodeId node) {
    const auto it = observers_.find(node);
    return it == observers_.end() ? nullptr : &it->second;
}

const ledger::UtxoSet& NakamotoNetwork::utxo_of(NodeId node) const {
    return peers_.at(node).utxo;
}

const crypto::Address& NakamotoNetwork::miner_address(NodeId node) const {
    return peers_.at(node).miner;
}

} // namespace dlt::consensus
