// Per-peer chain observer hooks, shared by every block-organized consensus
// family (Nakamoto single-chain, the DAG ledger). Historically defined inside
// nakamoto.hpp; hoisted here so consensus/dag can reuse the same observer
// contract without depending on the Nakamoto simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "ledger/block.hpp"

namespace dlt::consensus {

/// Pure-observer callbacks fired on one peer's chain events. Historically
/// peer-0-only; any peer can now be observed via events(node). The analytics
/// layer's ReorgMonitor feeds from these instead of re-walking the chain
/// store per query. Callbacks must not mutate consensus state — the
/// determinism contract of src/obs applies.
///
/// For the DAG ledger the same hooks observe the *linearized* order: `height`
/// is the block's position in the GHOSTDAG total order, and a "reorg" is a
/// re-linearization (late-arriving parallel blocks reshuffling the suffix).
struct ChainEvents {
    /// A block entered the observed peer's store (any branch), at virtual time `at`.
    std::function<void(const ledger::Block&, SimTime at)> on_block_inserted;
    /// The observed peer reorged: `disconnected` (tip-first) left the active
    /// chain, `connected` (oldest-first) joined it. Empty `disconnected` =
    /// extension.
    std::function<void(const std::vector<Hash256>& disconnected,
                       const std::vector<Hash256>& connected, SimTime at)>
        on_reorg;
    /// The observed peer's active tip after every successful update.
    std::function<void(const Hash256& tip, std::uint64_t height, SimTime at)>
        on_tip_changed;
};

} // namespace dlt::consensus
