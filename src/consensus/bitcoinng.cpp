#include "consensus/bitcoinng.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/serialize.hpp"

namespace dlt::consensus {

BitcoinNgSimulation::BitcoinNgSimulation(BitcoinNgParams params, std::uint64_t seed)
    : params_(std::move(params)), rng_(seed) {
    DLT_EXPECTS(params_.node_count >= 2);
    network_ = std::make_unique<net::Network>(scheduler_, rng_.fork(1));
    gossip_ = std::make_unique<net::GossipOverlay>(
        *network_, params_.node_count, net::GossipParams{},
        [](net::NodeId, net::NodeId, const std::string&, ByteView) {
            // Microblock and key-block contents are tracked centrally; the
            // gossip layer is exercised for realistic propagation cost.
        });
    network_->build_unstructured_overlay(params_.overlay_degree, params_.link);
}

void BitcoinNgSimulation::start() {
    started_at_ = scheduler_.now();
    // The genesis key block elects an initial leader, as in the protocol: the
    // chain never runs leaderless.
    on_key_block(static_cast<std::uint32_t>(rng_.uniform(params_.node_count)));
    schedule_workload();
    schedule_key_block_race();
}

void BitcoinNgSimulation::run_for(SimDuration duration) {
    scheduler_.run_until(scheduler_.now() + duration);
}

void BitcoinNgSimulation::schedule_workload() {
    if (params_.tx_rate <= 0) return;
    const double gap = rng_.exponential(params_.tx_rate);
    scheduler_.schedule_after(gap, [this] {
        mempool_arrivals_.push_back(scheduler_.now());
        schedule_workload();
    });
}

void BitcoinNgSimulation::schedule_key_block_race() {
    if (race_event_) scheduler_.cancel(*race_event_);
    const double delay = rng_.exponential(1.0 / params_.key_block_interval);
    race_event_ = scheduler_.schedule_after(delay, [this] {
        race_event_.reset();
        const auto winner = static_cast<std::uint32_t>(rng_.uniform(params_.node_count));
        on_key_block(winner);
        schedule_key_block_race();
    });
}

void BitcoinNgSimulation::on_key_block(std::uint32_t winner) {
    ++stats_.key_blocks;
    if (leader_ && *leader_ != winner) {
        ++stats_.leader_switches;
        // Microblocks the new leader hasn't seen (those within one propagation
        // delay of the switch) are pruned: model as the last microblock's worth
        // of transactions returning to the mempool as orphans.
        const std::size_t orphaned = std::min<std::size_t>(
            stats_.txs_serialized, params_.max_txs_per_microblock / 4);
        stats_.txs_orphaned += orphaned;
    }
    leader_ = winner;
    gossip_->broadcast(winner, "keyblock", to_bytes("kb"));
    if (!micro_event_) schedule_microblock();
}

void BitcoinNgSimulation::schedule_microblock() {
    micro_event_ = scheduler_.schedule_after(params_.microblock_interval, [this] {
        micro_event_.reset();
        emit_microblock();
        schedule_microblock();
    });
}

void BitcoinNgSimulation::emit_microblock() {
    if (!leader_) return;
    const std::size_t take =
        std::min(params_.max_txs_per_microblock, mempool_arrivals_.size());
    if (take > 0) {
        ++stats_.microblocks;
        for (std::size_t i = 0; i < take; ++i)
            inclusion_latencies_.push_back(scheduler_.now() - mempool_arrivals_[i]);
        mempool_arrivals_.erase(mempool_arrivals_.begin(),
                                mempool_arrivals_.begin() +
                                    static_cast<std::ptrdiff_t>(take));
        stats_.txs_serialized += take;
        // Microblocks gossip through the network (payload size models tx data).
        gossip_->broadcast(*leader_, "microblock", Bytes(take * 250, 0xAB));
    }
}

double BitcoinNgSimulation::throughput_tps() const {
    const double elapsed = scheduler_.now() - started_at_;
    if (elapsed <= 0) return 0;
    return static_cast<double>(stats_.txs_serialized) / elapsed;
}

std::optional<double> BitcoinNgSimulation::mean_inclusion_latency() const {
    if (inclusion_latencies_.empty()) return std::nullopt;
    double sum = 0;
    for (const double lat : inclusion_latencies_) sum += lat;
    return sum / static_cast<double>(inclusion_latencies_.size());
}

} // namespace dlt::consensus
