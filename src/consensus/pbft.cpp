#include "consensus/pbft.hpp"

#include <algorithm>
#include <memory>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"
#include "obs/trace.hpp"

// Implementation notes / simplifications (documented in DESIGN.md):
//  - Point-to-point channels are authenticated by construction in the simulator,
//    so messages carry plain replica ids instead of signatures (the standard
//    "authenticated channels" PBFT variant).
//  - Checkpointing/garbage collection is omitted: simulated runs are short.
//  - View change is the simplified re-proposal form: replicas vote VIEW-CHANGE,
//    adopt view v on a 2f+1 quorum for v (joining early after f+1), the new
//    primary re-proposes every request not yet committed. Uncommitted slots are
//    discarded on view entry, which is safe because anything executed had a
//    2f+1 commit quorum that the next view cannot contradict in the fault
//    scenarios modelled here (crash + equivocation).

namespace dlt::consensus {

using net::Delivery;

namespace {

Hash256 batch_digest(const std::vector<Bytes>& requests) {
    Writer w;
    w.varint(requests.size());
    for (const auto& r : requests) w.blob(r);
    return crypto::tagged_hash("dlt/pbft-batch", w.data());
}

Hash256 request_digest(const Bytes& request) {
    return crypto::tagged_hash("dlt/pbft-req", request);
}

} // namespace

PbftCluster::PbftCluster(PbftConfig config, std::uint64_t seed)
    : config_(config),
      n_(3 * config.f + 1),
      rng_(seed),
      // Finality is the execute step (on_finalized); depth-based k-deep never
      // applies to a total-order log.
      lifecycle_(1, &obs::Tracer::global()) {
    DLT_EXPECTS(config.f >= 1);
    auto& registry = obs::MetricsRegistry::global();
    batches_committed_ = &registry.counter(
        "pbft_batches_committed_total", "Batches executed across all replicas");
    requests_executed_ = &registry.counter(
        "pbft_requests_executed_total", "Requests executed across all replicas");
    view_changes_ = &registry.counter("pbft_view_changes_total",
                                      "View transitions across all replicas");
    network_ = std::make_unique<net::Network>(scheduler_, rng_.fork(1));
    replicas_.resize(n_);
    for (std::uint32_t i = 0; i < n_; ++i) {
        replicas_[i].id = i;
        const net::NodeId id = network_->add_node(
            [this, i](const Delivery& d) { on_message(i, d); });
        DLT_ENSURES(id == i);
    }
    network_->build_full_mesh(config_.link);
}

void PbftCluster::submit(Bytes request) {
    submit_times_.emplace(request_digest(request), scheduler_.now());
    lifecycle_.on_submitted(request_digest(request), scheduler_.now(), 0);
    // Clients multicast to all replicas so a faulty primary cannot censor
    // without detection.
    for (std::uint32_t i = 0; i < n_; ++i) {
        Bytes copy = request;
        scheduler_.schedule_after(0.0, [this, i, copy = std::move(copy)]() mutable {
            handle_request(i, copy);
        });
    }
}

void PbftCluster::set_fault(std::uint32_t replica, PbftFault fault) {
    DLT_EXPECTS(replica < n_);
    replicas_[replica].fault = fault;
    network_->set_crashed(replica, fault == PbftFault::kCrashed);
}

void PbftCluster::run_for(SimDuration duration) {
    scheduler_.run_until(scheduler_.now() + duration);
}

void PbftCluster::broadcast(std::uint32_t from, const std::string& topic,
                            const Bytes& payload) {
    if (replicas_[from].fault == PbftFault::kCrashed) return;
    const auto shared = std::make_shared<const Bytes>(payload);
    for (std::uint32_t to = 0; to < n_; ++to) {
        if (to == from) continue;
        network_->send(from, to, topic, shared);
    }
}

void PbftCluster::on_message(std::uint32_t replica, const Delivery& d) {
    if (replicas_[replica].fault == PbftFault::kCrashed) return;
    try {
        if (d.topic == "preprepare") {
            handle_pre_prepare(replica, d.payload());
        } else if (d.topic == "prepare") {
            handle_prepare(replica, d.payload());
        } else if (d.topic == "commit") {
            handle_commit(replica, d.payload());
        } else if (d.topic == "viewchange") {
            handle_view_change(replica, d.payload());
        } else if (d.topic == "newview") {
            handle_new_view(replica, d.payload());
        }
    } catch (const Error&) {
        // Malformed message: drop, as a hardened replica would.
    }
}

// --- Request intake and batching ---------------------------------------------------

void PbftCluster::handle_request(std::uint32_t replica, const Bytes& request) {
    Replica& r = replicas_[replica];
    if (r.fault == PbftFault::kCrashed) return;
    r.pending.emplace_back(request, scheduler_.now());
    arm_view_timer(replica);
    if (is_primary(r)) maybe_cut_batch(replica);
}

void PbftCluster::maybe_cut_batch(std::uint32_t replica) {
    Replica& r = replicas_[replica];
    if (!is_primary(r) || r.pending.empty()) return;
    if (r.pending.size() >= config_.batch_size) {
        if (r.batch_timer) {
            scheduler_.cancel(*r.batch_timer);
            r.batch_timer.reset();
        }
        propose_batch(replica);
        return;
    }
    if (!r.batch_timer) {
        r.batch_timer = scheduler_.schedule_after(config_.batch_interval,
                                                  [this, replica] {
                                                      replicas_[replica].batch_timer.reset();
                                                      propose_batch(replica);
                                                  });
    }
}

void PbftCluster::propose_batch(std::uint32_t replica) {
    Replica& r = replicas_[replica];
    if (!is_primary(r) || r.fault == PbftFault::kCrashed || r.pending.empty()) return;

    std::vector<Bytes> requests;
    const std::size_t take = std::min(config_.batch_size, r.pending.size());
    for (std::size_t i = 0; i < take; ++i) {
        requests.push_back(std::move(r.pending.front().first));
        r.pending.pop_front();
    }
    const std::uint64_t seq = r.next_sequence++;

    auto encode_pp = [&](const std::vector<Bytes>& reqs) {
        Writer w;
        w.u32(r.view);
        w.u64(seq);
        w.fixed(batch_digest(reqs));
        w.varint(reqs.size());
        for (const auto& req : reqs) w.blob(req);
        return std::move(w).take();
    };

    if (r.fault == PbftFault::kEquivocating) {
        // Send one batch to the first half of replicas and a conflicting
        // (reordered) batch to the other half.
        std::vector<Bytes> shuffled = requests;
        std::reverse(shuffled.begin(), shuffled.end());
        if (shuffled == requests) shuffled.push_back(Bytes{0xFF}); // force conflict
        const Bytes a = encode_pp(requests);
        const Bytes b = encode_pp(shuffled);
        for (std::uint32_t to = 0; to < n_; ++to) {
            if (to == replica) continue;
            network_->send(replica, to, "preprepare", to % 2 == 0 ? a : b);
        }
        return;
    }

    const Bytes pp = encode_pp(requests);
    broadcast(replica, "preprepare", pp);
    // The primary processes its own pre-prepare locally.
    handle_pre_prepare(replica, pp);

    if (!r.pending.empty()) maybe_cut_batch(replica);
}

// --- Three-phase agreement -----------------------------------------------------------

void PbftCluster::handle_pre_prepare(std::uint32_t replica, const Bytes& payload) {
    Replica& r = replicas_[replica];
    Reader reader(payload);
    const std::uint32_t view = reader.u32();
    const std::uint64_t seq = reader.u64();
    const Hash256 digest = reader.fixed<32>();
    const std::uint64_t count = reader.varint();
    std::vector<Bytes> requests;
    requests.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) requests.push_back(reader.blob());
    reader.expect_done();

    if (view != r.view) return;
    if (batch_digest(requests) != digest) return; // primary lied about digest
    if (seq <= r.last_executed) return;

    SlotState& slot = r.slots[seq];
    if (slot.pre_prepared && slot.view == view &&
        Hash256::from_bytes(slot.digest) != digest)
        return; // conflicting pre-prepare in the same view: ignore (equivocation)
    slot.view = view;
    slot.digest = digest.bytes();
    slot.requests = std::move(requests);
    slot.pre_prepared = true;
    if (replica == 0)
        for (const auto& req : slot.requests)
            lifecycle_.on_first_seen(request_digest(req), replica,
                                     scheduler_.now());

    Writer w;
    w.u32(view);
    w.u64(seq);
    w.fixed(digest);
    w.u32(r.id);
    const Bytes prepare = std::move(w).take();
    broadcast(replica, "prepare", prepare);
    // Count our own prepare.
    slot.prepares.insert(r.id);
    try_advance(replica, seq);
    arm_view_timer(replica);
}

void PbftCluster::handle_prepare(std::uint32_t replica, const Bytes& payload) {
    Replica& r = replicas_[replica];
    Reader reader(payload);
    const std::uint32_t view = reader.u32();
    const std::uint64_t seq = reader.u64();
    const Hash256 digest = reader.fixed<32>();
    const std::uint32_t sender = reader.u32();
    reader.expect_done();

    if (view != r.view || seq <= r.last_executed) return;
    SlotState& slot = r.slots[seq];
    if (slot.pre_prepared && Hash256::from_bytes(slot.digest) != digest) return;
    if (!slot.pre_prepared) {
        // Remember the digest so prepares arriving before the pre-prepare count.
        if (slot.digest.empty()) slot.digest = digest.bytes();
        else if (Hash256::from_bytes(slot.digest) != digest) return;
    }
    slot.view = view;
    slot.prepares.insert(sender);
    try_advance(replica, seq);
}

void PbftCluster::handle_commit(std::uint32_t replica, const Bytes& payload) {
    Replica& r = replicas_[replica];
    Reader reader(payload);
    const std::uint32_t view = reader.u32();
    const std::uint64_t seq = reader.u64();
    const Hash256 digest = reader.fixed<32>();
    const std::uint32_t sender = reader.u32();
    reader.expect_done();

    if (view != r.view || seq <= r.last_executed) return;
    SlotState& slot = r.slots[seq];
    if (!slot.digest.empty() && Hash256::from_bytes(slot.digest) != digest) return;
    if (slot.digest.empty()) slot.digest = digest.bytes();
    slot.commits.insert(sender);
    try_advance(replica, seq);
}

void PbftCluster::try_advance(std::uint32_t replica, std::uint64_t sequence) {
    Replica& r = replicas_[replica];
    const auto it = r.slots.find(sequence);
    if (it == r.slots.end()) return;
    SlotState& slot = it->second;
    const std::size_t quorum = 2 * config_.f + 1;

    // prepared == pre-prepare received + 2f+1 matching PREPAREs (conservative:
    // our own prepare is in the set, so this is the standard quorum).
    if (!slot.prepared && slot.pre_prepared && slot.prepares.size() >= quorum) {
        slot.prepared = true;
        Writer w;
        w.u32(slot.view);
        w.u64(sequence);
        w.fixed(Hash256::from_bytes(slot.digest));
        w.u32(r.id);
        broadcast(replica, "commit", w.data());
        slot.commits.insert(r.id);
    }

    if (!slot.committed && slot.prepared && slot.commits.size() >= quorum) {
        slot.committed = true;
        if (replica == 0) {
            // Commit = inclusion in the total order at this sequence number.
            std::vector<Hash256> digests;
            digests.reserve(slot.requests.size());
            for (const auto& req : slot.requests)
                digests.push_back(request_digest(req));
            lifecycle_.on_block_connected(sequence, digests, scheduler_.now());
        }
        // Drop committed requests from the pending queue (they are spoken for).
        for (const auto& req : slot.requests) {
            const auto match = std::find_if(
                r.pending.begin(), r.pending.end(),
                [&](const auto& entry) { return entry.first == req; });
            if (match != r.pending.end()) r.pending.erase(match);
        }
        execute_ready(replica);
    }
}

void PbftCluster::execute_ready(std::uint32_t replica) {
    Replica& r = replicas_[replica];
    for (;;) {
        const auto it = r.slots.find(r.last_executed + 1);
        if (it == r.slots.end() || !it->second.committed) break;
        SlotState& slot = it->second;
        CommittedBatch batch;
        batch.sequence = r.last_executed + 1;
        batch.view = slot.view;
        batch.requests = slot.requests;
        batch.committed_at = scheduler_.now();
        batches_committed_->inc();
        requests_executed_->inc(slot.requests.size());
        if (replica == 0) {
            auto& tracer = obs::Tracer::global();
            if (tracer.enabled()) {
                tracer.instant(
                    "pbft.execute", "consensus", scheduler_.now(), replica,
                    {{"seq", obs::trace_arg(batch.sequence)},
                     {"view", obs::trace_arg(static_cast<std::uint64_t>(batch.view))},
                     {"requests", obs::trace_arg(static_cast<std::uint64_t>(
                          slot.requests.size()))}});
            }
        }
        r.log.push_back(std::move(batch));

        if (replica == 0) {
            for (const auto& req : slot.requests) {
                const auto t = submit_times_.find(request_digest(req));
                if (t != submit_times_.end())
                    commit_latencies_.push_back(scheduler_.now() - t->second);
                // Execute = deterministic finality for the request.
                lifecycle_.on_finalized(request_digest(req), scheduler_.now());
            }
        }

        ++r.last_executed;
        r.slots.erase(it);
    }

    // Progress happened; reset (or clear) the liveness timer.
    if (r.view_timer) {
        scheduler_.cancel(*r.view_timer);
        r.view_timer.reset();
    }
    if (!r.pending.empty() || !r.slots.empty()) arm_view_timer(replica);
    if (is_primary(r)) maybe_cut_batch(replica);
}

// --- View changes ---------------------------------------------------------------------

void PbftCluster::arm_view_timer(std::uint32_t replica) {
    Replica& r = replicas_[replica];
    if (r.fault == PbftFault::kCrashed) return;
    if (r.view_timer) return;
    r.view_timer = scheduler_.schedule_after(config_.view_change_timeout,
                                             [this, replica] {
                                                 replicas_[replica].view_timer.reset();
                                                 start_view_change(replica);
                                             });
}

void PbftCluster::start_view_change(std::uint32_t replica) {
    Replica& r = replicas_[replica];
    if (r.fault == PbftFault::kCrashed) return;
    // Nothing outstanding: no need for a view change.
    if (r.pending.empty() && r.slots.empty()) return;

    const std::uint32_t target = r.view + 1;
    Writer w;
    w.u32(target);
    w.u32(r.id);
    broadcast(replica, "viewchange", w.data());
    handle_view_change(replica, std::move(w).take()); // count own vote uniformly

    // The vote may not reach a quorum (partitioned cluster, >f crashes): re-arm
    // the timer so the view change is re-broadcast once the network heals.
    // Votes are per-replica sets, so retries never double-count.
    arm_view_timer(replica);
}

void PbftCluster::handle_view_change(std::uint32_t replica, const Bytes& payload) {
    Replica& r = replicas_[replica];
    Reader reader(payload);
    const std::uint32_t target = reader.u32();
    const std::uint32_t sender = reader.u32();
    reader.expect_done();

    if (target <= r.view) return;
    auto& votes = r.view_votes[target];
    votes.insert(sender);

    // Join an in-progress view change once f+1 others vote (liveness
    // amplification from the PBFT paper).
    if (votes.size() >= config_.f + 1 && !votes.contains(r.id)) {
        Writer w;
        w.u32(target);
        w.u32(r.id);
        broadcast(replica, "viewchange", w.data());
        votes.insert(r.id);
    }

    if (votes.size() >= 2 * config_.f + 1) {
        enter_view(replica, target);
        if (primary_of_view(target) == r.id) {
            Writer w;
            w.u32(target);
            broadcast(replica, "newview", w.data());
            // Re-propose everything outstanding.
            maybe_cut_batch(replica);
        }
    }
}

void PbftCluster::handle_new_view(std::uint32_t replica, const Bytes& payload) {
    Replica& r = replicas_[replica];
    Reader reader(payload);
    const std::uint32_t view = reader.u32();
    reader.expect_done();
    if (view > r.view) enter_view(replica, view);
}

void PbftCluster::enter_view(std::uint32_t replica, std::uint32_t view) {
    Replica& r = replicas_[replica];
    if (view <= r.view) return;
    r.view = view;
    view_changes_->inc();

    // Abandon uncommitted slots: their requests are still in pending (removal
    // happens only on commit) so the new primary re-proposes them.
    for (auto it = r.slots.begin(); it != r.slots.end();) {
        if (!it->second.committed) {
            it = r.slots.erase(it);
        } else {
            ++it;
        }
    }
    // The new primary continues sequencing after everything it has seen commit.
    std::uint64_t high = r.last_executed;
    for (const auto& [seq, slot] : r.slots) high = std::max(high, seq);
    r.next_sequence = high + 1;

    for (auto it = r.view_votes.begin(); it != r.view_votes.end();) {
        if (it->first <= view) it = r.view_votes.erase(it);
        else ++it;
    }

    if (r.view_timer) {
        scheduler_.cancel(*r.view_timer);
        r.view_timer.reset();
    }
    if (!r.pending.empty() || !r.slots.empty()) arm_view_timer(replica);
    if (r.batch_timer) {
        scheduler_.cancel(*r.batch_timer);
        r.batch_timer.reset();
    }
    if (is_primary(r)) maybe_cut_batch(replica);
}

// --- Inspection -------------------------------------------------------------------------

const std::vector<CommittedBatch>& PbftCluster::log_of(std::uint32_t replica) const {
    return replicas_.at(replica).log;
}

std::size_t PbftCluster::executed_requests(std::uint32_t replica) const {
    std::size_t count = 0;
    for (const auto& batch : replicas_.at(replica).log) count += batch.requests.size();
    return count;
}

bool PbftCluster::logs_consistent() const {
    const Replica* reference = nullptr;
    for (const auto& r : replicas_) {
        if (r.fault != PbftFault::kNone) continue;
        if (reference == nullptr) {
            reference = &r;
            continue;
        }
        const std::size_t common = std::min(reference->log.size(), r.log.size());
        for (std::size_t i = 0; i < common; ++i) {
            if (reference->log[i].sequence != r.log[i].sequence ||
                reference->log[i].requests != r.log[i].requests)
                return false;
        }
    }
    return true;
}

std::uint32_t PbftCluster::max_view() const {
    std::uint32_t view = 0;
    for (const auto& r : replicas_)
        if (r.fault == PbftFault::kNone) view = std::max(view, r.view);
    return view;
}

std::optional<double> PbftCluster::mean_commit_latency() const {
    if (commit_latencies_.empty()) return std::nullopt;
    double sum = 0;
    for (const double lat : commit_latencies_) sum += lat;
    return sum / static_cast<double>(commit_latencies_.size());
}

} // namespace dlt::consensus
