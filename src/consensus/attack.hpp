// Double-spend / chain-rewrite attack analysis (paper §2.4: immutability holds
// unless an attacker musters "more than 51% of the entire network"). Both the
// closed-form success probability from the Bitcoin whitepaper and a Monte Carlo
// private-fork race that reproduces it — and shows the >=51% regime where
// rewriting succeeds with certainty.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace dlt::consensus {

/// Nakamoto's analytic probability that an attacker controlling fraction `q`
/// of the hash power ever catches up from `z` blocks behind (Bitcoin paper,
/// section 11). Returns 1.0 for q >= 0.5.
double attacker_success_probability(double q, unsigned z);

/// Monte Carlo estimate of the same quantity by simulating the block race:
/// the honest chain extends with probability 1-q per step, the private fork
/// with probability q; the attacker starts z blocks behind (after the victim
/// waited for z confirmations) and wins by reaching a lead of +1.
/// `max_steps` bounds each race (unfinished races count as failure, which
/// under-estimates negligibly for q < 0.5).
double simulate_attack_success(double q, unsigned z, std::size_t trials, Rng& rng,
                               std::size_t max_steps = 100'000);

} // namespace dlt::consensus
