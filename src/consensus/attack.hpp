// Adversarial strategy analysis and pluggable attack drivers (paper §2.4:
// immutability holds unless an attacker musters "more than 51% of the entire
// network" — but weaker adversaries still profit from *strategic* deviations).
//
// Two layers live here:
//   1. Closed-form + Monte Carlo double-spend analysis from the Bitcoin
//      whitepaper (attacker_success_probability / simulate_attack_success).
//   2. Pluggable attack drivers that run *inside* the full network simulation
//      via the consensus-layer interposition hooks (mined-block hook, gossip
//      relay filter, publish_block): selfish mining (Eyal–Sirer
//      withhold/release) and eclipse (bridge a partitioned victim through the
//      attacker, filtering what it may see). Higher-layer attack compositions
//      — fee-market spam floods via app::WorkloadEngine, crash-during-reorg
//      via core::PersistentNode — are parameterized here (plain descriptor
//      structs) but driven from app/scenario.cpp, which sits above both.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "net/network.hpp"

namespace dlt::ledger {
struct Block;
}

namespace dlt::consensus {

class NakamotoNetwork;

/// Nakamoto's analytic probability that an attacker controlling fraction `q`
/// of the hash power ever catches up from `z` blocks behind (Bitcoin paper,
/// section 11). Returns 1.0 for q >= 0.5.
double attacker_success_probability(double q, unsigned z);

/// Monte Carlo estimate of the same quantity by simulating the block race:
/// the honest chain extends with probability 1-q per step, the private fork
/// with probability q; the attacker starts z blocks behind (after the victim
/// waited for z confirmations) and wins by reaching a lead of +1.
/// `max_steps` bounds each race (unfinished races count as failure, which
/// under-estimates negligibly for q < 0.5).
double simulate_attack_success(double q, unsigned z, std::size_t trials, Rng& rng,
                               std::size_t max_steps = 100'000);

// ---------------------------------------------------------------------------
// Selfish mining (Eyal & Sirer, "Majority is not Enough")
// ---------------------------------------------------------------------------

/// Running counters a SelfishMiner exposes for scorecards and tests.
struct SelfishStats {
    std::uint64_t blocks_mined = 0;     // attacker blocks found
    std::uint64_t blocks_published = 0; // withheld blocks later released
    std::uint64_t forks_abandoned = 0;  // private forks overtaken and dropped
    std::uint64_t tie_races = 0;        // equal-length races forced
    std::uint64_t max_lead = 0;         // deepest private lead reached
};

/// Withhold/release strategy driver for one attacker node on a
/// NakamotoNetwork. The attacker mines privately (mined-block hook returns
/// false → local adoption only) and releases blocks according to the
/// Eyal–Sirer state machine, reacting to honest-chain growth observed through
/// the attacker's ChainEvents:
///   - honest chain reaches one-below the private fork → publish everything
///     (equal-length tie race; the network-wide lower-hash tie-break plays
///     the role of the γ split),
///   - honest chain reaches two-below → publish everything and win outright,
///   - larger lead → trickle out withheld blocks matching the public height,
///   - honest chain catches the fork → abandon it and re-join the honest tip,
///   - fresh block while a tie race is pending → publish it at once (state 0').
/// Above α ≈ 1/3 of the hash power the attacker's share of canonical-chain
/// blocks exceeds α — the revenue superlinearity the scorecard asserts.
class SelfishMiner {
public:
    SelfishMiner(NakamotoNetwork& net, net::NodeId attacker);

    // The driver installs the network's (single) mined-block hook and chains
    // onto the attacker's on_block_inserted observer; it must outlive the run.
    SelfishMiner(const SelfishMiner&) = delete;
    SelfishMiner& operator=(const SelfishMiner&) = delete;

    /// End-of-run flush: release any still-withheld fork (the chain's
    /// work-ordering decides whether it wins) and uninstall the hook.
    void finish();

    const SelfishStats& stats() const { return stats_; }
    std::uint64_t withheld_count() const { return withheld_.size(); }

private:
    bool on_mined(net::NodeId node, const ledger::Block& block);
    void on_honest_block(const ledger::Block& block);
    void publish_front();

    NakamotoNetwork* net_;
    net::NodeId attacker_;
    std::deque<std::pair<Hash256, std::uint64_t>> withheld_; // (hash, height)
    std::uint64_t private_height_ = 0;
    std::uint64_t public_height_ = 0;
    bool tie_race_ = false;
    bool finished_ = false;
    SelfishStats stats_;
};

/// Fraction of canonical-chain blocks (per peer 0's active chain, genesis
/// excluded) proposed by `node` — the attacker's realized revenue share, to be
/// compared against its hash-power share.
double proposer_share(const NakamotoNetwork& net, net::NodeId node);

// ---------------------------------------------------------------------------
// Eclipse (partition-one-victim behind an adversarial bridge)
// ---------------------------------------------------------------------------

struct EclipseParams {
    net::NodeId attacker = 0;
    net::NodeId victim = 1;
    /// When true the attacker additionally mines *privately* and pushes its
    /// secret blocks straight to the victim ("d/block"), so the victim adopts
    /// an attacker-controlled fork while the honest network never sees it —
    /// the double-spend setup. When false the victim is simply blackholed
    /// (liveness attack only).
    bool feed_private_fork = true;
};

/// Eclipse driver: cuts the victim from every peer except the attacker using
/// a named partition (the attacker sits in no group, so it bridges both
/// sides), then installs a gossip relay filter refusing to forward frames
/// across the attacker↔victim edge in either direction. Direct "d/" sync
/// messages stay unfiltered — the victim can still backfill ancestors of
/// whatever the attacker chooses to show it. heal() reverses everything and
/// releases any withheld attacker fork; the victim then reorganizes onto the
/// honest chain, which is what the scenario scorecard measures.
class EclipseAttack {
public:
    EclipseAttack(NakamotoNetwork& net, EclipseParams params);

    EclipseAttack(const EclipseAttack&) = delete;
    EclipseAttack& operator=(const EclipseAttack&) = delete;

    /// Lift the partition + relay filter + mining hook and publish the
    /// withheld fork (the honest chain's greater work defeats it; publishing
    /// just lets every peer see and discard it deterministically).
    void heal();

    std::uint64_t fork_blocks() const { return fork_.size(); }
    bool healed() const { return healed_; }

    /// Partition label used on the network ("eclipse/<victim>").
    const std::string& partition_name() const { return partition_; }

private:
    bool on_mined(net::NodeId node, const ledger::Block& block);

    NakamotoNetwork* net_;
    EclipseParams params_;
    std::string partition_;
    std::vector<Hash256> fork_; // withheld blocks fed only to the victim
    bool healed_ = false;
};

// ---------------------------------------------------------------------------
// Higher-layer attack descriptors (driven from app/scenario.cpp)
// ---------------------------------------------------------------------------

/// Fee-market spam flood: a cohort of adversarial agents submits sustained
/// low-value traffic at `spam_tps`, bidding `fee_rate` (sat/byte analogue).
/// With fee_rate below the honest market the mempool's feerate floor sheds
/// the flood (QUEUE_FULL drop mix); with fee_rate above it, honest traffic is
/// priced out instead — both cells appear in the scorecard.
struct SpamFloodParams {
    double spam_tps = 50.0;
    double fee_rate = 1.0;
    double start = 0.0;
    double duration = 600.0;
};

/// Crash-during-reorg: crash `node` inside the reorg window a scheduled
/// partition creates (cut at `cut_at`, heal at `heal_at` → the merge reorg),
/// recover it at `recover_at`. The scenario harness shadows the node with a
/// core::PersistentNode and replays the recovery from disk, asserting the
/// recovered tip is consistent.
struct CrashReorgParams {
    net::NodeId node = 1;
    double cut_at = 0.0;
    double heal_at = 0.0;
    double crash_at = 0.0;
    double recover_at = 0.0;
};

} // namespace dlt::consensus
