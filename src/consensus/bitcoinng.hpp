// Bitcoin-NG (paper §2.4: "Proof-of-Work is employed to determine the next
// leader, who can then propose the next sequence of blocks"). Key blocks are
// found by the usual exponential PoW race and elect a leader; between key
// blocks the leader serializes transactions into frequent microblocks. This
// decouples leader election from transaction serialization, so throughput is
// bounded by bandwidth rather than the PoW interval (E9).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "net/gossip.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace dlt::consensus {

struct BitcoinNgParams {
    std::size_t node_count = 16;
    double key_block_interval = 600.0; // PoW race expectation (same as Bitcoin)
    double microblock_interval = 0.5;  // leader's serialization cadence
    std::size_t max_txs_per_microblock = 200;
    double tx_rate = 50.0;             // offered workload, tx/sec network-wide
    std::size_t overlay_degree = 4;
    net::LinkParams link{};
};

struct BitcoinNgStats {
    std::uint64_t key_blocks = 0;
    std::uint64_t microblocks = 0;
    std::uint64_t txs_serialized = 0;   // included in some microblock
    std::uint64_t txs_orphaned = 0;     // in microblocks pruned at leader switch
    std::uint64_t leader_switches = 0;
};

/// Simulates the Bitcoin-NG pipeline at the granularity E9 needs: leader races,
/// microblock emission against an offered Poisson workload, and the microblock
/// prefix-pruning that happens when a new key block arrives at a leader that
/// hasn't heard the latest microblocks yet.
class BitcoinNgSimulation {
public:
    BitcoinNgSimulation(BitcoinNgParams params, std::uint64_t seed);

    void start();
    void run_for(SimDuration duration);
    SimTime now() const { return scheduler_.now(); }

    const BitcoinNgStats& stats() const { return stats_; }

    /// Serialized transactions per simulated second so far.
    double throughput_tps() const;

    /// Mean time from transaction arrival to inclusion in a microblock.
    std::optional<double> mean_inclusion_latency() const;

private:
    void schedule_workload();
    void schedule_key_block_race();
    void schedule_microblock();
    void on_key_block(std::uint32_t winner);
    void emit_microblock();

    BitcoinNgParams params_;
    sim::Scheduler scheduler_;
    Rng rng_;
    std::unique_ptr<net::Network> network_;
    std::unique_ptr<net::GossipOverlay> gossip_;

    std::optional<std::uint32_t> leader_;
    std::vector<SimTime> mempool_arrivals_; // pending tx arrival times
    std::vector<double> inclusion_latencies_;
    std::optional<sim::EventId> micro_event_;
    std::optional<sim::EventId> race_event_;
    SimTime started_at_ = 0;
    BitcoinNgStats stats_;
};

} // namespace dlt::consensus
