// Proof-of-Elapsed-Time (paper §5.4: Hyperledger Sawtooth on Intel SGX). Each
// round, every peer asks its trusted timer for a random wait; the shortest wait
// wins leadership. We simulate the enclave with a deterministic hash-derived
// exponential draw plus a verifiable "wait certificate" — the consensus contract
// is identical minus hardware attestation (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace dlt::consensus {

/// The simulated enclave's wait certificate for (round, peer).
struct WaitCertificate {
    std::uint64_t round = 0;
    std::uint32_t peer = 0;
    double wait_seconds = 0;

    Bytes encode() const;
    static WaitCertificate decode(ByteView raw);
};

/// Deterministic enclave draw: an Exp(1/mean_wait) sample derived from
/// hash(seed, round, peer). Every peer can recompute and so verify any other
/// peer's certificate — the simulation's stand-in for SGX attestation.
WaitCertificate poet_draw(const Hash256& seed, std::uint64_t round,
                          std::uint32_t peer, double mean_wait);

/// True when the certificate matches the deterministic draw.
bool verify_wait_certificate(const WaitCertificate& cert, const Hash256& seed,
                             double mean_wait);

/// The round winner: peer with the minimum wait (ties to lower peer id).
std::uint32_t poet_round_winner(const Hash256& seed, std::uint64_t round,
                                std::uint32_t peer_count, double mean_wait);

/// Expected per-round wall-clock cost: the winner's wait (all peers idle-wait in
/// parallel, burning no computation — the PoET pitch).
double poet_round_duration(const Hash256& seed, std::uint64_t round,
                           std::uint32_t peer_count, double mean_wait);

} // namespace dlt::consensus
