// Merkle trees (Fig. 2 of the paper): the per-block transaction tree, inclusion
// proofs for lightweight (SPV) clients, and proof verification. Bitcoin-style
// construction: leaves are hashed pairwise per level; an odd node is paired with
// itself.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/serialize.hpp"

namespace dlt::datastruct {

/// One step of a Merkle inclusion proof: the sibling digest and which side it
/// sits on when hashing upward.
struct MerkleStep {
    Hash256 sibling;
    bool sibling_is_right = false;

    friend bool operator==(const MerkleStep&, const MerkleStep&) = default;

    void encode(Writer& w) const;
    static MerkleStep decode(Reader& r);
};

/// Inclusion proof for the leaf at a known index.
struct MerkleProof {
    std::uint64_t leaf_index = 0;
    std::vector<MerkleStep> steps;

    friend bool operator==(const MerkleProof&, const MerkleProof&) = default;

    /// Serialized size in bytes — the quantity E7 measures against full blocks.
    std::size_t size_bytes() const;

    void encode(Writer& w) const;
    static MerkleProof decode(Reader& r);
};

/// Immutable Merkle tree over a list of leaf digests.
class MerkleTree {
public:
    /// Build from leaf digests. An empty tree has the all-zero root.
    explicit MerkleTree(std::vector<Hash256> leaves);

    const Hash256& root() const { return root_; }
    std::size_t leaf_count() const { return levels_.empty() ? 0 : levels_[0].size(); }

    /// Proof for the leaf at `index`; precondition: index < leaf_count().
    MerkleProof prove(std::size_t index) const;

private:
    std::vector<std::vector<Hash256>> levels_; // levels_[0] = leaves
    Hash256 root_;
};

/// Recompute the root implied by `leaf` and `proof`; compare with a trusted root
/// to complete SPV verification.
Hash256 merkle_root_from_proof(const Hash256& leaf, const MerkleProof& proof);

/// Convenience: root of a leaf list without keeping the tree.
Hash256 merkle_root(const std::vector<Hash256>& leaves);

} // namespace dlt::datastruct
