// Bloom filter for lightweight-client transaction filtering (the mechanism SPV
// wallets use to subscribe to relevant transactions without revealing exact
// addresses). k hash functions are derived from SHA-256 with distinct seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace dlt::datastruct {

class BloomFilter {
public:
    /// Create a filter with `bits` bits (rounded up to a byte) and `hashes`
    /// hash functions; both must be positive.
    BloomFilter(std::size_t bits, std::size_t hashes);

    /// Size the filter for an expected element count and target false-positive
    /// rate using the standard optimal formulas.
    static BloomFilter optimal(std::size_t expected_items, double fp_rate);

    void insert(ByteView item);
    /// No false negatives; false positives at roughly the configured rate.
    bool maybe_contains(ByteView item) const;

    std::size_t bit_count() const { return bit_count_; }
    std::size_t hash_count() const { return hash_count_; }
    /// Fraction of bits set; >0.5 means the filter is overloaded.
    double fill_ratio() const;

private:
    std::size_t bit_index(ByteView item, std::uint32_t seed) const;

    std::size_t bit_count_;
    std::size_t hash_count_;
    std::vector<std::uint8_t> bits_;
};

} // namespace dlt::datastruct
