#include "datastruct/merkle.hpp"

#include "common/assert.hpp"
#include "common/threadpool.hpp"
#include "crypto/sha256.hpp"

namespace dlt::datastruct {

using crypto::hash_pair;

void MerkleStep::encode(Writer& w) const {
    w.fixed(sibling);
    w.u8(sibling_is_right ? 1 : 0);
}

MerkleStep MerkleStep::decode(Reader& r) {
    MerkleStep s;
    s.sibling = r.fixed<32>();
    s.sibling_is_right = r.u8() != 0;
    return s;
}

std::size_t MerkleProof::size_bytes() const {
    Writer w;
    encode(w);
    return w.size();
}

void MerkleProof::encode(Writer& w) const {
    w.varint(leaf_index);
    w.varint(steps.size());
    for (const auto& s : steps) s.encode(w);
}

MerkleProof MerkleProof::decode(Reader& r) {
    MerkleProof p;
    p.leaf_index = r.varint();
    const std::uint64_t n = r.varint_count(33); // digest + side byte
    p.steps.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) p.steps.push_back(MerkleStep::decode(r));
    return p;
}

MerkleTree::MerkleTree(std::vector<Hash256> leaves) {
    if (leaves.empty()) {
        root_ = Hash256{};
        return;
    }
    levels_.push_back(std::move(leaves));
    // Each level's pair hashes are independent, so wide levels fan out over
    // the global pool with indexed writes into a preallocated vector — the
    // result is position-for-position identical to the serial loop. Narrow
    // levels (and the whole tree on a serial pool) stay on this thread; the
    // cutoff keeps small per-block trees from paying the handoff cost.
    constexpr std::size_t kParallelPairs = 512;
    ThreadPool& pool = ThreadPool::global();
    while (levels_.back().size() > 1) {
        const auto& prev = levels_.back();
        const std::size_t pairs = (prev.size() + 1) / 2;
        std::vector<Hash256> next(pairs);
        const auto hash_pair_at = [&prev, &next](std::size_t p) {
            const std::size_t i = 2 * p;
            const Hash256& left = prev[i];
            const Hash256& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
            next[p] = hash_pair(left, right);
        };
        if (pairs >= kParallelPairs && pool.worker_count() > 0) {
            parallel_for(pool, 0, pairs, hash_pair_at, /*grain=*/64);
        } else {
            for (std::size_t p = 0; p < pairs; ++p) hash_pair_at(p);
        }
        levels_.push_back(std::move(next));
    }
    root_ = levels_.back()[0];
}

MerkleProof MerkleTree::prove(std::size_t index) const {
    DLT_EXPECTS(index < leaf_count());
    MerkleProof proof;
    proof.leaf_index = index;
    std::size_t pos = index;
    for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
        const auto& nodes = levels_[level];
        const std::size_t sibling_pos = (pos % 2 == 0) ? pos + 1 : pos - 1;
        MerkleStep step;
        step.sibling_is_right = pos % 2 == 0;
        step.sibling =
            sibling_pos < nodes.size() ? nodes[sibling_pos] : nodes[pos]; // odd: self
        proof.steps.push_back(step);
        pos /= 2;
    }
    return proof;
}

Hash256 merkle_root_from_proof(const Hash256& leaf, const MerkleProof& proof) {
    Hash256 acc = leaf;
    for (const auto& step : proof.steps)
        acc = step.sibling_is_right ? hash_pair(acc, step.sibling)
                                    : hash_pair(step.sibling, acc);
    return acc;
}

Hash256 merkle_root(const std::vector<Hash256>& leaves) {
    return MerkleTree(leaves).root();
}

} // namespace dlt::datastruct
