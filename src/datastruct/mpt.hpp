// Merkle-Patricia trie: the authenticated key-value store used for account state
// (§5.4 of the paper names it, alongside IAVL+, as the data-layer structure whose
// choice matters for validation speed and proof size). Persistent (copy-on-write)
// nodes, so snapshots and historical roots share structure — which also backs the
// checkpoint/fast-bootstrap machinery in the scaling module.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"

namespace dlt::datastruct {

/// Inclusion/exclusion proof: the serialized nodes along the lookup path.
struct MptProof {
    std::vector<Bytes> nodes;

    std::size_t size_bytes() const;
};

class MerklePatriciaTrie {
public:
    /// Node is an implementation detail; it is public only so the out-of-line
    /// recursive workers in mpt.cpp can name it. Treat as opaque.
    struct Node;

    MerklePatriciaTrie() = default;

    /// Insert or overwrite. Empty values are legal.
    void put(ByteView key, Bytes value);

    std::optional<Bytes> get(ByteView key) const;

    /// Remove; returns false when the key was absent.
    bool erase(ByteView key);

    /// Authenticated root; the all-zero hash for an empty trie.
    Hash256 root_hash() const;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /// O(1) snapshot sharing structure with this trie; later writes to either
    /// side do not affect the other.
    MerklePatriciaTrie snapshot() const { return *this; }

    /// Merkle proof for `key` (inclusion if present, exclusion otherwise).
    MptProof prove(ByteView key) const;

    /// Verify a proof against a trusted root: returns the value bound to `key`
    /// (nullopt for proven absence). Throws ValidationError when the proof does
    /// not authenticate against `root`.
    static std::optional<Bytes> verify_proof(const Hash256& root, ByteView key,
                                             const MptProof& proof);

private:
    using NodePtr = std::shared_ptr<const Node>;

    NodePtr root_;
    std::size_t size_ = 0;
};

} // namespace dlt::datastruct
