#include "datastruct/mpt.hpp"

#include <mutex>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "common/threadpool.hpp"
#include "crypto/sha256.hpp"

namespace dlt::datastruct {

namespace {

using Nibbles = std::vector<std::uint8_t>;

Nibbles to_nibbles(ByteView key) {
    Nibbles out;
    out.reserve(key.size() * 2);
    for (const auto b : key) {
        out.push_back(static_cast<std::uint8_t>(b >> 4));
        out.push_back(static_cast<std::uint8_t>(b & 0xF));
    }
    return out;
}

std::size_t common_prefix(const Nibbles& a, std::size_t a_off, const Nibbles& b,
                          std::size_t b_off) {
    std::size_t n = 0;
    while (a_off + n < a.size() && b_off + n < b.size() &&
           a[a_off + n] == b[b_off + n])
        ++n;
    return n;
}

} // namespace

struct MerklePatriciaTrie::Node {
    enum class Kind : std::uint8_t { kLeaf = 0, kExtension = 1, kBranch = 2 };

    Kind kind;
    Nibbles path;                      // leaf & extension
    Bytes value;                       // leaf & branch (with has_value)
    bool has_value = false;            // branch only
    NodePtr child;                     // extension
    std::array<NodePtr, 16> children{}; // branch

    mutable std::optional<Hash256> cached_hash;
    mutable std::once_flag hash_once;

    static NodePtr leaf(Nibbles path, Bytes value) {
        auto n = std::make_shared<Node>();
        n->kind = Kind::kLeaf;
        n->path = std::move(path);
        n->value = std::move(value);
        return n;
    }

    static NodePtr extension(Nibbles path, NodePtr child) {
        DLT_EXPECTS(child != nullptr);
        DLT_EXPECTS(!path.empty());
        auto n = std::make_shared<Node>();
        n->kind = Kind::kExtension;
        n->path = std::move(path);
        n->child = std::move(child);
        return n;
    }

    /// Serialize with children replaced by their hashes; this is the preimage of
    /// the node hash and the unit a proof carries.
    Bytes serialize() const {
        Writer w;
        w.u8(static_cast<std::uint8_t>(kind));
        switch (kind) {
            case Kind::kLeaf:
                w.blob(path);
                w.blob(value);
                break;
            case Kind::kExtension:
                w.blob(path);
                w.fixed(child->hash());
                break;
            case Kind::kBranch: {
                std::uint16_t bitmap = 0;
                for (int i = 0; i < 16; ++i)
                    if (children[static_cast<std::size_t>(i)]) bitmap |= std::uint16_t(1u << i);
                w.u16(bitmap);
                for (const auto& c : children)
                    if (c) w.fixed(c->hash());
                w.u8(has_value ? 1 : 0);
                if (has_value) w.blob(value);
                break;
            }
        }
        return std::move(w).take();
    }

    const Hash256& hash() const {
        std::call_once(hash_once, [this] {
            cached_hash = crypto::tagged_hash("dlt/mpt", serialize());
        });
        return *cached_hash;
    }
};

namespace {

using Node = MerklePatriciaTrie::Node;

} // namespace

// The recursive workers live as static members via a helper struct so they can
// reach the private Node type.
namespace {

using NodePtr = std::shared_ptr<const Node>;

NodePtr insert(const NodePtr& node, const Nibbles& key, std::size_t off,
               Bytes value, bool& added);
NodePtr remove(const NodePtr& node, const Nibbles& key, std::size_t off,
               bool& removed);

/// Wrap `node` under `prefix` nibbles (identity when prefix is empty), merging
/// consecutive extensions / extension+leaf pairs so the trie stays canonical.
NodePtr wrap_with_prefix(Nibbles prefix, const NodePtr& node) {
    if (prefix.empty()) return node;
    if (node->kind == Node::Kind::kLeaf) {
        Nibbles merged = std::move(prefix);
        merged.insert(merged.end(), node->path.begin(), node->path.end());
        return Node::leaf(std::move(merged), node->value);
    }
    if (node->kind == Node::Kind::kExtension) {
        Nibbles merged = std::move(prefix);
        merged.insert(merged.end(), node->path.begin(), node->path.end());
        return Node::extension(std::move(merged), node->child);
    }
    return Node::extension(std::move(prefix), node);
}

/// Canonicalize a branch that may have lost children: a branch with no children
/// becomes a leaf (or vanishes), one with a single child and no value collapses
/// into its child under an extension.
NodePtr normalize_branch(const std::array<NodePtr, 16>& children, bool has_value,
                         Bytes value) {
    int child_count = 0;
    int only_index = -1;
    for (int i = 0; i < 16; ++i) {
        if (children[static_cast<std::size_t>(i)]) {
            ++child_count;
            only_index = i;
        }
    }
    if (child_count == 0) {
        if (!has_value) return nullptr;
        return Node::leaf(Nibbles{}, std::move(value));
    }
    if (child_count == 1 && !has_value) {
        const NodePtr& only = children[static_cast<std::size_t>(only_index)];
        Nibbles prefix{static_cast<std::uint8_t>(only_index)};
        return wrap_with_prefix(std::move(prefix), only);
    }
    auto n = std::make_shared<Node>();
    n->kind = Node::Kind::kBranch;
    n->children = children;
    n->has_value = has_value;
    n->value = std::move(value);
    return n;
}

NodePtr make_branch(std::array<NodePtr, 16> children, bool has_value, Bytes value) {
    auto n = std::make_shared<Node>();
    n->kind = Node::Kind::kBranch;
    n->children = std::move(children);
    n->has_value = has_value;
    n->value = std::move(value);
    return n;
}

/// Split a leaf/extension node whose path diverges from the key at `split`
/// (relative to the node's own path) into a branch.
NodePtr split_node(const NodePtr& node, const Nibbles& key, std::size_t off,
                   std::size_t split, Bytes value, bool& added) {
    std::array<NodePtr, 16> children{};
    bool has_value = false;
    Bytes branch_value;

    // Side A: the existing node, minus the consumed prefix.
    const Nibbles& npath = node->path;
    if (split == npath.size()) {
        // Node path fully consumed; only legal for leaves here (extension paths
        // fully matching are handled by the caller's descend case).
        DLT_EXPECTS(node->kind == Node::Kind::kLeaf);
        has_value = true;
        branch_value = node->value;
    } else {
        const std::uint8_t branch_nibble = npath[split];
        Nibbles rest(npath.begin() + static_cast<std::ptrdiff_t>(split) + 1,
                     npath.end());
        NodePtr sub;
        if (node->kind == Node::Kind::kLeaf) {
            sub = Node::leaf(std::move(rest), node->value);
        } else {
            sub = wrap_with_prefix(std::move(rest), node->child);
        }
        children[branch_nibble] = sub;
    }

    // Side B: the new key tail.
    const std::size_t key_off = off + split;
    if (key_off == key.size()) {
        has_value = true;
        branch_value = std::move(value);
    } else {
        const std::uint8_t branch_nibble = key[key_off];
        Nibbles rest(key.begin() + static_cast<std::ptrdiff_t>(key_off) + 1, key.end());
        children[branch_nibble] = Node::leaf(std::move(rest), std::move(value));
    }

    added = true;
    const NodePtr branch = make_branch(std::move(children), has_value,
                                       std::move(branch_value));
    // Re-attach the shared prefix (if any) above the branch.
    Nibbles prefix(npath.begin(), npath.begin() + static_cast<std::ptrdiff_t>(split));
    return wrap_with_prefix(std::move(prefix), branch);
}

NodePtr insert(const NodePtr& node, const Nibbles& key, std::size_t off, Bytes value,
               bool& added) {
    if (!node) {
        added = true;
        return Node::leaf(Nibbles(key.begin() + static_cast<std::ptrdiff_t>(off), key.end()),
                          std::move(value));
    }

    switch (node->kind) {
        case Node::Kind::kLeaf: {
            const std::size_t match = common_prefix(node->path, 0, key, off);
            if (match == node->path.size() && off + match == key.size()) {
                added = false; // overwrite
                return Node::leaf(node->path, std::move(value));
            }
            return split_node(node, key, off, match, std::move(value), added);
        }
        case Node::Kind::kExtension: {
            const std::size_t match = common_prefix(node->path, 0, key, off);
            if (match == node->path.size()) {
                NodePtr new_child =
                    insert(node->child, key, off + match, std::move(value), added);
                return Node::extension(node->path, std::move(new_child));
            }
            return split_node(node, key, off, match, std::move(value), added);
        }
        case Node::Kind::kBranch: {
            if (off == key.size()) {
                added = !node->has_value;
                return make_branch(node->children, true, std::move(value));
            }
            const std::uint8_t nibble = key[off];
            auto children = node->children;
            children[nibble] = insert(children[nibble], key, off + 1, std::move(value),
                                      added);
            return make_branch(std::move(children), node->has_value, node->value);
        }
    }
    DLT_INVARIANT(false);
    return nullptr;
}

NodePtr remove(const NodePtr& node, const Nibbles& key, std::size_t off,
               bool& removed) {
    if (!node) {
        removed = false;
        return nullptr;
    }
    switch (node->kind) {
        case Node::Kind::kLeaf: {
            const std::size_t match = common_prefix(node->path, 0, key, off);
            if (match == node->path.size() && off + match == key.size()) {
                removed = true;
                return nullptr;
            }
            removed = false;
            return node;
        }
        case Node::Kind::kExtension: {
            const std::size_t match = common_prefix(node->path, 0, key, off);
            if (match != node->path.size()) {
                removed = false;
                return node;
            }
            NodePtr new_child = remove(node->child, key, off + match, removed);
            if (!removed) return node;
            if (!new_child) return nullptr; // child vanished entirely
            return wrap_with_prefix(node->path, new_child);
        }
        case Node::Kind::kBranch: {
            if (off == key.size()) {
                if (!node->has_value) {
                    removed = false;
                    return node;
                }
                removed = true;
                return normalize_branch(node->children, false, Bytes{});
            }
            const std::uint8_t nibble = key[off];
            if (!node->children[nibble]) {
                removed = false;
                return node;
            }
            auto children = node->children;
            children[nibble] = remove(children[nibble], key, off + 1, removed);
            if (!removed) return node;
            return normalize_branch(children, node->has_value, node->value);
        }
    }
    DLT_INVARIANT(false);
    return nullptr;
}

} // namespace

void MerklePatriciaTrie::put(ByteView key, Bytes value) {
    const Nibbles nibbles = to_nibbles(key);
    bool added = false;
    root_ = insert(root_, nibbles, 0, std::move(value), added);
    if (added) ++size_;
}

std::optional<Bytes> MerklePatriciaTrie::get(ByteView key) const {
    const Nibbles nibbles = to_nibbles(key);
    const Node* node = root_.get();
    std::size_t off = 0;
    while (node != nullptr) {
        switch (node->kind) {
            case Node::Kind::kLeaf: {
                const std::size_t match = common_prefix(node->path, 0, nibbles, off);
                if (match == node->path.size() && off + match == nibbles.size())
                    return node->value;
                return std::nullopt;
            }
            case Node::Kind::kExtension: {
                const std::size_t match = common_prefix(node->path, 0, nibbles, off);
                if (match != node->path.size()) return std::nullopt;
                off += match;
                node = node->child.get();
                break;
            }
            case Node::Kind::kBranch: {
                if (off == nibbles.size())
                    return node->has_value ? std::optional<Bytes>(node->value)
                                           : std::nullopt;
                node = node->children[nibbles[off]].get();
                ++off;
                break;
            }
        }
    }
    return std::nullopt;
}

bool MerklePatriciaTrie::erase(ByteView key) {
    const Nibbles nibbles = to_nibbles(key);
    bool removed = false;
    root_ = remove(root_, nibbles, 0, removed);
    if (removed) --size_;
    return removed;
}

Hash256 MerklePatriciaTrie::root_hash() const {
    if (!root_) return Hash256{};
    // Warm the hash caches of independent subtrees in parallel before the
    // serial bottom-up recursion: descend a few levels to build a frontier of
    // disjoint subtrees, hash each on the pool (Node::hash is call_once, so
    // racing threads compute a node at most once), then the final recursion
    // finds everything below the frontier already cached. Result is identical
    // by construction — the hash of each node is a pure function of the tree.
    ThreadPool& pool = ThreadPool::global();
    if (pool.worker_count() > 0) {
        const std::size_t target = (pool.worker_count() + 1) * 4;
        std::vector<const Node*> frontier{root_.get()};
        bool expanded = true;
        while (frontier.size() < target && expanded) {
            expanded = false;
            std::vector<const Node*> next;
            next.reserve(frontier.size() * 4);
            for (const Node* n : frontier) {
                switch (n->kind) {
                    case Node::Kind::kLeaf:
                        next.push_back(n);
                        break;
                    case Node::Kind::kExtension:
                        next.push_back(n->child.get());
                        expanded = true;
                        break;
                    case Node::Kind::kBranch:
                        for (const auto& c : n->children)
                            if (c) next.push_back(c.get());
                        expanded = true;
                        break;
                }
            }
            frontier = std::move(next);
        }
        parallel_for(pool, 0, frontier.size(),
                     [&frontier](std::size_t i) { frontier[i]->hash(); });
    }
    return root_->hash();
}

std::size_t MptProof::size_bytes() const {
    std::size_t total = 0;
    for (const auto& n : nodes) total += n.size();
    return total;
}

MptProof MerklePatriciaTrie::prove(ByteView key) const {
    MptProof proof;
    const Nibbles nibbles = to_nibbles(key);
    const Node* node = root_.get();
    std::size_t off = 0;
    while (node != nullptr) {
        proof.nodes.push_back(node->serialize());
        switch (node->kind) {
            case Node::Kind::kLeaf:
                return proof;
            case Node::Kind::kExtension: {
                const std::size_t match = common_prefix(node->path, 0, nibbles, off);
                if (match != node->path.size()) return proof;
                off += match;
                node = node->child.get();
                break;
            }
            case Node::Kind::kBranch: {
                if (off == nibbles.size()) return proof;
                node = node->children[nibbles[off]].get();
                ++off;
                break;
            }
        }
    }
    return proof;
}

namespace {

/// Parsed form of a serialized proof node.
struct ParsedNode {
    Node::Kind kind;
    Nibbles path;
    Bytes value;
    bool has_value = false;
    Hash256 child;                              // extension
    std::array<std::optional<Hash256>, 16> children; // branch
};

ParsedNode parse_proof_node(const Bytes& raw) {
    Reader r(raw);
    ParsedNode out;
    const std::uint8_t kind = r.u8();
    if (kind > 2) throw ValidationError("mpt proof: bad node kind");
    out.kind = static_cast<Node::Kind>(kind);
    switch (out.kind) {
        case Node::Kind::kLeaf: {
            const Bytes p = r.blob();
            out.path.assign(p.begin(), p.end());
            out.value = r.blob();
            break;
        }
        case Node::Kind::kExtension: {
            const Bytes p = r.blob();
            out.path.assign(p.begin(), p.end());
            out.child = r.fixed<32>();
            break;
        }
        case Node::Kind::kBranch: {
            const std::uint16_t bitmap = r.u16();
            for (int i = 0; i < 16; ++i)
                if (bitmap & (1u << i))
                    out.children[static_cast<std::size_t>(i)] = r.fixed<32>();
            out.has_value = r.u8() != 0;
            if (out.has_value) out.value = r.blob();
            break;
        }
    }
    r.expect_done();
    return out;
}

} // namespace

std::optional<Bytes> MerklePatriciaTrie::verify_proof(const Hash256& root,
                                                      ByteView key,
                                                      const MptProof& proof) {
    const Nibbles nibbles = to_nibbles(key);
    if (proof.nodes.empty()) {
        if (root.is_zero()) return std::nullopt; // empty trie proves absence
        throw ValidationError("mpt proof: empty proof for non-empty root");
    }

    Hash256 expected = root;
    std::size_t off = 0;
    for (std::size_t i = 0; i < proof.nodes.size(); ++i) {
        const Bytes& raw = proof.nodes[i];
        if (crypto::tagged_hash("dlt/mpt", raw) != expected)
            throw ValidationError("mpt proof: node hash mismatch");
        const ParsedNode node = parse_proof_node(raw);
        const bool last = i + 1 == proof.nodes.size();
        switch (node.kind) {
            case Node::Kind::kLeaf: {
                if (!last) throw ValidationError("mpt proof: leaf before end");
                const std::size_t match = common_prefix(node.path, 0, nibbles, off);
                if (match == node.path.size() && off + match == nibbles.size())
                    return node.value;
                return std::nullopt; // divergent leaf proves absence
            }
            case Node::Kind::kExtension: {
                const std::size_t match = common_prefix(node.path, 0, nibbles, off);
                if (match != node.path.size()) {
                    if (!last) throw ValidationError("mpt proof: extra nodes");
                    return std::nullopt; // divergence proves absence
                }
                if (last) throw ValidationError("mpt proof: truncated at extension");
                off += match;
                expected = node.child;
                break;
            }
            case Node::Kind::kBranch: {
                if (off == nibbles.size()) {
                    if (!last) throw ValidationError("mpt proof: extra nodes");
                    return node.has_value ? std::optional<Bytes>(node.value)
                                          : std::nullopt;
                }
                const auto& next = node.children[nibbles[off]];
                if (!next) {
                    if (!last) throw ValidationError("mpt proof: extra nodes");
                    return std::nullopt; // missing child proves absence
                }
                if (last) throw ValidationError("mpt proof: truncated at branch");
                expected = *next;
                ++off;
                break;
            }
        }
    }
    throw ValidationError("mpt proof: exhausted without terminal node");
}

} // namespace dlt::datastruct
