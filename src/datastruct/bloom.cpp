#include "datastruct/bloom.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assert.hpp"
#include "crypto/sha256.hpp"

namespace dlt::datastruct {

BloomFilter::BloomFilter(std::size_t bits, std::size_t hashes)
    : bit_count_(bits), hash_count_(hashes), bits_((bits + 7) / 8, 0) {
    DLT_EXPECTS(bits > 0);
    DLT_EXPECTS(hashes > 0);
}

BloomFilter BloomFilter::optimal(std::size_t expected_items, double fp_rate) {
    DLT_EXPECTS(expected_items > 0);
    DLT_EXPECTS(fp_rate > 0 && fp_rate < 1);
    const double ln2 = std::log(2.0);
    const double bits = -static_cast<double>(expected_items) * std::log(fp_rate) /
                        (ln2 * ln2);
    const double hashes = bits / static_cast<double>(expected_items) * ln2;
    return BloomFilter(static_cast<std::size_t>(std::ceil(bits)),
                       static_cast<std::size_t>(std::max(1.0, std::round(hashes))));
}

std::size_t BloomFilter::bit_index(ByteView item, std::uint32_t seed) const {
    crypto::Sha256 ctx;
    const std::uint8_t seed_bytes[4] = {
        static_cast<std::uint8_t>(seed), static_cast<std::uint8_t>(seed >> 8),
        static_cast<std::uint8_t>(seed >> 16), static_cast<std::uint8_t>(seed >> 24)};
    ctx.update(ByteView{seed_bytes, 4}).update(item);
    const Hash256 digest = ctx.finalize();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | digest[static_cast<std::size_t>(i)];
    return static_cast<std::size_t>(v % bit_count_);
}

void BloomFilter::insert(ByteView item) {
    for (std::uint32_t k = 0; k < hash_count_; ++k) {
        const std::size_t idx = bit_index(item, k);
        bits_[idx / 8] |= static_cast<std::uint8_t>(1u << (idx % 8));
    }
}

bool BloomFilter::maybe_contains(ByteView item) const {
    for (std::uint32_t k = 0; k < hash_count_; ++k) {
        const std::size_t idx = bit_index(item, k);
        if ((bits_[idx / 8] & (1u << (idx % 8))) == 0) return false;
    }
    return true;
}

double BloomFilter::fill_ratio() const {
    std::size_t set = 0;
    for (const auto byte : bits_) set += static_cast<std::size_t>(std::popcount(byte));
    return static_cast<double>(set) / static_cast<double>(bit_count_);
}

} // namespace dlt::datastruct
