#include "datastruct/iavl.hpp"

#include <algorithm>
#include <mutex>

#include "common/assert.hpp"
#include "common/serialize.hpp"
#include "common/threadpool.hpp"
#include "crypto/sha256.hpp"

namespace dlt::datastruct {

struct IavlTree::Node {
    Bytes key;    // leaf: the key; inner: smallest key of the right subtree
    Bytes value;  // leaf only
    int height = 0;
    std::size_t size = 1;
    NodePtr left;
    NodePtr right;

    mutable std::optional<Hash256> cached_hash;
    mutable std::once_flag hash_once; // root_hash() warms subtrees in parallel

    bool is_leaf() const { return height == 0; }

    const Hash256& hash() const {
        std::call_once(hash_once, [this] {
            Writer w;
            w.u32(static_cast<std::uint32_t>(height));
            w.u64(size);
            w.blob(key);
            if (is_leaf()) {
                w.u8(0);
                w.blob(value);
            } else {
                w.u8(1);
                w.fixed(left->hash());
                w.fixed(right->hash());
            }
            cached_hash = crypto::tagged_hash("dlt/iavl", w.data());
        });
        return *cached_hash;
    }
};

namespace {

using Node = IavlTree::Node;
using NodePtr = std::shared_ptr<const Node>;

NodePtr make_leaf(Bytes key, Bytes value) {
    auto n = std::make_shared<Node>();
    n->key = std::move(key);
    n->value = std::move(value);
    return n;
}

NodePtr make_inner(NodePtr left, NodePtr right) {
    DLT_EXPECTS(left && right);
    auto n = std::make_shared<Node>();
    n->height = 1 + std::max(left->height, right->height);
    n->size = left->size + right->size;
    // Split key: the smallest key in the right subtree.
    const Node* cursor = right.get();
    while (!cursor->is_leaf()) cursor = cursor->left.get();
    n->key = cursor->key;
    n->left = std::move(left);
    n->right = std::move(right);
    return n;
}

int balance_factor(const NodePtr& n) { return n->left->height - n->right->height; }

NodePtr rotate_right(const NodePtr& n) {
    // (L, R) -> (LL, (LR, R))
    return make_inner(n->left->left, make_inner(n->left->right, n->right));
}

NodePtr rotate_left(const NodePtr& n) {
    // (L, R) -> ((L, RL), RR)
    return make_inner(make_inner(n->left, n->right->left), n->right->right);
}

NodePtr rebalance(NodePtr n) {
    if (n->is_leaf()) return n;
    const int bf = balance_factor(n);
    if (bf > 1) {
        if (balance_factor(n->left) < 0)
            n = make_inner(rotate_left(n->left), n->right);
        return rotate_right(n);
    }
    if (bf < -1) {
        if (balance_factor(n->right) > 0)
            n = make_inner(n->left, rotate_right(n->right));
        return rotate_left(n);
    }
    return n;
}

bool key_less(const Bytes& a, ByteView b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

bool key_equal(const Bytes& a, ByteView b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

NodePtr insert(const NodePtr& node, ByteView key, Bytes value, bool& added) {
    if (!node) {
        added = true;
        return make_leaf(Bytes(key.begin(), key.end()), std::move(value));
    }
    if (node->is_leaf()) {
        if (key_equal(node->key, key)) {
            added = false;
            return make_leaf(node->key, std::move(value));
        }
        added = true;
        NodePtr fresh = make_leaf(Bytes(key.begin(), key.end()), std::move(value));
        if (key_less(node->key, key)) return make_inner(node, std::move(fresh));
        return make_inner(std::move(fresh), node);
    }
    // Inner: descend by split key (keys >= split go right).
    if (key_less(node->key, key) || key_equal(node->key, key)) {
        NodePtr new_right = insert(node->right, key, std::move(value), added);
        return rebalance(make_inner(node->left, std::move(new_right)));
    }
    NodePtr new_left = insert(node->left, key, std::move(value), added);
    return rebalance(make_inner(std::move(new_left), node->right));
}

NodePtr erase(const NodePtr& node, ByteView key, bool& removed) {
    if (!node) {
        removed = false;
        return nullptr;
    }
    if (node->is_leaf()) {
        if (key_equal(node->key, key)) {
            removed = true;
            return nullptr;
        }
        removed = false;
        return node;
    }
    if (key_less(node->key, key) || key_equal(node->key, key)) {
        NodePtr new_right = erase(node->right, key, removed);
        if (!removed) return node;
        if (!new_right) return node->left;
        return rebalance(make_inner(node->left, std::move(new_right)));
    }
    NodePtr new_left = erase(node->left, key, removed);
    if (!removed) return node;
    if (!new_left) return node->right;
    return rebalance(make_inner(std::move(new_left), node->right));
}

bool check(const NodePtr& node, const Bytes* lo, const Bytes* hi) {
    if (!node) return true;
    if (node->is_leaf()) {
        if (lo && key_less(node->key, *lo)) return false;
        if (hi && !key_less(node->key, *hi)) return false;
        return node->size == 1;
    }
    if (node->size != node->left->size + node->right->size) return false;
    if (node->height != 1 + std::max(node->left->height, node->right->height))
        return false;
    if (std::abs(balance_factor(node)) > 1) return false;
    // Left subtree keys < split key <= right subtree keys.
    return check(node->left, lo, &node->key) && check(node->right, &node->key, hi);
}

void traverse(const NodePtr& node,
              const std::function<void(ByteView, ByteView)>& fn) {
    if (!node) return;
    if (node->is_leaf()) {
        fn(node->key, node->value);
        return;
    }
    traverse(node->left, fn);
    traverse(node->right, fn);
}

} // namespace

void IavlTree::set(ByteView key, Bytes value) {
    bool added = false;
    root_ = insert(root_, key, std::move(value), added);
}

std::optional<Bytes> IavlTree::get(ByteView key) const {
    const Node* node = root_.get();
    while (node != nullptr) {
        if (node->is_leaf())
            return key_equal(node->key, key) ? std::optional<Bytes>(node->value)
                                             : std::nullopt;
        node = (key_less(node->key, key) || key_equal(node->key, key))
                   ? node->right.get()
                   : node->left.get();
    }
    return std::nullopt;
}

bool IavlTree::remove(ByteView key) {
    bool removed = false;
    root_ = erase(root_, key, removed);
    return removed;
}

Hash256 IavlTree::root_hash() const {
    if (!root_) return Hash256{};
    // Same shape as the MPT: warm disjoint subtrees' hash caches on the pool
    // (Node::hash is call_once-guarded), then recurse serially over a tree
    // whose lower levels are already cached. Purely a wall-clock optimization.
    ThreadPool& pool = ThreadPool::global();
    if (pool.worker_count() > 0) {
        const std::size_t target = (pool.worker_count() + 1) * 4;
        std::vector<const Node*> frontier{root_.get()};
        bool expanded = true;
        while (frontier.size() < target && expanded) {
            expanded = false;
            std::vector<const Node*> next;
            next.reserve(frontier.size() * 2);
            for (const Node* n : frontier) {
                if (n->is_leaf()) {
                    next.push_back(n);
                } else {
                    next.push_back(n->left.get());
                    next.push_back(n->right.get());
                    expanded = true;
                }
            }
            frontier = std::move(next);
        }
        parallel_for(pool, 0, frontier.size(),
                     [&frontier](std::size_t i) { frontier[i]->hash(); });
    }
    return root_->hash();
}

std::size_t IavlTree::size() const { return root_ ? root_->size : 0; }

int IavlTree::height() const { return root_ ? root_->height : -1; }

void IavlTree::for_each(const std::function<void(ByteView, ByteView)>& fn) const {
    traverse(root_, fn);
}

bool IavlTree::check_invariants() const { return check(root_, nullptr, nullptr); }

} // namespace dlt::datastruct
