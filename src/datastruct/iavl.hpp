// IAVL+ tree (the Tendermint state structure the paper cites in §5.4): a
// persistent, authenticated AVL tree. Values live only in leaves; inner nodes
// carry the split key, subtree size, height, and a hash binding both children.
// Copy-on-write nodes give O(1) snapshots (versioned state, checkpoint sync).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace dlt::datastruct {

class IavlTree {
public:
    /// Implementation detail, public only for the out-of-line workers; opaque.
    struct Node;

    IavlTree() = default;

    /// Insert or overwrite.
    void set(ByteView key, Bytes value);

    std::optional<Bytes> get(ByteView key) const;

    /// Remove; returns false when absent.
    bool remove(ByteView key);

    /// Authenticated root; all-zero when empty.
    Hash256 root_hash() const;

    std::size_t size() const;
    bool empty() const { return size() == 0; }
    int height() const;

    /// O(1) structural snapshot.
    IavlTree snapshot() const { return *this; }

    /// In-order traversal over (key, value) pairs.
    void for_each(const std::function<void(ByteView, ByteView)>& fn) const;

    /// Every inner node splits correctly and heights/sizes are AVL-consistent;
    /// exposed for property tests.
    bool check_invariants() const;

private:
    using NodePtr = std::shared_ptr<const Node>;

    NodePtr root_;
};

} // namespace dlt::datastruct
