// Unified experiment harness: run the same offered workload against any
// ChainSpec and collect comparable metrics. This is the platform's measurement
// plane, feeding the DCS scorer (E8) and the per-spec experiments (E2-E5, E20).
#pragma once

#include <cstdint>
#include <optional>

#include "core/chainspec.hpp"

namespace dlt::core {

struct Workload {
    double tx_rate = 10.0;      // offered transactions per second
    double duration = 3600.0;   // simulated seconds
    std::size_t tx_bytes = 250; // serialized size (payload shaping)
};

struct ExperimentMetrics {
    double throughput_tps = 0;      // confirmed txs per simulated second
    double offered_tps = 0;         // workload pressure
    std::optional<double> mean_confirmation_latency; // submit -> confirmed
    double stale_rate = 0;          // stale blocks / all blocks (0 for leader-based)
    bool forks_possible = true;
    std::uint64_t blocks = 0;       // blocks/batches committed
    double decentralization_index = 0; // structural: openness + leaderlessness
    double duration = 0;
};

/// Run `workload` on a network configured by `spec`. Deterministic per seed.
ExperimentMetrics run_experiment(const ChainSpec& spec, const Workload& workload,
                                 std::uint64_t seed);

} // namespace dlt::core
