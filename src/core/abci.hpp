// Application Blockchain Interface (paper §5.2: "the Application Blockchain
// Interface (ABCI), which allows applications to use the underlying blockchain
// system to tolerate failures by replicating the state across multiple
// machines"). An application implements the begin/deliver/end/commit/query
// contract; the replication harness drives one instance per replica from the
// ordered request stream (here: a PBFT cluster), so every correct replica's
// application state stays identical — blockchain middleware as the paper
// envisions it.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "consensus/pbft.hpp"

namespace dlt::core {

/// Result of delivering one transaction to the application.
struct AbciResult {
    bool ok = true;
    std::string info;
};

/// The application side of the interface. Implementations must be
/// deterministic: identical request sequences must produce identical state
/// (the whole point of replication).
class AbciApplication {
public:
    virtual ~AbciApplication() = default;

    virtual void begin_block(std::uint64_t height) = 0;
    virtual AbciResult deliver_tx(ByteView tx) = 0;
    /// Returns the application state digest ("app hash") after the block.
    virtual Hash256 end_block(std::uint64_t height) = 0;
    /// Read-only query against committed state.
    virtual Bytes query(ByteView request) const = 0;
};

/// Reference application: a replicated key-value store.
/// Tx format: "set <key> <value>" or "del <key>"; query: "<key>".
class KvStoreApp final : public AbciApplication {
public:
    void begin_block(std::uint64_t height) override;
    AbciResult deliver_tx(ByteView tx) override;
    Hash256 end_block(std::uint64_t height) override;
    Bytes query(ByteView request) const override;

    std::size_t size() const { return store_.size(); }

private:
    std::map<std::string, std::string> store_;
    std::uint64_t last_height_ = 0;
};

/// Drives one AbciApplication per PBFT replica from the committed log,
/// checking that all replicas report identical app hashes per block.
class ReplicatedApp {
public:
    using AppFactory = std::function<std::unique_ptr<AbciApplication>()>;

    ReplicatedApp(consensus::PbftConfig config, AppFactory factory,
                  std::uint64_t seed);

    /// Submit an application transaction to the cluster.
    void submit(Bytes tx) { cluster_.submit(std::move(tx)); }

    void run_for(SimDuration duration);

    /// Query replica `r`'s application (read-only, local).
    Bytes query(std::uint32_t replica, ByteView request) const;

    /// True when every replica has applied the same blocks with matching app
    /// hashes (checked incrementally during run_for).
    bool app_hashes_consistent() const { return consistent_; }
    std::uint64_t applied_blocks(std::uint32_t replica) const;

    consensus::PbftCluster& cluster() { return cluster_; }

private:
    void drain_committed();

    consensus::PbftCluster cluster_;
    std::vector<std::unique_ptr<AbciApplication>> apps_;
    std::vector<std::size_t> applied_; // batches applied per replica
    std::vector<std::vector<Hash256>> app_hashes_;
    bool consistent_ = true;
};

} // namespace dlt::core
