#include "core/abci.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace dlt::core {

// --- KvStoreApp -------------------------------------------------------------------

void KvStoreApp::begin_block(std::uint64_t height) { last_height_ = height; }

AbciResult KvStoreApp::deliver_tx(ByteView tx) {
    const std::string text(reinterpret_cast<const char*>(tx.data()), tx.size());
    std::istringstream in(text);
    std::string op, key;
    if (!(in >> op >> key)) return {false, "malformed"};
    if (op == "set") {
        std::string value;
        if (!(in >> value)) return {false, "set needs a value"};
        store_[key] = value;
        return {true, "stored"};
    }
    if (op == "del") {
        return store_.erase(key) > 0 ? AbciResult{true, "deleted"}
                                     : AbciResult{false, "missing"};
    }
    return {false, "unknown op"};
}

Hash256 KvStoreApp::end_block(std::uint64_t height) {
    // Deterministic digest of the whole store (std::map iterates sorted).
    Writer w;
    w.u64(height);
    w.varint(store_.size());
    for (const auto& [k, v] : store_) {
        w.str(k);
        w.str(v);
    }
    return crypto::tagged_hash("dlt/abci-app-hash", w.data());
}

Bytes KvStoreApp::query(ByteView request) const {
    const std::string key(reinterpret_cast<const char*>(request.data()),
                          request.size());
    const auto it = store_.find(key);
    if (it == store_.end()) return {};
    return to_bytes(it->second);
}

// --- ReplicatedApp -----------------------------------------------------------------

ReplicatedApp::ReplicatedApp(consensus::PbftConfig config, AppFactory factory,
                             std::uint64_t seed)
    : cluster_(config, seed) {
    DLT_EXPECTS(factory != nullptr);
    const std::uint32_t n = cluster_.replica_count();
    for (std::uint32_t i = 0; i < n; ++i) {
        apps_.push_back(factory());
        applied_.push_back(0);
        app_hashes_.emplace_back();
    }
}

void ReplicatedApp::run_for(SimDuration duration) {
    cluster_.run_for(duration);
    drain_committed();
}

void ReplicatedApp::drain_committed() {
    for (std::uint32_t r = 0; r < apps_.size(); ++r) {
        const auto& log = cluster_.log_of(r);
        while (applied_[r] < log.size()) {
            const auto& batch = log[applied_[r]];
            apps_[r]->begin_block(batch.sequence);
            for (const auto& request : batch.requests) apps_[r]->deliver_tx(request);
            app_hashes_[r].push_back(apps_[r]->end_block(batch.sequence));
            ++applied_[r];
        }
    }
    // Cross-check hashes block by block over the common prefix.
    for (std::uint32_t r = 1; r < apps_.size(); ++r) {
        const std::size_t common =
            std::min(app_hashes_[0].size(), app_hashes_[r].size());
        for (std::size_t i = 0; i < common; ++i) {
            if (app_hashes_[0][i] != app_hashes_[r][i]) {
                consistent_ = false;
                return;
            }
        }
    }
}

Bytes ReplicatedApp::query(std::uint32_t replica, ByteView request) const {
    return apps_.at(replica)->query(request);
}

std::uint64_t ReplicatedApp::applied_blocks(std::uint32_t replica) const {
    return applied_.at(replica);
}

} // namespace dlt::core
