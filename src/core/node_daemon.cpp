#include "core/node_daemon.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "net/transport/frame.hpp"
#include "obs/metrics.hpp"

namespace dlt::core {

using net::transport::Frame;
using net::transport::FrameDecoder;
using net::transport::FrameKind;

NodeDaemon::NodeDaemon(NodeDaemonConfig config) : config_(std::move(config)) {
    transport_ =
        std::make_unique<net::transport::TcpTransport>(config_.transport);
    replica_ = std::make_unique<Replica>(*transport_, config_.replica);

    rpc_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (rpc_listen_fd_ < 0)
        throw Error(std::string("rpc: socket(): ") + std::strerror(errno));
    int one = 1;
    ::setsockopt(rpc_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.rpc_port);
    if (::inet_pton(AF_INET, config_.rpc_host.c_str(), &addr.sin_addr) != 1)
        throw ValidationError("rpc: not an IPv4 address: " + config_.rpc_host);
    if (::bind(rpc_listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
        throw Error(std::string("rpc: bind(): ") + std::strerror(errno));
    if (::listen(rpc_listen_fd_, 16) != 0)
        throw Error(std::string("rpc: listen(): ") + std::strerror(errno));
    socklen_t len = sizeof(addr);
    ::getsockname(rpc_listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    rpc_port_ = ntohs(addr.sin_port);
}

NodeDaemon::~NodeDaemon() {
    request_stop();
    stop();
}

void NodeDaemon::start() {
    bool expected = false;
    if (!started_.compare_exchange_strong(expected, true)) return;
    replica_->start(); // timers land in the loop's queue before it spins up
    transport_->start();
    rpc_thread_ = std::thread([this] { rpc_loop(); });
}

void NodeDaemon::wait() {
    while (!stop_requested_.load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop();
}

template <typename Fn>
auto NodeDaemon::on_loop(Fn&& fn) {
    using R = std::invoke_result_t<Fn&>;
    auto prom = std::make_shared<std::promise<R>>();
    auto fut = prom->get_future();
    transport_->post([prom, f = std::forward<Fn>(fn)]() mutable {
        try {
            prom->set_value(f());
        } catch (...) {
            prom->set_exception(std::current_exception());
        }
    });
    // A shut-down transport drops posted work; don't hang the RPC thread.
    if (fut.wait_for(std::chrono::seconds(5)) != std::future_status::ready)
        throw Error("rpc: transport loop unavailable");
    return fut.get();
}

void NodeDaemon::stop() {
    request_stop();
    bool expected = false;
    if (!stopped_.compare_exchange_strong(expected, true)) return;
    if (started_.load()) {
        try {
            on_loop([this] {
                replica_->stop();
                return true;
            });
        } catch (const Error&) {
            // Loop already gone; timers die with it.
        }
    }
    transport_->shutdown();
    if (rpc_thread_.joinable()) rpc_thread_.join();
    if (rpc_listen_fd_ >= 0) {
        ::close(rpc_listen_fd_);
        rpc_listen_fd_ = -1;
    }
}

void NodeDaemon::rpc_loop() {
    while (!stop_requested_.load(std::memory_order_acquire)) {
        pollfd pf{rpc_listen_fd_, POLLIN, 0};
        const int rc = ::poll(&pf, 1, 100);
        if (rc <= 0) continue;
        const int fd = ::accept(rpc_listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        serve_rpc_client(fd);
        ::close(fd);
    }
}

void NodeDaemon::serve_rpc_client(int fd) {
    FrameDecoder decoder(config_.transport.frame);
    std::uint8_t buf[65536];
    while (!stop_requested_.load(std::memory_order_acquire)) {
        pollfd pf{fd, POLLIN, 0};
        const int rc = ::poll(&pf, 1, 100);
        if (rc < 0 && errno != EINTR) return;
        if (rc <= 0) continue;
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n == 0) return;
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN) continue;
            return;
        }
        try {
            decoder.feed(ByteView(buf, static_cast<std::size_t>(n)));
            while (auto frame = decoder.next()) {
                if (frame->kind != FrameKind::kMessage) return;
                const auto msg =
                    net::transport::decode_message_payload(ByteView(frame->payload));
                Writer reply;
                if (msg.topic == "submit") {
                    auto tx = decode_from_bytes<ledger::Transaction>(
                        ByteView(msg.body));
                    const bool ok = on_loop(
                        [this, &tx] { return replica_->submit_transaction(tx); });
                    reply.u8(ok ? 1 : 0);
                } else if (msg.topic == "status") {
                    struct Status {
                        std::uint64_t height;
                        Hash256 tip;
                        std::uint64_t confirmed;
                        std::uint64_t mempool;
                    };
                    const Status s = on_loop([this] {
                        return Status{replica_->height(), replica_->tip(),
                                      replica_->confirmed_txs(),
                                      replica_->mempool_size()};
                    });
                    reply.u64(s.height);
                    reply.fixed(s.tip);
                    reply.u64(s.confirmed);
                    reply.u64(s.mempool);
                    reply.u32(static_cast<std::uint32_t>(
                        transport_->connected_peers()));
                    reply.f64(transport_->now());
                } else if (msg.topic == "latencies") {
                    const std::vector<double> lat = on_loop(
                        [this] { return replica_->confirmation_latencies(); });
                    reply.varint(lat.size());
                    for (const double v : lat) reply.f64(v);
                } else if (msg.topic == "metrics") {
                    reply.str(obs::MetricsRegistry::global().json_snapshot());
                } else if (msg.topic == "shutdown") {
                    reply.u8(1);
                    const Bytes out = net::transport::encode_message_frame(
                        msg.topic, ByteView(reply.data()));
                    (void)::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
                    request_stop();
                    return;
                } else {
                    return; // unknown method: drop the client
                }
                const Bytes out = net::transport::encode_message_frame(
                    msg.topic, ByteView(reply.data()));
                std::size_t off = 0;
                while (off < out.size()) {
                    const ssize_t w = ::send(fd, out.data() + off,
                                             out.size() - off, MSG_NOSIGNAL);
                    if (w <= 0) return;
                    off += static_cast<std::size_t>(w);
                }
            }
        } catch (const Error&) {
            return; // malformed request or dead loop: drop the client
        }
    }
}

} // namespace dlt::core
