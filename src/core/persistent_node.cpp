#include "core/persistent_node.hpp"

#include "common/log.hpp"
#include "common/serialize.hpp"
#include "crypto/uint256.hpp"

namespace dlt::core {

namespace {
constexpr std::uint8_t kWalConnect = 1;
constexpr std::uint8_t kWalDisconnect = 2;
} // namespace

PersistentNode::PersistentNode(std::filesystem::path dir, const ledger::Block& genesis,
                               PersistentNodeOptions options)
    : dir_(std::move(dir)),
      options_(options),
      genesis_(genesis),
      snapshots_(dir_ / "snapshots"),
      chain_(genesis),
      tip_(genesis.hash()) {
    std::filesystem::create_directories(dir_);

    storage::BlockStoreOptions store_options;
    store_options.cache_capacity = options_.block_cache_capacity;
    store_options.injector = options_.injector;
    store_options.fsync = options_.fsync;
    store_ = std::make_unique<storage::BlockStore>(dir_, store_options);

    storage::WalOptions wal_options;
    wal_options.injector = options_.injector;
    wal_options.fsync = options_.fsync;
    wal_ = std::make_unique<storage::Wal>(dir_ / "wal.log", wal_options);

    recovery_.wal_bytes_truncated = wal_->open_stats().truncated_bytes;
    recovery_.store_bytes_truncated = store_->stats().truncated_bytes;

    // Rebuild the chain index from the durable block files (height order, so
    // parents precede children). Blocks whose parent never became durable are
    // unreachable and skipped.
    for (const auto& [hash, height] : store_->all_blocks()) {
        const auto block = store_->read_block(hash);
        try {
            chain_.insert(*block, crypto::U256::one());
        } catch (const ValidationError&) {
            DLT_LOG(kWarn, "storage")
                << "skipping orphan block " << hash.hex() << " at height " << height;
        }
    }

    // Base state: newest valid snapshot, else genesis.
    std::uint64_t base_seq = 0;
    if (const auto snap = snapshots_.load_latest()) {
        if (!chain_.contains(snap->block_hash))
            throw StorageError("snapshot references a block missing from the store");
        utxo_ = scaling::deserialize_utxo(ByteView(snap->utxo_snapshot));
        tip_ = snap->block_hash;
        height_ = snap->height;
        base_seq = snap->wal_seq;
        recovery_.from_snapshot = true;
        recovery_.snapshot_height = snap->height;
    } else {
        utxo_ = ledger::UtxoSet();
        // Genesis transactions (if any) seed the initial coin supply.
        utxo_.apply_block(genesis_);
    }
    // After a snapshot + WAL reset + restart the log is empty and would hand
    // out sequence numbers the snapshot already claims to cover — push the
    // counter past the snapshot so new records always replay.
    wal_->ensure_next_seq_at_least(base_seq + 1);

    // Replay the committed journal suffix on top of the base state.
    for (const auto& rec : wal_->records()) {
        if (rec.seq <= base_seq) continue;
        Reader r(ByteView(rec.payload));
        const Hash256 hash = r.fixed<32>();
        r.expect_done();
        if (rec.type == kWalConnect) {
            const auto block = store_->read_block(hash);
            if (!block) {
                // The journal committed but the block payload is gone — only
                // possible under external corruption. Stop at the last state
                // we can prove consistent.
                DLT_LOG(kWarn, "storage") << "WAL references missing block "
                                          << hash.hex() << "; stopping replay";
                break;
            }
            if (block->header.prev_hash != tip_)
                throw StorageError("WAL connect does not extend the recovered tip");
            utxo_.apply_block(*block);
            tip_ = hash;
            height_ += 1;
        } else if (rec.type == kWalDisconnect) {
            if (hash != tip_)
                throw StorageError("WAL disconnect does not match the recovered tip");
            utxo_.undo_block(store_->read_undo(hash));
            const auto* entry = chain_.find(hash);
            tip_ = entry->block.header.prev_hash;
            height_ -= 1;
        } else {
            throw StorageError("unknown WAL record type " + std::to_string(rec.type));
        }
        ++recovery_.wal_records_replayed;
    }
}

void PersistentNode::fail_if_crashed() const {
    if (crashed_)
        throw storage::CrashError("node crashed; reopen the directory to recover");
}

void PersistentNode::connect_block(const ledger::Block& block) {
    fail_if_crashed();
    if (block.header.prev_hash != tip_)
        throw ValidationError("connect_block: block does not extend the current tip");

    // Validate + apply in memory first (throws without side effects), then
    // make it durable: block + undo, then the WAL commit record. A crash
    // between the two leaves an uncommitted block the next open ignores.
    ledger::UtxoUndo undo = utxo_.apply_block(block);
    const Hash256 hash = block.hash();
    try {
        store_->append(block, undo);
        Writer w;
        w.fixed(hash);
        wal_->append(kWalConnect, w.data());
    } catch (const storage::CrashError&) {
        crashed_ = true;
        throw;
    } catch (...) {
        utxo_.undo_block(undo); // real I/O error: keep the node usable
        throw;
    }
    chain_.insert(block, crypto::U256::one());
    tip_ = hash;
    height_ += 1;
}

void PersistentNode::disconnect_tip() {
    fail_if_crashed();
    if (tip_ == chain_.genesis_hash())
        throw StorageError("cannot disconnect the genesis block");

    const ledger::UtxoUndo undo = store_->read_undo(tip_);
    const Hash256 old_tip = tip_;
    try {
        Writer w;
        w.fixed(old_tip);
        wal_->append(kWalDisconnect, w.data());
    } catch (const storage::CrashError&) {
        crashed_ = true;
        throw;
    }
    utxo_.undo_block(undo);
    const auto* entry = chain_.find(old_tip);
    tip_ = entry->block.header.prev_hash;
    height_ -= 1;
}

std::filesystem::path PersistentNode::snapshot() {
    fail_if_crashed();
    const storage::Snapshot snap =
        storage::SnapshotManager::make(utxo_, height_, tip_, wal_->last_seq());
    const auto path = snapshots_.save(snap);
    // The snapshot now covers every journaled transition; the WAL can restart
    // empty. A crash between save and reset is safe: replay skips records
    // with seq <= the snapshot's wal_seq.
    wal_->reset();
    snapshots_.prune(options_.snapshots_to_keep);
    return path;
}

scaling::Checkpoint PersistentNode::checkpoint() const {
    return storage::SnapshotManager::make(utxo_, height_, tip_, wal_->last_seq())
        .to_checkpoint();
}

} // namespace dlt::core
