#include "core/persistent_node.hpp"

#include "common/log.hpp"
#include "common/serialize.hpp"
#include "crypto/uint256.hpp"
#include "storage/lsm_backend.hpp"

namespace dlt::core {

namespace {
constexpr std::uint8_t kWalConnect = 1;
constexpr std::uint8_t kWalDisconnect = 2;

// Recovery metadata the persistent state engine stores with every batch
// commit: the tip (and its height) whose post-state the engine holds.
Bytes encode_state_meta(const Hash256& tip, std::uint64_t height) {
    Writer w;
    w.fixed(tip);
    w.u64(height);
    return std::move(w).take();
}

std::optional<std::uint64_t> snapshot_height_of(const std::filesystem::path& path) {
    const std::string name = path.filename().string();
    if (!name.starts_with("snapshot-") || !name.ends_with(".snap"))
        return std::nullopt;
    try {
        return std::stoull(name.substr(9, name.size() - 9 - 5));
    } catch (const std::exception&) {
        return std::nullopt;
    }
}
} // namespace

PersistentNode::PersistentNode(std::filesystem::path dir, const ledger::Block& genesis,
                               PersistentNodeOptions options)
    : dir_(std::move(dir)),
      options_(options),
      genesis_(genesis),
      snapshots_(dir_ / "snapshots"),
      chain_(genesis),
      tip_(genesis.hash()) {
    std::filesystem::create_directories(dir_);

    storage::BlockStoreOptions store_options;
    store_options.cache_capacity = options_.block_cache_capacity;
    store_options.injector = options_.injector;
    store_options.fsync = options_.fsync;
    store_ = std::make_unique<storage::BlockStore>(dir_, store_options);

    storage::WalOptions wal_options;
    wal_options.injector = options_.injector;
    wal_options.fsync = options_.fsync;
    wal_ = std::make_unique<storage::Wal>(dir_ / "wal.log", wal_options);

    recovery_.wal_bytes_truncated = wal_->open_stats().truncated_bytes;
    recovery_.store_bytes_truncated = store_->stats().truncated_bytes;

    // Rebuild the chain index from the durable block files (height order, so
    // parents precede children). Blocks whose parent never became durable are
    // unreachable and skipped — unless the store is pruned, in which case the
    // blocks at the prune floor anchor detached subtrees.
    for (const auto& [hash, height] : store_->all_blocks()) {
        const auto block = store_->read_block(hash);
        try {
            chain_.insert(*block, crypto::U256::one());
        } catch (const ValidationError&) {
            if (store_->pruned_below() > 0 && height == store_->pruned_below()) {
                chain_.insert_detached_root(*block, crypto::U256(height + 1));
            } else {
                DLT_LOG(kWarn, "storage") << "skipping orphan block " << hash.hex()
                                          << " at height " << height;
            }
        }
    }

    // Base state: the persistent engine's committed state, else the newest
    // valid snapshot, else genesis.
    std::uint64_t base_seq = 0;
    if (options_.state_engine == StateEngine::kPersistent) {
        storage::LsmOptions lsm;
        lsm.memtable_limit = options_.state_memtable_limit;
        lsm.compact_trigger = options_.state_compact_trigger;
        lsm.injector = options_.injector;
        lsm.fsync = options_.fsync;
        auto backend = std::make_unique<storage::LsmBackend>(dir_ / "state", lsm);
        const Bytes meta = backend->committed_meta();
        const std::uint64_t tag = backend->committed_tag();
        utxo_ = ledger::UtxoSet(std::move(backend));
        if (meta.empty()) {
            // Fresh engine: seed the genesis coin supply under tag 0, so the
            // very first restart already recovers from the engine.
            utxo_.apply_block(genesis_);
            utxo_.commit(0, ByteView(encode_state_meta(tip_, 0)));
        } else {
            Reader r{ByteView(meta)};
            tip_ = r.fixed<32>();
            height_ = r.u64();
            r.expect_done();
            if (!chain_.contains(tip_))
                throw StorageError("state engine tip missing from the block index");
            // The engine commits *after* the node-WAL record with the same
            // tag, so its tag is always <= the last committed WAL seq and
            // replay below is forward-only.
            base_seq = tag;
            recovery_.from_state_engine = true;
            recovery_.state_tag = tag;
        }
    } else if (const auto snap = snapshots_.load_latest()) {
        if (!chain_.contains(snap->block_hash))
            throw StorageError("snapshot references a block missing from the store");
        utxo_ = scaling::deserialize_utxo(ByteView(snap->utxo_snapshot));
        tip_ = snap->block_hash;
        height_ = snap->height;
        base_seq = snap->wal_seq;
        recovery_.from_snapshot = true;
        recovery_.snapshot_height = snap->height;
    } else {
        utxo_ = ledger::UtxoSet();
        // Genesis transactions (if any) seed the initial coin supply.
        utxo_.apply_block(genesis_);
    }
    // After a snapshot + WAL reset + restart the log is empty and would hand
    // out sequence numbers the snapshot already claims to cover — push the
    // counter past the snapshot so new records always replay.
    wal_->ensure_next_seq_at_least(base_seq + 1);

    // Replay the committed journal suffix on top of the base state.
    for (const auto& rec : wal_->records()) {
        if (rec.seq <= base_seq) continue;
        Reader r(ByteView(rec.payload));
        const Hash256 hash = r.fixed<32>();
        r.expect_done();
        if (rec.type == kWalConnect) {
            const auto block = store_->read_block(hash);
            if (!block) {
                // The journal committed but the block payload is gone — only
                // possible under external corruption. Stop at the last state
                // we can prove consistent.
                DLT_LOG(kWarn, "storage") << "WAL references missing block "
                                          << hash.hex() << "; stopping replay";
                break;
            }
            if (block->header.prev_hash != tip_)
                throw StorageError("WAL connect does not extend the recovered tip");
            utxo_.apply_block(*block);
            tip_ = hash;
            height_ += 1;
        } else if (rec.type == kWalDisconnect) {
            if (hash != tip_)
                throw StorageError("WAL disconnect does not match the recovered tip");
            utxo_.undo_block(store_->read_undo(hash));
            const auto* entry = chain_.find(hash);
            tip_ = entry->block.header.prev_hash;
            height_ -= 1;
        } else {
            throw StorageError("unknown WAL record type " + std::to_string(rec.type));
        }
        // Fold the replayed transition into the persistent engine so the next
        // open starts from here (blind-write batches make re-replay after a
        // crash mid-commit idempotent).
        if (options_.state_engine == StateEngine::kPersistent)
            utxo_.commit(rec.seq, ByteView(encode_state_meta(tip_, height_)));
        ++recovery_.wal_records_replayed;
    }
}

void PersistentNode::fail_if_crashed() const {
    if (crashed_)
        throw storage::CrashError("node crashed; reopen the directory to recover");
}

void PersistentNode::connect_block(const ledger::Block& block) {
    fail_if_crashed();
    if (block.header.prev_hash != tip_)
        throw ValidationError("connect_block: block does not extend the current tip");

    // Validate + apply in memory first (throws without side effects), then
    // make it durable: block + undo, then the WAL commit record. A crash
    // between the two leaves an uncommitted block the next open ignores.
    ledger::UtxoUndo undo = utxo_.apply_block(block);
    const Hash256 hash = block.hash();
    try {
        store_->append(block, undo);
        Writer w;
        w.fixed(hash);
        const std::uint64_t seq = wal_->append(kWalConnect, w.data());
        // State-engine commit comes last: its tag can never exceed the last
        // durable WAL seq, so recovery only ever replays forward.
        if (options_.state_engine == StateEngine::kPersistent)
            utxo_.commit(seq, ByteView(encode_state_meta(hash, height_ + 1)));
    } catch (const storage::CrashError&) {
        crashed_ = true;
        throw;
    } catch (...) {
        utxo_.undo_block(undo); // real I/O error: keep the node usable
        throw;
    }
    chain_.insert(block, crypto::U256::one());
    tip_ = hash;
    height_ += 1;
}

void PersistentNode::disconnect_tip() {
    fail_if_crashed();
    if (tip_ == chain_.genesis_hash())
        throw StorageError("cannot disconnect the genesis block");
    // The block at the prune floor still has its undo record, but rolling back
    // onto a pruned parent would leave a tip with no durable block — refuse at
    // the floor, not just below it.
    if (height_ <= store_->pruned_below())
        throw StorageError("cannot disconnect below the pruned height");

    const ledger::UtxoUndo undo = store_->read_undo(tip_);
    const Hash256 old_tip = tip_;
    std::uint64_t seq = 0;
    try {
        Writer w;
        w.fixed(old_tip);
        seq = wal_->append(kWalDisconnect, w.data());
    } catch (const storage::CrashError&) {
        crashed_ = true;
        throw;
    }
    utxo_.undo_block(undo);
    const auto* entry = chain_.find(old_tip);
    tip_ = entry->block.header.prev_hash;
    height_ -= 1;
    if (options_.state_engine == StateEngine::kPersistent) {
        try {
            utxo_.commit(seq, ByteView(encode_state_meta(tip_, height_)));
        } catch (const storage::CrashError&) {
            crashed_ = true;
            throw;
        }
    }
}

std::filesystem::path PersistentNode::snapshot() {
    fail_if_crashed();
    const storage::Snapshot snap =
        storage::SnapshotManager::make(utxo_, height_, tip_, wal_->last_seq());
    const auto path = snapshots_.save(snap);
    // The snapshot now covers every journaled transition; the WAL can restart
    // empty. A crash between save and reset is safe: replay skips records
    // with seq <= the snapshot's wal_seq.
    wal_->reset();
    snapshots_.prune(options_.snapshots_to_keep);

    // Every block below the *oldest* snapshot still on disk is now covered by
    // a durable state image; with pruning enabled its block + undo records
    // can go (load_latest's fall-back-to-older-snapshot path keeps working,
    // since we prune only below the oldest survivor).
    if (options_.prune_blocks) {
        const auto kept = snapshots_.list();
        if (!kept.empty()) {
            if (const auto floor = snapshot_height_of(kept.front())) {
                try {
                    store_->prune_below(*floor);
                } catch (const storage::CrashError&) {
                    crashed_ = true;
                    throw;
                }
            }
        }
    }
    return path;
}

scaling::Checkpoint PersistentNode::checkpoint() const {
    return storage::SnapshotManager::make(utxo_, height_, tip_, wal_->last_seq())
        .to_checkpoint();
}

} // namespace dlt::core
