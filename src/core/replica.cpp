#include "core/replica.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "crypto/keys.hpp"
#include "ledger/amount.hpp"

namespace dlt::core {

using ledger::Block;
using ledger::Transaction;
using net::transport::PeerId;

namespace {

PersistentNodeOptions node_options(const ReplicaConfig& config) {
    PersistentNodeOptions options;
    options.state_engine = config.state_engine;
    options.fsync = config.fsync;
    return options;
}

// Wire helpers: every protocol payload is a Writer/Reader composition of the
// ledger types' own codecs.
Bytes encode_seq_block(std::uint64_t seq, const Block& block) {
    Writer w;
    w.u64(seq);
    block.encode(w);
    return std::move(w).take();
}

std::pair<std::uint64_t, Block> decode_seq_block(ByteView payload) {
    Reader r(payload);
    const std::uint64_t seq = r.u64();
    Block block = Block::decode(r);
    r.expect_done();
    return {seq, std::move(block)};
}

Bytes encode_seq_hash(std::uint64_t seq, const Hash256& hash) {
    Writer w;
    w.u64(seq);
    w.fixed(hash);
    return std::move(w).take();
}

std::pair<std::uint64_t, Hash256> decode_seq_hash(ByteView payload) {
    Reader r(payload);
    const std::uint64_t seq = r.u64();
    const Hash256 hash = r.fixed<32>();
    r.expect_done();
    return {seq, hash};
}

Bytes encode_hash(const Hash256& hash) {
    Writer w;
    w.fixed(hash);
    return std::move(w).take();
}

} // namespace

Replica::Replica(net::transport::Transport& transport, ReplicaConfig config)
    : transport_(transport),
      config_(std::move(config)),
      rng_(config_.seed + 0x9e3779b97f4a7c15ull * (transport.local_id() + 1)),
      node_(config_.data_dir,
            ledger::make_genesis(config_.chain_tag, config_.genesis_bits),
            node_options(config_)),
      mempool_(config_.mempool),
      miner_(crypto::PrivateKey::from_seed(config_.chain_tag + "/miner/" +
                                           std::to_string(transport.local_id()))
                 .address()),
      chain_(ledger::make_genesis(config_.chain_tag, config_.genesis_bits)) {
    DLT_EXPECTS(config_.node_count >= 1);
    rules_.max_block_bytes = config_.max_block_bytes;
    rules_.max_txs_per_block = config_.max_block_txs;
    rules_.sig_mode = config_.sig_mode;

    // Seed the in-memory branch index with the recovered canonical chain so
    // fork choice and reorg paths work immediately after a restart.
    for (const Hash256& hash : node_.chain().path_from_genesis(node_.tip())) {
        if (hash == chain_.genesis_hash()) continue;
        chain_.insert(node_.chain().find(hash)->block, crypto::U256::one());
    }
    confirmed_txs_ = 0;
    for (const Hash256& hash : chain_.path_from_genesis(node_.tip()))
        for (const Transaction& tx : chain_.find(hash)->block.txs)
            if (!tx.is_coinbase()) {
                ++confirmed_txs_;
                seen_txs_.insert(tx.txid());
            }

    transport_.set_handler(
        [this](PeerId from, const std::string& topic, ByteView payload) {
            try {
                on_message(from, topic, payload);
            } catch (const DecodeError&) {
                // Malformed payload from a peer: drop it, never crash.
            }
        });
}

void Replica::start() {
    if (running_) return;
    running_ = true;
    if (config_.engine == ReplicaEngine::kNakamoto) {
        nk_schedule_mining();
    } else if (pbft_primary()) {
        propose_timer_ = transport_.schedule_after(config_.block_interval,
                                                   [this] { pbft_propose(); });
    }
    arm_sync_timer();
}

void Replica::stop() {
    if (!running_) return;
    running_ = false;
    if (mining_timer_) transport_.cancel_timer(*mining_timer_);
    if (propose_timer_) transport_.cancel_timer(*propose_timer_);
    if (sync_timer_) transport_.cancel_timer(*sync_timer_);
    mining_timer_.reset();
    propose_timer_.reset();
    sync_timer_.reset();
}

void Replica::arm_sync_timer() {
    sync_timer_ = transport_.schedule_after(config_.sync_interval, [this] {
        if (!running_) return;
        if (config_.engine == ReplicaEngine::kNakamoto)
            nk_sync_probe();
        else
            pbft_sync_probe();
        arm_sync_timer();
    });
}

PeerId Replica::random_peer() {
    const auto peers = transport_.peer_ids();
    DLT_EXPECTS(!peers.empty());
    return peers[rng_.index(peers.size())];
}

bool Replica::submit_transaction(const Transaction& tx) {
    const Hash256 txid = tx.txid();
    if (seen_txs_.contains(txid)) return false;
    if (!mempool_.add(tx, transport_.now())) return false;
    seen_txs_.insert(txid);
    submitted_at_.emplace(txid, transport_.now());
    transport_.broadcast("tx", ByteView(encode_to_bytes(tx)));
    return true;
}

ledger::Block Replica::assemble_block() {
    Block block;
    block.header.prev_hash = node_.tip();
    block.header.height = node_.height() + 1;
    block.header.timestamp = transport_.now();
    block.header.bits = config_.genesis_bits;
    block.header.nonce = rng_.next(); // simulated proof, as in the simulator
    block.header.proposer = miner_;

    const std::size_t budget = config_.max_block_bytes > 512
                                   ? config_.max_block_bytes - 512
                                   : config_.max_block_bytes;
    const auto candidates = mempool_.build_template(budget, config_.max_block_txs);
    ledger::UtxoSet scratch = node_.utxo();
    ledger::UtxoUndo scratch_undo;
    ledger::Amount fees = 0;
    std::vector<Transaction> chosen;
    for (const auto& entry : candidates) {
        try {
            fees += scratch.check_and_apply(*entry.tx, scratch_undo);
            chosen.push_back(*entry.tx);
        } catch (const ValidationError&) {
            // Stale mempool entry on this branch; skip it.
        }
    }
    const ledger::Amount reward = ledger::block_subsidy(block.header.height) + fees;
    block.txs.push_back(ledger::make_coinbase(miner_, reward, block.header.height));
    for (auto& tx : chosen) block.txs.push_back(std::move(tx));
    block.header.merkle_root = block.compute_merkle_root();
    return block;
}

void Replica::connected(const Block& block) {
    std::vector<Hash256> ids;
    ids.reserve(block.txs.size());
    const double t = transport_.now();
    for (const Transaction& tx : block.txs) {
        if (tx.is_coinbase()) continue;
        const Hash256 txid = tx.txid();
        ids.push_back(txid);
        seen_txs_.insert(txid); // a later relay must not re-admit it
        ++confirmed_txs_;
        if (const auto it = submitted_at_.find(txid); it != submitted_at_.end()) {
            latencies_.push_back(t - it->second);
            submitted_at_.erase(it);
        }
    }
    mempool_.remove_confirmed(ids);
}

void Replica::disconnected(const Block& block) {
    std::vector<Transaction> back;
    for (const Transaction& tx : block.txs)
        if (!tx.is_coinbase()) {
            --confirmed_txs_;
            back.push_back(tx);
        }
    mempool_.add_back(back, transport_.now());
}

void Replica::on_message(PeerId from, const std::string& topic, ByteView payload) {
    if (topic == "tx") {
        if (!running_) return;
        Transaction tx = decode_from_bytes<Transaction>(payload);
        if (!seen_txs_.insert(tx.txid()).second) return; // relay dedup
        if (mempool_.add(tx, transport_.now()))
            transport_.broadcast_except(from, "tx", payload);
        return;
    }

    if (config_.engine == ReplicaEngine::kNakamoto) {
        if (topic == "blk") {
            if (!running_) return;
            nk_handle_block(decode_from_bytes<Block>(payload), from,
                            /*relay=*/true);
        } else if (topic == "getblk") {
            Reader r(payload);
            const Hash256 hash = r.fixed<32>();
            r.expect_done();
            if (const auto* entry = chain_.find(hash))
                transport_.send(from, "blk", ByteView(encode_to_bytes(entry->block)));
        } else if (topic == "gettip") {
            if (node_.height() > 0)
                transport_.send(from, "blk",
                                ByteView(encode_to_bytes(
                                    chain_.find(node_.tip())->block)));
        }
        return;
    }

    // PBFT (stable primary = replica 0; see header for the scope cut).
    if (topic == "pp") {
        if (!running_ || from != 0 || pbft_primary()) return;
        auto [seq, block] = decode_seq_block(payload);
        max_seen_seq_ = std::max(max_seen_seq_, seq);
        if (seq <= node_.height()) return; // already committed
        PbftRound& round = rounds_[seq];
        if (!round.block) {
            round.block = std::move(block);
            round.block_hash = round.block->hash();
        }
        pbft_check_round(seq);
    } else if (topic == "prep" || topic == "cmt") {
        if (!running_) return;
        const auto [seq, hash] = decode_seq_hash(payload);
        max_seen_seq_ = std::max(max_seen_seq_, seq);
        if (seq <= node_.height()) return;
        PbftRound& round = rounds_[seq];
        // Honest-cluster simplification: votes are tallied per sequence
        // number; a mismatching digest can only delay quorum, not split it.
        if (topic == "prep")
            round.prepares.insert(from);
        else
            round.commits.insert(from);
        pbft_check_round(seq);
    } else if (topic == "getseq") {
        Reader r(payload);
        const std::uint64_t seq = r.u64();
        r.expect_done();
        if (seq >= 1 && seq <= node_.height()) {
            const Hash256 hash =
                node_.chain().ancestor(node_.tip(), node_.height() - seq);
            transport_.send(
                from, "seq",
                ByteView(encode_seq_block(seq, node_.chain().find(hash)->block)));
        }
    } else if (topic == "seq") {
        if (!running_) return;
        auto [seq, block] = decode_seq_block(payload);
        max_seen_seq_ = std::max(max_seen_seq_, seq);
        // Catch-up: a committed block straight from a peer's canonical chain.
        if (seq != node_.height() + 1 || block.header.prev_hash != node_.tip())
            return;
        try {
            ledger::check_block_structure(block, rules_);
            node_.connect_block(block);
        } catch (const Error&) {
            return;
        }
        connected(block);
        while (!rounds_.empty() && rounds_.begin()->first <= node_.height())
            rounds_.erase(rounds_.begin());
        pbft_execute_ready();
    }
}

// --- Nakamoto ---------------------------------------------------------------

void Replica::nk_handle_block(const Block& block, PeerId from, bool relay) {
    const Hash256 hash = block.hash();
    requested_.erase(hash);
    if (chain_.contains(hash) || invalid_.contains(hash)) return;
    try {
        ledger::check_block_structure(block, rules_);
    } catch (const ValidationError&) {
        invalid_.insert(hash);
        return;
    }
    if (!chain_.contains(block.header.prev_hash)) {
        auto& waiting = orphans_[block.header.prev_hash];
        if (std::none_of(waiting.begin(), waiting.end(),
                         [&](const Block& b) { return b.hash() == hash; }))
            waiting.push_back(block);
        nk_request_block(block.header.prev_hash, from);
        return;
    }
    nk_try_insert(block);
    if (relay)
        transport_.broadcast_except(from, "blk", ByteView(encode_to_bytes(block)));
    nk_update_active_tip();
}

void Replica::nk_try_insert(const Block& block) {
    // Insert the block, then any orphans that became connectable through it.
    std::vector<Block> queue{block};
    while (!queue.empty()) {
        Block b = std::move(queue.back());
        queue.pop_back();
        const Hash256 h = b.hash();
        if (!chain_.contains(h))
            chain_.insert(b, crypto::U256::one(), transport_.now());
        if (const auto it = orphans_.find(h); it != orphans_.end()) {
            for (auto& child : it->second) queue.push_back(std::move(child));
            orphans_.erase(it);
        }
    }
}

Hash256 Replica::nk_select_tip() const {
    if (invalid_.empty()) return chain_.best_tip_by_work();
    // Best-work leaf whose ancestry avoids every invalid block. The current
    // durable tip is always a valid fallback.
    Hash256 winner = node_.tip();
    crypto::U256 winner_work = chain_.find(winner)->cumulative_work;
    for (const Hash256& leaf : chain_.leaves()) {
        bool tainted = false;
        for (Hash256 walk = leaf; walk != chain_.genesis_hash();
             walk = chain_.find(walk)->block.header.prev_hash) {
            if (invalid_.contains(walk)) {
                tainted = true;
                break;
            }
        }
        if (tainted) continue;
        const auto* entry = chain_.find(leaf);
        if (entry->cumulative_work > winner_work ||
            (entry->cumulative_work == winner_work && leaf < winner)) {
            winner = leaf;
            winner_work = entry->cumulative_work;
        }
    }
    return winner;
}

void Replica::nk_mark_invalid(const Hash256& hash) {
    std::vector<Hash256> queue{hash};
    while (!queue.empty()) {
        const Hash256 h = queue.back();
        queue.pop_back();
        if (!invalid_.insert(h).second) continue;
        for (const Hash256& child : chain_.children(h)) queue.push_back(child);
    }
}

void Replica::nk_update_active_tip() {
    while (true) {
        const Hash256 best = nk_select_tip();
        if (best == node_.tip()) return;
        const auto path = chain_.reorg_path(node_.tip(), best);
        bool failed = false;
        for (const Hash256& h : path.disconnect) {
            const auto* entry = chain_.find(h);
            node_.disconnect_tip();
            disconnected(entry->block);
        }
        for (const Hash256& h : path.connect) {
            const auto* entry = chain_.find(h);
            try {
                node_.connect_block(entry->block);
            } catch (const Error&) {
                nk_mark_invalid(h); // contextually invalid: taint the subtree
                failed = true;
                break;
            }
            connected(entry->block);
        }
        if (!failed) return;
    }
}

void Replica::nk_request_block(const Hash256& hash, PeerId from) {
    if (chain_.contains(hash) || !requested_.insert(hash).second) return;
    if (!transport_.send(from, "getblk", ByteView(encode_hash(hash))) &&
        !transport_.peer_ids().empty())
        transport_.send(random_peer(), "getblk", ByteView(encode_hash(hash)));
}

void Replica::nk_schedule_mining() {
    const double rate = 1.0 / (config_.block_interval * config_.node_count);
    const double delay = rng_.exponential(rate);
    mining_timer_ = transport_.schedule_after(delay, [this] {
        mining_timer_.reset();
        if (!running_) return;
        const Block block = assemble_block();
        nk_handle_block(block, transport_.local_id(), /*relay=*/false);
        transport_.broadcast("blk", ByteView(encode_to_bytes(block)));
        nk_schedule_mining();
    });
}

void Replica::nk_sync_probe() {
    if (transport_.peer_ids().empty()) return;
    // Re-issue fetches that went unanswered (lost frame, peer was down).
    requested_.clear();
    std::vector<Hash256> missing;
    for (const auto& [parent, blocks] : orphans_) missing.push_back(parent);
    for (const Hash256& parent : missing) nk_request_block(parent, random_peer());
    // Bootstrap / divergence repair: learn a random peer's tip.
    transport_.send(random_peer(), "gettip", ByteView());
}

// --- PBFT -------------------------------------------------------------------

void Replica::pbft_propose() {
    propose_timer_.reset();
    if (!running_) return;
    const std::uint64_t seq = node_.height() + 1;
    if (!mempool_.empty() && !rounds_.contains(seq)) {
        PbftRound& round = rounds_[seq];
        round.block = assemble_block();
        round.block_hash = round.block->hash();
        transport_.broadcast("pp", ByteView(encode_seq_block(seq, *round.block)));
        pbft_check_round(seq);
    }
    propose_timer_ = transport_.schedule_after(config_.block_interval,
                                               [this] { pbft_propose(); });
}

void Replica::pbft_check_round(std::uint64_t seq) {
    const auto it = rounds_.find(seq);
    if (it == rounds_.end()) return;
    PbftRound& round = it->second;
    if (!round.block) return;
    if (!round.sent_prepare) {
        round.sent_prepare = true;
        round.prepares.insert(transport_.local_id());
        transport_.broadcast("prep",
                             ByteView(encode_seq_hash(seq, round.block_hash)));
    }
    if (!round.sent_commit && round.prepares.size() >= pbft_quorum()) {
        round.sent_commit = true;
        round.commits.insert(transport_.local_id());
        transport_.broadcast("cmt",
                             ByteView(encode_seq_hash(seq, round.block_hash)));
    }
    if (round.commits.size() >= pbft_quorum()) pbft_execute_ready();
}

void Replica::pbft_execute_ready() {
    while (true) {
        const std::uint64_t seq = node_.height() + 1;
        const auto it = rounds_.find(seq);
        if (it == rounds_.end()) return;
        PbftRound& round = it->second;
        if (!round.block || round.commits.size() < pbft_quorum()) return;
        if (round.block->header.prev_hash != node_.tip()) {
            rounds_.erase(it); // diverged round (stale after catch-up)
            continue;
        }
        try {
            ledger::check_block_structure(*round.block, rules_);
            node_.connect_block(*round.block);
        } catch (const Error&) {
            rounds_.erase(it);
            return;
        }
        connected(*round.block);
        rounds_.erase(it);
        while (!rounds_.empty() && rounds_.begin()->first <= node_.height())
            rounds_.erase(rounds_.begin());
    }
}

void Replica::pbft_sync_probe() {
    if (transport_.peer_ids().empty()) return;
    // Ask a random peer for the next committed sequence; it answers only when
    // it has one. Covers bootstrap, missed commits, and post-restart rejoin.
    Writer w;
    w.u64(node_.height() + 1);
    transport_.send(random_peer(), "getseq", ByteView(w.data()));
}

} // namespace dlt::core
