// Replica: one consensus node written against net::transport::Transport, so
// the same protocol logic runs inside the deterministic simulator
// (SimTransport) and as a real networked process (TcpTransport under
// dlt-node) — the deployment mode E29 measures against its sim prediction.
//
// Two engines (ReplicaEngine):
//
//   kNakamoto — proof-of-work longest chain. Block discovery is the standard
//     Poisson race (each replica holds 1/n of the hash power, so the network
//     mines one block per block_interval in expectation), blocks flood to all
//     peers, branches are tracked in an in-memory ChainStore and the most-work
//     tip wins (ties to the lower hash — the network-wide rule the sim uses).
//     Missing ancestry is fetched hop-by-hop ("getblk" walk-back), which also
//     serves as the catch-up path after a restart or partition.
//
//   kPbft — a deliberately simplified PBFT: replica 0 is the stable primary
//     (no view change; a primary failure halts the cluster, which DESIGN.md
//     records as the scope cut), batches commit through the classic
//     pre-prepare / prepare / commit exchange with 2f+1 quorums, and a lagging
//     backup catches up by requesting committed blocks by sequence number —
//     the path the E29 kill-and-restart cell exercises.
//
// Durability comes from core::PersistentNode: every connect/disconnect is
// WAL-journaled under ReplicaConfig::data_dir, so a SIGKILLed replica reopens
// to its exact committed chain and rejoins by catch-up.
//
// Threading: every method except the constructor must run on the transport's
// callback thread (the daemon posts RPC work into the loop). The constructor
// installs the message handler; call start() from the loop (or before the TCP
// loop starts) to arm timers.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "core/persistent_node.hpp"
#include "ledger/chain.hpp"
#include "ledger/mempool.hpp"
#include "ledger/validation.hpp"
#include "net/transport/transport.hpp"

namespace dlt::core {

enum class ReplicaEngine : std::uint8_t { kNakamoto, kPbft };

struct ReplicaConfig {
    ReplicaEngine engine = ReplicaEngine::kNakamoto;
    /// Total replica count (peer ids 0..node_count-1; ours comes from the
    /// transport). Sets the PBFT quorum and the per-replica hash share.
    std::uint32_t node_count = 4;
    /// Expected seconds between blocks network-wide (Nakamoto) or the
    /// primary's batch-proposal tick (PBFT).
    double block_interval = 2.0;
    std::size_t max_block_bytes = 1'000'000;
    std::size_t max_block_txs = 10'000;
    /// Signature policy for structural checks; deployment defaults to kSkip
    /// exactly like the million-user workload experiments (a measurement
    /// knob — see DESIGN.md).
    ledger::SigCheckMode sig_mode = ledger::SigCheckMode::kSkip;
    ledger::MempoolConfig mempool{};
    std::string chain_tag = "e29";
    std::uint32_t genesis_bits = 0x207fffff;
    /// Durable state root for this replica (created on first open).
    std::filesystem::path data_dir;
    StateEngine state_engine = StateEngine::kInMemory;
    storage::FsyncMode fsync = storage::FsyncMode::kNever;
    /// Seed for the replica's private randomness (mining race, peer picks).
    std::uint64_t seed = 1;
    /// Seconds between catch-up probes (tip/sequence requests to a random
    /// peer); also the bootstrap delay after start().
    double sync_interval = 0.5;
};

class Replica {
public:
    /// Opens (or recovers) the durable node under config.data_dir and
    /// installs the transport handler. Timers start at start().
    Replica(net::transport::Transport& transport, ReplicaConfig config);

    /// Arm the engine timers (mining / proposal / catch-up probes).
    void start();
    /// Cancel timers and stop reacting to messages. The durable node needs no
    /// flush — every connect was WAL-committed when it happened.
    void stop();

    /// Inject a locally submitted transaction: mempool admission, gossip to
    /// every peer, and lifecycle stamping for confirmation latency.
    /// Returns false when the mempool refused it.
    bool submit_transaction(const ledger::Transaction& tx);

    // --- Inspection (transport thread, or any thread after stop()) -----------
    const Hash256& tip() const { return node_.tip(); }
    std::uint64_t height() const { return node_.height(); }
    /// Non-coinbase transactions on the canonical chain.
    std::uint64_t confirmed_txs() const { return confirmed_txs_; }
    /// Submit→canonical-inclusion latency of each locally submitted
    /// transaction that has confirmed, in confirmation order (seconds).
    const std::vector<double>& confirmation_latencies() const { return latencies_; }
    std::size_t mempool_size() const { return mempool_.size(); }
    PersistentNode& node() { return node_; }
    const ReplicaConfig& config() const { return config_; }

private:
    // Shared paths -----------------------------------------------------------
    void on_message(net::transport::PeerId from, const std::string& topic,
                    ByteView payload);
    ledger::Block assemble_block();
    void connected(const ledger::Block& block);
    void disconnected(const ledger::Block& block);
    net::transport::PeerId random_peer();
    void arm_sync_timer();

    // Nakamoto ---------------------------------------------------------------
    void nk_handle_block(const ledger::Block& block, net::transport::PeerId from,
                         bool relay);
    void nk_try_insert(const ledger::Block& block);
    void nk_update_active_tip();
    Hash256 nk_select_tip() const;
    void nk_mark_invalid(const Hash256& hash);
    void nk_request_block(const Hash256& hash, net::transport::PeerId from);
    void nk_schedule_mining();
    void nk_sync_probe();

    // PBFT -------------------------------------------------------------------
    struct PbftRound {
        std::optional<ledger::Block> block;
        Hash256 block_hash;
        std::set<net::transport::PeerId> prepares;
        std::set<net::transport::PeerId> commits;
        bool sent_prepare = false;
        bool sent_commit = false;
        bool executed = false;
    };
    bool pbft_primary() const { return transport_.local_id() == 0; }
    std::size_t pbft_quorum() const {
        const std::size_t f = (config_.node_count - 1) / 3;
        return 2 * f + 1;
    }
    void pbft_propose();
    void pbft_check_round(std::uint64_t seq);
    void pbft_execute_ready();
    void pbft_sync_probe();

    net::transport::Transport& transport_;
    ReplicaConfig config_;
    ledger::ValidationRules rules_;
    Rng rng_;

    PersistentNode node_;
    ledger::Mempool mempool_;
    crypto::Address miner_;

    // Nakamoto branch tracking (seeded from the durable canonical chain).
    ledger::ChainStore chain_;
    std::unordered_map<Hash256, std::vector<ledger::Block>> orphans_; // by parent
    std::unordered_set<Hash256> invalid_;
    std::unordered_set<Hash256> requested_; // ancestor fetches in flight
    std::optional<net::transport::TimerId> mining_timer_;

    // PBFT round state.
    std::map<std::uint64_t, PbftRound> rounds_;
    std::uint64_t max_seen_seq_ = 0;
    std::optional<net::transport::TimerId> propose_timer_;

    std::optional<net::transport::TimerId> sync_timer_;
    bool running_ = false;

    // Lifecycle latencies for locally submitted transactions.
    std::unordered_map<Hash256, double> submitted_at_;
    /// Every txid ever admitted, relayed, or seen on a connected block. The
    /// simulator's gossip overlay deduplicates deliveries at the overlay
    /// layer; over raw sockets a late relay would re-admit a tx that already
    /// confirmed (record txs carry no UTXO conflict to stop a second
    /// inclusion), so the replica suppresses re-entry itself.
    std::unordered_set<Hash256> seen_txs_;
    std::vector<double> latencies_;
    std::uint64_t confirmed_txs_ = 0;
};

} // namespace dlt::core
