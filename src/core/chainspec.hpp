// Chain specification: the tuning knobs of the whole platform (the paper's
// thesis that "it is possible to tune blockchain systems to achieve the right
// balance of DCS properties suitable for a particular application", §2.7).
// Presets model the paper's three examples: Bitcoin (DC), Ethereum (DC with
// shorter blocks + GHOST), Hyperledger (CS).
#pragma once

#include <cstdint>
#include <string>

#include "consensus/nakamoto.hpp"

namespace dlt::core {

enum class ConsensusKind {
    kProofOfWork,
    kProofOfStake,
    kProofOfElapsedTime,
    kOrderingService, // leader-based, no branching
    kPbft,            // leader-based with Byzantine quorums
};

enum class Openness {
    kPublic,       // anyone may join and propose (permissionless)
    kPermissioned, // consortium membership required
};

struct ChainSpec {
    std::string name;
    ConsensusKind consensus = ConsensusKind::kProofOfWork;
    consensus::BranchRule branch_rule = consensus::BranchRule::kLongestChain;
    Openness openness = Openness::kPublic;
    double block_interval = 600.0;      // seconds (PoW/PoS/PoET chains)
    std::size_t max_block_bytes = 1'000'000;
    std::size_t node_count = 16;
    std::size_t batch_size = 500;       // leader-based batch size
    double batch_interval = 0.5;        // leader-based batch timeout
    std::size_t avg_tx_bytes = 250;     // workload shaping
    /// Ambient per-message loss/duplication every link suffers (the §3.1
    /// dependability axis); defaults to a clean network.
    net::FaultParams faults{};

    /// Transactions one block/batch can hold.
    std::size_t txs_per_block() const { return max_block_bytes / avg_tx_bytes; }

    /// The paper's §2.7 Bitcoin: 10-minute blocks, 1 MB, longest chain → ~7 tps.
    static ChainSpec bitcoin_like();
    /// §2.7 Ethereum: ~15 s blocks, GHOST branch selection.
    static ChainSpec ethereum_like();
    /// §2.7 Hyperledger: permissioned ordering service, >10K tps.
    static ChainSpec hyperledger_like();
    /// PoS variant of the public chain (PeerCoin-style, §2.4).
    static ChainSpec pos_chain();
    /// PoET consortium chain (Sawtooth-style, §5.4).
    static ChainSpec poet_chain();
    /// PBFT consortium cluster.
    static ChainSpec pbft_cluster();
};

const char* consensus_kind_name(ConsensusKind kind);

} // namespace dlt::core
