// NodeDaemon: one PersistentNode-backed Replica per OS process, the unit the
// dlt-node binary (examples/dlt_node.cpp) runs and app::ClusterDriver spawns
// N of to form a loopback cluster (experiment E29).
//
// Composition per process:
//   TcpTransport  — consensus traffic with the other daemons
//   Replica       — engine logic (Nakamoto or PBFT) + durable chain state
//   RPC listener  — a second TCP port for clients (the cluster driver):
//                   frame-codec requests answered synchronously. The RPC
//                   thread never touches replica state directly; every
//                   request is posted into the transport loop and awaited,
//                   preserving the single-threaded protocol contract.
//
// RPC methods (topic → body → reply body):
//   submit    Transaction                u8 accepted
//   status    (empty)                    u64 height, tip hash, u64 confirmed
//                                        txs, u64 mempool size, u32 connected
//                                        peers, f64 transport clock
//   latencies (empty)                    varint n, then n × f64 seconds
//   metrics   (empty)                    str (obs registry JSON snapshot)
//   shutdown  (empty)                    u8 1, then the daemon exits cleanly
//
// Graceful shutdown (SIGTERM/SIGINT or the shutdown RPC, satellite 3 of E29):
// stop timers, close every socket, join the loops, exit 0. Chain state needs
// no flush on the way down — every connect was WAL-committed when it
// happened, and with StateEngine::kPersistent the LSM tag advanced with it,
// so a clean reopen replays zero WAL records.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "core/replica.hpp"
#include "net/transport/tcp_transport.hpp"

namespace dlt::core {

struct NodeDaemonConfig {
    ReplicaConfig replica;
    net::transport::TcpTransportConfig transport;
    std::string rpc_host = "127.0.0.1";
    std::uint16_t rpc_port = 0; // 0 lets the kernel pick; see rpc_port()
};

class NodeDaemon {
public:
    /// Binds both listen sockets and recovers the replica's durable state;
    /// throws dlt::Error when either port is taken or the data dir is bad.
    explicit NodeDaemon(NodeDaemonConfig config);
    ~NodeDaemon();

    NodeDaemon(const NodeDaemon&) = delete;
    NodeDaemon& operator=(const NodeDaemon&) = delete;

    /// Start the transport loop, the replica's timers, and the RPC thread.
    void start();

    /// Block until stop() is called (signal handler or shutdown RPC).
    void wait();

    /// Request shutdown from any thread; async-signal-usable trigger is
    /// request_stop() below. Idempotent.
    void stop();

    /// Async-signal-safe stop flag; wait() polls it. Signal handlers call
    /// this (and only this).
    void request_stop() { stop_requested_.store(true); }

    std::uint16_t rpc_port() const { return rpc_port_; }
    std::uint16_t listen_port() const { return transport_->listen_port(); }
    Replica& replica() { return *replica_; }

private:
    void rpc_loop();
    void serve_rpc_client(int fd);
    /// Run `fn` on the transport loop and wait for it (RPC thread only).
    template <typename Fn>
    auto on_loop(Fn&& fn);

    NodeDaemonConfig config_;
    std::unique_ptr<net::transport::TcpTransport> transport_;
    std::unique_ptr<Replica> replica_;

    int rpc_listen_fd_ = -1;
    std::uint16_t rpc_port_ = 0;
    std::thread rpc_thread_;
    std::atomic<bool> started_{false};
    std::atomic<bool> stop_requested_{false};
    std::atomic<bool> stopped_{false};
};

} // namespace dlt::core
