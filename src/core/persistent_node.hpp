// PersistentNode: a node whose chain state survives crashes (paper §3.1
// "Dependable" + §5.4 bootstrap). All state transitions — block connects and
// disconnects — are journaled write-ahead: block + undo data go to the
// BlockStore, then a WAL record commits the transition, then memory is
// updated. Recovery on open is: load the newest valid snapshot (or genesis),
// rebuild the block index, and replay the committed WAL suffix, so a process
// killed at *any* write offset (see storage::CrashInjector) reopens to the
// exact state of its last committed transition.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>

#include "ledger/block.hpp"
#include "ledger/chain.hpp"
#include "ledger/utxo.hpp"
#include "scaling/bootstrap.hpp"
#include "storage/blockstore.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"

namespace dlt::core {

/// Which StateBackend the node's UtxoSet runs on.
enum class StateEngine : std::uint8_t {
    kInMemory,   // sharded in-memory maps; recovery = snapshot + WAL replay
    kPersistent, // LSM engine on disk; recovery = engine state + WAL suffix
};

struct PersistentNodeOptions {
    std::size_t block_cache_capacity = 64;
    storage::FsyncMode fsync = storage::FsyncMode::kAlways;
    /// Fault hook shared by the WAL, block store, and state-engine write
    /// paths; tests arm it to kill the node after N bytes and prove recovery.
    storage::CrashInjector* injector = nullptr;
    /// Snapshots to keep on disk when snapshot() prunes old ones.
    std::size_t snapshots_to_keep = 2;
    /// State engine selection. With kPersistent the UTXO set lives in an
    /// LSM backend under <dir>/state, batch-committed at every WAL record,
    /// so recovery replays only the WAL suffix past the engine's committed
    /// tag instead of re-applying from a whole-state snapshot.
    StateEngine state_engine = StateEngine::kInMemory;
    /// LSM tuning (kPersistent only).
    std::size_t state_memtable_limit = 4096;
    std::size_t state_compact_trigger = 6;
    /// Prune block + undo files below the oldest kept snapshot at every
    /// snapshot() call. Disconnects below the prune point become impossible;
    /// restarts anchor the chain index at a detached root.
    bool prune_blocks = false;
};

class PersistentNode {
public:
    struct RecoveryStats {
        bool from_snapshot = false;
        std::uint64_t snapshot_height = 0;
        std::uint64_t wal_records_replayed = 0;
        std::uint64_t wal_bytes_truncated = 0;   // torn tail repaired
        std::uint64_t store_bytes_truncated = 0; // torn block/undo tails
        bool from_state_engine = false;          // base state came from the LSM
        std::uint64_t state_tag = 0;             // engine's committed tag at open
    };

    /// Open (or create) the node's durable state under `dir`. `genesis` must
    /// be the same block across restarts (it anchors the chain index).
    PersistentNode(std::filesystem::path dir, const ledger::Block& genesis,
                   PersistentNodeOptions options = {});

    /// Validate `block` against the current tip state, persist it (block +
    /// undo + WAL commit), and advance the tip. The block's parent must be the
    /// current tip. Throws ValidationError on invalid blocks (nothing is
    /// persisted), CrashError when the injector trips (the node is dead
    /// afterwards; reopen to recover).
    void connect_block(const ledger::Block& block);

    /// Roll the tip back one block using its durable undo record (reorg
    /// support). Works across restarts and below snapshot heights, down to
    /// genesis.
    void disconnect_tip();

    /// Write an atomic state snapshot at the current tip and reset the WAL
    /// (its records are now folded into the snapshot). Returns the snapshot
    /// path. Old snapshots beyond `snapshots_to_keep` are pruned; with
    /// options.prune_blocks the block + undo files are then pruned below the
    /// oldest snapshot still on disk.
    std::filesystem::path snapshot();

    /// Bootstrap-compatible checkpoint of the current in-memory state.
    scaling::Checkpoint checkpoint() const;

    const Hash256& tip() const { return tip_; }
    std::uint64_t height() const { return height_; }
    const ledger::UtxoSet& utxo() const { return utxo_; }
    const ledger::ChainStore& chain() const { return chain_; }
    const RecoveryStats& recovery() const { return recovery_; }
    storage::BlockStore& block_store() { return *store_; }

private:
    void replay_wal();
    void fail_if_crashed() const;

    std::filesystem::path dir_;
    PersistentNodeOptions options_;
    ledger::Block genesis_;

    std::unique_ptr<storage::BlockStore> store_;
    std::unique_ptr<storage::Wal> wal_;
    storage::SnapshotManager snapshots_;

    ledger::ChainStore chain_;
    ledger::UtxoSet utxo_;
    Hash256 tip_;
    std::uint64_t height_ = 0;
    RecoveryStats recovery_;
    bool crashed_ = false; // a CrashError fired; node must be reopened
};

} // namespace dlt::core
