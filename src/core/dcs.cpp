#include "core/dcs.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dlt::core {

int DcsScore::strong_properties(double threshold) const {
    int count = 0;
    if (decentralization >= threshold) ++count;
    if (consistency >= threshold) ++count;
    if (scalability >= threshold) ++count;
    return count;
}

DcsScore score_dcs(const ChainSpec& spec, const ExperimentMetrics& metrics) {
    DcsScore score;

    score.decentralization = metrics.decentralization_index;

    // Consistency: perfect when branching is structurally impossible; otherwise
    // eroded by the observed stale rate (each stale block is a transient
    // disagreement some peer acted on).
    if (!metrics.forks_possible) {
        score.consistency = 1.0;
    } else {
        score.consistency = std::max(0.0, 1.0 - 3.0 * metrics.stale_rate);
        // Forking chains additionally pay a certainty lag (confirmations).
        score.consistency = std::min(score.consistency, 0.95);
    }

    // Scalability: log scale hitting 1.0 at 10^4 tps (the paper's Hyperledger
    // number) and ~0.2 at Bitcoin's single-digit throughput.
    const double tps = std::max(metrics.throughput_tps, 0.01);
    score.scalability = std::clamp(std::log10(tps) / 4.0, 0.0, 1.0);

    (void)spec;
    return score;
}

std::string describe(const DcsScore& score) {
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(2);
    out << "D=" << score.decentralization << " C=" << score.consistency
        << " S=" << score.scalability << " (";
    const double threshold = 0.65;
    bool any = false;
    if (score.decentralization >= threshold) {
        out << 'D';
        any = true;
    }
    if (score.consistency >= threshold) {
        out << 'C';
        any = true;
    }
    if (score.scalability >= threshold) {
        out << 'S';
        any = true;
    }
    if (!any) out << "none";
    out << " system)";
    return out.str();
}

} // namespace dlt::core
