#include "core/chainspec.hpp"

namespace dlt::core {

ChainSpec ChainSpec::bitcoin_like() {
    ChainSpec spec;
    spec.name = "bitcoin-like";
    spec.consensus = ConsensusKind::kProofOfWork;
    spec.branch_rule = consensus::BranchRule::kLongestChain;
    spec.openness = Openness::kPublic;
    spec.block_interval = 600.0;
    spec.max_block_bytes = 1'000'000;
    spec.avg_tx_bytes = 250; // ~4000 txs/block -> 600 s => ~6.7 tps ceiling
    return spec;
}

ChainSpec ChainSpec::ethereum_like() {
    ChainSpec spec;
    spec.name = "ethereum-like";
    spec.consensus = ConsensusKind::kProofOfWork;
    spec.branch_rule = consensus::BranchRule::kGhost;
    spec.openness = Openness::kPublic;
    spec.block_interval = 15.0;
    spec.max_block_bytes = 60'000; // gas-limit analogue: far smaller blocks
    spec.avg_tx_bytes = 250;
    return spec;
}

ChainSpec ChainSpec::hyperledger_like() {
    ChainSpec spec;
    spec.name = "hyperledger-like";
    spec.consensus = ConsensusKind::kOrderingService;
    spec.openness = Openness::kPermissioned;
    spec.node_count = 8;
    spec.batch_size = 500;
    spec.batch_interval = 0.05;
    return spec;
}

ChainSpec ChainSpec::pos_chain() {
    ChainSpec spec;
    spec.name = "pos-chain";
    spec.consensus = ConsensusKind::kProofOfStake;
    spec.openness = Openness::kPublic;
    spec.block_interval = 10.0;
    spec.max_block_bytes = 500'000;
    return spec;
}

ChainSpec ChainSpec::poet_chain() {
    ChainSpec spec;
    spec.name = "poet-chain";
    spec.consensus = ConsensusKind::kProofOfElapsedTime;
    spec.openness = Openness::kPermissioned;
    spec.block_interval = 20.0;
    return spec;
}

ChainSpec ChainSpec::pbft_cluster() {
    ChainSpec spec;
    spec.name = "pbft-cluster";
    spec.consensus = ConsensusKind::kPbft;
    spec.openness = Openness::kPermissioned;
    spec.node_count = 4;
    spec.batch_size = 200;
    spec.batch_interval = 0.05;
    return spec;
}

const char* consensus_kind_name(ConsensusKind kind) {
    switch (kind) {
        case ConsensusKind::kProofOfWork: return "proof-of-work";
        case ConsensusKind::kProofOfStake: return "proof-of-stake";
        case ConsensusKind::kProofOfElapsedTime: return "proof-of-elapsed-time";
        case ConsensusKind::kOrderingService: return "ordering-service";
        case ConsensusKind::kPbft: return "pbft";
    }
    return "?";
}

} // namespace dlt::core
