// DCS scoring (paper §2.7): quantifies Decentralization, Consistency, and
// Scalability for a measured configuration, making the paper's conjecture —
// "a blockchain system can only simultaneously provide two out of the three
// properties" — testable (E8).
#pragma once

#include <string>

#include "core/experiment.hpp"

namespace dlt::core {

struct DcsScore {
    double decentralization = 0; // [0,1]
    double consistency = 0;      // [0,1]
    double scalability = 0;      // [0,1]

    /// Number of properties meeting the "provides it" threshold.
    int strong_properties(double threshold = 0.65) const;
};

/// Score a measured run.
///  - D: structural decentralization index (openness + proposer dispersion).
///  - C: 1 - stale/branch rate, with a bonus when forks are impossible; chains
///       that fork must burn confirmations to regain certainty.
///  - S: log-scaled confirmed throughput (1.0 at >= 10k tps, the paper's
///       Hyperledger figure; ~0.25 at Bitcoin's ~7 tps).
DcsScore score_dcs(const ChainSpec& spec, const ExperimentMetrics& metrics);

/// Human-readable one-line summary, e.g. "D=0.90 C=0.97 S=0.24 (DC system)".
std::string describe(const DcsScore& score);

} // namespace dlt::core
