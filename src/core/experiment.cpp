#include "core/experiment.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/assert.hpp"
#include "consensus/ordering.hpp"
#include "consensus/pbft.hpp"
#include "consensus/poet.hpp"
#include "consensus/pos.hpp"
#include "crypto/sha256.hpp"

namespace dlt::core {

namespace {

double structural_decentralization(const ChainSpec& spec) {
    // Structural index: how open is participation, and how concentrated is the
    // right to propose? (The D axis of §2.7 is qualitative; this makes the
    // qualitative ranking reproducible.)
    double score = spec.openness == Openness::kPublic ? 0.7 : 0.2;
    switch (spec.consensus) {
        case ConsensusKind::kProofOfWork:
        case ConsensusKind::kProofOfStake:
            score += 0.2; // any participant can propose
            break;
        case ConsensusKind::kProofOfElapsedTime:
            score += 0.15; // any member, trusted hardware required
            break;
        case ConsensusKind::kPbft:
            score += 0.1; // rotating primary among a fixed quorum
            break;
        case ConsensusKind::kOrderingService:
            score += 0.0; // designated orderer
            break;
    }
    return std::min(score, 1.0);
}

ledger::Transaction make_workload_tx(Rng& rng, std::uint64_t sequence,
                                     std::size_t tx_bytes) {
    ledger::Transaction tx;
    tx.kind = ledger::TxKind::kRecord;
    tx.nonce = sequence;
    const std::size_t payload =
        tx_bytes > 80 ? tx_bytes - 80 : tx_bytes; // headroom for the envelope
    tx.data.resize(payload);
    for (auto& b : tx.data) b = static_cast<std::uint8_t>(rng.next());
    tx.declared_fee = 100 + static_cast<ledger::Amount>(rng.uniform(100));
    return tx;
}

ExperimentMetrics run_nakamoto(const ChainSpec& spec, const Workload& workload,
                               std::uint64_t seed) {
    consensus::NakamotoParams params;
    params.node_count = spec.node_count;
    params.block_interval = spec.block_interval;
    params.branch_rule = spec.branch_rule;
    params.max_block_bytes = spec.max_block_bytes;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    params.validation.max_block_bytes = spec.max_block_bytes;
    params.link.loss = spec.faults.loss;
    params.link.duplicate = spec.faults.duplicate;
    params.chain_tag = spec.name;

    consensus::NakamotoNetwork net(params, seed);
    net.start();

    Rng rng(seed ^ 0xFEED);
    std::unordered_map<Hash256, double> submit_times;
    std::uint64_t sequence = 0;
    double next_arrival = rng.exponential(workload.tx_rate);
    while (next_arrival < workload.duration) {
        net.run_for(next_arrival - (net.now()));
        ledger::Transaction tx = make_workload_tx(rng, sequence++, workload.tx_bytes);
        submit_times.emplace(tx.txid(), net.now());
        net.submit_transaction(tx, static_cast<net::NodeId>(
                                       rng.uniform(params.node_count)));
        next_arrival += rng.exponential(workload.tx_rate);
    }
    net.run_for(workload.duration - net.now());
    // Drain: a couple more block intervals so in-flight txs confirm.
    net.run_for(2 * spec.block_interval);

    ExperimentMetrics metrics;
    metrics.offered_tps = workload.tx_rate;
    metrics.duration = workload.duration;
    metrics.forks_possible = true;
    metrics.stale_rate = net.stale_rate();
    metrics.decentralization_index = structural_decentralization(spec);

    double latency_sum = 0;
    std::uint64_t confirmed = 0;
    for (const auto& block : net.canonical_chain()) {
        // Only credit work confirmed inside the measurement window; the drain
        // period exists to settle gossip, not to pad throughput.
        if (block.header.timestamp > workload.duration) continue;
        ++metrics.blocks;
        for (const auto& tx : block.txs) {
            if (tx.is_coinbase()) continue;
            ++confirmed;
            const auto it = submit_times.find(tx.txid());
            if (it != submit_times.end())
                latency_sum += block.header.timestamp - it->second;
        }
    }
    metrics.throughput_tps = static_cast<double>(confirmed) / workload.duration;
    if (confirmed > 0)
        metrics.mean_confirmation_latency = latency_sum / static_cast<double>(confirmed);
    return metrics;
}

/// PoS / PoET chains: deterministic per-slot leadership, so the chain advances
/// slot by slot with no forks; the workload drains through per-block capacity.
ExperimentMetrics run_slotted(const ChainSpec& spec, const Workload& workload,
                              std::uint64_t seed, bool poet) {
    Rng rng(seed ^ 0xBEEF);
    const Hash256 chain_seed = crypto::tagged_hash("dlt/slots", to_bytes(spec.name));
    const std::size_t capacity = spec.txs_per_block();

    // Pre-generate Poisson arrivals.
    std::vector<double> arrivals;
    double t = rng.exponential(workload.tx_rate);
    while (t < workload.duration) {
        arrivals.push_back(t);
        t += rng.exponential(workload.tx_rate);
    }

    ExperimentMetrics metrics;
    metrics.offered_tps = workload.tx_rate;
    metrics.duration = workload.duration;
    metrics.forks_possible = false;
    metrics.stale_rate = 0;
    metrics.decentralization_index = structural_decentralization(spec);

    std::size_t next_tx = 0;
    double latency_sum = 0;
    std::uint64_t confirmed = 0;
    double now = 0;
    std::uint64_t slot = 0;
    while (now < workload.duration + 2 * spec.block_interval) {
        const double slot_time =
            poet ? consensus::poet_round_duration(
                       chain_seed, slot, static_cast<std::uint32_t>(spec.node_count),
                       spec.block_interval * static_cast<double>(spec.node_count))
                 : spec.block_interval;
        now += slot_time;
        ++slot;
        ++metrics.blocks;
        std::size_t in_block = 0;
        while (next_tx < arrivals.size() && arrivals[next_tx] <= now &&
               in_block < capacity) {
            latency_sum += now - arrivals[next_tx];
            ++next_tx;
            ++in_block;
            ++confirmed;
        }
    }
    metrics.throughput_tps = static_cast<double>(confirmed) / workload.duration;
    if (confirmed > 0)
        metrics.mean_confirmation_latency = latency_sum / static_cast<double>(confirmed);
    return metrics;
}

ExperimentMetrics run_ordering(const ChainSpec& spec, const Workload& workload,
                               std::uint64_t seed) {
    consensus::OrderingParams params;
    params.peer_count = spec.node_count;
    params.batch_size = spec.batch_size;
    params.batch_interval = spec.batch_interval;
    params.chain_tag = spec.name;
    consensus::OrderingService svc(params, seed);

    Rng rng(seed ^ 0xC0DE);
    std::uint64_t sequence = 0;
    double next_arrival = rng.exponential(workload.tx_rate);
    while (next_arrival < workload.duration) {
        svc.run_for(next_arrival - svc.now());
        svc.submit(make_workload_tx(rng, sequence++, workload.tx_bytes));
        next_arrival += rng.exponential(workload.tx_rate);
    }
    svc.run_for(workload.duration - svc.now() + 5.0);

    ExperimentMetrics metrics;
    metrics.offered_tps = workload.tx_rate;
    metrics.duration = workload.duration;
    metrics.forks_possible = false;
    metrics.stale_rate = 0;
    metrics.decentralization_index = structural_decentralization(spec);
    metrics.blocks = svc.total_ordered();
    std::uint64_t confirmed = 0;
    for (const auto& block : svc.ledger_of(0)) confirmed += block.txs.size();
    metrics.throughput_tps = static_cast<double>(confirmed) / workload.duration;
    metrics.mean_confirmation_latency = svc.mean_delivery_latency();
    return metrics;
}

ExperimentMetrics run_pbft(const ChainSpec& spec, const Workload& workload,
                           std::uint64_t seed) {
    consensus::PbftConfig config;
    config.f = static_cast<std::uint32_t>(std::max<std::size_t>(1, (spec.node_count - 1) / 3));
    config.batch_size = spec.batch_size;
    config.batch_interval = spec.batch_interval;
    config.link.loss = spec.faults.loss;
    config.link.duplicate = spec.faults.duplicate;
    consensus::PbftCluster cluster(config, seed);

    Rng rng(seed ^ 0xCAFE);
    std::uint64_t sequence = 0;
    double next_arrival = rng.exponential(workload.tx_rate);
    while (next_arrival < workload.duration) {
        cluster.run_for(next_arrival - cluster.now());
        Bytes request(workload.tx_bytes, 0);
        for (auto& b : request) b = static_cast<std::uint8_t>(rng.next());
        Writer w;
        w.u64(sequence++);
        w.blob(request);
        cluster.submit(std::move(w).take());
        next_arrival += rng.exponential(workload.tx_rate);
    }
    cluster.run_for(workload.duration - cluster.now() + 5.0);

    ExperimentMetrics metrics;
    metrics.offered_tps = workload.tx_rate;
    metrics.duration = workload.duration;
    metrics.forks_possible = false;
    metrics.stale_rate = 0;
    metrics.decentralization_index = structural_decentralization(spec);
    metrics.blocks = cluster.log_of(0).size();
    metrics.throughput_tps =
        static_cast<double>(cluster.executed_requests(0)) / workload.duration;
    metrics.mean_confirmation_latency = cluster.mean_commit_latency();
    return metrics;
}

} // namespace

ExperimentMetrics run_experiment(const ChainSpec& spec, const Workload& workload,
                                 std::uint64_t seed) {
    DLT_EXPECTS(workload.tx_rate > 0);
    DLT_EXPECTS(workload.duration > 0);
    switch (spec.consensus) {
        case ConsensusKind::kProofOfWork:
            return run_nakamoto(spec, workload, seed);
        case ConsensusKind::kProofOfStake:
            return run_slotted(spec, workload, seed, /*poet=*/false);
        case ConsensusKind::kProofOfElapsedTime:
            return run_slotted(spec, workload, seed, /*poet=*/true);
        case ConsensusKind::kOrderingService:
            return run_ordering(spec, workload, seed);
        case ConsensusKind::kPbft:
            return run_pbft(spec, workload, seed);
    }
    DLT_INVARIANT(false);
    return {};
}

} // namespace dlt::core
