// Atomic cross-chain swaps (paper §5.2 cites Herlihy's atomic cross-chain
// swaps as blockchain middleware for "cross-platform cryptocurrency
// exchanges"). The classic two-chain HTLC protocol: Alice locks coins on chain
// A under hash(s) with timeout 2T, Bob locks on chain B under the same hash
// with timeout T; Bob's claim on A reveals s, letting Alice claim on B. Either
// both transfers happen or both refund — no counterparty risk.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "crypto/keys.hpp"
#include "ledger/amount.hpp"

namespace dlt::scaling {

/// A hashed-timelock contract on one chain.
struct Htlc {
    Hash256 hashlock;           // claim requires the preimage of this
    crypto::Address sender;     // refunded after the timelock
    crypto::Address recipient;  // may claim with the preimage
    ledger::Amount amount = 0;
    double timelock = 0;        // absolute chain time after which refund works
    bool settled = false;       // claimed or refunded
};

/// Minimal chain ledger with HTLC support (each instance is "one blockchain").
class HtlcChain {
public:
    explicit HtlcChain(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }
    void credit(const crypto::Address& who, ledger::Amount amount);
    ledger::Amount balance_of(const crypto::Address& who) const;

    /// Chain-local clock (block timestamps in a real deployment).
    void advance_time(double dt) { now_ += dt; }
    double now() const { return now_; }

    /// Lock `amount` of `sender`'s coins; returns the contract id.
    /// Throws ValidationError on insufficient funds.
    std::uint64_t lock(const crypto::Address& sender, const crypto::Address& recipient,
                       ledger::Amount amount, const Hash256& hashlock,
                       double timelock);

    /// Claim with the preimage; pays the recipient and records the preimage
    /// publicly (anyone watching the chain learns it — the protocol's hinge).
    /// Throws ValidationError on wrong preimage, expiry, or double settle.
    void claim(std::uint64_t id, const Bytes& preimage);

    /// Refund to the sender after the timelock. Throws before expiry.
    void refund(std::uint64_t id);

    const Htlc& contract(std::uint64_t id) const;

    /// The preimage revealed by a claim (what the counterparty watches for).
    std::optional<Bytes> revealed_preimage(std::uint64_t id) const;

private:
    std::string name_;
    double now_ = 0;
    std::unordered_map<crypto::Address, ledger::Amount> balances_;
    std::unordered_map<std::uint64_t, Htlc> contracts_;
    std::unordered_map<std::uint64_t, Bytes> preimages_;
    std::uint64_t next_id_ = 1;
};

/// Hash a swap secret into the hashlock both chains share.
Hash256 swap_hashlock(const Bytes& secret);

/// Orchestrates the happy-path swap: Alice trades `amount_a` on chain A for
/// Bob's `amount_b` on chain B. Returns true on success. The step-by-step
/// protocol (lock A, lock B, claim B reveals s, claim A) is in the .cpp and in
/// tests; the refund path is exercised by letting timelocks expire instead.
struct SwapOutcome {
    bool completed = false;
    std::uint64_t htlc_a = 0;
    std::uint64_t htlc_b = 0;
};

SwapOutcome execute_swap(HtlcChain& chain_a, HtlcChain& chain_b,
                         const crypto::Address& alice, const crypto::Address& bob,
                         ledger::Amount amount_a, ledger::Amount amount_b,
                         const Bytes& alice_secret, double base_timeout);

} // namespace dlt::scaling
