#include "scaling/channels.hpp"

#include <deque>
#include <limits>

#include "common/assert.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace dlt::scaling {

// --- PaymentChannel ------------------------------------------------------------------

PaymentChannel::PaymentChannel(const crypto::PrivateKey& a, const crypto::PrivateKey& b,
                               Amount fund_a, Amount fund_b)
    : key_a_(a), key_b_(b), addr_a_(a.address()), addr_b_(b.address()),
      balance_a_(fund_a), balance_b_(fund_b) {
    DLT_EXPECTS(fund_a >= 0 && fund_b >= 0);
    DLT_EXPECTS(fund_a + fund_b > 0);
    resign();
}

Hash256 PaymentChannel::commitment_digest(std::uint64_t seq, Amount a, Amount b) const {
    Writer w;
    w.fixed(addr_a_);
    w.fixed(addr_b_);
    w.u64(seq);
    w.i64(a);
    w.i64(b);
    return crypto::tagged_hash("dlt/channel-commit", w.data());
}

void PaymentChannel::resign() {
    const Hash256 digest = commitment_digest(sequence_, balance_a_, balance_b_);
    sig_a_ = key_a_.sign(digest);
    sig_b_ = key_b_.sign(digest);
}

bool PaymentChannel::pay_a_to_b(Amount amount) {
    if (closed_ || amount <= 0 || balance_a_ < amount) return false;
    balance_a_ -= amount;
    balance_b_ += amount;
    ++sequence_;
    ++payments_;
    resign();
    return true;
}

bool PaymentChannel::pay_b_to_a(Amount amount) {
    if (closed_ || amount <= 0 || balance_b_ < amount) return false;
    balance_b_ -= amount;
    balance_a_ += amount;
    ++sequence_;
    ++payments_;
    resign();
    return true;
}

bool PaymentChannel::commitment_valid() const {
    const Hash256 digest = commitment_digest(sequence_, balance_a_, balance_b_);
    return key_a_.public_key().verify(digest, sig_a_) &&
           key_b_.public_key().verify(digest, sig_b_);
}

std::pair<Amount, Amount> PaymentChannel::close() {
    DLT_EXPECTS(!closed_);
    closed_ = true;
    return {balance_a_, balance_b_};
}

// --- ChannelNetwork ------------------------------------------------------------------

std::size_t ChannelNetwork::add_node(const std::string& seed_label) {
    keys_.push_back(crypto::PrivateKey::from_seed("channel/" + seed_label));
    addresses_.push_back(keys_.back().address());
    adjacency_.emplace_back();
    settled_.push_back(0);
    return keys_.size() - 1;
}

const Address& ChannelNetwork::address_of(std::size_t node) const {
    return addresses_.at(node);
}

void ChannelNetwork::open_channel(std::size_t a, std::size_t b, Amount fund_a,
                                  Amount fund_b) {
    DLT_EXPECTS(a < keys_.size() && b < keys_.size() && a != b);
    channels_.emplace_back(keys_[a], keys_[b], fund_a, fund_b);
    const std::size_t index = channels_.size() - 1;
    adjacency_[a].push_back(Edge{index, b, true});
    adjacency_[b].push_back(Edge{index, a, false});
    ++onchain_txs_; // the funding transaction
}

std::optional<std::size_t> ChannelNetwork::route_payment(std::size_t src,
                                                         std::size_t dst,
                                                         Amount amount) {
    DLT_EXPECTS(src < keys_.size() && dst < keys_.size());
    if (src == dst || amount <= 0) return std::nullopt;

    // BFS over edges with sufficient directional capacity.
    std::vector<std::optional<Edge>> via(keys_.size());
    std::vector<std::optional<std::size_t>> parent(keys_.size());
    std::deque<std::size_t> frontier{src};
    std::vector<bool> seen(keys_.size(), false);
    seen[src] = true;
    while (!frontier.empty()) {
        const std::size_t cur = frontier.front();
        frontier.pop_front();
        if (cur == dst) break;
        for (const Edge& edge : adjacency_[cur]) {
            if (seen[edge.peer]) continue;
            const PaymentChannel& ch = channels_[edge.channel_index];
            if (ch.closed()) continue;
            const Amount available = edge.is_a ? ch.balance_a() : ch.balance_b();
            if (available < amount) continue;
            seen[edge.peer] = true;
            via[edge.peer] = edge;
            parent[edge.peer] = cur;
            frontier.push_back(edge.peer);
        }
    }
    if (!seen[dst]) return std::nullopt;

    // Reconstruct the path, then apply hop by hop (capacities were verified
    // against the pre-payment state; single-threaded simulation keeps this
    // atomic, mirroring an HTLC chain's all-or-nothing settlement).
    std::vector<Edge> path;
    for (std::size_t cur = dst; cur != src; cur = *parent[cur])
        path.push_back(*via[cur]);

    for (auto it = path.rbegin(); it != path.rend(); ++it) {
        PaymentChannel& ch = channels_[it->channel_index];
        const bool ok = it->is_a ? ch.pay_a_to_b(amount) : ch.pay_b_to_a(amount);
        DLT_INVARIANT(ok);
        ++offchain_payments_;
    }
    return path.size();
}

std::size_t ChannelNetwork::settle_all() {
    std::size_t settlements = 0;
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        PaymentChannel& ch = channels_[i];
        if (ch.closed()) continue;
        DLT_INVARIANT(ch.commitment_valid());
        const auto [final_a, final_b] = ch.close();
        // Find the endpoints by address.
        for (std::size_t n = 0; n < addresses_.size(); ++n) {
            if (addresses_[n] == ch.party_a()) settled_[n] += final_a;
            if (addresses_[n] == ch.party_b()) settled_[n] += final_b;
        }
        ++settlements;
        ++onchain_txs_; // the settlement transaction
    }
    return settlements;
}

Amount ChannelNetwork::settled_balance(std::size_t node) const {
    return settled_.at(node);
}

} // namespace dlt::scaling
