#include "scaling/sidechain.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace dlt::scaling {

void SideChain::trust_main_header(const ledger::BlockHeader& header) {
    trusted_roots_.insert(header.merkle_root);
}

void SideChain::peg_in(const PegInProof& proof) {
    if (proof.amount <= 0) throw ValidationError("peg-in amount must be positive");
    if (!trusted_roots_.contains(proof.main_header.merkle_root))
        throw ValidationError("peg-in references an unknown main-chain header");
    if (used_locks_.contains(proof.lock_txid))
        throw ValidationError("peg-in replay: lock already claimed");

    const Hash256 derived =
        datastruct::merkle_root_from_proof(proof.lock_txid, proof.inclusion);
    if (derived != proof.main_header.merkle_root)
        throw ValidationError("peg-in SPV proof does not authenticate");

    used_locks_.insert(proof.lock_txid);
    balances_[proof.beneficiary] += proof.amount;
    total_pegged_ += proof.amount;
}

Hash256 SideChain::peg_out(const crypto::Address& who, ledger::Amount amount) {
    if (amount <= 0) throw ValidationError("peg-out amount must be positive");
    const auto it = balances_.find(who);
    if (it == balances_.end() || it->second < amount)
        throw ValidationError("insufficient side-chain balance");
    it->second -= amount;
    total_pegged_ -= amount;

    Writer w;
    w.fixed(who);
    w.i64(amount);
    w.u64(burn_counter_++);
    return crypto::tagged_hash("dlt/peg-out", w.data());
}

void SideChain::transfer(const crypto::Address& from, const crypto::Address& to,
                         ledger::Amount amount) {
    if (amount <= 0) throw ValidationError("transfer amount must be positive");
    const auto it = balances_.find(from);
    if (it == balances_.end() || it->second < amount)
        throw ValidationError("insufficient side-chain balance");
    it->second -= amount;
    balances_[to] += amount;
}

ledger::Amount SideChain::balance_of(const crypto::Address& who) const {
    const auto it = balances_.find(who);
    return it == balances_.end() ? 0 : it->second;
}

} // namespace dlt::scaling
