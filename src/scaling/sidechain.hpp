// Side chains with a two-way peg (paper §5.4 cites side-chains as the other
// parallelism axis). Coins are locked on the main chain with an SPV-style
// Merkle proof of the lock transaction; the side chain mints the pegged amount,
// runs at its own (faster) block interval, and peg-outs burn side-chain coins
// to unlock main-chain funds.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "crypto/keys.hpp"
#include "datastruct/merkle.hpp"
#include "ledger/amount.hpp"
#include "ledger/block.hpp"

namespace dlt::scaling {

/// Proof that a lock transaction is confirmed on the main chain: the txid, its
/// Merkle inclusion proof, and the header whose root authenticates it.
struct PegInProof {
    Hash256 lock_txid;
    datastruct::MerkleProof inclusion;
    ledger::BlockHeader main_header;
    crypto::Address beneficiary;
    ledger::Amount amount = 0;
};

class SideChain {
public:
    /// `trusted_main_roots` seeds the set of main-chain headers the side chain
    /// accepts peg-ins against (a real deployment tracks main headers live).
    void trust_main_header(const ledger::BlockHeader& header);

    /// Verify the SPV proof and mint pegged coins; throws ValidationError on a
    /// bad proof, unknown header, or replayed lock txid.
    void peg_in(const PegInProof& proof);

    /// Burn side-chain coins, releasing the main-chain lock. Returns the burn
    /// receipt id the main chain would verify. Throws on insufficient balance.
    Hash256 peg_out(const crypto::Address& who, ledger::Amount amount);

    /// Fast internal transfer (side chains trade decentralization for speed).
    void transfer(const crypto::Address& from, const crypto::Address& to,
                  ledger::Amount amount);

    ledger::Amount balance_of(const crypto::Address& who) const;
    ledger::Amount total_pegged() const { return total_pegged_; }

private:
    std::unordered_set<Hash256> trusted_roots_; // merkle roots of trusted headers
    std::unordered_set<Hash256> used_locks_;
    std::unordered_map<crypto::Address, ledger::Amount> balances_;
    ledger::Amount total_pegged_ = 0;
    std::uint64_t burn_counter_ = 0;
};

} // namespace dlt::scaling
