// Fast bootstrap (paper §5.4: "a more efficient protocol is needed to bootstrap
// new miners when they join the network without requiring a full download of
// the blockchain"). Compares full-chain initial block download against
// checkpoint sync: headers to the checkpoint, a signed UTXO snapshot, then only
// the blocks after the checkpoint (E14).
#pragma once

#include <cstdint>
#include <vector>

#include "ledger/block.hpp"
#include "ledger/chain.hpp"
#include "ledger/utxo.hpp"

namespace dlt::scaling {

/// A serialized UTXO snapshot at a checkpoint height, authenticated by a digest
/// committed by block producers.
struct Checkpoint {
    std::uint64_t height = 0;
    Hash256 block_hash;
    Bytes utxo_snapshot;  // serialized UTXO set
    Hash256 snapshot_digest;
};

/// Cost of bringing a new peer to the tip.
struct BootstrapCost {
    std::uint64_t bytes_downloaded = 0;
    std::uint64_t blocks_processed = 0;  // fully validated blocks
    std::uint64_t headers_processed = 0; // header-only validation
};

/// Build a checkpoint for the block at `height` on the active chain of `chain`
/// with post-state `utxo`.
Checkpoint make_checkpoint(const ledger::ChainStore& chain, const Hash256& tip,
                           std::uint64_t height, const ledger::UtxoSet& utxo);

/// Serialize / restore a UTXO set (the snapshot payload). Deserialization
/// rejects truncated or corrupt input with DecodeError (bounded element
/// counts, full-consumption check) instead of ever reading past the buffer.
Bytes serialize_utxo(const ledger::UtxoSet& utxo);
ledger::UtxoSet deserialize_utxo(ByteView raw);

/// Restore the UTXO set a checkpoint carries, verifying the snapshot digest
/// before decoding. Throws ValidationError on digest mismatch and DecodeError
/// on malformed payload — the only safe way to adopt a downloaded snapshot.
ledger::UtxoSet restore_snapshot(const Checkpoint& checkpoint);

/// Full initial block download: every block downloaded and fully processed.
BootstrapCost full_sync_cost(const ledger::ChainStore& chain, const Hash256& tip);

/// Checkpoint sync: headers up to the checkpoint, the snapshot, full blocks
/// after it. Verifies the snapshot digest; throws ValidationError on mismatch.
BootstrapCost checkpoint_sync_cost(const ledger::ChainStore& chain, const Hash256& tip,
                                   const Checkpoint& checkpoint);

} // namespace dlt::scaling
