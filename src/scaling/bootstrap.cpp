#include "scaling/bootstrap.hpp"

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace dlt::scaling {

Bytes serialize_utxo(const ledger::UtxoSet& utxo) {
    // Deterministic order: collect and sort by outpoint.
    std::vector<std::pair<ledger::OutPoint, ledger::TxOutput>> entries;
    // UtxoSet has no iterator; rebuild via coins_of is per-address. Add a
    // serialization-friendly export: total_value()/size() exist, so walk via
    // the public snapshot API below.
    entries = utxo.export_all();
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    Writer w;
    w.varint(entries.size());
    for (const auto& [op, out] : entries) {
        op.encode(w);
        out.encode(w);
    }
    return std::move(w).take();
}

ledger::UtxoSet deserialize_utxo(ByteView raw) {
    Reader r(raw);
    const std::uint64_t count = r.varint();
    ledger::UtxoSet utxo;
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto op = ledger::OutPoint::decode(r);
        const auto out = ledger::TxOutput::decode(r);
        utxo.insert_raw(op, out);
    }
    r.expect_done();
    return utxo;
}

Checkpoint make_checkpoint(const ledger::ChainStore& chain, const Hash256& tip,
                           std::uint64_t height, const ledger::UtxoSet& utxo) {
    const auto path = chain.path_from_genesis(tip);
    DLT_EXPECTS(height < path.size());
    Checkpoint cp;
    cp.height = height;
    cp.block_hash = path[height];
    cp.utxo_snapshot = serialize_utxo(utxo);
    cp.snapshot_digest = crypto::tagged_hash("dlt/utxo-snapshot", cp.utxo_snapshot);
    return cp;
}

BootstrapCost full_sync_cost(const ledger::ChainStore& chain, const Hash256& tip) {
    BootstrapCost cost;
    for (const auto& hash : chain.path_from_genesis(tip)) {
        const auto* entry = chain.find(hash);
        cost.bytes_downloaded += entry->block.serialized_size();
        ++cost.blocks_processed;
    }
    return cost;
}

BootstrapCost checkpoint_sync_cost(const ledger::ChainStore& chain, const Hash256& tip,
                                   const Checkpoint& checkpoint) {
    if (crypto::tagged_hash("dlt/utxo-snapshot", checkpoint.utxo_snapshot) !=
        checkpoint.snapshot_digest)
        throw ValidationError("checkpoint snapshot digest mismatch");

    const auto path = chain.path_from_genesis(tip);
    DLT_EXPECTS(checkpoint.height < path.size());
    if (path[checkpoint.height] != checkpoint.block_hash)
        throw ValidationError("checkpoint not on the active chain");

    BootstrapCost cost;
    // Headers up to and including the checkpoint.
    for (std::uint64_t h = 0; h <= checkpoint.height; ++h) {
        const auto* entry = chain.find(path[h]);
        Writer w;
        entry->block.header.encode(w);
        cost.bytes_downloaded += w.size();
        ++cost.headers_processed;
    }
    // The snapshot itself.
    cost.bytes_downloaded += checkpoint.utxo_snapshot.size();
    // Full blocks after the checkpoint.
    for (std::uint64_t h = checkpoint.height + 1; h < path.size(); ++h) {
        const auto* entry = chain.find(path[h]);
        cost.bytes_downloaded += entry->block.serialized_size();
        ++cost.blocks_processed;
    }
    return cost;
}

} // namespace dlt::scaling
