#include "scaling/bootstrap.hpp"

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace dlt::scaling {

Bytes serialize_utxo(const ledger::UtxoSet& utxo) {
    // Canonical sorted encoding lives on UtxoSet itself (the storage layer's
    // snapshot manager shares it); this wrapper keeps the historical API.
    return encode_to_bytes(utxo);
}

ledger::UtxoSet deserialize_utxo(ByteView raw) {
    Reader r(raw);
    ledger::UtxoSet utxo;
    try {
        utxo = ledger::UtxoSet::decode(r);
        r.expect_done();
    } catch (const DecodeError& e) {
        throw DecodeError(std::string("utxo snapshot: ") + e.what());
    }
    return utxo;
}

ledger::UtxoSet restore_snapshot(const Checkpoint& checkpoint) {
    if (crypto::tagged_hash("dlt/utxo-snapshot", checkpoint.utxo_snapshot) !=
        checkpoint.snapshot_digest)
        throw ValidationError("checkpoint snapshot digest mismatch");
    return deserialize_utxo(checkpoint.utxo_snapshot);
}

Checkpoint make_checkpoint(const ledger::ChainStore& chain, const Hash256& tip,
                           std::uint64_t height, const ledger::UtxoSet& utxo) {
    const auto path = chain.path_from_genesis(tip);
    DLT_EXPECTS(height < path.size());
    Checkpoint cp;
    cp.height = height;
    cp.block_hash = path[height];
    cp.utxo_snapshot = serialize_utxo(utxo);
    cp.snapshot_digest = crypto::tagged_hash("dlt/utxo-snapshot", cp.utxo_snapshot);
    return cp;
}

BootstrapCost full_sync_cost(const ledger::ChainStore& chain, const Hash256& tip) {
    BootstrapCost cost;
    for (const auto& hash : chain.path_from_genesis(tip)) {
        const auto* entry = chain.find(hash);
        cost.bytes_downloaded += entry->block.serialized_size();
        ++cost.blocks_processed;
    }
    return cost;
}

BootstrapCost checkpoint_sync_cost(const ledger::ChainStore& chain, const Hash256& tip,
                                   const Checkpoint& checkpoint) {
    if (crypto::tagged_hash("dlt/utxo-snapshot", checkpoint.utxo_snapshot) !=
        checkpoint.snapshot_digest)
        throw ValidationError("checkpoint snapshot digest mismatch");

    const auto path = chain.path_from_genesis(tip);
    DLT_EXPECTS(checkpoint.height < path.size());
    if (path[checkpoint.height] != checkpoint.block_hash)
        throw ValidationError("checkpoint not on the active chain");

    BootstrapCost cost;
    // Headers up to and including the checkpoint.
    for (std::uint64_t h = 0; h <= checkpoint.height; ++h) {
        const auto* entry = chain.find(path[h]);
        Writer w;
        entry->block.header.encode(w);
        cost.bytes_downloaded += w.size();
        ++cost.headers_processed;
    }
    // The snapshot itself.
    cost.bytes_downloaded += checkpoint.utxo_snapshot.size();
    // Full blocks after the checkpoint.
    for (std::uint64_t h = checkpoint.height + 1; h < path.size(); ++h) {
        const auto* entry = chain.find(path[h]);
        cost.bytes_downloaded += entry->block.serialized_size();
        ++cost.blocks_processed;
    }
    return cost;
}

} // namespace dlt::scaling
