// Payment channels and a Lightning-style channel network (paper §5.2/§5.4:
// "offload transactions outside the blockchain, as in the Lightning network").
// A channel locks on-chain funds once, then supports unlimited instant
// off-chain balance updates signed by both parties; closing settles the final
// balance on-chain. Multi-hop payments route through intermediate channels
// with HTLC-like atomicity (E11: many payments per on-chain transaction).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/keys.hpp"
#include "ledger/amount.hpp"

namespace dlt::scaling {

using crypto::Address;
using ledger::Amount;

/// One two-party channel. Balance updates are sequence-numbered commitments
/// signed by both sides; the latest sequence wins at settlement (stale-state
/// publication loses, as in Lightning penalty semantics — modelled by always
/// settling the highest sequence).
class PaymentChannel {
public:
    PaymentChannel(const crypto::PrivateKey& a, const crypto::PrivateKey& b,
                   Amount fund_a, Amount fund_b);

    const Address& party_a() const { return addr_a_; }
    const Address& party_b() const { return addr_b_; }
    Amount balance_a() const { return balance_a_; }
    Amount balance_b() const { return balance_b_; }
    Amount capacity() const { return balance_a_ + balance_b_; }
    std::uint64_t sequence() const { return sequence_; }
    bool closed() const { return closed_; }

    /// Off-chain payment inside the channel; returns false on insufficient
    /// directional balance or a closed channel. Both signatures are produced
    /// and verified (real ECDSA) on the new commitment.
    bool pay_a_to_b(Amount amount);
    bool pay_b_to_a(Amount amount);

    /// Verify the current commitment's two signatures (tamper check).
    bool commitment_valid() const;

    /// Close: returns the final (a, b) balances to settle on-chain.
    std::pair<Amount, Amount> close();

    std::uint64_t offchain_payments() const { return payments_; }

private:
    Hash256 commitment_digest(std::uint64_t seq, Amount a, Amount b) const;
    void resign();

    crypto::PrivateKey key_a_;
    crypto::PrivateKey key_b_;
    Address addr_a_;
    Address addr_b_;
    Amount balance_a_;
    Amount balance_b_;
    std::uint64_t sequence_ = 0;
    std::uint64_t payments_ = 0;
    bool closed_ = false;
    crypto::secp256k1::Signature sig_a_;
    crypto::secp256k1::Signature sig_b_;
};

/// Network of channels supporting multi-hop routed payments.
class ChannelNetwork {
public:
    /// Register a participant; returns its index.
    std::size_t add_node(const std::string& seed_label);

    const Address& address_of(std::size_t node) const;

    /// Open a channel funded fund_a/fund_b between two nodes; counts one
    /// on-chain transaction.
    void open_channel(std::size_t a, std::size_t b, Amount fund_a, Amount fund_b);

    /// Route `amount` from src to dst through the cheapest-hop path with
    /// sufficient directional capacity. Every hop updates atomically (all or
    /// nothing, as an HTLC chain would). Returns the path length or nullopt
    /// when no route exists.
    std::optional<std::size_t> route_payment(std::size_t src, std::size_t dst,
                                             Amount amount);

    /// Close every channel; returns the number of on-chain settlement
    /// transactions (for E11's on-chain-vs-off-chain accounting).
    std::size_t settle_all();

    std::uint64_t onchain_tx_count() const { return onchain_txs_; }
    std::uint64_t offchain_payment_count() const { return offchain_payments_; }
    std::size_t channel_count() const { return channels_.size(); }

    /// Final settled balance per node (valid after settle_all()).
    Amount settled_balance(std::size_t node) const;

private:
    struct Edge {
        std::size_t channel_index;
        std::size_t peer;
        bool is_a; // this node is party A of the channel
    };

    std::vector<crypto::PrivateKey> keys_;
    std::vector<Address> addresses_;
    std::vector<std::vector<Edge>> adjacency_;
    std::vector<PaymentChannel> channels_;
    std::vector<Amount> settled_;
    std::uint64_t onchain_txs_ = 0;
    std::uint64_t offchain_payments_ = 0;
};

} // namespace dlt::scaling
