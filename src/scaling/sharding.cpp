#include "scaling/sharding.hpp"

#include <unordered_map>

#include "common/assert.hpp"

namespace dlt::scaling {

ShardedLedger::ShardedLedger(ShardingParams params, std::uint64_t seed)
    : params_(params), rng_(seed), shards_(params.shard_count) {
    DLT_EXPECTS(params.shard_count >= 1);
    DLT_EXPECTS(params.per_shard_block_capacity >= 1);
}

std::size_t ShardedLedger::shard_of(const crypto::Address& addr) const {
    // Partition by the first address byte — uniform for hash-derived addresses.
    return addr[0] % params_.shard_count;
}

void ShardedLedger::credit(const crypto::Address& addr, ledger::Amount amount) {
    DLT_EXPECTS(amount >= 0);
    balances_[addr] += amount;
}

ledger::Amount ShardedLedger::balance_of(const crypto::Address& addr) const {
    const auto it = balances_.find(addr);
    return it == balances_.end() ? 0 : it->second;
}

bool ShardedLedger::submit(const ShardTx& tx) {
    if (tx.amount <= 0) return false;
    const ledger::Amount available = balance_of(tx.from) - reserved_[tx.from];
    if (available < tx.amount) return false;
    reserved_[tx.from] += tx.amount;

    const std::size_t src = shard_of(tx.from);
    const std::size_t dst = shard_of(tx.to);
    if (src == dst) {
        shards_[src].intra_queue.push_back(tx);
    } else {
        shards_[src].cross_queue.push_back(PendingCross{tx, false});
    }
    return true;
}

void ShardedLedger::step() {
    ++stats_.slots;
    // Each shard independently fills its block for this slot.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        Shard& shard = shards_[s];
        std::size_t capacity = params_.per_shard_block_capacity;

        // Phase-2 commits first: cross transfers already locked whose
        // destination is this shard (they consume destination capacity).
        for (auto& other : shards_) {
            for (auto it = other.cross_queue.begin();
                 capacity > 0 && it != other.cross_queue.end();) {
                if (it->locked && shard_of(it->tx.to) == s) {
                    balances_[it->tx.to] += it->tx.amount;
                    ++stats_.cross_committed;
                    stats_.cross_messages += 1; // commit message
                    --capacity;
                    it = other.cross_queue.erase(it);
                } else {
                    ++it;
                }
            }
        }

        // Intra-shard transfers.
        while (capacity > 0 && !shard.intra_queue.empty()) {
            const ShardTx tx = shard.intra_queue.front();
            shard.intra_queue.erase(shard.intra_queue.begin());
            balances_[tx.from] -= tx.amount;
            reserved_[tx.from] -= tx.amount;
            balances_[tx.to] += tx.amount;
            ++stats_.intra_committed;
            --capacity;
        }

        // Phase-1 locks for cross transfers originating here.
        for (auto& pending : shard.cross_queue) {
            if (capacity == 0) break;
            if (pending.locked) continue;
            balances_[pending.tx.from] -= pending.tx.amount; // funds locked
            reserved_[pending.tx.from] -= pending.tx.amount;
            pending.locked = true;
            stats_.cross_messages += 2; // prepare + ack
            --capacity;
        }
    }
}

std::size_t ShardedLedger::pending() const {
    std::size_t count = 0;
    for (const auto& shard : shards_)
        count += shard.intra_queue.size() + shard.cross_queue.size();
    return count;
}

double ShardedLedger::throughput_tps() const {
    if (stats_.slots == 0) return 0;
    const double elapsed = static_cast<double>(stats_.slots) * params_.slot_duration;
    return static_cast<double>(stats_.intra_committed + stats_.cross_committed) /
           elapsed;
}

ledger::Amount ShardedLedger::total_balance() const {
    ledger::Amount total = 0;
    for (const auto& [addr, bal] : balances_) total += bal;
    // Locked-but-uncommitted cross value is in flight (subtracted from source,
    // not yet added to destination).
    for (const auto& shard : shards_)
        for (const auto& pending : shard.cross_queue)
            if (pending.locked) total += pending.tx.amount;
    return total;
}

} // namespace dlt::scaling
