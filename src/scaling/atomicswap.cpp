#include "scaling/atomicswap.hpp"

#include "common/assert.hpp"
#include "common/error.hpp"
#include "crypto/sha256.hpp"

namespace dlt::scaling {

void HtlcChain::credit(const crypto::Address& who, ledger::Amount amount) {
    DLT_EXPECTS(amount >= 0);
    balances_[who] += amount;
}

ledger::Amount HtlcChain::balance_of(const crypto::Address& who) const {
    const auto it = balances_.find(who);
    return it == balances_.end() ? 0 : it->second;
}

std::uint64_t HtlcChain::lock(const crypto::Address& sender,
                              const crypto::Address& recipient,
                              ledger::Amount amount, const Hash256& hashlock,
                              double timelock) {
    if (amount <= 0) throw ValidationError("htlc: amount must be positive");
    const auto it = balances_.find(sender);
    if (it == balances_.end() || it->second < amount)
        throw ValidationError("htlc: insufficient funds");
    it->second -= amount;

    const std::uint64_t id = next_id_++;
    contracts_.emplace(id, Htlc{hashlock, sender, recipient, amount, timelock, false});
    return id;
}

void HtlcChain::claim(std::uint64_t id, const Bytes& preimage) {
    const auto it = contracts_.find(id);
    if (it == contracts_.end()) throw ValidationError("htlc: unknown contract");
    Htlc& htlc = it->second;
    if (htlc.settled) throw ValidationError("htlc: already settled");
    if (now_ >= htlc.timelock)
        throw ValidationError("htlc: timelock expired, claim window closed");
    if (swap_hashlock(preimage) != htlc.hashlock)
        throw ValidationError("htlc: wrong preimage");

    htlc.settled = true;
    balances_[htlc.recipient] += htlc.amount;
    preimages_.emplace(id, preimage); // revealed on-chain for all to see
}

void HtlcChain::refund(std::uint64_t id) {
    const auto it = contracts_.find(id);
    if (it == contracts_.end()) throw ValidationError("htlc: unknown contract");
    Htlc& htlc = it->second;
    if (htlc.settled) throw ValidationError("htlc: already settled");
    if (now_ < htlc.timelock) throw ValidationError("htlc: timelock not yet expired");
    htlc.settled = true;
    balances_[htlc.sender] += htlc.amount;
}

const Htlc& HtlcChain::contract(std::uint64_t id) const {
    const auto it = contracts_.find(id);
    if (it == contracts_.end()) throw ValidationError("htlc: unknown contract");
    return it->second;
}

std::optional<Bytes> HtlcChain::revealed_preimage(std::uint64_t id) const {
    const auto it = preimages_.find(id);
    if (it == preimages_.end()) return std::nullopt;
    return it->second;
}

Hash256 swap_hashlock(const Bytes& secret) {
    return crypto::tagged_hash("dlt/htlc", secret);
}

SwapOutcome execute_swap(HtlcChain& chain_a, HtlcChain& chain_b,
                         const crypto::Address& alice, const crypto::Address& bob,
                         ledger::Amount amount_a, ledger::Amount amount_b,
                         const Bytes& alice_secret, double base_timeout) {
    SwapOutcome outcome;
    const Hash256 hashlock = swap_hashlock(alice_secret);

    // 1. Alice (secret holder) locks on chain A with the LONGER timeout 2T:
    //    she must remain refundable after Bob's window closes.
    outcome.htlc_a = chain_a.lock(alice, bob, amount_a, hashlock,
                                  chain_a.now() + 2 * base_timeout);

    // 2. Bob verifies the A-side lock, then locks on chain B with timeout T.
    outcome.htlc_b =
        chain_b.lock(bob, alice, amount_b, hashlock, chain_b.now() + base_timeout);

    // 3. Alice claims on chain B, revealing the secret on-chain.
    chain_b.claim(outcome.htlc_b, alice_secret);

    // 4. Bob reads the revealed preimage from chain B and claims on chain A.
    const auto revealed = chain_b.revealed_preimage(outcome.htlc_b);
    DLT_INVARIANT(revealed.has_value());
    chain_a.claim(outcome.htlc_a, *revealed);

    outcome.completed = true;
    return outcome;
}

} // namespace dlt::scaling
