// Sharding (paper §5.4: "performance can be improved by introducing
// parallelism, such as sharding"). Accounts are partitioned across shards by
// address; intra-shard transactions commit in one shard block, cross-shard
// transactions run a two-phase lock/commit across both shards (costing extra
// slots and coordination messages) — the throughput-vs-cross-traffic trade-off
// of E10.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "crypto/keys.hpp"
#include "ledger/amount.hpp"

namespace dlt::scaling {

struct ShardTx {
    crypto::Address from;
    crypto::Address to;
    ledger::Amount amount = 0;
};

struct ShardingParams {
    std::size_t shard_count = 4;
    std::size_t per_shard_block_capacity = 100; // txs a shard commits per slot
    double slot_duration = 1.0;                 // seconds per shard block slot
};

struct ShardingStats {
    std::uint64_t slots = 0;
    std::uint64_t intra_committed = 0;
    std::uint64_t cross_committed = 0;
    std::uint64_t cross_messages = 0; // prepare/commit coordination traffic
};

/// Round-based sharded ledger simulation: call submit() to enqueue work, then
/// step() once per slot; each shard commits up to its capacity per slot.
/// Cross-shard transfers occupy capacity in the source shard (lock) in one
/// slot and in the destination shard (commit) in a later slot.
class ShardedLedger {
public:
    ShardedLedger(ShardingParams params, std::uint64_t seed);

    std::size_t shard_of(const crypto::Address& addr) const;

    void credit(const crypto::Address& addr, ledger::Amount amount);
    ledger::Amount balance_of(const crypto::Address& addr) const;

    /// Enqueue a transfer; returns false when the sender's funds (minus already
    /// queued spends) are insufficient.
    bool submit(const ShardTx& tx);

    /// Advance one slot across all shards.
    void step();

    std::size_t pending() const;
    const ShardingStats& stats() const { return stats_; }

    /// Committed transactions per simulated second so far.
    double throughput_tps() const;

    /// Conservation check: total balance equals total credited (invariant for
    /// property tests).
    ledger::Amount total_balance() const;

private:
    struct PendingCross {
        ShardTx tx;
        bool locked = false; // phase 1 done in source shard
    };

    struct Shard {
        std::vector<ShardTx> intra_queue;
        std::vector<PendingCross> cross_queue; // this shard is the source
    };

    ShardingParams params_;
    Rng rng_;
    std::vector<Shard> shards_;
    std::unordered_map<crypto::Address, ledger::Amount> balances_;
    std::unordered_map<crypto::Address, ledger::Amount> reserved_; // queued spends
    ShardingStats stats_;
};

} // namespace dlt::scaling
