#include "model/workflow.hpp"

#include <queue>
#include <set>
#include <sstream>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace dlt::model {

WorkflowModel::WorkflowModel(std::string name, std::size_t state_count,
                             std::size_t role_count)
    : name_(std::move(name)), state_count_(state_count), role_count_(role_count),
      labels_(state_count) {
    DLT_EXPECTS(state_count >= 2);
    DLT_EXPECTS(role_count >= 1);
    DLT_EXPECTS(!name_.empty());
}

void WorkflowModel::label_state(std::size_t state, std::string label) {
    DLT_EXPECTS(state < state_count_);
    labels_[state] = std::move(label);
}

const std::string& WorkflowModel::state_label(std::size_t state) const {
    DLT_EXPECTS(state < state_count_);
    return labels_[state];
}

void WorkflowModel::add_transition(Transition t) {
    if (t.from >= state_count_ || t.to >= state_count_)
        throw ContractError("workflow: transition state out of range");
    if (t.role >= role_count_) throw ContractError("workflow: role out of range");
    if (t.task.empty()) throw ContractError("workflow: empty task name");
    for (const auto& existing : transitions_)
        if (existing.task == t.task)
            throw ContractError("workflow: duplicate task '" + t.task + "'");
    transitions_.push_back(std::move(t));
}

std::vector<std::size_t> WorkflowModel::terminal_states() const {
    std::vector<bool> has_out(state_count_, false);
    for (const auto& t : transitions_) has_out[t.from] = true;
    std::vector<std::size_t> terminals;
    for (std::size_t s = 0; s < state_count_; ++s)
        if (!has_out[s]) terminals.push_back(s);
    return terminals;
}

std::vector<ValidationIssue> WorkflowModel::validate() const {
    std::vector<ValidationIssue> issues;

    if (transitions_.empty()) {
        issues.push_back({"workflow has no transitions"});
        return issues;
    }

    // Reachability from the start state.
    std::vector<bool> reachable(state_count_, false);
    std::queue<std::size_t> frontier;
    frontier.push(0);
    reachable[0] = true;
    while (!frontier.empty()) {
        const std::size_t s = frontier.front();
        frontier.pop();
        for (const auto& t : transitions_) {
            if (t.from == s && !reachable[t.to]) {
                reachable[t.to] = true;
                frontier.push(t.to);
            }
        }
    }
    for (std::size_t s = 0; s < state_count_; ++s)
        if (!reachable[s])
            issues.push_back({"state " + std::to_string(s) + " is unreachable"});

    if (terminal_states().empty())
        issues.push_back({"no terminal state: the process cannot complete"});

    // Reserved generated-function names.
    static const std::set<std::string> kReserved = {"init", "currentState",
                                                    "isComplete"};
    for (const auto& t : transitions_)
        if (kReserved.contains(t.task))
            issues.push_back({"task name '" + t.task + "' is reserved"});

    return issues;
}

std::string WorkflowModel::to_minisol() const {
    const auto issues = validate();
    if (!issues.empty())
        throw ContractError("workflow '" + name_ + "' invalid: " + issues[0].message);

    std::ostringstream out;
    out << "contract " << name_ << " {\n";
    out << "    storage state;\n";
    for (std::size_t r = 0; r < role_count_; ++r)
        out << "    storage role" << r << ";\n";

    // init binds the participants.
    out << "\n    fn init(";
    for (std::size_t r = 0; r < role_count_; ++r) {
        if (r > 0) out << ", ";
        out << "r" << r;
    }
    out << ") {\n";
    for (std::size_t r = 0; r < role_count_; ++r)
        out << "        role" << r << " = r" << r << ";\n";
    out << "        state = 0;\n    }\n";

    // One function per task.
    for (const auto& t : transitions_) {
        out << "\n    fn " << t.task << "() {\n";
        out << "        require(state == " << t.from << ");\n";
        out << "        require(caller == role" << t.role << ");\n";
        out << "        state = " << t.to << ";\n";
        out << "        emit " << t.task << "Done(" << t.to << ");\n";
        out << "    }\n";
    }

    out << "\n    fn currentState() view { return state; }\n";

    const auto terminals = terminal_states();
    out << "\n    fn isComplete() view { return ";
    for (std::size_t i = 0; i < terminals.size(); ++i) {
        if (i > 0) out << " || ";
        out << "state == " << terminals[i];
    }
    out << "; }\n";

    out << "}\n";
    return out.str();
}

} // namespace dlt::model
