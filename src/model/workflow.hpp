// Modeling layer (paper §4.2): a BPMN-flavoured workflow model — states, role-
// restricted task transitions, exclusive choices — that validates structurally
// and compiles to a MiniSol smart contract enforcing the process on-chain.
// This is the paper's "modeling approaches are required to express workflows
// ... which will be correctly reflected in the lower layers" made concrete:
// model -> contract -> VM bytecode -> ledger.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace dlt::model {

/// One task edge: performing `task` moves the process from `from` to `to`, and
/// only the participant bound to `role` may perform it. Exclusive (XOR)
/// gateways are expressed naturally as multiple transitions leaving one state.
struct Transition {
    std::string task;
    std::size_t from = 0;
    std::size_t to = 0;
    std::size_t role = 0;
};

/// Structural problems found by validate().
struct ValidationIssue {
    std::string message;
};

class WorkflowModel {
public:
    /// A workflow over `state_count` states (state 0 is the start) and
    /// `role_count` participant roles.
    WorkflowModel(std::string name, std::size_t state_count, std::size_t role_count);

    const std::string& name() const { return name_; }
    std::size_t state_count() const { return state_count_; }
    std::size_t role_count() const { return role_count_; }
    const std::vector<Transition>& transitions() const { return transitions_; }

    /// Register a human-readable state label (optional, for documentation).
    void label_state(std::size_t state, std::string label);
    const std::string& state_label(std::size_t state) const;

    /// Add a task edge; throws ContractError on out-of-range states/roles or a
    /// duplicate task name.
    void add_transition(Transition t);

    /// States with no outgoing transitions (process end states).
    std::vector<std::size_t> terminal_states() const;

    /// Structural validation: every state reachable from the start, at least
    /// one terminal state, no transition names that collide with the generated
    /// contract's reserved functions.
    std::vector<ValidationIssue> validate() const;

    /// Generate the MiniSol contract enforcing this workflow. Throws
    /// ContractError when validate() reports issues.
    ///
    /// Generated interface:
    ///   init(role0, role1, ...)   — binds participant addresses
    ///   <task>()                  — one function per transition
    ///   currentState() view
    ///   isComplete() view
    std::string to_minisol() const;

private:
    std::string name_;
    std::size_t state_count_;
    std::size_t role_count_;
    std::vector<Transition> transitions_;
    std::vector<std::string> labels_;
};

} // namespace dlt::model
