#include "common/serialize.hpp"

#include <bit>
#include <cstring>

namespace dlt {

void Writer::f64(double v) {
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t raw;
    std::memcpy(&raw, &v, sizeof raw);
    u64(raw);
}

void Writer::varint(std::uint64_t v) {
    if (v < 0xFD) {
        u8(static_cast<std::uint8_t>(v));
    } else if (v <= 0xFFFF) {
        u8(0xFD);
        u16(static_cast<std::uint16_t>(v));
    } else if (v <= 0xFFFFFFFF) {
        u8(0xFE);
        u32(static_cast<std::uint32_t>(v));
    } else {
        u8(0xFF);
        u64(v);
    }
}

double Reader::f64() {
    const std::uint64_t raw = u64();
    double v;
    std::memcpy(&v, &raw, sizeof v);
    return v;
}

std::uint64_t Reader::varint() {
    const std::uint8_t tag = u8();
    if (tag < 0xFD) return tag;
    if (tag == 0xFD) {
        const std::uint64_t v = u16();
        if (v < 0xFD) throw DecodeError("non-canonical varint");
        return v;
    }
    if (tag == 0xFE) {
        const std::uint64_t v = u32();
        if (v <= 0xFFFF) throw DecodeError("non-canonical varint");
        return v;
    }
    const std::uint64_t v = u64();
    if (v <= 0xFFFFFFFF) throw DecodeError("non-canonical varint");
    return v;
}

} // namespace dlt
