// Reusable fixed-size thread pool plus a blocking parallel_for. This is the
// only place the codebase creates threads: validation/hashing work is fanned
// out through the process-wide pool (see checkqueue.hpp), while the
// discrete-event Scheduler and everything driven by it stays single-threaded
// so virtual-time experiment outputs are bit-identical at any thread count
// (DESIGN.md "Threading model").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dlt {

/// Fixed set of worker threads draining a FIFO task queue. With zero workers
/// the pool degrades to inline execution: submit() runs the task on the
/// calling thread, which keeps every call site oblivious to whether
/// parallelism is enabled.
class ThreadPool {
public:
    explicit ThreadPool(std::size_t workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t worker_count() const { return workers_.size(); }

    /// Enqueue a task. Runs inline when the pool has no workers or is shutting
    /// down. Tasks must not throw (they run on detached-from-caller threads);
    /// wrap anything throwing at the call site.
    void submit(std::function<void()> task);

    /// The process-wide pool used by validation, hashing, and the bench
    /// harness. Sized on first use from the DLT_THREADS environment variable
    /// (total thread count including the caller: "1" or "0" means serial),
    /// falling back to hardware_concurrency() - 1 workers. Configure at
    /// startup — see set_global_workers().
    static ThreadPool& global();

    /// Replace the global pool with one of exactly `workers` worker threads
    /// (0 = serial). Drains the old pool first. Not safe to call while other
    /// threads are using global(); intended for main()/test setup.
    static void set_global_workers(std::size_t workers);

    /// Worker count of the global pool (0 when serial).
    static std::size_t global_workers();

    /// True when the calling thread is a pool worker (any pool). Nested
    /// fan-out from inside a worker degrades to a serial loop instead of
    /// submitting helpers: a queued helper behind long-running tasks would
    /// leave the nested join waiting on work nobody can start.
    static bool on_worker_thread();

private:
    void worker_loop();

    std::mutex m_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

/// Invoke fn(i) for every i in [begin, end), partitioning the range into
/// chunks of `grain` spread over the pool's workers plus the calling thread.
/// Blocks until every index has been processed. Iterations must be
/// independent; the first exception thrown by `fn` is rethrown on the caller
/// after all in-flight chunks finish. With no workers (or a range of at most
/// one chunk) this is a plain serial loop, so results never depend on the
/// thread count — only wall-clock does.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

namespace detail {
/// Thread-local marker identifying the CheckQueue (if any) whose checks the
/// current thread is executing; used to reject re-entrant use. Lives here so
/// the template in checkqueue.hpp shares one slot across instantiations.
const void*& checkqueue_tls();
} // namespace detail

} // namespace dlt
