#include "common/log.hpp"

namespace dlt {

namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}
} // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {

LogContext& log_context() {
    thread_local LogContext ctx;
    return ctx;
}

void log_write(LogLevel level, std::string_view component, std::string_view message) {
    const LogContext& ctx = log_context();
    std::ostringstream line;
    line << '[' << level_name(level) << "] " << component;
    if (ctx.sim_time || ctx.node_id) {
        line << " (";
        if (ctx.sim_time) line << "t=" << *ctx.sim_time;
        if (ctx.sim_time && ctx.node_id) line << ' ';
        if (ctx.node_id) line << "n=" << *ctx.node_id;
        line << ')';
    }
    line << ": " << message << '\n';
    // One stream insertion so concurrent threads never interleave mid-line.
    std::clog << line.str();
}

} // namespace detail

} // namespace dlt
