// Simulated-time types. The discrete-event simulator advances a virtual clock in
// seconds (double); wall-clock time never appears in protocol logic, which is what
// lets laptop runs reproduce network-scale dynamics (see DESIGN.md substitutions).
#pragma once

#include <cstdint>

namespace dlt {

/// Virtual time in seconds since simulation start.
using SimTime = double;

/// Virtual duration in seconds.
using SimDuration = double;

inline constexpr SimTime kSimStart = 0.0;

/// Conventional block intervals from the paper (§2.7).
inline constexpr SimDuration kBitcoinBlockInterval = 600.0;  // 10 minutes
inline constexpr SimDuration kEthereumBlockInterval = 15.0;  // 10-40 s band midpoint

} // namespace dlt
