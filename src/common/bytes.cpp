#include "common/bytes.hpp"

#include "common/error.hpp"

namespace dlt {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}
} // namespace

std::string to_hex(ByteView data) {
    std::string out;
    out.reserve(data.size() * 2);
    for (auto b : data) {
        out.push_back(kHexDigits[b >> 4]);
        out.push_back(kHexDigits[b & 0xF]);
    }
    return out;
}

Bytes from_hex(std::string_view hex) {
    if (hex.size() % 2 != 0) throw DecodeError("hex string has odd length");
    Bytes out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hex_nibble(hex[i]);
        const int lo = hex_nibble(hex[i + 1]);
        if (hi < 0 || lo < 0) throw DecodeError("invalid hex character");
        out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return out;
}

void append(Bytes& dst, ByteView src) { dst.insert(dst.end(), src.begin(), src.end()); }

Bytes to_bytes(std::string_view text) {
    return Bytes(text.begin(), text.end());
}

template <std::size_t N>
FixedBytes<N> FixedBytes<N>::from_hex_str(std::string_view hex) {
    const Bytes raw = dlt::from_hex(hex);
    return from_bytes(raw);
}

template <std::size_t N>
FixedBytes<N> FixedBytes<N>::from_bytes(ByteView bytes) {
    if (bytes.size() != N) throw DecodeError("fixed-bytes size mismatch");
    FixedBytes<N> out;
    std::copy(bytes.begin(), bytes.end(), out.data.begin());
    return out;
}

template struct FixedBytes<20>;
template struct FixedBytes<32>;
template struct FixedBytes<64>;

} // namespace dlt
