// Minimal leveled logger. Off by default so tests and benchmarks stay quiet;
// examples turn it on for narrative output.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace dlt {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_write(LogLevel level, std::string_view component, std::string_view message);
} // namespace detail

/// Stream-style log statement: DLT_LOG(kInfo, "consensus") << "new tip " << h;
class LogLine {
public:
    LogLine(LogLevel level, std::string_view component)
        : level_(level), component_(component), enabled_(level >= log_level()) {}

    ~LogLine() {
        if (enabled_) detail::log_write(level_, component_, stream_.str());
    }

    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;

    template <typename T>
    LogLine& operator<<(const T& value) {
        if (enabled_) stream_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::string_view component_;
    bool enabled_;
    std::ostringstream stream_;
};

} // namespace dlt

#define DLT_LOG(level, component) ::dlt::LogLine(::dlt::LogLevel::level, component)
