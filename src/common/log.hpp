// Minimal leveled logger. Off by default so tests and benchmarks stay quiet;
// examples turn it on for narrative output.
//
// Optional context injection (see src/common/README.md): RAII scopes stamp the
// current virtual time and node id into a thread-local slot, and every line
// logged while a scope is live carries "(t=<sim-time> n=<node>)" after the
// component. Simulation handlers wrap themselves in these scopes so interleaved
// multi-node logs stay attributable.
#pragma once

#include <cstdint>
#include <iostream>
#include <optional>
#include <sstream>
#include <string_view>

namespace dlt {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_write(LogLevel level, std::string_view component, std::string_view message);

/// Thread-local log context: virtual time and node id of the code currently
/// running (unset outside a scope).
struct LogContext {
    std::optional<double> sim_time;
    std::optional<std::uint32_t> node_id;
};
LogContext& log_context();
} // namespace detail

/// RAII: stamps the virtual time into the thread-local log context for the
/// scope's lifetime (restores the previous value on exit, so scopes nest).
class ScopedLogTime {
public:
    explicit ScopedLogTime(double sim_time)
        : previous_(detail::log_context().sim_time) {
        detail::log_context().sim_time = sim_time;
    }
    ~ScopedLogTime() { detail::log_context().sim_time = previous_; }
    ScopedLogTime(const ScopedLogTime&) = delete;
    ScopedLogTime& operator=(const ScopedLogTime&) = delete;

private:
    std::optional<double> previous_;
};

/// RAII: stamps the acting node id into the thread-local log context.
class ScopedLogNode {
public:
    explicit ScopedLogNode(std::uint32_t node_id)
        : previous_(detail::log_context().node_id) {
        detail::log_context().node_id = node_id;
    }
    ~ScopedLogNode() { detail::log_context().node_id = previous_; }
    ScopedLogNode(const ScopedLogNode&) = delete;
    ScopedLogNode& operator=(const ScopedLogNode&) = delete;

private:
    std::optional<std::uint32_t> previous_;
};

/// Stream-style log statement: DLT_LOG(kInfo, "consensus") << "new tip " << h;
class LogLine {
public:
    LogLine(LogLevel level, std::string_view component)
        : level_(level), component_(component), enabled_(level >= log_level()) {}

    ~LogLine() {
        if (enabled_) detail::log_write(level_, component_, stream_.str());
    }

    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;

    template <typename T>
    LogLine& operator<<(const T& value) {
        if (enabled_) stream_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::string_view component_;
    bool enabled_;
    std::ostringstream stream_;
};

} // namespace dlt

#define DLT_LOG(level, component) ::dlt::LogLine(::dlt::LogLevel::level, component)
