// Error taxonomy for the DLT framework. Recoverable failures (bad input, invalid
// blocks, rejected transactions) are reported with exceptions derived from
// dlt::Error; programming errors use ContractViolation (assert.hpp).
#pragma once

#include <stdexcept>

namespace dlt {

/// Base class for all recoverable framework errors.
class Error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Malformed or undecodable input (hex strings, serialized payloads, ...).
class DecodeError : public Error {
public:
    using Error::Error;
};

/// Ledger-level validation failure (bad block, invalid transaction, ...).
class ValidationError : public Error {
public:
    using Error::Error;
};

/// Cryptographic failure (bad signature encoding, invalid key, ...).
class CryptoError : public Error {
public:
    using Error::Error;
};

/// Smart-contract execution failure (out of gas, VM trap, compile error).
class ContractError : public Error {
public:
    using Error::Error;
};

/// Durable-storage failure (I/O error, unreadable record, inconsistent journal).
class StorageError : public Error {
public:
    using Error::Error;
};

} // namespace dlt
