#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace dlt {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
} // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
    DLT_EXPECTS(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold) return r % bound;
    }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
    DLT_EXPECTS(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next()); // full 64-bit range
    return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double rate) {
    DLT_EXPECTS(rate > 0);
    double u = uniform01();
    // Guard against log(0); uniform01() can return exactly 0.
    if (u <= 0) u = 0x1.0p-53;
    return -std::log(u) / rate;
}

double Rng::normal(double mean, double stddev) {
    double u1 = uniform01();
    if (u1 <= 0) u1 = 0x1.0p-53;
    const double u2 = uniform01();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::chance(double p) {
    if (p <= 0) return false;
    if (p >= 1) return true;
    return uniform01() < p;
}

Rng Rng::fork(std::uint64_t tag) {
    // Mix the tag with fresh output so different tags diverge immediately.
    std::uint64_t seed = next() ^ (tag * 0xD1B54A32D192ED03ull + 0x2545F4914F6CDD1Dull);
    return Rng(seed);
}

} // namespace dlt
