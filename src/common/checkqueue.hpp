// Bitcoin-CCheckQueue-style work queue: a batch of independent boolean checks
// (per-input signature verifications, script checks, ...) is fanned out to the
// thread pool's workers while the master thread keeps adding work, then joined
// to a single conjunction. Because logical AND is order-independent and every
// check is a pure function, the result is bit-identical to running the checks
// serially — parallelism changes wall-clock only, never outcomes.
//
// Protocol: add() one or more batches, then complete() exactly once to join
// and fetch the verdict; the queue resets and can be reused for the next
// block. Checks themselves must not touch the queue that is running them —
// re-entrant add()/complete() from inside a check throws std::logic_error.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/threadpool.hpp"

namespace dlt {

template <typename Check>
class CheckQueue {
public:
    /// `grain` is the number of checks a worker claims per critical section —
    /// large enough to amortize locking, small enough to balance tail latency.
    explicit CheckQueue(ThreadPool& pool = ThreadPool::global(),
                        std::size_t grain = 16)
        : pool_(pool), grain_(grain == 0 ? 1 : grain) {}

    /// Waits for in-flight helpers before destruction, so tearing a queue (or
    /// the pool) down while a batch is mid-flight is safe: remaining checks
    /// are drained or skipped, never use-after-freed.
    ~CheckQueue() {
        std::unique_lock lock(m_);
        next_ = checks_.size(); // nothing further is claimed
        cv_.wait(lock, [this] { return executing_ == 0 && helpers_ == 0; });
    }

    CheckQueue(const CheckQueue&) = delete;
    CheckQueue& operator=(const CheckQueue&) = delete;

    /// Append a batch. Workers may begin verifying immediately, overlapping
    /// with the master thread gathering the next batch.
    void add(std::vector<Check> checks) {
        if (checks.empty()) return;
        if (detail::checkqueue_tls() == this)
            throw std::logic_error("re-entrant CheckQueue::add from a check");
        std::size_t spawn = 0;
        {
            std::lock_guard lock(m_);
            for (auto& c : checks) checks_.push_back(std::move(c));
            const std::size_t pending = checks_.size() - next_;
            // From a pool worker, spawn nothing: a helper queued behind
            // long-running tasks would leave complete() waiting on work no
            // thread is free to start. The batch then runs serially in
            // complete() — same result, just no nested parallelism.
            const std::size_t wanted =
                ThreadPool::on_worker_thread()
                    ? 0
                    : std::min(pool_.worker_count(), (pending + grain_ - 1) / grain_);
            spawn = wanted > helpers_ ? wanted - helpers_ : 0;
            helpers_ += spawn;
        }
        // Submit outside the lock: with a serial pool submit() runs inline.
        for (std::size_t i = 0; i < spawn; ++i)
            pool_.submit([this] {
                std::unique_lock lock(m_);
                run_chunks(lock);
                --helpers_;
                cv_.notify_all();
            });
    }

    /// Join: the caller drains remaining checks alongside the helpers, waits
    /// for stragglers, and returns the conjunction of every check since the
    /// last complete(). An empty batch is vacuously true. Resets for reuse.
    bool complete() {
        if (detail::checkqueue_tls() == this)
            throw std::logic_error("re-entrant CheckQueue::complete from a check");
        std::unique_lock lock(m_);
        run_chunks(lock);
        cv_.wait(lock, [this] {
            return executing_ == 0 && helpers_ == 0 && next_ >= checks_.size();
        });
        const bool result = ok_.load(std::memory_order_relaxed);
        checks_.clear();
        next_ = 0;
        ok_.store(true, std::memory_order_relaxed);
        return result;
    }

private:
    /// Claim and execute chunks until no work is left. Called with `lock`
    /// held; returns with it held. Claimed checks are moved out of the shared
    /// vector under the lock so execution never touches shared storage.
    void run_chunks(std::unique_lock<std::mutex>& lock) {
        const void* const prev = detail::checkqueue_tls();
        detail::checkqueue_tls() = this;
        while (next_ < checks_.size()) {
            const std::size_t lo = next_;
            const std::size_t hi = std::min(lo + grain_, checks_.size());
            next_ = hi;
            std::vector<Check> chunk;
            chunk.reserve(hi - lo);
            for (std::size_t i = lo; i < hi; ++i)
                chunk.push_back(std::move(checks_[i]));
            ++executing_;
            lock.unlock();

            bool chunk_ok = true;
            try {
                for (auto& check : chunk) {
                    // The conjunction is already false: skip the remaining
                    // work (the result cannot change — Bitcoin's fAllOk gate).
                    if (!ok_.load(std::memory_order_relaxed)) break;
                    if (!check()) {
                        chunk_ok = false;
                        break;
                    }
                }
            } catch (...) {
                // Checks are contractually non-throwing (signature checks
                // catch their own CryptoError); a throw that does escape
                // counts as a failed check rather than poisoning the queue.
                chunk_ok = false;
            }
            if (!chunk_ok) ok_.store(false, std::memory_order_relaxed);

            lock.lock();
            --executing_;
        }
        detail::checkqueue_tls() = prev;
        cv_.notify_all();
    }

    ThreadPool& pool_;
    const std::size_t grain_;
    std::mutex m_;
    std::condition_variable cv_;
    std::vector<Check> checks_;  // all checks of the current batch
    std::size_t next_ = 0;       // first unclaimed index
    std::size_t executing_ = 0;  // chunks currently running
    std::size_t helpers_ = 0;    // pool tasks scheduled and not yet finished
    std::atomic<bool> ok_{true};
};

} // namespace dlt
