#include "common/threadpool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace dlt {

ThreadPool::ThreadPool(std::size_t workers) {
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(m_);
        stopping_ = true;
    }
    cv_.notify_all();
    // Workers only exit once the queue is empty, so joining guarantees every
    // submitted task has run — CheckQueue helper accounting relies on this.
    for (auto& w : workers_) w.join();
}

namespace {
thread_local bool t_on_worker = false;
} // namespace

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::worker_loop() {
    t_on_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(m_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard lock(m_);
        if (!workers_.empty() && !stopping_) {
            queue_.push_back(std::move(task));
            cv_.notify_one();
            return;
        }
    }
    task(); // serial pool (or shutting down): run inline
}

namespace {

std::size_t default_global_workers() {
    if (const char* env = std::getenv("DLT_THREADS")) {
        const long n = std::atol(env);
        return n > 1 ? static_cast<std::size_t>(n - 1) : 0;
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 1 ? hc - 1 : 0;
}

std::mutex g_global_mutex;

std::unique_ptr<ThreadPool>& global_slot() {
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

} // namespace

ThreadPool& ThreadPool::global() {
    std::lock_guard lock(g_global_mutex);
    auto& slot = global_slot();
    if (!slot) slot = std::make_unique<ThreadPool>(default_global_workers());
    return *slot;
}

void ThreadPool::set_global_workers(std::size_t workers) {
    std::lock_guard lock(g_global_mutex);
    auto& slot = global_slot();
    slot.reset(); // drain and join the old pool before replacing it
    slot = std::make_unique<ThreadPool>(workers);
}

std::size_t ThreadPool::global_workers() { return global().worker_count(); }

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, std::size_t grain) {
    if (begin >= end) return;
    if (grain == 0) grain = 1;
    const std::size_t count = end - begin;
    const std::size_t chunks = (count + grain - 1) / grain;
    if (pool.worker_count() == 0 || chunks <= 1 || ThreadPool::on_worker_thread()) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
        return;
    }

    struct Shared {
        std::atomic<std::size_t> next;
        std::mutex m;
        std::condition_variable cv;
        std::size_t active_helpers = 0;
        std::exception_ptr error;
    } shared{std::atomic<std::size_t>(begin), {}, {}, 0, nullptr};

    auto run_chunks = [&] {
        for (;;) {
            const std::size_t lo = shared.next.fetch_add(grain);
            if (lo >= end) return;
            const std::size_t hi = std::min(lo + grain, end);
            for (std::size_t i = lo; i < hi; ++i) fn(i);
        }
    };

    const std::size_t helpers = std::min(pool.worker_count(), chunks - 1);
    {
        std::lock_guard lock(shared.m);
        shared.active_helpers = helpers;
    }
    for (std::size_t h = 0; h < helpers; ++h) {
        pool.submit([&shared, &run_chunks] {
            try {
                run_chunks();
            } catch (...) {
                std::lock_guard lock(shared.m);
                if (!shared.error) shared.error = std::current_exception();
            }
            std::lock_guard lock(shared.m);
            --shared.active_helpers;
            shared.cv.notify_all();
        });
    }

    std::exception_ptr caller_error;
    try {
        run_chunks();
    } catch (...) {
        caller_error = std::current_exception();
        shared.next.store(end); // stop helpers from claiming further chunks
    }

    std::unique_lock lock(shared.m);
    shared.cv.wait(lock, [&] { return shared.active_helpers == 0; });
    if (caller_error) std::rethrow_exception(caller_error);
    if (shared.error) std::rethrow_exception(shared.error);
}

namespace detail {

const void*& checkqueue_tls() {
    static thread_local const void* active = nullptr;
    return active;
}

} // namespace detail

} // namespace dlt
