// Precondition / postcondition / invariant support (I.5, I.7 of the C++ Core
// Guidelines). Violations are programming errors and throw dlt::ContractViolation
// so tests can observe them; they are not recoverable conditions.
#pragma once

#include <stdexcept>
#include <string>

namespace dlt {

/// Thrown when an Expects/Ensures/Invariant check fails.
class ContractViolation : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
    throw ContractViolation(std::string(kind) + " failed: " + expr + " at " + file +
                            ":" + std::to_string(line));
}
} // namespace detail

} // namespace dlt

#define DLT_EXPECTS(cond)                                                          \
    ((cond) ? static_cast<void>(0)                                                 \
            : ::dlt::detail::contract_fail("precondition", #cond, __FILE__, __LINE__))

#define DLT_ENSURES(cond)                                                          \
    ((cond) ? static_cast<void>(0)                                                 \
            : ::dlt::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__))

#define DLT_INVARIANT(cond)                                                        \
    ((cond) ? static_cast<void>(0)                                                 \
            : ::dlt::detail::contract_fail("invariant", #cond, __FILE__, __LINE__))
