// Byte-buffer primitives: the Bytes alias, fixed-size hash values, and hex codecs.
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dlt {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Encode a byte range as lowercase hex.
std::string to_hex(ByteView data);

/// Decode a hex string (case-insensitive, no prefix). Throws DecodeError on
/// odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Append `src` to `dst`.
void append(Bytes& dst, ByteView src);

/// Convert a string's bytes into a Bytes buffer.
Bytes to_bytes(std::string_view text);

/// Fixed-width value type for hash digests and similar opaque identifiers.
/// Comparable, hashable, hex-printable; no invariant beyond its size (C.2).
template <std::size_t N>
struct FixedBytes {
    std::array<std::uint8_t, N> data{};

    static constexpr std::size_t size() { return N; }

    auto operator<=>(const FixedBytes&) const = default;

    std::uint8_t& operator[](std::size_t i) { return data[i]; }
    const std::uint8_t& operator[](std::size_t i) const { return data[i]; }

    ByteView view() const { return ByteView{data.data(), N}; }
    Bytes bytes() const { return Bytes(data.begin(), data.end()); }
    std::string hex() const { return to_hex(view()); }

    /// True when every byte is zero (the conventional "null" value).
    bool is_zero() const {
        for (auto b : data)
            if (b != 0) return false;
        return true;
    }

    /// Parse from hex; throws DecodeError unless exactly 2*N hex digits.
    static FixedBytes from_hex_str(std::string_view hex);

    /// Construct from a byte range of exactly N bytes (throws DecodeError otherwise).
    static FixedBytes from_bytes(ByteView bytes);
};

using Hash256 = FixedBytes<32>;
using Hash160 = FixedBytes<20>;

/// FNV-1a over the contents; suitable for unordered_map keys, not security.
template <std::size_t N>
std::size_t hash_value(const FixedBytes<N>& v) {
    std::size_t h = 14695981039346656037ull;
    for (auto b : v.data) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace dlt

template <std::size_t N>
struct std::hash<dlt::FixedBytes<N>> {
    std::size_t operator()(const dlt::FixedBytes<N>& v) const noexcept {
        return dlt::hash_value(v);
    }
};
