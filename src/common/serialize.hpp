// Endian-safe binary serialization. All integers are little-endian on the wire
// (matching Bitcoin-family encodings); variable-length integers use the Bitcoin
// CompactSize scheme. Writer appends to an owned buffer; Reader consumes a view
// and throws DecodeError on underflow or malformed input.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace dlt {

class Writer {
public:
    Writer() = default;

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) { write_le(v); }
    void u32(std::uint32_t v) { write_le(v); }
    void u64(std::uint64_t v) { write_le(v); }
    void i64(std::int64_t v) { write_le(static_cast<std::uint64_t>(v)); }
    void f64(double v);

    /// Bitcoin CompactSize: 1, 3, 5, or 9 bytes depending on magnitude.
    void varint(std::uint64_t v);

    void bytes(ByteView data) { append(buf_, data); }

    /// Length-prefixed (varint) byte string.
    void blob(ByteView data) {
        varint(data.size());
        bytes(data);
    }

    void str(std::string_view s) {
        blob(ByteView{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
    }

    template <std::size_t N>
    void fixed(const FixedBytes<N>& v) {
        bytes(v.view());
    }

    const Bytes& data() const& { return buf_; }
    Bytes take() && { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

    /// Grow the buffer's capacity for `upcoming` more bytes. Purely a
    /// performance hint for bulk encoders (snapshot builds) that know their
    /// output size up front; never changes the produced bytes.
    void reserve(std::size_t upcoming) { buf_.reserve(buf_.size() + upcoming); }

private:
    template <typename T>
    void write_le(T v) {
        static_assert(std::is_unsigned_v<T>);
        // One ranged insert instead of per-byte push_back: the grow check
        // runs once per value, not once per byte (hot in snapshot encodes).
        std::uint8_t tmp[sizeof(T)];
        for (std::size_t i = 0; i < sizeof(T); ++i)
            tmp[i] = static_cast<std::uint8_t>(v >> (8 * i));
        buf_.insert(buf_.end(), tmp, tmp + sizeof(T));
    }

    Bytes buf_;
};

class Reader {
public:
    explicit Reader(ByteView data) : data_(data) {}

    std::uint8_t u8() { return take(1)[0]; }
    std::uint16_t u16() { return read_le<std::uint16_t>(); }
    std::uint32_t u32() { return read_le<std::uint32_t>(); }
    std::uint64_t u64() { return read_le<std::uint64_t>(); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();

    std::uint64_t varint();

    /// Read a varint element count and validate it against the bytes actually
    /// remaining (each element needs at least `min_bytes_per_item`). Prevents
    /// attacker-controlled counts from driving huge allocations before the
    /// decoder hits the end of input.
    std::uint64_t varint_count(std::size_t min_bytes_per_item = 1) {
        const std::uint64_t n = varint();
        if (min_bytes_per_item > 0 &&
            n > remaining() / min_bytes_per_item)
            throw DecodeError("element count exceeds remaining input");
        return n;
    }

    Bytes bytes(std::size_t n) {
        const ByteView v = take(n);
        return Bytes(v.begin(), v.end());
    }

    Bytes blob() {
        const std::uint64_t n = varint();
        if (n > remaining()) throw DecodeError("blob length exceeds input");
        return bytes(static_cast<std::size_t>(n));
    }

    std::string str() {
        const Bytes b = blob();
        return std::string(b.begin(), b.end());
    }

    template <std::size_t N>
    FixedBytes<N> fixed() {
        return FixedBytes<N>::from_bytes(take(N));
    }

    std::size_t remaining() const { return data_.size() - pos_; }
    bool done() const { return remaining() == 0; }

    /// Throws unless the whole input was consumed; call at the end of decoding.
    void expect_done() const {
        if (!done()) throw DecodeError("trailing bytes after decode");
    }

private:
    ByteView take(std::size_t n) {
        if (n > remaining()) throw DecodeError("read past end of input");
        const ByteView v = data_.subspan(pos_, n);
        pos_ += n;
        return v;
    }

    template <typename T>
    T read_le() {
        static_assert(std::is_unsigned_v<T>);
        const ByteView v = take(sizeof(T));
        T out = 0;
        for (std::size_t i = 0; i < sizeof(T); ++i)
            out |= static_cast<T>(static_cast<T>(v[i]) << (8 * i));
        return out;
    }

    ByteView data_;
    std::size_t pos_ = 0;
};

/// Serialize any type providing `void encode(Writer&) const` to a fresh buffer.
template <typename T>
Bytes encode_to_bytes(const T& value) {
    Writer w;
    value.encode(w);
    return std::move(w).take();
}

/// Decode a T from a buffer via `static T decode(Reader&)`, requiring full consumption.
template <typename T>
T decode_from_bytes(ByteView data) {
    Reader r(data);
    T value = T::decode(r);
    r.expect_done();
    return value;
}

} // namespace dlt
