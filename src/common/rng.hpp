// Deterministic random-number generation. Everything stochastic in the framework
// (network latencies, mining races, gossip fanout choices, workload generators)
// draws from Rng streams seeded explicitly, so simulations are reproducible.
// Engine: xoshiro256** (public domain, Blackman & Vigna).
#pragma once

#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace dlt {

class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds via splitmix64 so nearby seeds give uncorrelated streams.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() {
        return std::numeric_limits<result_type>::max();
    }

    /// Raw 64 random bits (UniformRandomBitGenerator requirement).
    result_type operator()() { return next(); }

    std::uint64_t next();

    /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
    std::uint64_t uniform(std::uint64_t bound);

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [0, 1).
    double uniform01();

    /// Exponential with the given rate (events per unit time); rate must be > 0.
    double exponential(double rate);

    /// Normal via Box-Muller.
    double normal(double mean, double stddev);

    /// Bernoulli trial.
    bool chance(double p);

    /// Derive an independent child stream; children with distinct tags are
    /// uncorrelated with each other and with the parent.
    Rng fork(std::uint64_t tag);

    /// Fisher-Yates shuffle of a random-access container.
    template <typename Container>
    void shuffle(Container& c) {
        if (c.size() < 2) return;
        for (std::size_t i = c.size() - 1; i > 0; --i) {
            const std::size_t j = static_cast<std::size_t>(uniform(i + 1));
            using std::swap;
            swap(c[i], c[j]);
        }
    }

    /// Pick a uniformly random element index for a container of size n.
    std::size_t index(std::size_t n) {
        DLT_EXPECTS(n > 0);
        return static_cast<std::size_t>(uniform(n));
    }

private:
    std::uint64_t s_[4];
};

} // namespace dlt
