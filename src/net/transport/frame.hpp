// Wire framing for the socket-backed transport (ROADMAP item 1, the
// deployment mode behind E29). Every frame on a TCP connection is
//
//   u32 length   (LE)  — byte length of kind + payload; bounded by
//                        FrameLimits::max_frame_bytes so a corrupt or hostile
//                        length prefix cannot drive a huge allocation
//   u32 crc32c   (LE)  — CRC-32C over kind + payload (the storage layer's
//                        record checksum, reused unchanged)
//   u8  kind           — kHello | kMessage
//   payload            — kind-specific body, existing wire codec (serialize.hpp)
//
// kHello carries {magic, version, node id}: the first frame each side of a
// fresh connection sends, identifying the peer before any message flows.
// kMessage carries {topic string, body bytes} — the exact (topic, payload)
// surface the simulated net::Network delivers, so protocol code is oblivious
// to which transport framed it.
//
// FrameDecoder is an incremental parser: feed() it arbitrary byte chunks as
// they arrive from a socket and next() pops complete frames. Partial reads
// resume exactly where they stopped; a bad CRC, an oversized length, or a
// malformed payload throws DecodeError and the connection should be dropped
// (tests/test_transport.cpp fuzzes all three paths).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/serialize.hpp"

namespace dlt::net::transport {

/// First bytes of every HELLO payload ("DLTP"); a connection whose first
/// frame carries anything else is not speaking this protocol.
inline constexpr std::uint32_t kProtocolMagic = 0x444C'5450u;
inline constexpr std::uint16_t kProtocolVersion = 1;

enum class FrameKind : std::uint8_t {
    kHello = 0,   // handshake: magic + version + node id
    kMessage = 1, // topic + body
};

struct FrameLimits {
    /// Upper bound on kind + payload bytes. Frames above this are rejected
    /// before any allocation (a 1 MB block plus topic overhead fits with
    /// plenty of headroom; raise it for bigger-block experiments).
    std::size_t max_frame_bytes = 8u << 20;
};

struct Hello {
    std::uint32_t magic = kProtocolMagic;
    std::uint16_t version = kProtocolVersion;
    std::uint32_t node_id = 0;

    void encode(Writer& w) const;
    /// Throws DecodeError on short input, wrong magic, or version mismatch.
    static Hello decode(Reader& r);
};

struct Frame {
    FrameKind kind = FrameKind::kMessage;
    Bytes payload;
};

/// A decoded kMessage payload.
struct WireMessage {
    std::string topic;
    Bytes body;
};

/// Encode a complete on-the-wire frame (length prefix + CRC included).
Bytes encode_frame(FrameKind kind, ByteView payload);

/// Convenience: a kHello frame for `node_id`.
Bytes encode_hello_frame(std::uint32_t node_id);

/// Convenience: a kMessage frame carrying (topic, body).
Bytes encode_message_frame(const std::string& topic, ByteView body);

/// Parse a kMessage payload. Throws DecodeError on malformed input.
WireMessage decode_message_payload(ByteView payload);

/// Incremental frame parser over a byte stream.
class FrameDecoder {
public:
    explicit FrameDecoder(FrameLimits limits = {}) : limits_(limits) {}

    /// Append newly received bytes.
    void feed(ByteView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

    /// Pop the next complete frame, or nullopt when more bytes are needed.
    /// Throws DecodeError on an oversized length prefix, a CRC mismatch, or
    /// an unknown frame kind — the stream is unrecoverable after that.
    std::optional<Frame> next();

    /// Bytes buffered but not yet consumed by a complete frame.
    std::size_t buffered() const { return buf_.size() - pos_; }

private:
    FrameLimits limits_;
    Bytes buf_;
    std::size_t pos_ = 0; // consumed prefix of buf_ (compacted lazily)
};

} // namespace dlt::net::transport
