#include "net/transport/frame.hpp"

#include "common/error.hpp"
#include "storage/crc32.hpp"

namespace dlt::net::transport {

void Hello::encode(Writer& w) const {
    w.u32(magic);
    w.u16(version);
    w.u32(node_id);
}

Hello Hello::decode(Reader& r) {
    Hello h;
    h.magic = r.u32();
    if (h.magic != kProtocolMagic)
        throw DecodeError("transport hello: bad protocol magic");
    h.version = r.u16();
    if (h.version != kProtocolVersion)
        throw DecodeError("transport hello: unsupported protocol version " +
                          std::to_string(h.version));
    h.node_id = r.u32();
    return h;
}

Bytes encode_frame(FrameKind kind, ByteView payload) {
    Writer w;
    w.reserve(payload.size() + 9);
    w.u32(static_cast<std::uint32_t>(payload.size() + 1)); // + kind byte
    // CRC over kind + payload: checksum the kind byte first, then continue
    // over the payload (crc32c's seed parameter chains the two pieces).
    const std::uint8_t kind_byte = static_cast<std::uint8_t>(kind);
    std::uint32_t crc = storage::crc32c(ByteView(&kind_byte, 1));
    crc = storage::crc32c(payload, crc);
    w.u32(crc);
    w.u8(kind_byte);
    w.bytes(payload);
    return std::move(w).take();
}

Bytes encode_hello_frame(std::uint32_t node_id) {
    Hello h;
    h.node_id = node_id;
    return encode_frame(FrameKind::kHello, ByteView(encode_to_bytes(h)));
}

Bytes encode_message_frame(const std::string& topic, ByteView body) {
    Writer w;
    w.reserve(topic.size() + body.size() + 9);
    w.str(topic);
    w.bytes(body);
    return encode_frame(FrameKind::kMessage, ByteView(w.data()));
}

WireMessage decode_message_payload(ByteView payload) {
    Reader r(payload);
    WireMessage m;
    m.topic = r.str();
    m.body = r.bytes(r.remaining());
    return m;
}

std::optional<Frame> FrameDecoder::next() {
    const std::size_t avail = buf_.size() - pos_;
    if (avail < 8) return std::nullopt;

    const auto* base = buf_.data() + pos_;
    const std::uint32_t length = static_cast<std::uint32_t>(base[0]) |
                                 (static_cast<std::uint32_t>(base[1]) << 8) |
                                 (static_cast<std::uint32_t>(base[2]) << 16) |
                                 (static_cast<std::uint32_t>(base[3]) << 24);
    // Validate the length *before* waiting for the body: a corrupt prefix
    // must not make the decoder buffer gigabytes hoping for completion.
    if (length < 1 || length > limits_.max_frame_bytes)
        throw DecodeError("transport frame: length " + std::to_string(length) +
                          " outside [1, " +
                          std::to_string(limits_.max_frame_bytes) + "]");
    if (avail < 8 + static_cast<std::size_t>(length)) return std::nullopt;

    const std::uint32_t want_crc = static_cast<std::uint32_t>(base[4]) |
                                   (static_cast<std::uint32_t>(base[5]) << 8) |
                                   (static_cast<std::uint32_t>(base[6]) << 16) |
                                   (static_cast<std::uint32_t>(base[7]) << 24);
    const ByteView body(base + 8, length);
    if (storage::crc32c(body) != want_crc)
        throw DecodeError("transport frame: CRC mismatch");

    const std::uint8_t kind_byte = body[0];
    if (kind_byte > static_cast<std::uint8_t>(FrameKind::kMessage))
        throw DecodeError("transport frame: unknown kind " +
                          std::to_string(kind_byte));

    Frame frame;
    frame.kind = static_cast<FrameKind>(kind_byte);
    frame.payload.assign(body.begin() + 1, body.end());
    pos_ += 8 + length;
    // Compact once the consumed prefix dominates, keeping feed() amortized
    // O(1) instead of memmoving the tail after every frame.
    if (pos_ >= 4096 && pos_ * 2 >= buf_.size()) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    return frame;
}

} // namespace dlt::net::transport
