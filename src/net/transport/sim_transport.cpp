#include "net/transport/sim_transport.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace dlt::net::transport {

SimTransportHub::SimTransportHub(Network& network, std::size_t node_count)
    : network_(&network) {
    DLT_EXPECTS(network.node_count() == 0);
    endpoints_.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
        auto endpoint = std::unique_ptr<SimTransport>(
            new SimTransport(*this, static_cast<PeerId>(i)));
        SimTransport* raw = endpoint.get();
        const NodeId id =
            network.add_node([raw](const Delivery& d) { raw->deliver(d); });
        DLT_INVARIANT(id == raw->local_id());
        endpoints_.push_back(std::move(endpoint));
    }
}

std::vector<PeerId> SimTransport::peer_ids() const {
    // Network::neighbors is insertion-ordered; sort for the deterministic
    // ascending fan-out order the Transport contract promises.
    std::vector<PeerId> peers = hub_->network_->neighbors(id_);
    std::sort(peers.begin(), peers.end());
    return peers;
}

bool SimTransport::send(PeerId to, const std::string& topic, ByteView payload) {
    if (down_) return false;
    try {
        hub_->network_->send(id_, to, topic, Bytes(payload.begin(), payload.end()));
    } catch (const ValidationError&) {
        return false; // not currently linked (peer churned away)
    }
    return true;
}

void SimTransport::deliver(const Delivery& d) {
    if (down_ || !handler_) return;
    handler_(d.from, d.topic, ByteView(d.payload()));
}

double SimTransport::now() const { return hub_->network_->scheduler().now(); }

TimerId SimTransport::schedule_after(double delay_s, std::function<void()> fn) {
    return hub_->network_->scheduler().schedule_after(delay_s, std::move(fn));
}

bool SimTransport::cancel_timer(TimerId id) {
    return hub_->network_->scheduler().cancel(id);
}

} // namespace dlt::net::transport
