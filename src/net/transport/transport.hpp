// Transport abstraction (ROADMAP item 1): the seam between protocol logic and
// the medium carrying it. A Transport is one node's endpoint — it can send a
// (topic, payload) message to a named peer, receive the same shape through a
// handler, and schedule timers against the transport's own clock. Two
// implementations exist:
//
//   SimTransport (sim_transport.hpp) — a view over the deterministic
//     discrete-event net::Network. Virtual time, seeded latency models, fault
//     injection; the default every experiment keeps using. Handler and timer
//     callbacks run from the single-threaded scheduler loop.
//
//   TcpTransport (tcp_transport.hpp) — real non-blocking TCP sockets with
//     CRC-framed messages (frame.hpp), per-peer bounded outbound queues, and
//     exponential-backoff reconnect. Wall-clock time; callbacks run from the
//     transport's event-loop thread.
//
// The contract both uphold: all handler, timer, and post() callbacks for one
// endpoint are serialized on a single logical thread, so protocol code
// (core::Replica) needs no locks of its own. send() is safe to call from any
// thread and never blocks the caller; delivery is best-effort (the sim fault
// layer or a full/broken TCP connection may drop a message), so protocols must
// tolerate loss — exactly the discipline the simulated stack already imposes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace dlt::net::transport {

/// Peer identifier; shares the value space of net::NodeId so a sim node and a
/// socket-backed process can run the same protocol code unchanged.
using PeerId = std::uint32_t;

/// Token for a scheduled timer; usable to cancel it.
using TimerId = std::uint64_t;

class Transport {
public:
    /// Delivery callback: (peer the message arrived from, topic, payload).
    /// The payload view is valid only for the duration of the call.
    using Handler =
        std::function<void(PeerId from, const std::string& topic, ByteView payload)>;

    virtual ~Transport() = default;

    /// This endpoint's own peer id.
    virtual PeerId local_id() const = 0;

    /// Peers this endpoint can currently address (configured peers for TCP,
    /// linked neighbors for the sim). Sorted ascending, so broadcast order is
    /// deterministic.
    virtual std::vector<PeerId> peer_ids() const = 0;

    /// Install the delivery callback. Must happen before traffic flows.
    virtual void set_handler(Handler handler) = 0;

    /// Queue a message to one peer. Returns false when the transport already
    /// knows delivery is impossible (unknown peer, or a bounded outbound
    /// queue shedding load); true means "accepted", not "delivered".
    virtual bool send(PeerId to, const std::string& topic, ByteView payload) = 0;

    /// Send to every current peer (fan-out in peer_ids() order).
    void broadcast(const std::string& topic, ByteView payload) {
        for (const PeerId p : peer_ids()) send(p, topic, payload);
    }
    /// Fan-out that skips one peer (gossip relays never echo to the sender).
    void broadcast_except(PeerId skip, const std::string& topic, ByteView payload) {
        for (const PeerId p : peer_ids())
            if (p != skip) send(p, topic, payload);
    }

    /// Transport-local clock in seconds: virtual sim-time for SimTransport,
    /// monotonic wall-clock seconds since start for TcpTransport.
    virtual double now() const = 0;

    /// Run `fn` on the transport's callback thread after `delay_s` seconds.
    virtual TimerId schedule_after(double delay_s, std::function<void()> fn) = 0;

    /// Cancel a pending timer; false when it already fired or was cancelled.
    virtual bool cancel_timer(TimerId id) = 0;

    /// Run `fn` on the transport's callback thread as soon as possible (the
    /// cross-thread entry point: RPC threads post work into the loop).
    virtual void post(std::function<void()> fn) = 0;

    /// Stop delivering callbacks and release I/O resources. Idempotent; after
    /// shutdown, send/post are safe no-ops.
    virtual void shutdown() = 0;
};

} // namespace dlt::net::transport
