#include "net/transport/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace dlt::net::transport {

namespace {

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw ValidationError("tcp transport: not an IPv4 address: " + host);
    return addr;
}

std::string errno_text(const char* what) {
    return std::string(what) + ": " + std::strerror(errno);
}

} // namespace

TcpTransport::TcpTransport(TcpTransportConfig config)
    : config_(std::move(config)), epoch_(std::chrono::steady_clock::now()) {
    auto& reg = obs::MetricsRegistry::global();
    bytes_sent_ = &reg.counter("net_tcp_bytes_sent_total",
                               "Framed bytes written to peer sockets");
    bytes_received_ = &reg.counter("net_tcp_bytes_received_total",
                                   "Framed bytes read from peer sockets");
    frames_sent_ = &reg.counter("net_tcp_frames_sent_total",
                                "Complete frames written to peer sockets");
    frames_received_ = &reg.counter("net_tcp_frames_received_total",
                                    "Complete frames decoded from peer sockets");
    reconnects_ = &reg.counter("net_tcp_reconnects_total",
                               "Peer connections re-established after a drop");
    handshake_failures_ =
        &reg.counter("net_tcp_handshake_failures_total",
                     "Connections rejected during the HELLO exchange");
    send_drops_ = &reg.counter("net_tcp_send_drops_total",
                               "Messages refused because a peer queue was full");
    decode_errors_ = &reg.counter("net_tcp_decode_errors_total",
                                  "Connections dropped on a framing error");
    auto& queue_family = reg.gauge_family("net_tcp_send_queue_bytes",
                                          "Outbound queue depth per peer (bytes)",
                                          {"peer"});

    for (const TcpPeer& peer : config_.peers) {
        DLT_EXPECTS(peer.id != config_.local_id);
        PeerState st;
        st.cfg = peer;
        st.dialer = config_.local_id > peer.id;
        st.decoder = FrameDecoder(config_.frame);
        st.queue_gauge = &queue_family.with({std::to_string(peer.id)});
        const bool inserted = peers_.emplace(peer.id, std::move(st)).second;
        DLT_EXPECTS(inserted); // duplicate peer id in config
    }

    int fds[2];
    if (::pipe(fds) != 0) throw Error(errno_text("tcp transport: pipe()"));
    wake_rd_ = fds[0];
    wake_wr_ = fds[1];
    set_nonblocking(wake_rd_);
    set_nonblocking(wake_wr_);

    open_listener();
}

TcpTransport::~TcpTransport() {
    shutdown();
    {
        std::lock_guard lk(join_m_);
        if (thread_.joinable()) thread_.join();
    }
    for (auto& [id, p] : peers_)
        if (p.fd >= 0) ::close(p.fd);
    for (Pending& pd : pending_)
        if (pd.fd >= 0) ::close(pd.fd);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_rd_ >= 0) ::close(wake_rd_);
    if (wake_wr_ >= 0) ::close(wake_wr_);
}

void TcpTransport::open_listener() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw Error(errno_text("tcp transport: socket()"));
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = make_addr(config_.listen_host, config_.listen_port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
        throw Error(errno_text("tcp transport: bind()"));
    if (::listen(listen_fd_, 64) != 0)
        throw Error(errno_text("tcp transport: listen()"));
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
        throw Error(errno_text("tcp transport: getsockname()"));
    bound_port_ = ntohs(addr.sin_port);
    set_nonblocking(listen_fd_);
}

void TcpTransport::start() {
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true)) return;
    thread_ = std::thread([this] { loop(); });
}

std::vector<PeerId> TcpTransport::peer_ids() const {
    std::vector<PeerId> ids;
    ids.reserve(peers_.size());
    for (const auto& [id, p] : peers_) ids.push_back(id); // map: already sorted
    return ids;
}

void TcpTransport::set_handler(Handler handler) {
    DLT_EXPECTS(!running_.load(std::memory_order_acquire));
    handler_ = std::move(handler);
}

bool TcpTransport::send(PeerId to, const std::string& topic, ByteView payload) {
    if (stopping_.load(std::memory_order_acquire)) return false;
    Bytes framed = encode_message_frame(topic, payload);
    // Frame bodies past the decode limit would be rejected by the receiver;
    // refuse them at the source instead of wasting the bandwidth.
    if (framed.size() - 8 > config_.frame.max_frame_bytes) {
        send_drops_->inc();
        return false;
    }
    {
        std::lock_guard lk(m_);
        PeerState* p = find_peer(to);
        if (p == nullptr) return false;
        if (p->outq_bytes + framed.size() > config_.max_queue_bytes_per_peer) {
            send_drops_->inc();
            return false;
        }
        p->outq_bytes += framed.size();
        p->outq.push_back(std::move(framed));
        p->queue_gauge->set(static_cast<double>(p->outq_bytes));
    }
    wake();
    return true;
}

double TcpTransport::now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
        .count();
}

TimerId TcpTransport::schedule_after(double delay_s, std::function<void()> fn) {
    TimerId id;
    {
        std::lock_guard lk(m_);
        id = next_timer_++;
        timers_[id] = Timer{now() + std::max(0.0, delay_s), std::move(fn)};
    }
    wake();
    return id;
}

bool TcpTransport::cancel_timer(TimerId id) {
    std::lock_guard lk(m_);
    return timers_.erase(id) > 0;
}

void TcpTransport::post(std::function<void()> fn) {
    {
        std::lock_guard lk(m_);
        posted_.push_back(std::move(fn));
    }
    wake();
}

void TcpTransport::shutdown() {
    stopping_.store(true, std::memory_order_release);
    wake();
    if (thread_.get_id() == std::this_thread::get_id())
        return; // called from a callback: the destructor finishes the join
    std::lock_guard lk(join_m_);
    if (thread_.joinable()) thread_.join();
}

void TcpTransport::wake() {
    if (wake_wr_ < 0) return;
    const std::uint8_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &one, 1);
}

void TcpTransport::drain_wake() {
    std::uint8_t buf[256];
    while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
    }
}

TcpTransport::PeerState* TcpTransport::find_peer(PeerId id) {
    const auto it = peers_.find(id);
    return it != peers_.end() ? &it->second : nullptr;
}

void TcpTransport::loop() {
    std::vector<pollfd> pfds;
    std::vector<PeerId> poll_peers;  // pfds[2 + i] belongs to poll_peers[i]
    std::vector<int> poll_pending;   // then one entry per pending fd

    while (!stopping_.load(std::memory_order_acquire)) {
        const double t = now();
        double timeout_s = 0.5;

        // Dial peers whose retry deadline has passed.
        for (auto& [id, p] : peers_) {
            if (!p.dialer || p.state != ConnState::kDown) continue;
            if (t >= p.retry_at)
                begin_dial(p);
            else
                timeout_s = std::min(timeout_s, p.retry_at - t);
        }

        pfds.clear();
        poll_peers.clear();
        poll_pending.clear();
        pfds.push_back({wake_rd_, POLLIN, 0});
        pfds.push_back({listen_fd_, POLLIN, 0});
        {
            std::lock_guard lk(m_);
            for (auto& [id, p] : peers_) {
                if (p.fd < 0) continue;
                short events = 0;
                if (p.state == ConnState::kConnecting) {
                    events = POLLOUT;
                } else {
                    events = POLLIN;
                    if (!p.outq.empty()) events |= POLLOUT;
                }
                pfds.push_back({p.fd, events, 0});
                poll_peers.push_back(id);
            }
            if (!posted_.empty()) timeout_s = 0;
            for (const auto& [id, timer] : timers_)
                timeout_s = std::min(timeout_s, std::max(0.0, timer.at - t));
        }
        for (const Pending& pd : pending_) {
            pfds.push_back({pd.fd, POLLIN, 0});
            poll_pending.push_back(pd.fd);
        }

        const int timeout_ms =
            static_cast<int>(std::min(timeout_s, 0.5) * 1000.0) + 1;
        const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
        if (stopping_.load(std::memory_order_acquire)) break;
        if (ready < 0) {
            if (errno == EINTR) continue;
            break; // unrecoverable poll failure; daemon-level code will notice
        }

        if (pfds[0].revents != 0) drain_wake();
        if (pfds[1].revents != 0) accept_ready();

        for (std::size_t i = 0; i < poll_peers.size(); ++i) {
            const pollfd& pf = pfds[2 + i];
            if (pf.revents == 0) continue;
            PeerState* p = find_peer(poll_peers[i]);
            if (p == nullptr || p->fd != pf.fd) continue; // replaced meanwhile
            if (p->state == ConnState::kConnecting) {
                if (pf.revents & (POLLOUT | POLLERR | POLLHUP)) finish_dial(*p);
                continue;
            }
            if (pf.revents & (POLLIN | POLLERR | POLLHUP)) read_peer(*p);
            if (p->fd >= 0 && (pf.revents & POLLOUT)) flush_peer(*p);
        }

        // Pending sockets: match by fd (adoption/closure mutates pending_).
        const std::size_t pending_base = 2 + poll_peers.size();
        for (std::size_t i = 0; i < poll_pending.size(); ++i) {
            if (pfds[pending_base + i].revents == 0) continue;
            const int fd = poll_pending[i];
            for (std::size_t j = 0; j < pending_.size(); ++j) {
                if (pending_[j].fd != fd) continue;
                if (!read_pending(pending_[j]))
                    pending_.erase(pending_.begin() +
                                   static_cast<std::ptrdiff_t>(j));
                break;
            }
        }

        fire_due_timers();
        drain_posted();
    }

    // Teardown on the loop thread so no other thread ever races the sockets.
    for (auto& [id, p] : peers_) {
        if (p.fd >= 0) ::close(p.fd);
        p.fd = -1;
        p.state = ConnState::kDown;
    }
    for (Pending& pd : pending_)
        if (pd.fd >= 0) ::close(pd.fd);
    pending_.clear();
    ready_count_.store(0, std::memory_order_relaxed);
}

void TcpTransport::accept_ready() {
    while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return; // EAGAIN or transient accept failure: retry next poll
        }
        set_nonblocking(fd);
        set_nodelay(fd);
        Pending pd;
        pd.fd = fd;
        pd.decoder = FrameDecoder(config_.frame);
        pending_.push_back(std::move(pd));
    }
}

void TcpTransport::begin_dial(PeerState& p) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        arm_retry(p);
        return;
    }
    set_nonblocking(fd);
    sockaddr_in addr;
    try {
        addr = make_addr(p.cfg.host, p.cfg.port);
    } catch (const ValidationError&) {
        ::close(fd); // misconfigured peer address: keep retrying, never crash
        arm_retry(p);
        return;
    }
    const int rc =
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
        ::close(fd);
        arm_retry(p);
        return;
    }
    p.fd = fd;
    p.state = ConnState::kConnecting;
}

void TcpTransport::finish_dial(PeerState& p) {
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(p.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
        close_conn(p);
        return;
    }
    set_nodelay(p.fd);
    p.state = ConnState::kHandshake;
    p.decoder = FrameDecoder(config_.frame);
    p.saw_hello = false;
    {
        std::lock_guard lk(m_);
        queue_hello_locked(p);
    }
    flush_peer(p);
}

void TcpTransport::queue_hello_locked(PeerState& p) {
    // A fresh connection never inherits a partial write, so the front of the
    // queue is a frame boundary and the HELLO can jump the line.
    DLT_INVARIANT(p.front_off == 0);
    Bytes hello = encode_hello_frame(config_.local_id);
    p.outq_bytes += hello.size();
    p.outq.push_front(std::move(hello));
    p.queue_gauge->set(static_cast<double>(p.outq_bytes));
}

void TcpTransport::mark_ready(PeerState& p) {
    p.state = ConnState::kReady;
    p.backoff_s = 0;
    ready_count_.fetch_add(1, std::memory_order_relaxed);
    if (p.ever_connected)
        reconnects_->inc();
    else
        p.ever_connected = true;
}

void TcpTransport::close_conn(PeerState& p) {
    if (p.fd >= 0) {
        ::close(p.fd);
        p.fd = -1;
    }
    if (p.state == ConnState::kReady)
        ready_count_.fetch_sub(1, std::memory_order_relaxed);
    p.state = ConnState::kDown;
    p.saw_hello = false;
    p.decoder = FrameDecoder(config_.frame);
    {
        std::lock_guard lk(m_);
        // Drop a half-written frame — resuming it on a new connection would
        // corrupt the stream. Whole queued frames stay for the reconnect.
        if (p.front_off > 0 && !p.outq.empty()) {
            p.outq_bytes -= p.outq.front().size();
            p.outq.pop_front();
            p.front_off = 0;
            p.queue_gauge->set(static_cast<double>(p.outq_bytes));
        }
    }
    if (p.dialer) arm_retry(p);
}

void TcpTransport::arm_retry(PeerState& p) {
    p.backoff_s = p.backoff_s == 0
                      ? config_.reconnect_base_s
                      : std::min(p.backoff_s * 2, config_.reconnect_max_s);
    p.retry_at = now() + p.backoff_s;
}

void TcpTransport::read_peer(PeerState& p) {
    std::uint8_t buf[65536];
    while (p.fd >= 0) {
        const ssize_t n = ::recv(p.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            bytes_received_->inc(static_cast<std::uint64_t>(n));
            try {
                p.decoder.feed(ByteView(buf, static_cast<std::size_t>(n)));
                drain_peer_frames(p);
            } catch (const DecodeError&) {
                decode_errors_->inc();
                close_conn(p);
                return;
            }
            continue;
        }
        if (n == 0) {
            close_conn(p);
            return;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        close_conn(p);
        return;
    }
}

void TcpTransport::drain_peer_frames(PeerState& p) {
    while (auto frame = p.decoder.next()) {
        frames_received_->inc();
        if (!p.saw_hello) {
            if (frame->kind != FrameKind::kHello) {
                handshake_failures_->inc();
                close_conn(p);
                return;
            }
            Hello hello;
            try {
                hello = decode_from_bytes<Hello>(ByteView(frame->payload));
            } catch (const DecodeError&) {
                handshake_failures_->inc();
                close_conn(p);
                return;
            }
            if (hello.node_id != p.cfg.id) {
                handshake_failures_->inc();
                close_conn(p);
                return;
            }
            p.saw_hello = true;
            if (p.state == ConnState::kHandshake) mark_ready(p);
            continue;
        }
        if (frame->kind == FrameKind::kHello) {
            handshake_failures_->inc(); // duplicate HELLO: protocol violation
            close_conn(p);
            return;
        }
        WireMessage msg;
        try {
            msg = decode_message_payload(ByteView(frame->payload));
        } catch (const DecodeError&) {
            decode_errors_->inc();
            close_conn(p);
            return;
        }
        if (handler_) handler_(p.cfg.id, msg.topic, ByteView(msg.body));
        if (p.fd < 0) return; // a handler-triggered shutdown closed us
    }
}

void TcpTransport::flush_peer(PeerState& p) {
    bool broken = false;
    {
        std::lock_guard lk(m_);
        while (!p.outq.empty()) {
            const Bytes& front = p.outq.front();
            const ssize_t n = ::send(p.fd, front.data() + p.front_off,
                                     front.size() - p.front_off, MSG_NOSIGNAL);
            if (n > 0) {
                bytes_sent_->inc(static_cast<std::uint64_t>(n));
                p.front_off += static_cast<std::size_t>(n);
                if (p.front_off == front.size()) {
                    frames_sent_->inc();
                    p.outq_bytes -= front.size();
                    p.outq.pop_front();
                    p.front_off = 0;
                }
                continue;
            }
            if (n < 0 && errno == EINTR) continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            broken = true;
            break;
        }
        p.queue_gauge->set(static_cast<double>(p.outq_bytes));
    }
    if (broken) close_conn(p);
}

bool TcpTransport::read_pending(Pending& pd) {
    std::uint8_t buf[4096];
    while (true) {
        const ssize_t n = ::recv(pd.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            bytes_received_->inc(static_cast<std::uint64_t>(n));
            std::optional<Frame> frame;
            try {
                pd.decoder.feed(ByteView(buf, static_cast<std::size_t>(n)));
                frame = pd.decoder.next();
            } catch (const DecodeError&) {
                handshake_failures_->inc();
                ::close(pd.fd);
                return false;
            }
            if (!frame) continue; // HELLO still incomplete
            frames_received_->inc();
            PeerId from = 0;
            bool ok = frame->kind == FrameKind::kHello;
            if (ok) {
                try {
                    from = decode_from_bytes<Hello>(ByteView(frame->payload)).node_id;
                } catch (const DecodeError&) {
                    ok = false;
                }
            }
            // Only higher-id peers may dial us; anything else is a stranger.
            PeerState* p = ok ? find_peer(from) : nullptr;
            if (p == nullptr || p->dialer) {
                handshake_failures_->inc();
                ::close(pd.fd);
                return false;
            }
            adopt_pending(pd, from);
            return false; // fd now owned by the peer entry
        }
        if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
            ::close(pd.fd);
            return false;
        }
        if (errno == EINTR) continue;
        return true; // EAGAIN: HELLO not here yet, keep waiting
    }
}

void TcpTransport::adopt_pending(Pending& pd, PeerId id) {
    PeerState& p = *find_peer(id);
    // A peer that reconnects supersedes its old socket (it would not dial
    // again unless its side considered the old connection dead).
    if (p.fd >= 0) close_conn(p);
    p.fd = pd.fd;
    pd.fd = -1;
    p.decoder = std::move(pd.decoder); // may hold bytes past the HELLO
    p.saw_hello = true;
    {
        std::lock_guard lk(m_);
        queue_hello_locked(p);
    }
    mark_ready(p);
    try {
        drain_peer_frames(p); // frames that followed HELLO in the same read
    } catch (const DecodeError&) {
        decode_errors_->inc();
        close_conn(p);
        return;
    }
    if (p.fd >= 0) flush_peer(p);
}

void TcpTransport::fire_due_timers() {
    std::vector<std::pair<TimerId, Timer>> due;
    {
        std::lock_guard lk(m_);
        const double t = now();
        for (auto it = timers_.begin(); it != timers_.end();) {
            if (it->second.at <= t) {
                due.emplace_back(it->first, std::move(it->second));
                it = timers_.erase(it);
            } else {
                ++it;
            }
        }
    }
    std::sort(due.begin(), due.end(), [](const auto& a, const auto& b) {
        return a.second.at != b.second.at ? a.second.at < b.second.at
                                          : a.first < b.first;
    });
    for (auto& [id, timer] : due) {
        if (stopping_.load(std::memory_order_acquire)) return;
        timer.fn();
    }
}

void TcpTransport::drain_posted() {
    std::vector<std::function<void()>> run;
    {
        std::lock_guard lk(m_);
        run.swap(posted_);
    }
    for (auto& fn : run) {
        if (stopping_.load(std::memory_order_acquire)) return;
        fn();
    }
}

} // namespace dlt::net::transport
