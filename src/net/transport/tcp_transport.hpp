// TcpTransport: the socket-backed Transport (ROADMAP item 1's deployment
// mode). One endpoint per OS process; peers are (id, host, port) entries in
// the config. A single event-loop thread owns all I/O:
//
//   - non-blocking TCP sockets multiplexed with poll(); a self-pipe wakes the
//     loop for cross-thread send()/post()/timer arming
//   - the lower-id side of every pair *accepts*, the higher-id side *dials*
//     (deterministic single connection per pair with no simultaneous-open
//     races); a HELLO exchange (frame.hpp) identifies the peer before any
//     message flows, and mismatched magic/version/id closes the connection
//     (net_tcp_handshake_failures_total)
//   - per-peer bounded outbound queues: send() appends a framed message while
//     the queue is under max_queue_bytes_per_peer and reports backpressure by
//     returning false (net_tcp_send_drops_total) once it is full — gossip
//     protocols tolerate loss, and bounding here keeps a stalled peer from
//     eating the process's memory. Messages queued while a peer is down are
//     flushed when the connection (re)establishes.
//   - dialers reconnect with exponential backoff (base doubling up to max, so
//     a restarted peer is re-adopted within ~a backoff period;
//     net_tcp_reconnects_total counts re-establishments after the first)
//
// Handler, timer, and post() callbacks all run on the event-loop thread, which
// satisfies the Transport serialization contract. shutdown() (or destruction)
// closes every socket and joins the thread; it is idempotent and safe from
// any thread, including the event-loop thread itself (the join is skipped
// there and completed by the destructor).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport/frame.hpp"
#include "net/transport/transport.hpp"
#include "obs/metrics.hpp"

namespace dlt::net::transport {

struct TcpPeer {
    PeerId id = 0;
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
};

struct TcpTransportConfig {
    PeerId local_id = 0;
    std::string listen_host = "127.0.0.1";
    /// 0 lets the kernel pick; listen_port() reports the bound port.
    std::uint16_t listen_port = 0;
    std::vector<TcpPeer> peers;
    FrameLimits frame{};
    /// Outbound queue bound per peer (framed bytes). Sends beyond it are
    /// refused — the backpressure signal.
    std::size_t max_queue_bytes_per_peer = 32u << 20;
    /// Reconnect backoff: base doubling up to max (seconds).
    double reconnect_base_s = 0.05;
    double reconnect_max_s = 2.0;
};

class TcpTransport final : public Transport {
public:
    /// Binds the listen socket (throws dlt::Error on failure) but starts no
    /// I/O; call start() once the handler is installed.
    explicit TcpTransport(TcpTransportConfig config);
    ~TcpTransport() override;

    TcpTransport(const TcpTransport&) = delete;
    TcpTransport& operator=(const TcpTransport&) = delete;

    /// Launch the event-loop thread (idempotent).
    void start();

    /// The locally bound listen port (resolves a configured port of 0).
    std::uint16_t listen_port() const { return bound_port_; }

    /// Peers with a completed handshake right now.
    std::size_t connected_peers() const {
        return ready_count_.load(std::memory_order_relaxed);
    }

    // --- Transport -----------------------------------------------------------
    PeerId local_id() const override { return config_.local_id; }
    std::vector<PeerId> peer_ids() const override;
    void set_handler(Handler handler) override;
    bool send(PeerId to, const std::string& topic, ByteView payload) override;
    double now() const override;
    TimerId schedule_after(double delay_s, std::function<void()> fn) override;
    bool cancel_timer(TimerId id) override;
    void post(std::function<void()> fn) override;
    void shutdown() override;

private:
    enum class ConnState : std::uint8_t {
        kDown,       // no socket; dialers have a reconnect deadline armed
        kConnecting, // non-blocking connect() in flight
        kHandshake,  // TCP up, our HELLO queued, waiting for the peer's
        kReady,      // handshake complete, messages flow
    };

    // Per-peer connection state. Only the event-loop thread touches sockets,
    // decoder, and state; the outbound queue (outq/outq_bytes/front_off) is
    // shared with send() callers and guarded by m_.
    struct PeerState {
        TcpPeer cfg;
        bool dialer = false; // we dial iff our id > peer id
        ConnState state = ConnState::kDown;
        int fd = -1;
        FrameDecoder decoder;
        bool saw_hello = false;
        bool ever_connected = false;
        std::deque<Bytes> outq; // framed bytes awaiting write
        std::size_t outq_bytes = 0;
        std::size_t front_off = 0; // partially written prefix of outq.front()
        double backoff_s = 0;
        double retry_at = 0; // loop-clock deadline for the next dial
        obs::Gauge* queue_gauge = nullptr; // net_tcp_send_queue_bytes{peer}
    };

    /// Accepted socket whose HELLO has not arrived yet (peer id unknown).
    struct Pending {
        int fd = -1;
        FrameDecoder decoder;
    };

    struct Timer {
        double at = 0;
        std::function<void()> fn;
    };

    void loop();
    void open_listener();
    void accept_ready();
    void begin_dial(PeerState& p);
    void finish_dial(PeerState& p);
    void read_peer(PeerState& p);
    void drain_peer_frames(PeerState& p);
    void flush_peer(PeerState& p);
    /// Reads a pending socket; returns false when it should be dropped from
    /// pending_ (closed, or its fd was adopted by a peer).
    bool read_pending(Pending& pd);
    void adopt_pending(Pending& pd, PeerId id);
    void queue_hello_locked(PeerState& p);
    void mark_ready(PeerState& p);
    void close_conn(PeerState& p);
    void arm_retry(PeerState& p);
    void wake();
    void drain_wake();
    void fire_due_timers();
    void drain_posted();
    PeerState* find_peer(PeerId id);

    TcpTransportConfig config_;
    std::uint16_t bound_port_ = 0;
    int listen_fd_ = -1;
    int wake_rd_ = -1, wake_wr_ = -1;

    std::thread thread_;
    std::mutex join_m_; // serializes shutdown()/~TcpTransport joins
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex m_; // guards outbound queues + timers_ + posted_
    std::map<PeerId, PeerState> peers_; // keys fixed after construction
    std::vector<Pending> pending_;
    std::map<TimerId, Timer> timers_;
    TimerId next_timer_ = 1;
    std::vector<std::function<void()>> posted_;
    Handler handler_;
    std::atomic<std::size_t> ready_count_{0};

    // obs instrumentation (process-global registry; satellite of E29).
    obs::Counter* bytes_sent_ = nullptr;
    obs::Counter* bytes_received_ = nullptr;
    obs::Counter* frames_sent_ = nullptr;
    obs::Counter* frames_received_ = nullptr;
    obs::Counter* reconnects_ = nullptr;
    obs::Counter* handshake_failures_ = nullptr;
    obs::Counter* send_drops_ = nullptr;
    obs::Counter* decode_errors_ = nullptr;
};

} // namespace dlt::net::transport
