// SimTransport: the Transport interface implemented by the deterministic
// discrete-event net::Network — the default backend, byte-identical to driving
// the Network directly. A SimTransportHub registers `node_count` nodes on an
// (empty) Network and hands out one Transport endpoint per node; sends go
// through Network::send (latency/bandwidth models, fault injection, traffic
// counters all apply), timers through the shared sim::Scheduler. Everything
// stays single-threaded and seed-deterministic, so protocol logic tested over
// SimTransport replays bit-for-bit — the sim half of E29's sim-vs-socket
// equivalence contract.
#pragma once

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/transport/transport.hpp"

namespace dlt::net::transport {

class SimTransportHub;

/// One node's endpoint over the hub's Network. Obtained from
/// SimTransportHub::endpoint(); lifetime is the hub's.
class SimTransport final : public Transport {
public:
    PeerId local_id() const override { return id_; }
    std::vector<PeerId> peer_ids() const override;
    void set_handler(Handler handler) override { handler_ = std::move(handler); }
    bool send(PeerId to, const std::string& topic, ByteView payload) override;
    double now() const override;
    TimerId schedule_after(double delay_s, std::function<void()> fn) override;
    bool cancel_timer(TimerId id) override;
    void post(std::function<void()> fn) override { schedule_after(0.0, std::move(fn)); }
    void shutdown() override { down_ = true; }

private:
    friend class SimTransportHub;
    SimTransport(SimTransportHub& hub, PeerId id) : hub_(&hub), id_(id) {}

    void deliver(const Delivery& d);

    SimTransportHub* hub_;
    PeerId id_;
    Handler handler_;
    bool down_ = false;
};

/// Factory owning the endpoints. Precondition: `network` has no nodes yet;
/// the hub adds `node_count` nodes whose NodeIds are 0..node_count-1 and owns
/// their delivery handlers. The caller builds the topology afterwards
/// (build_full_mesh, connect, ...), exactly as with a bare Network.
class SimTransportHub {
public:
    SimTransportHub(Network& network, std::size_t node_count);

    Transport& endpoint(PeerId id) { return *endpoints_.at(id); }
    std::size_t node_count() const { return endpoints_.size(); }
    Network& network() { return *network_; }

private:
    friend class SimTransport;

    Network* network_;
    std::vector<std::unique_ptr<SimTransport>> endpoints_;
};

} // namespace dlt::net::transport
