#include "net/network.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace dlt::net {

SimDuration LinkParams::sample_delay(std::size_t message_bytes, Rng& rng) const {
    const double jitter = latency_jitter > 0
                              ? (rng.uniform01() * 2.0 - 1.0) * latency_jitter
                              : 0.0;
    double latency = latency_mean + jitter;
    if (latency < 0) latency = 0;
    const double transfer =
        bandwidth_bps > 0 ? static_cast<double>(message_bytes) * 8.0 / bandwidth_bps
                          : 0.0;
    return latency + transfer;
}

NodeId Network::add_node(std::function<void(const Delivery&)> handler) {
    DLT_EXPECTS(handler != nullptr);
    nodes_.push_back(NodeState{std::move(handler), {}, false});
    return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::connect(NodeId a, NodeId b, LinkParams params) {
    DLT_EXPECTS(a < nodes_.size() && b < nodes_.size());
    DLT_EXPECTS(a != b);
    if (connected(a, b)) return;
    links_.emplace(link_key(a, b), params);
    nodes_[a].neighbors.push_back(b);
    nodes_[b].neighbors.push_back(a);
}

bool Network::connected(NodeId a, NodeId b) const { return find_link(a, b) != nullptr; }

const std::vector<NodeId>& Network::neighbors(NodeId n) const {
    DLT_EXPECTS(n < nodes_.size());
    return nodes_[n].neighbors;
}

const LinkParams* Network::find_link(NodeId a, NodeId b) const {
    const auto it = links_.find(link_key(a, b));
    return it == links_.end() ? nullptr : &it->second;
}

void Network::send(NodeId from, NodeId to, std::string topic, Bytes payload) {
    send(from, to, std::move(topic),
         std::make_shared<const Bytes>(std::move(payload)));
}

void Network::send(NodeId from, NodeId to, std::string topic,
                   std::shared_ptr<const Bytes> payload) {
    DLT_EXPECTS(from < nodes_.size() && to < nodes_.size());
    DLT_EXPECTS(payload != nullptr);
    const LinkParams* link = find_link(from, to);
    if (link == nullptr) throw ValidationError("send between unconnected nodes");

    ++stats_.messages_sent;
    stats_.bytes_sent += payload->size();

    const SimDuration delay = link->sample_delay(payload->size(), rng_);
    scheduler_->schedule_after(
        delay, [this, from, to, topic = std::move(topic), payload = std::move(payload)] {
            NodeState& target = nodes_[to];
            if (target.crashed) {
                ++stats_.messages_dropped;
                return;
            }
            target.handler(Delivery{from, topic, payload});
        });
}

void Network::send_to_neighbors(NodeId from, const std::string& topic,
                                const Bytes& payload) {
    const auto shared = std::make_shared<const Bytes>(payload);
    for (const NodeId peer : neighbors(from)) send(from, peer, topic, shared);
}

void Network::set_crashed(NodeId n, bool crashed) {
    DLT_EXPECTS(n < nodes_.size());
    nodes_[n].crashed = crashed;
}

bool Network::is_crashed(NodeId n) const {
    DLT_EXPECTS(n < nodes_.size());
    return nodes_[n].crashed;
}

void Network::build_unstructured_overlay(std::size_t degree, LinkParams params) {
    const std::size_t n = nodes_.size();
    DLT_EXPECTS(n >= 2);
    build_ring(params);
    if (degree <= 2 || n <= 3) return;
    for (NodeId i = 0; i < n; ++i) {
        std::size_t attempts = 0;
        while (nodes_[i].neighbors.size() < degree && attempts < 20 * degree) {
            ++attempts;
            const NodeId peer = static_cast<NodeId>(rng_.uniform(n));
            if (peer == i || connected(i, peer)) continue;
            connect(i, peer, params);
        }
    }
}

void Network::build_full_mesh(LinkParams params) {
    const std::size_t n = nodes_.size();
    for (NodeId i = 0; i < n; ++i)
        for (NodeId j = i + 1; j < n; ++j) connect(i, j, params);
}

void Network::build_ring(LinkParams params) {
    const std::size_t n = nodes_.size();
    DLT_EXPECTS(n >= 2);
    for (NodeId i = 0; i < n; ++i)
        connect(i, static_cast<NodeId>((i + 1) % n), params);
}

} // namespace dlt::net
