#include "net/network.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace dlt::net {

namespace {

/// Probability that at least one of two independent fault events fires.
double combine_probability(double a, double b) {
    if (a <= 0) return b;
    if (b <= 0) return a;
    return 1.0 - (1.0 - a) * (1.0 - b);
}

} // namespace

Network::Network(sim::Scheduler& scheduler, Rng rng)
    : scheduler_(&scheduler), rng_(std::move(rng)) {
    auto& messages = obs::MetricsRegistry::global().counter_family(
        "net_messages_total", "Network messages by outcome", {"kind"});
    mirror_.sent = &messages.with({"sent"});
    mirror_.dropped = &messages.with({"dropped"});
    mirror_.lost = &messages.with({"lost"});
    mirror_.duplicated = &messages.with({"duplicated"});
    mirror_.partitioned = &messages.with({"partitioned"});
    mirror_.from_crashed = &messages.with({"from_crashed"});
    mirror_.bytes = &obs::MetricsRegistry::global().counter(
        "net_bytes_sent_total", "Payload bytes sent on the wire");
}

const TrafficStats& Network::stats() const {
    stats_view_.messages_sent = counters_.messages_sent.value();
    stats_view_.bytes_sent = counters_.bytes_sent.value();
    stats_view_.messages_dropped = counters_.messages_dropped.value();
    stats_view_.messages_lost = counters_.messages_lost.value();
    stats_view_.messages_duplicated = counters_.messages_duplicated.value();
    stats_view_.messages_partitioned = counters_.messages_partitioned.value();
    stats_view_.messages_from_crashed = counters_.messages_from_crashed.value();
    return stats_view_;
}

SimDuration LinkParams::sample_delay(std::size_t message_bytes, Rng& rng) const {
    const double jitter = latency_jitter > 0
                              ? (rng.uniform01() * 2.0 - 1.0) * latency_jitter
                              : 0.0;
    double latency = latency_mean + jitter;
    if (latency < 0) latency = 0;
    const double transfer =
        bandwidth_bps > 0 ? static_cast<double>(message_bytes) * 8.0 / bandwidth_bps
                          : 0.0;
    return latency + transfer;
}

// --- FaultPlan -----------------------------------------------------------------

FaultPlan& FaultPlan::cut(SimTime at, std::string name,
                          std::vector<std::vector<NodeId>> groups) {
    Action action{Action::Kind::kCut, at, std::move(name), std::move(groups), 0};
    actions_.push_back(std::move(action));
    return *this;
}

FaultPlan& FaultPlan::heal(SimTime at, std::string name) {
    actions_.push_back(Action{Action::Kind::kHeal, at, std::move(name), {}, 0});
    return *this;
}

FaultPlan& FaultPlan::leave(SimTime at, NodeId node) {
    actions_.push_back(Action{Action::Kind::kLeave, at, {}, {}, node});
    return *this;
}

FaultPlan& FaultPlan::rejoin(SimTime at, NodeId node) {
    actions_.push_back(Action{Action::Kind::kRejoin, at, {}, {}, node});
    return *this;
}

FaultPlan& FaultPlan::crash(SimTime at, NodeId node) {
    actions_.push_back(Action{Action::Kind::kCrash, at, {}, {}, node});
    return *this;
}

FaultPlan& FaultPlan::recover(SimTime at, NodeId node) {
    actions_.push_back(Action{Action::Kind::kRecover, at, {}, {}, node});
    return *this;
}

// --- Network -------------------------------------------------------------------

NodeId Network::add_node(std::function<void(const Delivery&)> handler) {
    DLT_EXPECTS(handler != nullptr);
    nodes_.push_back(NodeState{std::move(handler), {}, false, false, {}});
    return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::connect(NodeId a, NodeId b, LinkParams params) {
    DLT_EXPECTS(a < nodes_.size() && b < nodes_.size());
    DLT_EXPECTS(a != b);
    if (connected(a, b)) return;
    links_.emplace(link_key(a, b), params);
    nodes_[a].neighbors.push_back(b);
    nodes_[b].neighbors.push_back(a);
}

void Network::disconnect(NodeId a, NodeId b) {
    links_.erase(link_key(a, b));
    auto& na = nodes_[a].neighbors;
    na.erase(std::remove(na.begin(), na.end(), b), na.end());
    auto& nb = nodes_[b].neighbors;
    nb.erase(std::remove(nb.begin(), nb.end(), a), nb.end());
}

bool Network::connected(NodeId a, NodeId b) const { return find_link(a, b) != nullptr; }

const std::vector<NodeId>& Network::neighbors(NodeId n) const {
    DLT_EXPECTS(n < nodes_.size());
    return nodes_[n].neighbors;
}

const LinkParams* Network::find_link(NodeId a, NodeId b) const {
    const auto it = links_.find(link_key(a, b));
    return it == links_.end() ? nullptr : &it->second;
}

void Network::send(NodeId from, NodeId to, std::string topic, Bytes payload) {
    send(from, to, std::move(topic),
         std::make_shared<const Bytes>(std::move(payload)));
}

void Network::send(NodeId from, NodeId to, std::string topic,
                   std::shared_ptr<const Bytes> payload) {
    DLT_EXPECTS(from < nodes_.size() && to < nodes_.size());
    DLT_EXPECTS(payload != nullptr);
    const LinkParams* link = find_link(from, to);
    if (link == nullptr) throw ValidationError("send between unconnected nodes");

    // Fail-stop: a crashed node originates nothing (not even counted as sent).
    if (nodes_[from].crashed) {
        counters_.messages_from_crashed.inc();
        mirror_.from_crashed->inc();
        return;
    }

    counters_.messages_sent.inc();
    mirror_.sent->inc();
    counters_.bytes_sent.inc(payload->size());
    mirror_.bytes->inc(payload->size());

    if (partitioned(from, to)) {
        counters_.messages_partitioned.inc();
        mirror_.partitioned->inc();
        return;
    }

    const double loss = combine_probability(link->loss, global_faults_.loss);
    if (loss > 0 && rng_.chance(loss)) {
        counters_.messages_lost.inc();
        mirror_.lost->inc();
        return;
    }

    const double duplicate =
        combine_probability(link->duplicate, global_faults_.duplicate);
    if (duplicate > 0 && rng_.chance(duplicate)) {
        counters_.messages_duplicated.inc();
        mirror_.duplicated->inc();
        schedule_delivery(from, to, topic, payload, *link);
    }
    schedule_delivery(from, to, std::move(topic), std::move(payload), *link);
}

void Network::schedule_delivery(NodeId from, NodeId to, std::string topic,
                                std::shared_ptr<const Bytes> payload,
                                const LinkParams& link) {
    const SimDuration delay = link.sample_delay(payload->size(), rng_);
    scheduler_->schedule_after(
        delay, [this, from, to, topic = std::move(topic), payload = std::move(payload)] {
            // Fail-stop: nothing from a crashed node is observed after the
            // crash instant, including traffic it sent while still alive.
            if (nodes_[from].crashed) {
                counters_.messages_from_crashed.inc();
                mirror_.from_crashed->inc();
                return;
            }
            if (partitioned(from, to)) {
                counters_.messages_partitioned.inc();
                mirror_.partitioned->inc();
                return;
            }
            NodeState& target = nodes_[to];
            if (target.crashed || target.departed) {
                counters_.messages_dropped.inc();
                mirror_.dropped->inc();
                return;
            }
            target.handler(Delivery{from, topic, payload});
        });
}

void Network::send_to_neighbors(NodeId from, const std::string& topic,
                                const Bytes& payload) {
    const auto shared = std::make_shared<const Bytes>(payload);
    for (const NodeId peer : neighbors(from)) send(from, peer, topic, shared);
}

void Network::set_crashed(NodeId n, bool crashed) {
    DLT_EXPECTS(n < nodes_.size());
    nodes_[n].crashed = crashed;
}

bool Network::is_crashed(NodeId n) const {
    DLT_EXPECTS(n < nodes_.size());
    return nodes_[n].crashed;
}

// --- Fault injection -------------------------------------------------------------

void Network::partition(const std::string& name,
                        const std::vector<std::vector<NodeId>>& groups) {
    DLT_EXPECTS(!groups.empty());
    std::unordered_map<NodeId, std::uint32_t> membership;
    for (std::uint32_t g = 0; g < groups.size(); ++g) {
        for (const NodeId n : groups[g]) {
            DLT_EXPECTS(n < nodes_.size());
            const auto [it, inserted] = membership.emplace(n, g);
            DLT_EXPECTS(inserted); // a node cannot sit in two groups
        }
    }
    partitions_[name] = std::move(membership);
}

void Network::heal(const std::string& name) { partitions_.erase(name); }

bool Network::partitioned(NodeId a, NodeId b) const {
    if (partitions_.empty()) return false;
    for (const auto& [name, membership] : partitions_) {
        const auto ia = membership.find(a);
        if (ia == membership.end()) continue;
        const auto ib = membership.find(b);
        if (ib == membership.end()) continue;
        if (ia->second != ib->second) return true;
    }
    return false;
}

void Network::leave(NodeId n) {
    DLT_EXPECTS(n < nodes_.size());
    NodeState& node = nodes_[n];
    if (node.departed) return;
    node.departed = true;
    // Park every live link so rejoin() can restore the same topology.
    const std::vector<NodeId> peers = node.neighbors;
    for (const NodeId peer : peers) {
        const LinkParams* link = find_link(n, peer);
        DLT_INVARIANT(link != nullptr);
        node.parked_links.emplace_back(peer, *link);
        disconnect(n, peer);
    }
}

void Network::rejoin(NodeId n) {
    DLT_EXPECTS(n < nodes_.size());
    NodeState& node = nodes_[n];
    if (!node.departed) return;
    node.departed = false;
    std::vector<std::pair<NodeId, LinkParams>> parked;
    parked.swap(node.parked_links);
    for (const auto& [peer, params] : parked) {
        if (nodes_[peer].departed) {
            // A peer that left after our own departure severed this link has no
            // record of it: hand ours over so its rejoin restores the link.
            auto& theirs = nodes_[peer].parked_links;
            const bool known =
                std::any_of(theirs.begin(), theirs.end(),
                            [n](const auto& entry) { return entry.first == n; });
            if (!known) theirs.emplace_back(n, params);
            continue;
        }
        connect(n, peer, params);
    }
}

bool Network::is_departed(NodeId n) const {
    DLT_EXPECTS(n < nodes_.size());
    return nodes_[n].departed;
}

void Network::apply(const FaultPlan& plan) {
    for (const auto& action : plan.actions_) {
        using Kind = FaultPlan::Action::Kind;
        switch (action.kind) {
        case Kind::kCut:
            scheduler_->schedule_at(action.at, [this, name = action.name,
                                                groups = action.groups] {
                partition(name, groups);
            });
            break;
        case Kind::kHeal:
            scheduler_->schedule_at(action.at,
                                    [this, name = action.name] { heal(name); });
            break;
        case Kind::kLeave:
            scheduler_->schedule_at(action.at,
                                    [this, n = action.node] { leave(n); });
            break;
        case Kind::kRejoin:
            scheduler_->schedule_at(action.at,
                                    [this, n = action.node] { rejoin(n); });
            break;
        case Kind::kCrash:
            scheduler_->schedule_at(
                action.at, [this, n = action.node] { set_crashed(n, true); });
            break;
        case Kind::kRecover:
            scheduler_->schedule_at(
                action.at, [this, n = action.node] { set_crashed(n, false); });
            break;
        }
    }
}

// --- Topology builders -----------------------------------------------------------

void Network::build_unstructured_overlay(std::size_t degree, LinkParams params) {
    const std::size_t n = nodes_.size();
    DLT_EXPECTS(n >= 2);
    build_ring(params);
    if (degree <= 2 || n <= 3) return;
    for (NodeId i = 0; i < n; ++i) {
        std::size_t attempts = 0;
        while (nodes_[i].neighbors.size() < degree && attempts < 20 * degree) {
            ++attempts;
            const NodeId peer = static_cast<NodeId>(rng_.uniform(n));
            if (peer == i || connected(i, peer)) continue;
            connect(i, peer, params);
        }
    }
}

void Network::build_full_mesh(LinkParams params) {
    const std::size_t n = nodes_.size();
    for (NodeId i = 0; i < n; ++i)
        for (NodeId j = i + 1; j < n; ++j) connect(i, j, params);
}

void Network::build_ring(LinkParams params) {
    const std::size_t n = nodes_.size();
    DLT_EXPECTS(n >= 2);
    for (NodeId i = 0; i < n; ++i)
        connect(i, static_cast<NodeId>((i + 1) % n), params);
}

} // namespace dlt::net
