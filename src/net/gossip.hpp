// Gossip broadcast (paper §2.3): peers relay new data to a random subset of
// neighbors over multiple rounds, deduplicating by message id, until the whole
// overlay has seen it. This is the dissemination primitive blocks and
// transactions ride on; E18 measures its propagation behaviour. Relays never
// echo a frame back to the peer it arrived from.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "net/network.hpp"

namespace dlt::net {

struct GossipParams {
    /// Number of random neighbors each node forwards to; 0 means flood (all).
    std::size_t fanout = 0;
};

/// Measured dissemination record for one broadcast.
struct PropagationRecord {
    SimTime origin_time = 0;
    std::size_t delivered = 0;                     // distinct nodes reached
    std::unordered_map<NodeId, SimTime> arrival;   // first arrival per node
};

/// Runs a gossip overlay over a Network. The overlay registers `node_count`
/// nodes on the (empty) network itself and owns their message handling; the
/// caller then builds a topology and injects broadcasts. The single callback is
/// invoked exactly once per (node, message).
class GossipOverlay {
public:
    /// Handler(node, from, topic, payload) fires on first delivery of a gossip
    /// message at each node and on every direct message. `from` is the peer
    /// the message arrived from (== node for locally injected broadcasts). The
    /// payload view aliases the shared message frame — copy it if it must
    /// outlive the callback.
    using Handler =
        std::function<void(NodeId, NodeId, const std::string&, ByteView)>;

    /// Precondition: `network` has no nodes yet.
    GossipOverlay(Network& network, std::size_t node_count, GossipParams params,
                  Handler handler);

    /// Number of nodes this overlay manages (== network node count at creation).
    std::size_t node_count() const { return seen_.size(); }

    /// Inject a message at `origin`; it is delivered locally and relayed.
    /// Returns the message id used for tracking. The topic must not carry the
    /// "d/" direct-message prefix.
    Hash256 broadcast(NodeId origin, const std::string& topic, const Bytes& payload);

    /// Point-to-point message outside the gossip flow: no message id, no
    /// dedup, no relaying. Delivered to the handler with the topic as given;
    /// direct topics must start with "d/" to stay distinguishable from gossip
    /// frames. Silently dropped when the two nodes are not currently linked
    /// (the peer may have churned away). Sync protocols (orphan-parent fetch)
    /// ride on this.
    void send_direct(NodeId from, NodeId to, const std::string& topic,
                     const Bytes& payload);

    /// Relay filter: invoked per (relaying node, candidate neighbor, topic)
    /// before a gossip frame is forwarded; returning false suppresses that
    /// hop. Models adversarial routing (an eclipse attacker refusing to
    /// bridge traffic to its victim) without touching link state — direct
    /// "d/" messages are never filtered, so sync protocols still work.
    /// Pass nullptr to clear. Filtered hops count as never sent (no traffic,
    /// no delivery).
    using RelayFilter =
        std::function<bool(NodeId at, NodeId to, const std::string& topic)>;
    void set_relay_filter(RelayFilter filter) { relay_filter_ = std::move(filter); }

    /// Propagation telemetry for a message id (empty when unknown).
    const PropagationRecord* record(const Hash256& id) const;

    /// Fraction of nodes reached for a message id.
    double delivery_ratio(const Hash256& id) const;

    /// Virtual time by which `quantile` (e.g. 0.5, 0.99) of nodes had the message;
    /// nullopt when fewer nodes than that ever received it.
    std::optional<SimTime> time_to_quantile(const Hash256& id, double quantile) const;

private:
    static bool is_direct_topic(const std::string& topic) {
        return topic.size() >= 2 && topic[0] == 'd' && topic[1] == '/';
    }

    void on_delivery(NodeId at, const Delivery& d);
    void relay(NodeId at, NodeId skip, const std::string& topic,
               const std::shared_ptr<const Bytes>& framed);
    void accept(NodeId at, NodeId from, const Hash256& id, const std::string& topic,
                const std::shared_ptr<const Bytes>& framed);

    Network* network_;
    GossipParams params_;
    Handler handler_;
    RelayFilter relay_filter_;
    obs::Counter* broadcasts_ = nullptr;  // gossip_broadcasts_total
    obs::Counter* accepts_ = nullptr;     // gossip_accepts_total
    obs::Counter* dedup_hits_ = nullptr;  // gossip_dedup_hits_total
    std::vector<std::unordered_set<Hash256>> seen_; // per node
    std::unordered_map<Hash256, PropagationRecord> records_;
};

} // namespace dlt::net
