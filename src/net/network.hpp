// Simulated P2P network (paper §2.3, network layer of §4.6): nodes joined by
// links with latency + bandwidth models, message delivery through the
// discrete-event scheduler, and topology builders for the unstructured overlays
// popular blockchains use. Deterministic given the seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "sim/scheduler.hpp"

namespace dlt::net {

using NodeId = std::uint32_t;

/// Link quality model. Delivery time = latency sample + size / bandwidth.
struct LinkParams {
    SimDuration latency_mean = 0.05;   // 50 ms, a typical WAN hop
    SimDuration latency_jitter = 0.02; // uniform +/- jitter
    double bandwidth_bps = 8e6 * 10;   // 10 MB/s

    SimDuration sample_delay(std::size_t message_bytes, Rng& rng) const;
};

/// A message as seen by a receiving node. The body is shared: a broadcast to N
/// neighbors schedules N deliveries that all point at one buffer instead of
/// copying the payload per hop (messages are immutable once sent).
struct Delivery {
    NodeId from = 0;
    std::string topic;
    std::shared_ptr<const Bytes> body;

    Delivery(NodeId from_, std::string topic_, std::shared_ptr<const Bytes> body_)
        : from(from_), topic(std::move(topic_)), body(std::move(body_)) {}
    Delivery(NodeId from_, std::string topic_, Bytes payload_)
        : from(from_),
          topic(std::move(topic_)),
          body(std::make_shared<const Bytes>(std::move(payload_))) {}

    const Bytes& payload() const { return *body; }
};

/// Aggregate traffic counters (per network).
struct TrafficStats {
    std::uint64_t messages_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t messages_dropped = 0;
};

class Network {
public:
    Network(sim::Scheduler& scheduler, Rng rng)
        : scheduler_(&scheduler), rng_(std::move(rng)) {}

    /// Add a node; its handler is invoked for each delivered message.
    NodeId add_node(std::function<void(const Delivery&)> handler);

    std::size_t node_count() const { return nodes_.size(); }

    /// Create a bidirectional link; parallel links are allowed (first wins on
    /// lookup). Self-links are rejected.
    void connect(NodeId a, NodeId b, LinkParams params = {});

    bool connected(NodeId a, NodeId b) const;
    const std::vector<NodeId>& neighbors(NodeId n) const;

    /// Send over an existing link; throws ValidationError when not connected.
    /// Delivery is scheduled on the link's latency/bandwidth model. A node whose
    /// `crashed` flag is set silently drops inbound messages. The shared_ptr
    /// overload lets fan-out callers frame a message once and share the buffer
    /// across every recipient.
    void send(NodeId from, NodeId to, std::string topic, Bytes payload);
    void send(NodeId from, NodeId to, std::string topic,
              std::shared_ptr<const Bytes> payload);

    /// Convenience: send to every neighbor (one shared buffer, zero copies).
    void send_to_neighbors(NodeId from, const std::string& topic, const Bytes& payload);

    /// Crash / recover a node (fail-stop model for PBFT fault experiments).
    void set_crashed(NodeId n, bool crashed);
    bool is_crashed(NodeId n) const;

    const TrafficStats& stats() const { return stats_; }
    sim::Scheduler& scheduler() { return *scheduler_; }
    Rng& rng() { return rng_; }

    // --- Topology builders ------------------------------------------------------

    /// Unstructured overlay: each node links to `degree` random distinct peers
    /// (the union graph typically has ~2*degree mean degree). Guarantees
    /// connectivity by first laying a ring.
    void build_unstructured_overlay(std::size_t degree, LinkParams params = {});

    /// Complete graph (small consortium networks, PBFT clusters).
    void build_full_mesh(LinkParams params = {});

    /// Simple ring (worst case diameter, useful in propagation experiments).
    void build_ring(LinkParams params = {});

private:
    struct NodeState {
        std::function<void(const Delivery&)> handler;
        std::vector<NodeId> neighbors;
        bool crashed = false;
    };

    static std::uint64_t link_key(NodeId a, NodeId b) {
        const NodeId lo = a < b ? a : b;
        const NodeId hi = a < b ? b : a;
        return (static_cast<std::uint64_t>(lo) << 32) | hi;
    }

    const LinkParams* find_link(NodeId a, NodeId b) const;

    sim::Scheduler* scheduler_;
    Rng rng_;
    std::vector<NodeState> nodes_;
    std::unordered_map<std::uint64_t, LinkParams> links_;
    TrafficStats stats_;
};

} // namespace dlt::net
