// Simulated P2P network (paper §2.3, network layer of §4.6): nodes joined by
// links with latency + bandwidth models, message delivery through the
// discrete-event scheduler, and topology builders for the unstructured overlays
// popular blockchains use. Deterministic given the seed.
//
// Fault injection (paper §3.1 dependability): links can lose or duplicate
// messages, named partitions can cut the network into groups and heal again,
// and peers can churn (leave and rejoin the overlay). A FaultPlan schedules
// those faults at fixed sim-times so fault scenarios replay bit-for-bit under
// a seed. Semantics are documented in src/net/README.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"

namespace dlt::net {

using NodeId = std::uint32_t;

/// Link quality model. Delivery time = latency sample + size / bandwidth.
struct LinkParams {
    SimDuration latency_mean = 0.05;   // 50 ms, a typical WAN hop
    SimDuration latency_jitter = 0.02; // uniform +/- jitter
    double bandwidth_bps = 8e6 * 10;   // 10 MB/s

    /// Per-link fault injection: probability a message on this link is lost in
    /// transit, and probability it is delivered twice (the duplicate samples
    /// its own independent delay). Combined with the network-wide FaultParams.
    double loss = 0.0;
    double duplicate = 0.0;

    SimDuration sample_delay(std::size_t message_bytes, Rng& rng) const;
};

/// Network-wide loss/duplication applied on top of each link's own values
/// (probabilities combine as independent events).
struct FaultParams {
    double loss = 0.0;
    double duplicate = 0.0;
};

/// A message as seen by a receiving node. The body is shared: a broadcast to N
/// neighbors schedules N deliveries that all point at one buffer instead of
/// copying the payload per hop (messages are immutable once sent).
struct Delivery {
    NodeId from = 0;
    std::string topic;
    std::shared_ptr<const Bytes> body;

    Delivery(NodeId from_, std::string topic_, std::shared_ptr<const Bytes> body_)
        : from(from_), topic(std::move(topic_)), body(std::move(body_)) {}
    Delivery(NodeId from_, std::string topic_, Bytes payload_)
        : from(from_),
          topic(std::move(topic_)),
          body(std::make_shared<const Bytes>(std::move(payload_))) {}

    const Bytes& payload() const { return *body; }
};

/// Aggregate traffic counters (per network). Since the observability layer
/// landed this is a *view*: the authoritative tallies are obs::Counter
/// handles (per-network, mirrored into the global MetricsRegistry under
/// net_messages_total{kind=...}); Network::stats() materializes this struct
/// from them, so existing callers and recorded schemas are unchanged.
struct TrafficStats {
    std::uint64_t messages_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t messages_dropped = 0;      // receiver crashed or departed
    std::uint64_t messages_lost = 0;         // random loss (link or global)
    std::uint64_t messages_duplicated = 0;   // extra copies injected
    std::uint64_t messages_partitioned = 0;  // cut by an active partition
    std::uint64_t messages_from_crashed = 0; // fail-stop: silenced sender traffic
};

/// The obs handles behind TrafficStats: one per-network counter per kind plus
/// the shared process-wide registry children every Network reports into.
struct TrafficCounters {
    obs::Counter messages_sent;
    obs::Counter bytes_sent;
    obs::Counter messages_dropped;
    obs::Counter messages_lost;
    obs::Counter messages_duplicated;
    obs::Counter messages_partitioned;
    obs::Counter messages_from_crashed;
};

/// A deterministic schedule of network faults: named partitions cut and healed
/// at fixed sim-times, peers leaving and rejoining (churn), nodes crashing and
/// recovering. Build the plan up front, then Network::apply() registers every
/// action on the simulation clock; actions at equal times run in insertion
/// order (scheduler FIFO), so identically-seeded runs replay the same fault
/// sequence exactly.
class FaultPlan {
public:
    /// Activate partition `name` at time `at`: nodes in different groups can no
    /// longer exchange messages until the partition heals.
    FaultPlan& cut(SimTime at, std::string name,
                   std::vector<std::vector<NodeId>> groups);
    /// Deactivate partition `name` at time `at`.
    FaultPlan& heal(SimTime at, std::string name);
    /// Churn: `node` departs the overlay at `at` (links parked) / relinks.
    FaultPlan& leave(SimTime at, NodeId node);
    FaultPlan& rejoin(SimTime at, NodeId node);
    /// Fail-stop crash / recovery of `node` at `at`.
    FaultPlan& crash(SimTime at, NodeId node);
    FaultPlan& recover(SimTime at, NodeId node);

    bool empty() const { return actions_.empty(); }

private:
    friend class Network;
    struct Action {
        enum class Kind { kCut, kHeal, kLeave, kRejoin, kCrash, kRecover };
        Kind kind;
        SimTime at = 0;
        std::string name;                        // kCut / kHeal
        std::vector<std::vector<NodeId>> groups; // kCut
        NodeId node = 0;                         // kLeave..kRecover
    };
    std::vector<Action> actions_;
};

class Network {
public:
    Network(sim::Scheduler& scheduler, Rng rng);

    /// Add a node; its handler is invoked for each delivered message.
    NodeId add_node(std::function<void(const Delivery&)> handler);

    std::size_t node_count() const { return nodes_.size(); }

    /// Create a bidirectional link. Duplicate connects are ignored: the first
    /// link's parameters win and later calls do not overwrite them. Self-links
    /// are rejected.
    void connect(NodeId a, NodeId b, LinkParams params = {});

    bool connected(NodeId a, NodeId b) const;
    const std::vector<NodeId>& neighbors(NodeId n) const;

    /// Send over an existing link; throws ValidationError when not connected.
    /// Delivery is scheduled on the link's latency/bandwidth model, subject to
    /// the fault layer: sends by crashed nodes are silenced (fail-stop),
    /// partitioned pairs drop, and loss/duplication probabilities apply. A node
    /// whose `crashed` flag is set also drops inbound messages. The shared_ptr
    /// overload lets fan-out callers frame a message once and share the buffer
    /// across every recipient.
    void send(NodeId from, NodeId to, std::string topic, Bytes payload);
    void send(NodeId from, NodeId to, std::string topic,
              std::shared_ptr<const Bytes> payload);

    /// Convenience: send to every neighbor (one shared buffer, zero copies).
    void send_to_neighbors(NodeId from, const std::string& topic, const Bytes& payload);

    /// Crash / recover a node (fail-stop model for PBFT fault experiments).
    /// A crashed node neither receives nor originates traffic; in-flight
    /// messages it sent before crashing are cut too (nothing from the node is
    /// observed after the crash instant).
    void set_crashed(NodeId n, bool crashed);
    bool is_crashed(NodeId n) const;

    // --- Fault injection --------------------------------------------------------

    /// Network-wide loss/duplication, combined with each link's own values.
    void set_global_faults(FaultParams faults) { global_faults_ = faults; }
    const FaultParams& global_faults() const { return global_faults_; }

    /// Activate a named partition: messages between nodes in different groups
    /// are dropped (counted in messages_partitioned) until heal(name). Nodes
    /// absent from every group are unaffected by this partition. Re-cutting an
    /// active name replaces its grouping.
    void partition(const std::string& name,
                   const std::vector<std::vector<NodeId>>& groups);
    void heal(const std::string& name);
    /// True when any active partition separates `a` and `b`.
    bool partitioned(NodeId a, NodeId b) const;

    /// Churn: a departing node is unlinked from every neighbor (the links are
    /// parked) and receives nothing while away; rejoin() re-links it to each
    /// parked peer that is still present. Idempotent in both directions.
    void leave(NodeId n);
    void rejoin(NodeId n);
    bool is_departed(NodeId n) const;

    /// Schedule every action in `plan` on this network's scheduler (absolute
    /// sim-times; all must be >= now).
    void apply(const FaultPlan& plan);

    /// Materialize the TrafficStats view from the live obs counters. The
    /// returned reference stays valid (and is refreshed on every call).
    const TrafficStats& stats() const;
    /// Direct access to the per-network counter handles.
    const TrafficCounters& counters() const { return counters_; }
    sim::Scheduler& scheduler() { return *scheduler_; }
    Rng& rng() { return rng_; }

    // --- Topology builders ------------------------------------------------------

    /// Unstructured overlay: each node links to `degree` random distinct peers
    /// (the union graph typically has ~2*degree mean degree). Guarantees
    /// connectivity by first laying a ring.
    void build_unstructured_overlay(std::size_t degree, LinkParams params = {});

    /// Complete graph (small consortium networks, PBFT clusters).
    void build_full_mesh(LinkParams params = {});

    /// Simple ring (worst case diameter, useful in propagation experiments).
    void build_ring(LinkParams params = {});

private:
    struct NodeState {
        std::function<void(const Delivery&)> handler;
        std::vector<NodeId> neighbors;
        bool crashed = false;
        bool departed = false;
        std::vector<std::pair<NodeId, LinkParams>> parked_links; // saved on leave()
    };

    static std::uint64_t link_key(NodeId a, NodeId b) {
        const NodeId lo = a < b ? a : b;
        const NodeId hi = a < b ? b : a;
        return (static_cast<std::uint64_t>(lo) << 32) | hi;
    }

    const LinkParams* find_link(NodeId a, NodeId b) const;
    void disconnect(NodeId a, NodeId b);
    void schedule_delivery(NodeId from, NodeId to, std::string topic,
                           std::shared_ptr<const Bytes> payload,
                           const LinkParams& link);

    sim::Scheduler* scheduler_;
    Rng rng_;
    std::vector<NodeState> nodes_;
    std::unordered_map<std::uint64_t, LinkParams> links_;
    /// Active partitions: name -> (node -> group index).
    std::unordered_map<std::string, std::unordered_map<NodeId, std::uint32_t>>
        partitions_;
    FaultParams global_faults_;
    TrafficCounters counters_;
    mutable TrafficStats stats_view_; // materialized by stats()
    /// Shared children of the global-registry families this network mirrors
    /// its tallies into (net_messages_total{kind=...}, net_bytes_sent_total).
    struct RegistryMirror {
        obs::Counter* sent = nullptr;
        obs::Counter* dropped = nullptr;
        obs::Counter* lost = nullptr;
        obs::Counter* duplicated = nullptr;
        obs::Counter* partitioned = nullptr;
        obs::Counter* from_crashed = nullptr;
        obs::Counter* bytes = nullptr;
    } mirror_;
};

} // namespace dlt::net
