#include "net/gossip.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/serialize.hpp"

namespace dlt::net {

namespace {
/// Frame: message id || payload. The id is carried explicitly so relays don't
/// have to re-derive it from (topic, payload) and so distinct broadcasts of
/// identical payloads stay distinguishable. Framed once per broadcast; every
/// hop and delivery shares this one buffer.
std::shared_ptr<const Bytes> frame_message(const Hash256& id, const Bytes& payload) {
    Bytes framed;
    framed.reserve(32 + payload.size());
    append(framed, id.view());
    append(framed, payload);
    return std::make_shared<const Bytes>(std::move(framed));
}
} // namespace

GossipOverlay::GossipOverlay(Network& network, std::size_t node_count,
                             GossipParams params, Handler handler)
    : network_(&network), params_(params), handler_(std::move(handler)) {
    auto& registry = obs::MetricsRegistry::global();
    broadcasts_ = &registry.counter("gossip_broadcasts_total",
                                    "Messages injected into the overlay");
    accepts_ = &registry.counter("gossip_accepts_total",
                                 "First-time deliveries across all nodes");
    dedup_hits_ = &registry.counter("gossip_dedup_hits_total",
                                    "Frames discarded as already seen");
    DLT_EXPECTS(network.node_count() == 0);
    DLT_EXPECTS(node_count >= 2);
    DLT_EXPECTS(handler_ != nullptr);
    seen_.resize(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
        const NodeId id = network.add_node(
            [this, node = static_cast<NodeId>(i)](const Delivery& d) {
                on_delivery(node, d);
            });
        DLT_ENSURES(id == i);
    }
}

Hash256 GossipOverlay::broadcast(NodeId origin, const std::string& topic,
                                 const Bytes& payload) {
    DLT_EXPECTS(origin < seen_.size());
    DLT_EXPECTS(!is_direct_topic(topic));
    // Unique id: hash over topic, payload, origin, and injection time.
    Writer w;
    w.str(topic);
    w.blob(payload);
    w.u32(origin);
    w.f64(network_->scheduler().now());
    const Hash256 id = crypto::tagged_hash("dlt/gossip-id", w.data());

    records_[id].origin_time = network_->scheduler().now();
    broadcasts_->inc();
    accept(origin, origin, id, topic, frame_message(id, payload));
    return id;
}

void GossipOverlay::send_direct(NodeId from, NodeId to, const std::string& topic,
                                const Bytes& payload) {
    DLT_EXPECTS(from < seen_.size() && to < seen_.size());
    DLT_EXPECTS(is_direct_topic(topic));
    // The link may have churned away since the triggering message was sent;
    // a real peer's reply would hit a closed socket, so drop silently.
    if (!network_->connected(from, to)) return;
    network_->send(from, to, topic, payload);
}

void GossipOverlay::on_delivery(NodeId at, const Delivery& d) {
    if (is_direct_topic(d.topic)) { // point-to-point: no dedup, no relay
        handler_(at, d.from, d.topic, ByteView{d.payload()});
        return;
    }
    if (d.payload().size() < 32) return; // malformed frame
    const Hash256 id = Hash256::from_bytes(ByteView{d.payload().data(), 32});
    if (seen_[at].contains(id)) {
        dedup_hits_->inc();
        return;
    }
    accept(at, d.from, id, d.topic, d.body);
}

void GossipOverlay::accept(NodeId at, NodeId from, const Hash256& id,
                           const std::string& topic,
                           const std::shared_ptr<const Bytes>& framed) {
    seen_[at].insert(id);

    accepts_->inc();
    auto& rec = records_[id];
    ++rec.delivered;
    rec.arrival.emplace(at, network_->scheduler().now());

    handler_(at, from, topic, ByteView{*framed}.subspan(32)); // zero-copy payload view
    relay(at, from, topic, framed);
}

void GossipOverlay::relay(NodeId at, NodeId skip, const std::string& topic,
                          const std::shared_ptr<const Bytes>& framed) {
    const auto& peers = network_->neighbors(at);
    if (peers.empty()) return;
    const auto allowed = [&](NodeId p) {
        return p != skip && (!relay_filter_ || relay_filter_(at, p, topic));
    };
    if (params_.fanout == 0 || params_.fanout >= peers.size()) {
        // Flood every neighbor except the one the frame arrived from: echoing
        // it back is pure waste (the sender has it by construction).
        for (const NodeId p : peers)
            if (allowed(p)) network_->send(at, p, topic, framed);
        return;
    }
    // Sample `fanout` distinct neighbors, never wasting a slot on the sender.
    std::vector<NodeId> candidates;
    candidates.reserve(peers.size());
    for (const NodeId p : peers)
        if (allowed(p)) candidates.push_back(p);
    if (candidates.empty()) return;
    if (params_.fanout >= candidates.size()) {
        for (const NodeId p : candidates) network_->send(at, p, topic, framed);
        return;
    }
    network_->rng().shuffle(candidates);
    for (std::size_t i = 0; i < params_.fanout; ++i)
        network_->send(at, candidates[i], topic, framed);
}

const PropagationRecord* GossipOverlay::record(const Hash256& id) const {
    const auto it = records_.find(id);
    return it == records_.end() ? nullptr : &it->second;
}

double GossipOverlay::delivery_ratio(const Hash256& id) const {
    const PropagationRecord* rec = record(id);
    if (rec == nullptr || seen_.empty()) return 0.0;
    return static_cast<double>(rec->delivered) / static_cast<double>(seen_.size());
}

std::optional<SimTime> GossipOverlay::time_to_quantile(const Hash256& id,
                                                       double quantile) const {
    DLT_EXPECTS(quantile > 0 && quantile <= 1);
    const PropagationRecord* rec = record(id);
    if (rec == nullptr) return std::nullopt;
    const std::size_t needed = static_cast<std::size_t>(
        std::ceil(quantile * static_cast<double>(seen_.size())));
    if (rec->arrival.size() < needed || needed == 0) return std::nullopt;
    std::vector<SimTime> times;
    times.reserve(rec->arrival.size());
    for (const auto& [node, t] : rec->arrival) times.push_back(t);
    std::nth_element(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(needed - 1),
                     times.end());
    return times[needed - 1] - rec->origin_time;
}

} // namespace dlt::net
