// Mixer network (paper §5.3: "newer systems address these privacy concerns by
// introducing mixer networks to hide the transaction history"). CoinJoin-style:
// N participants with equal-denomination coins co-sign one transaction whose
// shuffled outputs cannot be linked to specific inputs; chaining rounds grows
// every participant's anonymity set multiplicatively while costing one
// confirmation of latency per round (E12's trade-off).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "crypto/keys.hpp"
#include "ledger/transaction.hpp"

namespace dlt::privacy {

struct MixParticipant {
    ledger::OutPoint coin;     // equal-denomination input
    crypto::Address fresh_address; // unlinkable output destination
};

/// Build one CoinJoin round: all inputs merged, outputs of `denomination`
/// shuffled to the fresh addresses. Returns the unsigned transaction (each
/// participant signs their own input in a real deployment; simulation-level
/// callers use SigCheckMode::kSkip or sign with a session key).
ledger::Transaction build_coinjoin(const std::vector<MixParticipant>& participants,
                                   ledger::Amount denomination, Rng& rng);

/// Latency model for E12: rounds * block interval (each round must confirm
/// before the next can spend its outputs).
double mixing_latency(std::size_t rounds, double block_interval);

} // namespace dlt::privacy
