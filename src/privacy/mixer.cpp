#include "privacy/mixer.hpp"

#include "common/assert.hpp"

namespace dlt::privacy {

ledger::Transaction build_coinjoin(const std::vector<MixParticipant>& participants,
                                   ledger::Amount denomination, Rng& rng) {
    DLT_EXPECTS(participants.size() >= 2);
    DLT_EXPECTS(denomination > 0);

    ledger::Transaction tx;
    tx.kind = ledger::TxKind::kTransfer;
    for (const auto& p : participants)
        tx.inputs.push_back(ledger::TxInput{p.coin, {}, {}});

    std::vector<crypto::Address> destinations;
    destinations.reserve(participants.size());
    for (const auto& p : participants) destinations.push_back(p.fresh_address);
    rng.shuffle(destinations);

    for (const auto& dest : destinations)
        tx.outputs.push_back(ledger::TxOutput{denomination, dest});
    return tx;
}

double mixing_latency(std::size_t rounds, double block_interval) {
    return static_cast<double>(rounds) * block_interval;
}

} // namespace dlt::privacy
