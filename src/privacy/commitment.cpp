#include "privacy/commitment.hpp"

#include "crypto/sha256.hpp"

namespace dlt::privacy {

Opening make_opening(ByteView value, Rng& rng) {
    Opening opening;
    opening.value = Bytes(value.begin(), value.end());
    for (auto& b : opening.blinding.data) b = static_cast<std::uint8_t>(rng.next());
    return opening;
}

Commitment commit(const Opening& opening) {
    Bytes preimage;
    preimage.reserve(32 + opening.value.size());
    append(preimage, opening.blinding.view());
    append(preimage, opening.value);
    return Commitment{crypto::tagged_hash("dlt/commit", preimage)};
}

bool verify_opening(const Commitment& commitment, const Opening& opening) {
    return commit(opening) == commitment;
}

} // namespace dlt::privacy
