#include "privacy/taint.hpp"

namespace dlt::privacy {

void TaintAnalyzer::add_transaction(const ledger::Transaction& tx) {
    if (tx.kind != ledger::TxKind::kTransfer && !tx.is_coinbase()) return;
    std::vector<ledger::OutPoint> spent;
    spent.reserve(tx.inputs.size());
    for (const auto& in : tx.inputs) spent.push_back(in.prevout);
    tx_inputs_.emplace(tx.txid(), std::move(spent));
}

void TaintAnalyzer::add_block(const ledger::Block& block) {
    for (const auto& tx : block.txs) add_transaction(tx);
}

OutPointSet TaintAnalyzer::origins_of(const ledger::OutPoint& op) const {
    OutPointSet origins;
    OutPointSet visited;
    std::vector<ledger::OutPoint> stack{op};
    while (!stack.empty()) {
        const ledger::OutPoint cur = stack.back();
        stack.pop_back();
        if (!visited.insert(cur).second) continue;

        const auto it = tx_inputs_.find(cur.txid);
        if (it == tx_inputs_.end() || it->second.empty()) {
            // Unknown transaction or coinbase: a root origin.
            origins.insert(cur);
            continue;
        }
        for (const auto& parent : it->second) stack.push_back(parent);
    }
    return origins;
}

std::size_t TaintAnalyzer::anonymity_set_size(const ledger::OutPoint& op) const {
    return origins_of(op).size();
}

double TaintAnalyzer::taint_fraction(const ledger::OutPoint& op,
                                     const OutPointSet& tainted_roots) const {
    const OutPointSet origins = origins_of(op);
    if (origins.empty()) return 0.0;
    std::size_t tainted = 0;
    for (const auto& origin : origins)
        if (tainted_roots.contains(origin)) ++tainted;
    return static_cast<double>(tainted) / static_cast<double>(origins.size());
}

bool TaintAnalyzer::fully_traceable(const ledger::OutPoint& op) const {
    return origins_of(op).size() == 1;
}

} // namespace dlt::privacy
