// Hash-based commitments — the simulation stand-in for the zero-knowledge
// machinery the paper cites (§5.3, zk-SNARKs): commit to a value without
// revealing it, open later, verify bindingly. Used by the multi-channel ledger
// to anchor private-channel state on a shared chain without disclosing it.
#pragma once

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace dlt::privacy {

struct Commitment {
    Hash256 digest;

    friend bool operator==(const Commitment&, const Commitment&) = default;
};

struct Opening {
    Bytes value;
    Hash256 blinding;
};

/// Commit to `value` with a fresh random blinding factor.
Opening make_opening(ByteView value, Rng& rng);
Commitment commit(const Opening& opening);

/// True when `opening` is the committed value (binding + hiding under SHA-256).
bool verify_opening(const Commitment& commitment, const Opening& opening);

} // namespace dlt::privacy
