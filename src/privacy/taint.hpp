// Transaction-graph taint analysis (paper §5.3: "it is still possible to trace
// users based on their activity, which is fully exposed since every transaction
// is recorded"; "some coins might be linked to addresses known to be used for
// fraudulent activities"). Walks UTXO ancestry to compute the plausible-origin
// set of any output — the quantity mixers exist to inflate (E12).
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ledger/block.hpp"
#include "ledger/outpoint_hash.hpp"
#include "ledger/transaction.hpp"

namespace dlt::privacy {

/// Shared strengthened hash (was a third copy of the weak xor-fold functor).
using OutPointHash = ledger::OutPointHash;

using OutPointSet = std::unordered_set<ledger::OutPoint, OutPointHash>;

class TaintAnalyzer {
public:
    /// Index a confirmed transaction (call in chain order).
    void add_transaction(const ledger::Transaction& tx);
    void add_block(const ledger::Block& block);

    /// All coinbase/root outputs from which value could have flowed into `op`
    /// (the output's plausible-origin set). An output of a multi-input
    /// transaction inherits every input's origins — exactly why CoinJoin mixing
    /// grows this set.
    OutPointSet origins_of(const ledger::OutPoint& op) const;

    /// |origins_of(op)| — the anonymity-set size E12 reports.
    std::size_t anonymity_set_size(const ledger::OutPoint& op) const;

    /// Fraction of `op`'s origins that appear in `tainted_roots` (e.g. outputs
    /// of known-fraudulent coinbases). 0 = provably clean lineage, 1 = fully
    /// tainted — the paper's fungibility concern quantified.
    double taint_fraction(const ledger::OutPoint& op,
                          const OutPointSet& tainted_roots) const;

    /// True when `op` descends only from a single origin (perfectly traceable).
    bool fully_traceable(const ledger::OutPoint& op) const;

    std::size_t indexed_transactions() const { return tx_inputs_.size(); }

private:
    // txid -> the outpoints its inputs spent (empty for coinbase roots).
    std::unordered_map<Hash256, std::vector<ledger::OutPoint>> tx_inputs_;
};

} // namespace dlt::privacy
