// Multi-channel ledger (paper §5.3: "the blockchain platform must support such
// privacy domains and yet still remain consistent. One such proposed approach
// is called multi-channel", after Hyperledger Fabric). Each channel is an
// isolated ledger visible only to its members; every committed channel block is
// anchored on a shared chain as a commitment, so the consortium stays globally
// consistent without leaking channel data (E15).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/keys.hpp"
#include "privacy/commitment.hpp"

namespace dlt::privacy {

using Member = crypto::Address;

struct ChannelRecord {
    std::uint64_t sequence = 0;
    Bytes payload;
    Member author;
};

/// Anchor placed on the shared chain: proves a channel advanced without
/// revealing what was written.
struct ChannelAnchor {
    std::string channel;
    std::uint64_t sequence = 0;
    Commitment commitment;
};

class MultiChannelLedger {
public:
    explicit MultiChannelLedger(std::uint64_t seed) : rng_(seed) {}

    /// Create a channel; throws ValidationError when the name exists.
    void create_channel(const std::string& name, std::vector<Member> members);

    bool is_member(const std::string& channel, const Member& who) const;

    /// Append a record; throws ValidationError when `author` is not a member.
    /// Returns the anchor for the shared chain.
    ChannelAnchor submit(const std::string& channel, const Member& author,
                         Bytes payload);

    /// Read the channel ledger; throws ValidationError for non-members — the
    /// data-isolation guarantee.
    const std::vector<ChannelRecord>& read(const std::string& channel,
                                           const Member& who) const;

    /// Anyone may read the anchors (they reveal only progress, not content).
    const std::vector<ChannelAnchor>& anchors() const { return anchors_; }

    /// A member proves to an auditor that a specific record matches an anchor
    /// by revealing its opening.
    const Opening& opening_for(const std::string& channel, std::uint64_t sequence,
                               const Member& who) const;

    std::size_t channel_count() const { return channels_.size(); }
    std::uint64_t height_of(const std::string& channel) const;

private:
    struct Channel {
        std::unordered_set<Member> members;
        std::vector<ChannelRecord> records;
        std::vector<Opening> openings; // parallel to records
    };

    const Channel& channel_or_throw(const std::string& name) const;

    Rng rng_;
    std::map<std::string, Channel> channels_;
    std::vector<ChannelAnchor> anchors_;
};

} // namespace dlt::privacy
