#include "privacy/multichannel.hpp"

#include "common/error.hpp"

namespace dlt::privacy {

void MultiChannelLedger::create_channel(const std::string& name,
                                        std::vector<Member> members) {
    if (channels_.contains(name)) throw ValidationError("channel exists: " + name);
    if (members.empty()) throw ValidationError("channel needs at least one member");
    Channel channel;
    channel.members.insert(members.begin(), members.end());
    channels_.emplace(name, std::move(channel));
}

const MultiChannelLedger::Channel& MultiChannelLedger::channel_or_throw(
    const std::string& name) const {
    const auto it = channels_.find(name);
    if (it == channels_.end()) throw ValidationError("unknown channel: " + name);
    return it->second;
}

bool MultiChannelLedger::is_member(const std::string& channel,
                                   const Member& who) const {
    return channel_or_throw(channel).members.contains(who);
}

ChannelAnchor MultiChannelLedger::submit(const std::string& channel,
                                         const Member& author, Bytes payload) {
    const auto it = channels_.find(channel);
    if (it == channels_.end()) throw ValidationError("unknown channel: " + channel);
    Channel& ch = it->second;
    if (!ch.members.contains(author))
        throw ValidationError("submitter is not a channel member");

    ChannelRecord record;
    record.sequence = ch.records.size() + 1;
    record.payload = payload;
    record.author = author;

    Opening opening = make_opening(payload, rng_);
    ChannelAnchor anchor{channel, record.sequence, commit(opening)};

    ch.records.push_back(std::move(record));
    ch.openings.push_back(std::move(opening));
    anchors_.push_back(anchor);
    return anchor;
}

const std::vector<ChannelRecord>& MultiChannelLedger::read(const std::string& channel,
                                                           const Member& who) const {
    const Channel& ch = channel_or_throw(channel);
    if (!ch.members.contains(who))
        throw ValidationError("reader is not a channel member");
    return ch.records;
}

const Opening& MultiChannelLedger::opening_for(const std::string& channel,
                                               std::uint64_t sequence,
                                               const Member& who) const {
    const Channel& ch = channel_or_throw(channel);
    if (!ch.members.contains(who))
        throw ValidationError("requester is not a channel member");
    if (sequence == 0 || sequence > ch.openings.size())
        throw ValidationError("no such record");
    return ch.openings[sequence - 1];
}

std::uint64_t MultiChannelLedger::height_of(const std::string& channel) const {
    return channel_or_throw(channel).records.size();
}

} // namespace dlt::privacy
