#include "ledger/block.hpp"

#include "crypto/sha256.hpp"
#include "datastruct/merkle.hpp"

namespace dlt::ledger {

Hash256 BlockHeader::hash() const {
    if (!cached_hash_) {
        Writer w;
        encode(w);
        cached_hash_ = crypto::sha256d(w.data());
    }
    return *cached_hash_;
}

bool operator==(const BlockHeader& a, const BlockHeader& b) {
    // Field-wise comparison, ignoring the hash cache.
    return a.prev_hash == b.prev_hash && a.merkle_root == b.merkle_root &&
           a.state_root == b.state_root && a.height == b.height &&
           a.timestamp == b.timestamp && a.bits == b.bits && a.nonce == b.nonce &&
           a.proposer == b.proposer && a.annex == b.annex;
}

void BlockHeader::encode(Writer& w) const {
    w.fixed(prev_hash);
    w.fixed(merkle_root);
    w.fixed(state_root);
    w.varint(height);
    w.f64(timestamp);
    w.u32(bits);
    w.u64(nonce);
    w.fixed(proposer);
    w.blob(annex);
}

BlockHeader BlockHeader::decode(Reader& r) {
    BlockHeader h;
    h.prev_hash = r.fixed<32>();
    h.merkle_root = r.fixed<32>();
    h.state_root = r.fixed<32>();
    h.height = r.varint();
    h.timestamp = r.f64();
    h.bits = r.u32();
    h.nonce = r.u64();
    h.proposer = r.fixed<20>();
    h.annex = r.blob();
    return h;
}

std::vector<Hash256> Block::txids() const {
    std::vector<Hash256> ids;
    ids.reserve(txs.size());
    for (const auto& tx : txs) ids.push_back(tx.txid());
    return ids;
}

Hash256 Block::compute_merkle_root() const {
    return datastruct::merkle_root(txids());
}

void Block::encode(Writer& w) const {
    header.encode(w);
    w.varint(txs.size());
    for (const auto& tx : txs) tx.encode(w);
}

Block Block::decode(Reader& r) {
    Block b;
    b.header = BlockHeader::decode(r);
    const std::uint64_t n = r.varint_count(24); // minimal transaction envelope
    b.txs.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) b.txs.push_back(Transaction::decode(r));
    return b;
}

std::size_t Block::serialized_size() const {
    Writer w;
    encode(w);
    return w.size();
}

Block make_genesis(std::string_view chain_tag, std::uint32_t initial_bits) {
    Block genesis;
    genesis.header.bits = initial_bits;
    genesis.header.height = 0;
    genesis.header.timestamp = 0;
    // Seed prev_hash with a tag-derived value so distinct chains cannot share
    // blocks (replay protection between simulated networks).
    genesis.header.prev_hash = crypto::tagged_hash("dlt/genesis", to_bytes(chain_tag));
    genesis.header.merkle_root = genesis.compute_merkle_root();
    return genesis;
}

} // namespace dlt::ledger
