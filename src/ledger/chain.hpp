// Chain store: the block DAG every peer maintains. Tracks all branches (the
// paper's §2.4 "branches can occur"), cumulative work, children, and provides
// the primitives branch-selection policies need: longest/most-work tip lookup,
// subtree weights for GHOST, common ancestors, and reorg paths.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/uint256.hpp"
#include "ledger/block.hpp"

namespace dlt::ledger {

struct ChainEntry {
    Block block;
    Hash256 hash;
    std::uint64_t height = 0;
    crypto::U256 cumulative_work; // sum of per-block work from genesis
    double received_at = 0;       // local arrival time (telemetry)
};

class ChainStore {
public:
    /// Create a store rooted at `genesis` (implicitly valid).
    explicit ChainStore(const Block& genesis);

    const Hash256& genesis_hash() const { return genesis_hash_; }

    bool contains(const Hash256& hash) const { return entries_.contains(hash); }
    const ChainEntry* find(const Hash256& hash) const;

    /// Insert a block whose parent must already be present. `work` is the PoW
    /// work the block represents (use U256::one() for non-PoW chains so
    /// cumulative work equals height). Returns false when already present,
    /// throws ValidationError when the parent is unknown.
    bool insert(const Block& block, const crypto::U256& work, double received_at = 0);

    /// Insert a block whose parent was pruned from durable storage (see
    /// BlockStore::prune_below): the block anchors a detached subtree at its
    /// header height, with `cumulative_work` taken as given. Ancestry walks
    /// (ancestor, path_from_genesis) stop at such roots instead of reaching
    /// genesis; walks that would need to cross the pruned boundary
    /// (common_ancestor across subtrees) throw ValidationError.
    bool insert_detached_root(const Block& block, const crypto::U256& cumulative_work,
                              double received_at = 0);

    /// Children of a block (insertion order).
    const std::vector<Hash256>& children(const Hash256& hash) const;

    /// All blocks with no children.
    std::vector<Hash256> leaves() const;

    /// Tip with maximum cumulative work (ties broken by lower hash — an
    /// arbitrary but network-wide consistent rule). This is the
    /// longest-chain/Nakamoto selection when per-block work is uniform.
    Hash256 best_tip_by_work() const;

    /// GHOST selection (§2.7, Ethereum): walk from genesis, at each fork taking
    /// the child whose *subtree* contains the most blocks, until reaching a leaf.
    Hash256 best_tip_by_ghost() const;

    /// Number of blocks in the subtree rooted at `hash` (including itself).
    std::size_t subtree_size(const Hash256& hash) const;

    /// Walk up `steps` ancestors (stops at genesis).
    Hash256 ancestor(const Hash256& from, std::uint64_t steps) const;

    /// Lowest common ancestor of two blocks.
    Hash256 common_ancestor(const Hash256& a, const Hash256& b) const;

    /// Blocks to disconnect (old tip -> ancestor, exclusive) and connect
    /// (ancestor -> new tip, in application order) when switching tips.
    struct ReorgPath {
        std::vector<Hash256> disconnect; // old branch, tip first
        std::vector<Hash256> connect;    // new branch, oldest first
    };
    ReorgPath reorg_path(const Hash256& from_tip, const Hash256& to_tip) const;

    /// Hash chain from genesis to `tip` inclusive.
    std::vector<Hash256> path_from_genesis(const Hash256& tip) const;

    std::size_t size() const { return entries_.size(); }

    /// Blocks not on the path from genesis to `tip` (stale/uncle blocks) — the
    /// consistency cost E3 measures.
    std::size_t stale_count(const Hash256& tip) const;

private:
    /// Parent entry, throwing ValidationError when the walk would cross a
    /// pruned boundary (detached root with no stored parent).
    const ChainEntry* parent_of(const Hash256& hash) const;

    Hash256 genesis_hash_;
    std::unordered_map<Hash256, ChainEntry> entries_;
    std::unordered_map<Hash256, std::vector<Hash256>> children_;
};

} // namespace dlt::ledger
