// Consensus-agnostic block validation rules (the "System layer" checks every
// peer runs before accepting a block, §2.2/§2.4): structural limits, Merkle
// root integrity, coinbase policy, and signature checking policy.
#pragma once

#include <cstdint>

#include "ledger/block.hpp"
#include "ledger/utxo.hpp"

namespace dlt::ledger {

/// How thoroughly to check signatures. Full ECDSA on every input reproduces
/// real node behaviour; kSkip lets throughput experiments isolate consensus
/// costs from our (intentionally unoptimized) bignum arithmetic — DESIGN.md
/// records this as a measurement knob, not a protocol change.
enum class SigCheckMode { kFull, kSkip };

struct ValidationRules {
    std::size_t max_block_bytes = 1'000'000; // the 1 MB limit behind "7 tps"
    std::size_t max_txs_per_block = 50'000;
    SigCheckMode sig_mode = SigCheckMode::kFull;
    bool require_coinbase = true;
    Amount max_subsidy = kInitialSubsidy;
};

/// Structural checks that need no chain context: size, Merkle root, coinbase
/// placement, signatures (per `rules.sig_mode`). Throws ValidationError.
/// With kFull and a non-serial global thread pool, all signature checks in
/// the block are verified as one CheckQueue batch: the coordinating thread
/// gathers per-input jobs (overlapping with the workers already verifying)
/// and joins at the end. The accept/reject outcome is identical to the serial
/// loop; only which defect is *reported first* can differ on a block with
/// several independent defects.
void check_block_structure(const Block& block, const ValidationRules& rules);

/// Verify the signatures of every transaction as one parallel batch — the
/// conjunction of tx.verify_signatures() over `txs`, computed on the global
/// pool when it has workers. Used by ordering services that pre-verify client
/// batches before sequencing them.
bool verify_batch_signatures(const std::vector<Transaction>& txs);

/// Full contextual check against the parent-chain UTXO set: applies every
/// transaction, enforces the subsidy ceiling (subsidy + fees), and returns the
/// undo data. Throws ValidationError; the UTXO set is unchanged on failure.
UtxoUndo connect_block(const Block& block, UtxoSet& utxo,
                       const ValidationRules& rules);

} // namespace dlt::ledger
