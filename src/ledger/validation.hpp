// Consensus-agnostic block validation rules (the "System layer" checks every
// peer runs before accepting a block, §2.2/§2.4): structural limits, Merkle
// root integrity, coinbase policy, and signature checking policy.
#pragma once

#include <cstdint>

#include "ledger/block.hpp"
#include "ledger/utxo.hpp"

namespace dlt::ledger {

/// How thoroughly to check signatures. Full ECDSA on every input reproduces
/// real node behaviour; kSkip lets throughput experiments isolate consensus
/// costs from our (intentionally unoptimized) bignum arithmetic — DESIGN.md
/// records this as a measurement knob, not a protocol change.
enum class SigCheckMode { kFull, kSkip };

struct ValidationRules {
    std::size_t max_block_bytes = 1'000'000; // the 1 MB limit behind "7 tps"
    std::size_t max_txs_per_block = 50'000;
    SigCheckMode sig_mode = SigCheckMode::kFull;
    bool require_coinbase = true;
    Amount max_subsidy = kInitialSubsidy;
};

/// Structural checks that need no chain context: size, Merkle root, coinbase
/// placement, signatures (per `rules.sig_mode`). Throws ValidationError.
void check_block_structure(const Block& block, const ValidationRules& rules);

/// Full contextual check against the parent-chain UTXO set: applies every
/// transaction, enforces the subsidy ceiling (subsidy + fees), and returns the
/// undo data. Throws ValidationError; the UTXO set is unchanged on failure.
UtxoUndo connect_block(const Block& block, UtxoSet& utxo,
                       const ValidationRules& rules);

} // namespace dlt::ledger
