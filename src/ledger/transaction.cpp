#include "ledger/transaction.hpp"

#include "common/checkqueue.hpp"
#include "common/error.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sigcache.hpp"

namespace dlt::ledger {

void OutPoint::encode(Writer& w) const {
    w.fixed(txid);
    w.u32(index);
}

OutPoint OutPoint::decode(Reader& r) {
    OutPoint o;
    o.txid = r.fixed<32>();
    o.index = r.u32();
    return o;
}

void TxInput::encode(Writer& w) const {
    prevout.encode(w);
    w.blob(pubkey);
    w.blob(signature);
}

TxInput TxInput::decode(Reader& r) {
    TxInput in;
    in.prevout = OutPoint::decode(r);
    in.pubkey = r.blob();
    in.signature = r.blob();
    return in;
}

void TxOutput::encode(Writer& w) const {
    w.i64(value);
    w.fixed(recipient);
}

TxOutput TxOutput::decode(Reader& r) {
    TxOutput out;
    out.value = r.i64();
    out.recipient = r.fixed<20>();
    return out;
}

namespace {
void encode_body(const Transaction& tx, Writer& w, bool include_signatures) {
    w.u8(static_cast<std::uint8_t>(tx.kind));
    w.varint(tx.inputs.size());
    for (const auto& in : tx.inputs) {
        in.prevout.encode(w);
        w.blob(in.pubkey);
        if (include_signatures) w.blob(in.signature);
    }
    w.varint(tx.outputs.size());
    for (const auto& out : tx.outputs) out.encode(w);
    w.blob(tx.sender_pubkey);
    w.varint(tx.nonce);
    w.fixed(tx.target);
    w.i64(tx.value);
    w.blob(tx.data);
    w.varint(tx.gas_limit);
    w.i64(tx.gas_price);
    if (include_signatures) w.blob(tx.account_signature);
    w.i64(tx.declared_fee);
}
} // namespace

Hash256 Transaction::txid() const {
    if (!cached_txid_) {
        Writer w;
        encode_body(*this, w, /*include_signatures=*/true);
        cached_txid_ = crypto::sha256d(w.data());
    }
    return *cached_txid_;
}

bool operator==(const Transaction& a, const Transaction& b) {
    // Field-wise comparison, ignoring the txid cache.
    return a.kind == b.kind && a.inputs == b.inputs && a.outputs == b.outputs &&
           a.sender_pubkey == b.sender_pubkey && a.nonce == b.nonce &&
           a.target == b.target && a.value == b.value && a.data == b.data &&
           a.gas_limit == b.gas_limit && a.gas_price == b.gas_price &&
           a.account_signature == b.account_signature &&
           a.declared_fee == b.declared_fee;
}

Hash256 Transaction::sighash() const {
    if (!cached_sighash_) {
        Writer w;
        encode_body(*this, w, /*include_signatures=*/false);
        cached_sighash_ = crypto::tagged_hash("dlt/sighash", w.data());
    }
    return *cached_sighash_;
}

void Transaction::sign_with(const crypto::PrivateKey& key) {
    invalidate_txid_cache(); // signatures are part of the txid
    // Public keys are part of the signed message, so install them first.
    const Bytes pub = key.public_key().encode();
    if (uses_accounts()) {
        sender_pubkey = pub;
        account_signature = key.sign(sighash()).encode();
        return;
    }
    for (auto& in : inputs) in.pubkey = pub;
    const Hash256 digest = sighash();
    const Bytes signature = key.sign(digest).encode();
    for (auto& in : inputs) in.signature = signature;
}

bool Transaction::collect_signature_checks(
    std::vector<crypto::SigCheckJob>& out) const {
    if (is_coinbase()) return true;
    // The sighash is computed (and cached) here, on the calling thread, so the
    // jobs handed to workers are pure functions of immutable views — the
    // mutable cache is never touched off-thread.
    const Hash256 digest = sighash();
    if (uses_accounts()) {
        if (sender_pubkey.empty() || account_signature.empty()) return false;
        out.push_back(crypto::SigCheckJob{sender_pubkey, digest, account_signature});
        return true;
    }
    if (inputs.empty()) return false;
    for (const auto& in : inputs) {
        if (in.pubkey.empty() || in.signature.empty()) return false;
        out.push_back(crypto::SigCheckJob{in.pubkey, digest, in.signature});
    }
    return true;
}

bool Transaction::verify_signatures() const {
    // Routed through the process-wide sigcache: in the simulator every node
    // validates the same gossiped transaction, and only the first pays for the
    // point decompression + ECDSA verification. Malformed keys/signatures
    // verify as false inside verify_signature_cached (no throw).
    std::vector<crypto::SigCheckJob> jobs;
    if (!collect_signature_checks(jobs)) return false;
    if (jobs.empty()) return true; // coinbase

    // Parallelism pays only when there are several expensive checks; the
    // conjunction is order-independent, so the result matches the serial loop.
    ThreadPool& pool = ThreadPool::global();
    if (pool.worker_count() == 0 || jobs.size() < 4) {
        for (const auto& job : jobs)
            if (!job()) return false;
        return true;
    }
    CheckQueue<crypto::SigCheckJob> queue(pool, /*grain=*/4);
    queue.add(std::move(jobs));
    return queue.complete();
}

void Transaction::encode(Writer& w) const {
    encode_body(*this, w, /*include_signatures=*/true);
}

Transaction Transaction::decode(Reader& r) {
    Transaction tx;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(TxKind::kRecord))
        throw DecodeError("unknown transaction kind");
    tx.kind = static_cast<TxKind>(kind);
    const std::uint64_t n_in = r.varint_count(37); // prevout(36) + 2 empty blobs
    tx.inputs.reserve(n_in);
    for (std::uint64_t i = 0; i < n_in; ++i) {
        TxInput in;
        in.prevout = OutPoint::decode(r);
        in.pubkey = r.blob();
        in.signature = r.blob();
        tx.inputs.push_back(std::move(in));
    }
    const std::uint64_t n_out = r.varint_count(28); // value(8) + address(20)
    tx.outputs.reserve(n_out);
    for (std::uint64_t i = 0; i < n_out; ++i) tx.outputs.push_back(TxOutput::decode(r));
    tx.sender_pubkey = r.blob();
    tx.nonce = r.varint();
    tx.target = r.fixed<20>();
    tx.value = r.i64();
    tx.data = r.blob();
    tx.gas_limit = r.varint();
    tx.gas_price = r.i64();
    tx.account_signature = r.blob();
    tx.declared_fee = r.i64();
    return tx;
}

std::size_t Transaction::serialized_size() const {
    Writer w;
    encode(w);
    return w.size();
}

Transaction make_coinbase(const crypto::Address& miner, Amount reward,
                          std::uint64_t height) {
    Transaction tx;
    tx.kind = TxKind::kCoinbase;
    tx.outputs.push_back(TxOutput{reward, miner});
    // Encode the height in `nonce` so coinbases at different heights have
    // distinct txids (Bitcoin's BIP-34 serves the same purpose).
    tx.nonce = height;
    return tx;
}

Transaction make_transfer(const std::vector<OutPoint>& spends,
                          const std::vector<TxOutput>& outputs) {
    Transaction tx;
    tx.kind = TxKind::kTransfer;
    tx.inputs.reserve(spends.size());
    for (const auto& op : spends) tx.inputs.push_back(TxInput{op, {}, {}});
    tx.outputs = outputs;
    return tx;
}

Transaction make_record(const crypto::PublicKey& sender, std::uint64_t nonce,
                        Bytes payload) {
    Transaction tx;
    tx.kind = TxKind::kRecord;
    tx.sender_pubkey = sender.encode();
    tx.nonce = nonce;
    tx.data = std::move(payload);
    return tx;
}

} // namespace dlt::ledger
