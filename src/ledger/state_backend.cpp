#include "ledger/state_backend.hpp"

#include <algorithm>
#include <cstring>

#include "common/threadpool.hpp"

namespace dlt::ledger {

void StateBackend::encode_sorted(Writer& w) const {
    w.varint(size());
    for_each_sorted([&w](const OutPoint& op, const TxOutput& out) {
        op.encode(w);
        out.encode(w);
    });
}

std::optional<TxOutput> ShardedMemoryBackend::get(const OutPoint& op) const {
    const Shard& shard = shards_[shard_of(op)];
    const auto it = shard.find(op);
    if (it == shard.end()) return std::nullopt;
    return it->second;
}

bool ShardedMemoryBackend::contains(const OutPoint& op) const {
    return shards_[shard_of(op)].contains(op);
}

bool ShardedMemoryBackend::insert_if_absent(const OutPoint& op, const TxOutput& out) {
    if (!shards_[shard_of(op)].emplace(op, out).second) return false;
    ++size_;
    return true;
}

std::optional<TxOutput> ShardedMemoryBackend::put(const OutPoint& op,
                                                  const TxOutput& out) {
    Shard& shard = shards_[shard_of(op)];
    const auto [it, inserted] = shard.emplace(op, out);
    if (inserted) {
        ++size_;
        return std::nullopt;
    }
    const TxOutput previous = it->second;
    it->second = out;
    return previous;
}

std::optional<TxOutput> ShardedMemoryBackend::erase(const OutPoint& op) {
    Shard& shard = shards_[shard_of(op)];
    const auto it = shard.find(op);
    if (it == shard.end()) return std::nullopt;
    const TxOutput removed = it->second;
    shard.erase(it);
    --size_;
    return removed;
}

void ShardedMemoryBackend::for_each(const Visitor& visit) const {
    for (const Shard& shard : shards_)
        for (const auto& [op, out] : shard) visit(op, out);
}

void ShardedMemoryBackend::for_each_sorted(const Visitor& visit) const {
    // Shards partition the key space in order, so sorting each shard and
    // walking them first-to-last yields the globally sorted sequence.
    std::vector<std::pair<OutPoint, TxOutput>> entries;
    for (const Shard& shard : shards_) {
        entries.clear();
        entries.reserve(shard.size());
        for (const auto& [op, out] : shard) entries.emplace_back(op, out);
        std::sort(entries.begin(), entries.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (const auto& [op, out] : entries) visit(op, out);
    }
}

void ShardedMemoryBackend::encode_sorted(Writer& w) const {
    // Per-shard bucket sort instead of one comparison sort: within a shard the
    // top nibble of txid[0] is fixed, so the next 16 bits of txid split the
    // shard into 64k buckets whose order *is* canonical OutPoint order. Txids
    // are hash outputs, so buckets are almost always empty or singletons at
    // realistic state sizes and the residual per-bucket std::sort touches
    // nearly nothing — the scatter pass is O(n) with no comparisons. This is
    // what makes the sharded path beat the serial whole-set sort even on one
    // core.
    constexpr std::size_t kBuckets = 1u << 16;
    const auto bucket_of = [](const OutPoint& op) noexcept -> std::size_t {
        return (static_cast<std::size_t>(op.txid[0] & 0x0F) << 12) |
               (static_cast<std::size_t>(op.txid[1]) << 4) |
               (op.txid[2] >> 4);
    };

    // A snapshot entry is fixed-width on the wire: txid(32) + index u32 LE +
    // value i64 LE + recipient(20) = 64 bytes. Each entry is encoded straight
    // into its final bucket slot during the single hash-map walk, so the only
    // per-entry work is one 64-byte write; the residual bucket sorts then
    // operate on the encoded records themselves. Byte-layout changes would be
    // caught by the byte-identity test against the serial encoder.
    struct Record {
        std::uint8_t bytes[64];
    };
    const auto fill_record = [](Record& rec, const OutPoint& op, const TxOutput& out) {
        std::copy(op.txid.view().begin(), op.txid.view().end(), rec.bytes);
        for (std::size_t i = 0; i < 4; ++i)
            rec.bytes[32 + i] = static_cast<std::uint8_t>(op.index >> (8 * i));
        const auto value = static_cast<std::uint64_t>(out.value);
        for (std::size_t i = 0; i < 8; ++i)
            rec.bytes[36 + i] = static_cast<std::uint8_t>(value >> (8 * i));
        std::copy(out.recipient.view().begin(), out.recipient.view().end(),
                  rec.bytes + 44);
    };
    // Canonical order on encoded records: txid bytes lexicographic, then the
    // numeric (LE-decoded) index — exactly OutPoint's operator<=>.
    const auto record_less = [](const Record& a, const Record& b) noexcept {
        const int cmp = std::memcmp(a.bytes, b.bytes, 32);
        if (cmp != 0) return cmp < 0;
        std::uint32_t ai = 0;
        std::uint32_t bi = 0;
        for (std::size_t i = 0; i < 4; ++i) {
            ai |= static_cast<std::uint32_t>(a.bytes[32 + i]) << (8 * i);
            bi |= static_cast<std::uint32_t>(b.bytes[32 + i]) << (8 * i);
        }
        return ai < bi;
    };

    std::array<std::vector<Record>, kShards> buffers;
    parallel_for(ThreadPool::global(), 0, kShards, [&](std::size_t s) {
        const Shard& shard = shards_[s];
        const std::size_t n = shard.size();
        if (n == 0) return;

        // Count bucket occupancy while encoding each entry once into a flat
        // staging array (one cache-unfriendly map walk, everything after is
        // sequential); remember the rare buckets that collide so the fix-up
        // pass never scans all 64k counters.
        std::vector<std::uint32_t> counts(kBuckets, 0);
        std::vector<Record> staging(n);
        std::vector<std::uint32_t> collisions;
        std::size_t next = 0;
        for (const auto& [op, out] : shard) {
            const std::size_t b = bucket_of(op);
            if (++counts[b] == 2) collisions.push_back(static_cast<std::uint32_t>(b));
            fill_record(staging[next++], op, out);
        }

        // Exclusive prefix sum -> first slot of each bucket. `cursor` advances
        // during the scatter, so afterwards cursor[b] is the *end* of bucket b.
        std::vector<std::uint32_t> cursor(kBuckets);
        std::uint32_t running = 0;
        for (std::size_t b = 0; b < kBuckets; ++b) {
            cursor[b] = running;
            running += counts[b];
        }

        // Scatter into bucket order (the encoded record's leading bytes are
        // the txid, so the bucket can be read back directly), then finish the
        // collision buckets with tiny sorts.
        std::vector<Record>& records = buffers[s];
        records.resize(n);
        for (const Record& rec : staging) {
            const std::size_t b =
                (static_cast<std::size_t>(rec.bytes[0] & 0x0F) << 12) |
                (static_cast<std::size_t>(rec.bytes[1]) << 4) |
                (rec.bytes[2] >> 4);
            records[cursor[b]++] = rec;
        }
        for (const std::uint32_t b : collisions) {
            const auto first = records.begin() + (cursor[b] - counts[b]);
            std::sort(first, first + counts[b], record_less);
        }
    });
    std::size_t total = 0;
    for (const auto& records : buffers) total += records.size() * sizeof(Record);
    w.reserve(total + 9);
    w.varint(size_);
    for (const auto& records : buffers) {
        if (records.empty()) continue;
        w.bytes(ByteView{records.front().bytes, records.size() * sizeof(Record)});
    }
}

} // namespace dlt::ledger
