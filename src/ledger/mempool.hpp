// Fee-market mempool: the admission-control engine between client demand and
// block space (paper §2.4 "transactions are submitted by client users ...
// pooled into blocks", §2.7/§4 — the 7-vs-10K tps gap is decided here). The
// pool is a bounded, multi-indexed structure:
//
//   txid hash map   -> owns the entries (O(1) dedup)
//   feerate set     -> (fee_rate desc, admission seq desc); O(log n) admission,
//                      eviction, and incremental block-template assembly —
//                      miners walk the maintained index instead of re-sorting
//                      the pool every block
//   expiry ring     -> admission-ordered FIFO of (entered, seq, txid); expired
//                      entries pop off the front in O(1) amortized
//   conflict maps   -> spent-outpoint and (sender, nonce) -> txid, enabling
//                      replace-by-fee instead of silently queueing conflicting
//                      spends of the same coin/nonce
//
// Admission returns a typed AdmissionResult (the ExecutionStatus idiom of
// pandanite's request_manager: QUEUE_FULL / EXPIRED_TRANSACTION /
// ALREADY_IN_QUEUE / ...) so callers and metrics can distinguish *why* demand
// was shed. Memory is bounded by both entry count and serialized bytes;
// overflow evicts the lowest-feerate entry, ties resolved toward keeping the
// newest arrivals (matching the historical greedy pool, which kept virtual-time
// experiment outputs E01/E02 byte-identical across the rebuild).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "ledger/outpoint_hash.hpp"
#include "ledger/transaction.hpp"

namespace dlt::obs {
class Gauge;
} // namespace dlt::obs

namespace dlt::ledger {

/// Why an offered transaction was (not) admitted. kAccepted and kRbfReplaced
/// are the success codes; everything else means the pool shed the demand.
enum class AdmissionResult : std::uint8_t {
    kAccepted = 0,     // entered the pool
    kRbfReplaced,      // entered the pool, replacing lower-feerate conflicts
    kAlreadyInQueue,   // duplicate txid
    kQueueFull,        // pool at capacity and feerate does not beat the worst entry
    kFeeTooLow,        // below the relay floor, or an insufficient RBF bump
    kExpired,          // this txid already expired out of the pool (stale re-relay)
};
inline constexpr std::size_t kAdmissionResultCount = 6;

/// Stable uppercase name ("ACCEPTED", "QUEUE_FULL", ...) for metrics/reports.
const char* admission_result_name(AdmissionResult r);

/// Why a resident entry left the pool without being confirmed.
enum class MempoolDropReason : std::uint8_t {
    kEvicted = 0, // displaced by higher-feerate admissions under memory pressure
    kExpired,     // sat unconfirmed past MempoolConfig::expiry
    kReplaced,    // replaced by a higher-feerate conflicting transaction (RBF)
};
inline constexpr std::size_t kMempoolDropReasonCount = 3;
const char* mempool_drop_reason_name(MempoolDropReason r);

struct MempoolConfig {
    /// Entry-count bound (the historical pool's only limit).
    std::size_t max_count = 100'000;
    /// Serialized-bytes bound across all entries.
    std::size_t max_bytes = std::numeric_limits<std::size_t>::max();
    /// Relay floor: entries below this fee-per-byte are refused outright.
    double min_fee_rate = 0.0;
    /// Entry lifetime in virtual seconds; 0 disables expiry.
    SimDuration expiry = 0.0;
    /// A conflicting replacement must carry at least rbf_min_bump times the
    /// feerate of every transaction it displaces (Bitcoin's BIP-125 rule 6,
    /// expressed as a ratio).
    double rbf_min_bump = 1.1;
};

/// Per-instance admission/drop tallies (the obs registry aggregates the same
/// events across every pool in the process; these stay per-pool so an
/// experiment can report the observed replica's outcome mix).
struct MempoolStats {
    std::uint64_t admitted[kAdmissionResultCount] = {};
    std::uint64_t dropped[kMempoolDropReasonCount] = {};

    std::uint64_t result(AdmissionResult r) const {
        return admitted[static_cast<std::size_t>(r)];
    }
    std::uint64_t drops(MempoolDropReason r) const {
        return dropped[static_cast<std::size_t>(r)];
    }
};

/// One row of an assembled block template: a borrowed pointer into the pool
/// (valid until the pool is next mutated) plus the cached fee bookkeeping, so
/// template assembly copies nothing and callers copy only what they include.
struct TemplateEntry {
    const Transaction* tx = nullptr;
    Amount fee = 0;
    std::size_t size = 0;
    double fee_rate = 0;
};

class Mempool {
public:
    Mempool() : Mempool(MempoolConfig{}) {}
    explicit Mempool(MempoolConfig config);
    /// Historical constructor: bound by entry count only.
    explicit Mempool(std::size_t max_count)
        : Mempool(MempoolConfig{.max_count = max_count}) {}

    Mempool(Mempool&&) = default;
    Mempool& operator=(Mempool&&) = default;

    /// Observer invoked whenever a resident entry is dropped unconfirmed
    /// (evicted / expired / RBF-replaced) — the lifecycle tracker stamps these
    /// as terminal events so shed transactions stop reading as infinite
    /// latency. Must not reentrantly mutate the pool.
    using DropObserver =
        std::function<void(const Hash256& txid, MempoolDropReason reason, SimTime at)>;
    void set_drop_observer(DropObserver observer) { drop_observer_ = std::move(observer); }

    /// Admission control. `now` is the virtual time (drives expiry; ignored
    /// when expiry is disabled). The rvalue overload moves the transaction
    /// into the pool, sparing the copy on the gossip hot path.
    AdmissionResult admit(const Transaction& tx, SimTime now = 0.0);
    AdmissionResult admit(Transaction&& tx, SimTime now = 0.0);

    /// Historical boolean API: true iff admit() succeeded.
    bool add(const Transaction& tx, SimTime now = 0.0) {
        const AdmissionResult r = admit(tx, now);
        return r == AdmissionResult::kAccepted || r == AdmissionResult::kRbfReplaced;
    }

    /// Drop entries that have sat unconfirmed for longer than config.expiry;
    /// returns how many expired. Called implicitly by admit(); miners call it
    /// before assembling a template. No-op when expiry is disabled.
    std::size_t expire(SimTime now);

    bool contains(const Hash256& txid) const { return pool_.contains(txid); }
    std::size_t size() const { return pool_.size(); }
    bool empty() const { return pool_.empty(); }
    /// Serialized bytes across all entries (the memory bound's currency).
    std::size_t bytes() const { return total_bytes_; }

    /// Highest feerate offered by any entry, nullopt when empty.
    std::optional<double> best_fee_rate() const;
    /// Feerate a new transaction must beat to be admitted when the pool is
    /// full: the lowest resident feerate at capacity, else the relay floor
    /// (what a fee-bidding wallet would query before broadcasting).
    double fee_rate_floor() const;

    /// Feerate-ordered block template: walks the maintained index best-first,
    /// greedily skipping entries that overflow `max_bytes` (the standard miner
    /// knapsack), capped at `max_count` rows. Returned pointers are valid
    /// until the next pool mutation. Byte-identical to sorting the pool from
    /// scratch (tests pin this against a brute-force oracle).
    std::vector<TemplateEntry> build_template(std::size_t max_bytes,
                                              std::size_t max_count = SIZE_MAX) const;

    /// Historical copying selection (build_template + copy).
    std::vector<Transaction> select(std::size_t max_bytes,
                                    std::size_t max_count = SIZE_MAX) const;

    /// Drop all transactions included in a confirmed block (not a "drop" for
    /// observer purposes — these succeeded).
    void remove_confirmed(const std::vector<Hash256>& txids);

    /// Re-add transactions from disconnected blocks during a reorg.
    void add_back(const std::vector<Transaction>& txs, SimTime now = 0.0);

    const MempoolConfig& config() const { return config_; }
    const MempoolStats& stats() const { return stats_; }

    /// Register per-instance size/bytes gauges (mempool_size{instance},
    /// mempool_bytes{instance}) in the global metrics registry. Aggregate
    /// admission/drop counters are always maintained; gauges are opt-in
    /// because one pool per peer would otherwise fight over a single value.
    void enable_gauges(const std::string& instance);

private:
    struct Entry {
        Transaction tx;
        Amount fee = 0;
        std::size_t size = 0;
        double fee_rate = 0;
        std::uint64_t seq = 0;  // admission order; refreshed on re-admission
        SimTime entered = 0;    // admission time (expiry ring key)
    };

    /// Feerate-index key. Ordered best-first: higher feerate, then *later*
    /// admission among equal feerates (the historical multimap walked its
    /// reverse iterator, which yields newest-first within a tie; eviction
    /// takes the back — lowest feerate, oldest arrival).
    struct OrderKey {
        double fee_rate = 0;
        std::uint64_t seq = 0;
        Hash256 txid;
    };
    struct OrderBestFirst {
        bool operator()(const OrderKey& a, const OrderKey& b) const {
            if (a.fee_rate != b.fee_rate) return a.fee_rate > b.fee_rate;
            return a.seq > b.seq;
        }
    };

    /// Account-family conflict key: one (sender, nonce) slot may be pending.
    struct AccountKey {
        Bytes sender;
        std::uint64_t nonce = 0;
        bool operator==(const AccountKey&) const = default;
    };
    struct AccountKeyHash {
        std::size_t operator()(const AccountKey& k) const noexcept {
            std::size_t h = 0xcbf29ce484222325ull;
            for (const std::uint8_t b : k.sender) h = (h ^ b) * 0x100000001b3ull;
            return h ^ (k.nonce * 0x9E3779B97F4A7C15ull);
        }
    };

    struct RingSlot {
        SimTime entered = 0;
        std::uint64_t seq = 0; // disambiguates re-admissions of the same txid
        Hash256 txid;
    };

    AdmissionResult admit_impl(Transaction&& tx, SimTime now);
    void insert_entry(Transaction&& tx, const Hash256& id, Amount fee,
                      std::size_t size, double fee_rate, SimTime now);
    /// Remove one entry and fix every index. Confirmed removals pass no
    /// reason; unconfirmed drops are counted and reported to the observer.
    void erase_entry(std::unordered_map<Hash256, Entry>::iterator it,
                     std::optional<MempoolDropReason> reason, SimTime at);
    void index_conflicts(const Transaction& tx, const Hash256& id, bool insert);
    /// Pool entries conflicting with `tx` (shared spent outpoint or same
    /// account (sender, nonce)), deduplicated.
    std::vector<Hash256> find_conflicts(const Transaction& tx) const;
    bool recently_expired(const Hash256& id) const;
    void count_admission(AdmissionResult r);
    void update_gauges();

    MempoolConfig config_;
    std::uint64_t next_seq_ = 0;
    std::size_t total_bytes_ = 0;
    std::unordered_map<Hash256, Entry> pool_;
    std::set<OrderKey, OrderBestFirst> by_fee_rate_;
    std::unordered_map<OutPoint, Hash256, OutPointHash> by_spend_;
    std::unordered_map<AccountKey, Hash256, AccountKeyHash> by_account_;
    std::deque<RingSlot> expiry_ring_;
    /// Two-generation aging set of txids that expired here; re-relays of these
    /// are refused with kExpired (pandanite's EXPIRED_TRANSACTION) instead of
    /// bouncing back in from slower peers. Generations swap every expiry
    /// period, bounding memory without per-id timestamps.
    std::unordered_set<Hash256> expired_gen_[2];
    SimTime expired_gen_started_ = 0;
    DropObserver drop_observer_;
    MempoolStats stats_;
    /// Opt-in per-instance gauges (global registry); null until enable_gauges.
    obs::Gauge* gauge_size_ = nullptr;
    obs::Gauge* gauge_bytes_ = nullptr;
};

} // namespace dlt::ledger
