// Mempool: pending transactions awaiting inclusion (paper §2.4 — "transactions
// are submitted by client users ... pooled into blocks"). Fee-rate ordered
// selection, duplicate rejection, and eviction of confirmed transactions.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "ledger/transaction.hpp"

namespace dlt::ledger {

class Mempool {
public:
    explicit Mempool(std::size_t max_transactions = 100'000)
        : max_transactions_(max_transactions) {}

    /// Add a transaction; returns false when already present or the pool is
    /// full of higher-fee transactions.
    bool add(const Transaction& tx);

    bool contains(const Hash256& txid) const { return pool_.contains(txid); }
    std::size_t size() const { return pool_.size(); }
    bool empty() const { return pool_.empty(); }

    /// Highest fee-rate transactions whose serialized sizes fit `max_bytes`
    /// (greedy knapsack, the standard miner policy), capped at `max_count`.
    std::vector<Transaction> select(std::size_t max_bytes,
                                    std::size_t max_count = SIZE_MAX) const;

    /// Drop all transactions included in a confirmed block.
    void remove_confirmed(const std::vector<Hash256>& txids);

    /// Re-add transactions from disconnected blocks during a reorg.
    void add_back(const std::vector<Transaction>& txs);

private:
    struct PoolEntry {
        Transaction tx;
        std::size_t size = 0;
        Amount fee = 0;
        double fee_rate = 0;
    };

    std::size_t max_transactions_;
    std::unordered_map<Hash256, PoolEntry> pool_;
    /// Fee-rate index for O(log n) eviction and selection under saturation.
    std::multimap<double, Hash256> by_fee_rate_;
};

} // namespace dlt::ledger
