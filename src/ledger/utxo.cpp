#include "ledger/utxo.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace dlt::ledger {

namespace {
// Serialized footprint of one entry: OutPoint (32-byte txid + u32 index) plus
// TxOutput (i64 value + 20-byte address). Used to bound decoded element counts
// against the bytes actually present.
constexpr std::size_t kOutPointBytes = 36;
constexpr std::size_t kEntryBytes = kOutPointBytes + 28;
} // namespace

void UtxoUndo::encode(Writer& w) const {
    w.varint(spent.size());
    for (const auto& [op, out] : spent) {
        op.encode(w);
        out.encode(w);
    }
    w.varint(created.size());
    for (const auto& op : created) op.encode(w);
}

UtxoUndo UtxoUndo::decode(Reader& r) {
    UtxoUndo undo;
    const std::uint64_t spent_count = r.varint_count(kEntryBytes);
    undo.spent.reserve(spent_count);
    for (std::uint64_t i = 0; i < spent_count; ++i) {
        const auto op = OutPoint::decode(r);
        const auto out = TxOutput::decode(r);
        undo.spent.emplace_back(op, out);
    }
    const std::uint64_t created_count = r.varint_count(kOutPointBytes);
    undo.created.reserve(created_count);
    for (std::uint64_t i = 0; i < created_count; ++i)
        undo.created.push_back(OutPoint::decode(r));
    return undo;
}

UtxoSet::UtxoSet() : backend_(std::make_unique<ShardedMemoryBackend>()) {}

UtxoSet::UtxoSet(std::unique_ptr<StateBackend> backend)
    : backend_(std::move(backend)) {
    DLT_EXPECTS(backend_ != nullptr);
    rebuild_index();
}

UtxoSet::UtxoSet(const UtxoSet& other)
    : backend_(other.backend_->clone()),
      by_addr_(other.by_addr_),
      total_value_(other.total_value_) {}

UtxoSet& UtxoSet::operator=(const UtxoSet& other) {
    if (this == &other) return *this;
    backend_ = other.backend_->clone();
    by_addr_ = other.by_addr_;
    total_value_ = other.total_value_;
    return *this;
}

void UtxoSet::rebuild_index() {
    by_addr_.clear();
    total_value_ = 0;
    backend_->for_each([this](const OutPoint& op, const TxOutput& out) {
        index_add(op, out);
        total_value_ += out.value;
    });
}

void UtxoSet::encode(Writer& w) const {
    obs::ScopedTimer timer(obs::MetricsRegistry::global().histogram(
        "state_snapshot_build_seconds",
        "Wall-clock latency of canonical UTXO snapshot serialization"));
    backend_->encode_sorted(w);
}

UtxoSet UtxoSet::decode(Reader& r) {
    const std::uint64_t count = r.varint_count(kEntryBytes);
    UtxoSet utxo;
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto op = OutPoint::decode(r);
        const auto out = TxOutput::decode(r);
        if (!money_range(out.value))
            throw DecodeError("utxo snapshot entry value out of range");
        if (!utxo.backend_->insert_if_absent(op, out))
            throw DecodeError("duplicate outpoint in utxo snapshot");
        utxo.index_add(op, out);
        utxo.total_value_ += out.value;
    }
    return utxo;
}

std::optional<TxOutput> UtxoSet::lookup(const OutPoint& op) const {
    return backend_->get(op);
}

bool UtxoSet::contains(const OutPoint& op) const { return backend_->contains(op); }

Amount UtxoSet::balance_of(const crypto::Address& addr) const {
    const auto it = by_addr_.find(addr);
    return it == by_addr_.end() ? 0 : it->second.balance;
}

std::vector<std::pair<OutPoint, TxOutput>> UtxoSet::coins_of(
    const crypto::Address& addr) const {
    std::vector<std::pair<OutPoint, TxOutput>> coins;
    const auto it = by_addr_.find(addr);
    if (it == by_addr_.end()) return coins;
    coins.reserve(it->second.coins.size());
    for (const auto& op : it->second.coins) {
        const auto entry = backend_->get(op);
        DLT_INVARIANT(entry.has_value()); // index mirrors the backend
        coins.emplace_back(op, *entry);
    }
    std::sort(coins.begin(), coins.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return coins;
}

void UtxoSet::index_add(const OutPoint& op, const TxOutput& out) {
    auto& entry = by_addr_[out.recipient];
    entry.balance += out.value;
    entry.coins.insert(op);
}

void UtxoSet::index_remove(const OutPoint& op, const TxOutput& out) {
    const auto it = by_addr_.find(out.recipient);
    DLT_INVARIANT(it != by_addr_.end());
    it->second.balance -= out.value;
    it->second.coins.erase(op);
    if (it->second.coins.empty()) by_addr_.erase(it);
}

void UtxoSet::insert_raw(const OutPoint& op, const TxOutput& out) {
    const auto previous = backend_->put(op, out);
    if (previous) {
        index_remove(op, *previous); // silent overwrite replaces the old owner
        total_value_ -= previous->value;
    }
    index_add(op, out);
    total_value_ += out.value;
}

std::vector<std::pair<OutPoint, TxOutput>> UtxoSet::export_all() const {
    std::vector<std::pair<OutPoint, TxOutput>> all;
    all.reserve(size());
    backend_->for_each([&all](const OutPoint& op, const TxOutput& out) {
        all.emplace_back(op, out);
    });
    return all;
}

Amount UtxoSet::check_transaction(const Transaction& tx) const {
    if (tx.is_coinbase()) return 0;
    if (tx.kind != TxKind::kTransfer)
        return 0; // account-family txs do not touch the UTXO set
    if (tx.inputs.empty()) throw ValidationError("transfer with no inputs");

    Amount in_value = 0;
    std::vector<OutPoint> seen;
    for (const auto& in : tx.inputs) {
        for (const auto& prior : seen)
            if (prior == in.prevout)
                throw ValidationError("duplicate input within transaction");
        seen.push_back(in.prevout);

        const auto out = lookup(in.prevout);
        if (!out) throw ValidationError("input spends unknown or spent output");
        in_value += out->value;
    }

    Amount out_value = 0;
    for (const auto& out : tx.outputs) {
        if (!money_range(out.value)) throw ValidationError("output value out of range");
        out_value += out.value;
    }
    if (!money_range(in_value) || !money_range(out_value))
        throw ValidationError("value overflow");
    if (out_value > in_value) throw ValidationError("outputs exceed inputs");
    return in_value - out_value;
}

void UtxoSet::apply_transaction(const Transaction& tx, UtxoUndo& undo) {
    if (tx.kind == TxKind::kTransfer) {
        for (const auto& in : tx.inputs) {
            const auto removed = backend_->erase(in.prevout);
            DLT_INVARIANT(removed.has_value()); // caller checked
            undo.spent.emplace_back(in.prevout, *removed);
            index_remove(in.prevout, *removed);
            total_value_ -= removed->value;
        }
    }
    if (tx.kind == TxKind::kTransfer || tx.is_coinbase()) {
        const Hash256 id = tx.txid();
        for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
            const OutPoint op{id, i};
            if (backend_->insert_if_absent(op, tx.outputs[i])) {
                index_add(op, tx.outputs[i]);
                total_value_ += tx.outputs[i].value;
            }
            undo.created.push_back(op);
        }
    }
}

Amount UtxoSet::check_and_apply(const Transaction& tx, UtxoUndo& undo) {
    const Amount fee = check_transaction(tx); // throws without mutating
    apply_transaction(tx, undo);
    return fee;
}

UtxoUndo UtxoSet::apply_block(const Block& block) {
    UtxoUndo undo;
    try {
        for (const auto& tx : block.txs) check_and_apply(tx, undo);
    } catch (...) {
        undo_block(undo); // roll back the partial application
        throw;
    }
    return undo;
}

void UtxoSet::undo_block(const UtxoUndo& undo) {
    // Remove created outputs (reverse order), then restore spent ones.
    for (auto it = undo.created.rbegin(); it != undo.created.rend(); ++it) {
        const auto removed = backend_->erase(*it);
        DLT_INVARIANT(removed.has_value());
        index_remove(*it, *removed);
        total_value_ -= removed->value;
    }
    for (auto it = undo.spent.rbegin(); it != undo.spent.rend(); ++it)
        if (backend_->insert_if_absent(it->first, it->second)) {
            index_add(it->first, it->second);
            total_value_ += it->second.value;
        }
}

} // namespace dlt::ledger
