#include "ledger/utxo.hpp"

#include "common/assert.hpp"
#include "common/error.hpp"

namespace dlt::ledger {

std::optional<TxOutput> UtxoSet::lookup(const OutPoint& op) const {
    const auto it = entries_.find(op);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
}

bool UtxoSet::contains(const OutPoint& op) const { return entries_.contains(op); }

Amount UtxoSet::total_value() const {
    Amount total = 0;
    for (const auto& [op, out] : entries_) total += out.value;
    return total;
}

Amount UtxoSet::balance_of(const crypto::Address& addr) const {
    Amount total = 0;
    for (const auto& [op, out] : entries_)
        if (out.recipient == addr) total += out.value;
    return total;
}

std::vector<std::pair<OutPoint, TxOutput>> UtxoSet::coins_of(
    const crypto::Address& addr) const {
    std::vector<std::pair<OutPoint, TxOutput>> coins;
    for (const auto& [op, out] : entries_)
        if (out.recipient == addr) coins.emplace_back(op, out);
    return coins;
}

std::vector<std::pair<OutPoint, TxOutput>> UtxoSet::export_all() const {
    std::vector<std::pair<OutPoint, TxOutput>> all;
    all.reserve(entries_.size());
    for (const auto& [op, out] : entries_) all.emplace_back(op, out);
    return all;
}

Amount UtxoSet::check_transaction(const Transaction& tx) const {
    if (tx.is_coinbase()) return 0;
    if (tx.kind != TxKind::kTransfer)
        return 0; // account-family txs do not touch the UTXO set
    if (tx.inputs.empty()) throw ValidationError("transfer with no inputs");

    Amount in_value = 0;
    std::vector<OutPoint> seen;
    for (const auto& in : tx.inputs) {
        for (const auto& prior : seen)
            if (prior == in.prevout)
                throw ValidationError("duplicate input within transaction");
        seen.push_back(in.prevout);

        const auto out = lookup(in.prevout);
        if (!out) throw ValidationError("input spends unknown or spent output");
        in_value += out->value;
    }

    Amount out_value = 0;
    for (const auto& out : tx.outputs) {
        if (!money_range(out.value)) throw ValidationError("output value out of range");
        out_value += out.value;
    }
    if (!money_range(in_value) || !money_range(out_value))
        throw ValidationError("value overflow");
    if (out_value > in_value) throw ValidationError("outputs exceed inputs");
    return in_value - out_value;
}

void UtxoSet::apply_transaction(const Transaction& tx, UtxoUndo& undo) {
    if (tx.kind == TxKind::kTransfer) {
        for (const auto& in : tx.inputs) {
            const auto it = entries_.find(in.prevout);
            DLT_INVARIANT(it != entries_.end()); // caller checked
            undo.spent.emplace_back(in.prevout, it->second);
            entries_.erase(it);
        }
    }
    if (tx.kind == TxKind::kTransfer || tx.is_coinbase()) {
        const Hash256 id = tx.txid();
        for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
            const OutPoint op{id, i};
            entries_.emplace(op, tx.outputs[i]);
            undo.created.push_back(op);
        }
    }
}

Amount UtxoSet::check_and_apply(const Transaction& tx, UtxoUndo& undo) {
    const Amount fee = check_transaction(tx); // throws without mutating
    apply_transaction(tx, undo);
    return fee;
}

UtxoUndo UtxoSet::apply_block(const Block& block) {
    UtxoUndo undo;
    try {
        for (const auto& tx : block.txs) check_and_apply(tx, undo);
    } catch (...) {
        undo_block(undo); // roll back the partial application
        throw;
    }
    return undo;
}

void UtxoSet::undo_block(const UtxoUndo& undo) {
    // Remove created outputs (reverse order), then restore spent ones.
    for (auto it = undo.created.rbegin(); it != undo.created.rend(); ++it) {
        const auto found = entries_.find(*it);
        DLT_INVARIANT(found != entries_.end());
        entries_.erase(found);
    }
    for (auto it = undo.spent.rbegin(); it != undo.spent.rend(); ++it)
        entries_.emplace(it->first, it->second);
}

} // namespace dlt::ledger
