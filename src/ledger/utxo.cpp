#include "ledger/utxo.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace dlt::ledger {

namespace {
// Serialized footprint of one entry: OutPoint (32-byte txid + u32 index) plus
// TxOutput (i64 value + 20-byte address). Used to bound decoded element counts
// against the bytes actually present.
constexpr std::size_t kOutPointBytes = 36;
constexpr std::size_t kEntryBytes = kOutPointBytes + 28;
} // namespace

void UtxoUndo::encode(Writer& w) const {
    w.varint(spent.size());
    for (const auto& [op, out] : spent) {
        op.encode(w);
        out.encode(w);
    }
    w.varint(created.size());
    for (const auto& op : created) op.encode(w);
}

UtxoUndo UtxoUndo::decode(Reader& r) {
    UtxoUndo undo;
    const std::uint64_t spent_count = r.varint_count(kEntryBytes);
    undo.spent.reserve(spent_count);
    for (std::uint64_t i = 0; i < spent_count; ++i) {
        const auto op = OutPoint::decode(r);
        const auto out = TxOutput::decode(r);
        undo.spent.emplace_back(op, out);
    }
    const std::uint64_t created_count = r.varint_count(kOutPointBytes);
    undo.created.reserve(created_count);
    for (std::uint64_t i = 0; i < created_count; ++i)
        undo.created.push_back(OutPoint::decode(r));
    return undo;
}

void UtxoSet::encode(Writer& w) const {
    auto entries = export_all();
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.varint(entries.size());
    for (const auto& [op, out] : entries) {
        op.encode(w);
        out.encode(w);
    }
}

UtxoSet UtxoSet::decode(Reader& r) {
    const std::uint64_t count = r.varint_count(kEntryBytes);
    UtxoSet utxo;
    utxo.entries_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto op = OutPoint::decode(r);
        const auto out = TxOutput::decode(r);
        if (!money_range(out.value))
            throw DecodeError("utxo snapshot entry value out of range");
        utxo.insert_raw(op, out);
    }
    return utxo;
}

std::optional<TxOutput> UtxoSet::lookup(const OutPoint& op) const {
    const auto it = entries_.find(op);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
}

bool UtxoSet::contains(const OutPoint& op) const { return entries_.contains(op); }

Amount UtxoSet::total_value() const {
    Amount total = 0;
    for (const auto& [op, out] : entries_) total += out.value;
    return total;
}

Amount UtxoSet::balance_of(const crypto::Address& addr) const {
    const auto it = by_addr_.find(addr);
    return it == by_addr_.end() ? 0 : it->second.balance;
}

std::vector<std::pair<OutPoint, TxOutput>> UtxoSet::coins_of(
    const crypto::Address& addr) const {
    std::vector<std::pair<OutPoint, TxOutput>> coins;
    const auto it = by_addr_.find(addr);
    if (it == by_addr_.end()) return coins;
    coins.reserve(it->second.coins.size());
    for (const auto& op : it->second.coins) {
        const auto entry = entries_.find(op);
        DLT_INVARIANT(entry != entries_.end()); // index mirrors entries_
        coins.emplace_back(op, entry->second);
    }
    return coins;
}

void UtxoSet::index_add(const OutPoint& op, const TxOutput& out) {
    auto& entry = by_addr_[out.recipient];
    entry.balance += out.value;
    entry.coins.insert(op);
}

void UtxoSet::index_remove(const OutPoint& op, const TxOutput& out) {
    const auto it = by_addr_.find(out.recipient);
    DLT_INVARIANT(it != by_addr_.end());
    it->second.balance -= out.value;
    it->second.coins.erase(op);
    if (it->second.coins.empty()) by_addr_.erase(it);
}

void UtxoSet::insert_raw(const OutPoint& op, const TxOutput& out) {
    const auto it = entries_.find(op);
    if (it != entries_.end()) {
        index_remove(op, it->second); // silent overwrite replaces the old owner
        it->second = out;
    } else {
        entries_.emplace(op, out);
    }
    index_add(op, out);
}

std::vector<std::pair<OutPoint, TxOutput>> UtxoSet::export_all() const {
    std::vector<std::pair<OutPoint, TxOutput>> all;
    all.reserve(entries_.size());
    for (const auto& [op, out] : entries_) all.emplace_back(op, out);
    return all;
}

Amount UtxoSet::check_transaction(const Transaction& tx) const {
    if (tx.is_coinbase()) return 0;
    if (tx.kind != TxKind::kTransfer)
        return 0; // account-family txs do not touch the UTXO set
    if (tx.inputs.empty()) throw ValidationError("transfer with no inputs");

    Amount in_value = 0;
    std::vector<OutPoint> seen;
    for (const auto& in : tx.inputs) {
        for (const auto& prior : seen)
            if (prior == in.prevout)
                throw ValidationError("duplicate input within transaction");
        seen.push_back(in.prevout);

        const auto out = lookup(in.prevout);
        if (!out) throw ValidationError("input spends unknown or spent output");
        in_value += out->value;
    }

    Amount out_value = 0;
    for (const auto& out : tx.outputs) {
        if (!money_range(out.value)) throw ValidationError("output value out of range");
        out_value += out.value;
    }
    if (!money_range(in_value) || !money_range(out_value))
        throw ValidationError("value overflow");
    if (out_value > in_value) throw ValidationError("outputs exceed inputs");
    return in_value - out_value;
}

void UtxoSet::apply_transaction(const Transaction& tx, UtxoUndo& undo) {
    if (tx.kind == TxKind::kTransfer) {
        for (const auto& in : tx.inputs) {
            const auto it = entries_.find(in.prevout);
            DLT_INVARIANT(it != entries_.end()); // caller checked
            undo.spent.emplace_back(in.prevout, it->second);
            index_remove(in.prevout, it->second);
            entries_.erase(it);
        }
    }
    if (tx.kind == TxKind::kTransfer || tx.is_coinbase()) {
        const Hash256 id = tx.txid();
        for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
            const OutPoint op{id, i};
            if (entries_.emplace(op, tx.outputs[i]).second)
                index_add(op, tx.outputs[i]);
            undo.created.push_back(op);
        }
    }
}

Amount UtxoSet::check_and_apply(const Transaction& tx, UtxoUndo& undo) {
    const Amount fee = check_transaction(tx); // throws without mutating
    apply_transaction(tx, undo);
    return fee;
}

UtxoUndo UtxoSet::apply_block(const Block& block) {
    UtxoUndo undo;
    try {
        for (const auto& tx : block.txs) check_and_apply(tx, undo);
    } catch (...) {
        undo_block(undo); // roll back the partial application
        throw;
    }
    return undo;
}

void UtxoSet::undo_block(const UtxoUndo& undo) {
    // Remove created outputs (reverse order), then restore spent ones.
    for (auto it = undo.created.rbegin(); it != undo.created.rend(); ++it) {
        const auto found = entries_.find(*it);
        DLT_INVARIANT(found != entries_.end());
        index_remove(*it, found->second);
        entries_.erase(found);
    }
    for (auto it = undo.spent.rbegin(); it != undo.spent.rend(); ++it)
        if (entries_.emplace(it->first, it->second).second)
            index_add(it->first, it->second);
}

} // namespace dlt::ledger
