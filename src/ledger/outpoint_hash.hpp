// Shared hash functor for OutPoint keys. Three copies of this used to live in
// utxo.hpp, mempool.hpp, and privacy/taint.hpp, each with the weak
// `hash_value(txid) ^ (index * 0x9E3779B9)` xor-fold: the low bits of the fold
// barely depend on `index`, and xor lets correlated txids cancel. The shared
// version finishes with a splitmix64-style avalanche so every output bit
// depends on every input bit — the state backend shards by this hash, so skew
// here becomes shard imbalance (see StateBackendTest.ShardDistributionPinned).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "ledger/transaction.hpp"

namespace dlt::ledger {

struct OutPointHash {
    std::size_t operator()(const OutPoint& op) const noexcept {
        std::uint64_t h = hash_value(op.txid);
        h += 0x9E3779B97F4A7C15ull + op.index; // combine, don't cancel
        h ^= h >> 30;
        h *= 0xBF58476D1CE4E5B9ull;
        h ^= h >> 27;
        h *= 0x94D049BB133111EBull;
        h ^= h >> 31;
        return static_cast<std::size_t>(h);
    }
};

} // namespace dlt::ledger
