// Proof-of-work difficulty machinery: Bitcoin's compact "nBits" target encoding,
// target <-> work conversion, the hash-under-target check, and the periodic
// retargeting rule that holds the block interval constant as hash power grows —
// the mechanism behind the paper's observation (§2.7) that Bitcoin's throughput
// stays flat no matter how much mining power joins.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/uint256.hpp"

namespace dlt::ledger {

/// Decode Bitcoin compact form (exponent byte + 23-bit mantissa) to a target.
crypto::U256 compact_to_target(std::uint32_t bits);

/// Encode a target into compact form (lossy: mantissa truncation, as in Bitcoin).
std::uint32_t target_to_compact(const crypto::U256& target);

/// True when `hash` interpreted as a big-endian 256-bit integer is <= target.
bool hash_meets_target(const Hash256& hash, const crypto::U256& target);

/// Expected work to find one block at `target`: 2^256 / (target+1).
crypto::U256 work_from_target(const crypto::U256& target);

/// Retargeting parameters.
struct RetargetParams {
    std::uint64_t interval_blocks = 2016;     // blocks between adjustments
    double target_spacing = 600.0;            // desired seconds per block
    double max_adjustment = 4.0;              // clamp factor per retarget
    /// Easiest permitted target (the chain's "pow limit"): max >> this.
    unsigned min_difficulty_bits = 1;
};

/// Compute the next compact target given the actual time the last interval took.
std::uint32_t retarget(std::uint32_t current_bits, double actual_interval_seconds,
                       const RetargetParams& params);

/// A permissive target for tests and low-difficulty mining demos: roughly one
/// valid nonce per 2^difficulty_bits hashes.
std::uint32_t easy_bits(unsigned difficulty_bits);

} // namespace dlt::ledger
