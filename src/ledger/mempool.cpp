#include "ledger/mempool.hpp"

#include <algorithm>
#include <array>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace dlt::ledger {

namespace {

/// Process-wide aggregate families (all pools in all peers report here; the
/// per-instance MempoolStats keeps the observed replica's own mix). Children
/// are resolved once — family lookups are off the admission hot path.
struct AggregateCounters {
    std::array<obs::Counter*, kAdmissionResultCount> admission{};
    std::array<obs::Counter*, kMempoolDropReasonCount> dropped{};

    AggregateCounters() {
        auto& registry = obs::MetricsRegistry::global();
        auto& adm = registry.counter_family(
            "mempool_admission_total",
            "Mempool admission decisions across all pools, by result code",
            {"result"});
        for (std::size_t i = 0; i < kAdmissionResultCount; ++i)
            admission[i] = &adm.with({admission_result_name(
                static_cast<AdmissionResult>(i))});
        auto& drops = registry.counter_family(
            "mempool_dropped_total",
            "Unconfirmed entries dropped from all pools, by reason", {"reason"});
        for (std::size_t i = 0; i < kMempoolDropReasonCount; ++i)
            dropped[i] = &drops.with({mempool_drop_reason_name(
                static_cast<MempoolDropReason>(i))});
    }
};

AggregateCounters& aggregate() {
    static AggregateCounters counters;
    return counters;
}

double compute_fee_rate(Amount fee, std::size_t size) {
    return size > 0 ? static_cast<double>(fee) / static_cast<double>(size) : 0.0;
}

} // namespace

const char* admission_result_name(AdmissionResult r) {
    switch (r) {
        case AdmissionResult::kAccepted: return "ACCEPTED";
        case AdmissionResult::kRbfReplaced: return "RBF_REPLACED";
        case AdmissionResult::kAlreadyInQueue: return "ALREADY_IN_QUEUE";
        case AdmissionResult::kQueueFull: return "QUEUE_FULL";
        case AdmissionResult::kFeeTooLow: return "FEE_TOO_LOW";
        case AdmissionResult::kExpired: return "EXPIRED";
    }
    return "UNKNOWN";
}

const char* mempool_drop_reason_name(MempoolDropReason r) {
    switch (r) {
        case MempoolDropReason::kEvicted: return "evicted";
        case MempoolDropReason::kExpired: return "expired";
        case MempoolDropReason::kReplaced: return "replaced";
    }
    return "unknown";
}

Mempool::Mempool(MempoolConfig config) : config_(config) {
    DLT_EXPECTS(config_.max_count > 0);
    DLT_EXPECTS(config_.rbf_min_bump >= 1.0);
    aggregate(); // resolve the registry children before the hot path
}

void Mempool::enable_gauges(const std::string& instance) {
    auto& registry = obs::MetricsRegistry::global();
    gauge_size_ = &registry
                       .gauge_family("mempool_size", "Resident mempool entries",
                                     {"instance"})
                       .with({instance});
    gauge_bytes_ = &registry
                        .gauge_family("mempool_bytes",
                                      "Serialized bytes resident in the mempool",
                                      {"instance"})
                        .with({instance});
    update_gauges();
}

void Mempool::update_gauges() {
    if (gauge_size_ != nullptr)
        gauge_size_->set(static_cast<double>(pool_.size()));
    if (gauge_bytes_ != nullptr)
        gauge_bytes_->set(static_cast<double>(total_bytes_));
}

void Mempool::count_admission(AdmissionResult r) {
    ++stats_.admitted[static_cast<std::size_t>(r)];
    aggregate().admission[static_cast<std::size_t>(r)]->inc();
}

AdmissionResult Mempool::admit(const Transaction& tx, SimTime now) {
    return admit_impl(Transaction(tx), now);
}

AdmissionResult Mempool::admit(Transaction&& tx, SimTime now) {
    return admit_impl(std::move(tx), now);
}

AdmissionResult Mempool::admit_impl(Transaction&& tx, SimTime now) {
    if (config_.expiry > 0) expire(now);

    const Hash256 id = tx.txid();
    if (pool_.contains(id)) {
        count_admission(AdmissionResult::kAlreadyInQueue);
        return AdmissionResult::kAlreadyInQueue;
    }
    if (config_.expiry > 0 && recently_expired(id)) {
        count_admission(AdmissionResult::kExpired);
        return AdmissionResult::kExpired;
    }

    const std::size_t size = tx.serialized_size();
    const Amount fee = tx.declared_fee;
    const double fee_rate = compute_fee_rate(fee, size);
    if (fee_rate < config_.min_fee_rate) {
        count_admission(AdmissionResult::kFeeTooLow);
        return AdmissionResult::kFeeTooLow;
    }

    // Replace-by-fee: a newcomer conflicting with resident entries must out-bid
    // every one of them by the configured bump, or it is refused outright.
    const std::vector<Hash256> conflicts = find_conflicts(tx);
    std::size_t conflict_bytes = 0;
    for (const auto& cid : conflicts) {
        const Entry& old = pool_.at(cid);
        if (fee_rate < old.fee_rate * config_.rbf_min_bump) {
            count_admission(AdmissionResult::kFeeTooLow);
            return AdmissionResult::kFeeTooLow;
        }
        conflict_bytes += old.size;
    }

    // Capacity check before any mutation: plan the evictions needed once the
    // conflicts are gone, walking the feerate index worst-first. Bailing out
    // here must leave the pool untouched — shedding the *newcomer* must not
    // also shed the residents it failed to displace. Resident entries the
    // newcomer *spends* (its in-pool ancestors) are never eviction victims:
    // displacing a parent to make room for its child would leave the child an
    // orphan the moment it entered — the exact-byte-budget reorg `add_back`
    // bug, where a disconnected block's descendant evicted its just-re-added
    // ancestor. The ancestor set is computed lazily, only when the pool is
    // actually at capacity.
    std::vector<Hash256> evictions;
    {
        std::size_t count_after = pool_.size() - conflicts.size() + 1;
        std::size_t bytes_after = total_bytes_ - conflict_bytes + size;
        std::optional<std::unordered_set<Hash256>> ancestors;
        const auto is_ancestor = [&](const Hash256& txid) {
            if (!ancestors) {
                ancestors.emplace();
                std::vector<const Transaction*> frontier{&tx};
                while (!frontier.empty()) {
                    const Transaction* cur = frontier.back();
                    frontier.pop_back();
                    for (const auto& in : cur->inputs) {
                        const auto pit = pool_.find(in.prevout.txid);
                        if (pit != pool_.end() &&
                            ancestors->insert(in.prevout.txid).second)
                            frontier.push_back(&pit->second.tx);
                    }
                }
            }
            return ancestors->contains(txid);
        };
        auto worst = by_fee_rate_.rbegin();
        while (count_after > config_.max_count || bytes_after > config_.max_bytes) {
            while (worst != by_fee_rate_.rend() &&
                   (std::find(conflicts.begin(), conflicts.end(), worst->txid) !=
                        conflicts.end() || // already leaving as an RBF casualty
                    is_ancestor(worst->txid)))
                ++worst;
            if (worst == by_fee_rate_.rend() || worst->fee_rate >= fee_rate) {
                count_admission(AdmissionResult::kQueueFull);
                return AdmissionResult::kQueueFull;
            }
            evictions.push_back(worst->txid);
            const Entry& victim = pool_.at(worst->txid);
            --count_after;
            bytes_after -= victim.size;
            ++worst;
        }
    }

    for (const auto& cid : conflicts)
        erase_entry(pool_.find(cid), MempoolDropReason::kReplaced, now);
    for (const auto& vid : evictions)
        erase_entry(pool_.find(vid), MempoolDropReason::kEvicted, now);

    insert_entry(std::move(tx), id, fee, size, fee_rate, now);
    const AdmissionResult result = conflicts.empty() ? AdmissionResult::kAccepted
                                                     : AdmissionResult::kRbfReplaced;
    count_admission(result);
    return result;
}

void Mempool::insert_entry(Transaction&& tx, const Hash256& id, Amount fee,
                           std::size_t size, double fee_rate, SimTime now) {
    Entry entry;
    entry.fee = fee;
    entry.size = size;
    entry.fee_rate = fee_rate;
    entry.seq = next_seq_++;
    entry.entered = now;
    entry.tx = std::move(tx);
    index_conflicts(entry.tx, id, /*insert=*/true);
    by_fee_rate_.insert(OrderKey{fee_rate, entry.seq, id});
    if (config_.expiry > 0) expiry_ring_.push_back(RingSlot{now, entry.seq, id});
    total_bytes_ += size;
    pool_.emplace(id, std::move(entry));
    update_gauges();
}

void Mempool::erase_entry(std::unordered_map<Hash256, Entry>::iterator it,
                          std::optional<MempoolDropReason> reason, SimTime at) {
    DLT_INVARIANT(it != pool_.end());
    const Hash256 id = it->first;
    Entry& entry = it->second;
    index_conflicts(entry.tx, id, /*insert=*/false);
    by_fee_rate_.erase(OrderKey{entry.fee_rate, entry.seq, id});
    total_bytes_ -= entry.size;
    // The expiry ring slot (if any) goes stale and is skipped lazily by its
    // (seq, txid) pair when it reaches the front.
    pool_.erase(it);
    if (reason) {
        ++stats_.dropped[static_cast<std::size_t>(*reason)];
        aggregate().dropped[static_cast<std::size_t>(*reason)]->inc();
        if (drop_observer_) drop_observer_(id, *reason, at);
    }
    update_gauges();
}

void Mempool::index_conflicts(const Transaction& tx, const Hash256& id,
                              bool insert) {
    for (const auto& in : tx.inputs) {
        if (insert)
            by_spend_.emplace(in.prevout, id);
        else if (const auto it = by_spend_.find(in.prevout);
                 it != by_spend_.end() && it->second == id)
            by_spend_.erase(it);
    }
    if (tx.uses_accounts() && !tx.sender_pubkey.empty()) {
        const AccountKey key{tx.sender_pubkey, tx.nonce};
        if (insert)
            by_account_.emplace(key, id);
        else if (const auto it = by_account_.find(key);
                 it != by_account_.end() && it->second == id)
            by_account_.erase(it);
    }
}

std::vector<Hash256> Mempool::find_conflicts(const Transaction& tx) const {
    std::vector<Hash256> conflicts;
    auto remember = [&conflicts](const Hash256& id) {
        if (std::find(conflicts.begin(), conflicts.end(), id) == conflicts.end())
            conflicts.push_back(id);
    };
    for (const auto& in : tx.inputs)
        if (const auto it = by_spend_.find(in.prevout); it != by_spend_.end())
            remember(it->second);
    if (tx.uses_accounts() && !tx.sender_pubkey.empty())
        if (const auto it = by_account_.find(AccountKey{tx.sender_pubkey, tx.nonce});
            it != by_account_.end())
            remember(it->second);
    return conflicts;
}

bool Mempool::recently_expired(const Hash256& id) const {
    return expired_gen_[0].contains(id) || expired_gen_[1].contains(id);
}

std::size_t Mempool::expire(SimTime now) {
    if (config_.expiry <= 0) return 0;
    std::size_t expired = 0;
    while (!expiry_ring_.empty() &&
           expiry_ring_.front().entered + config_.expiry <= now) {
        const RingSlot slot = expiry_ring_.front();
        expiry_ring_.pop_front();
        const auto it = pool_.find(slot.txid);
        if (it == pool_.end() || it->second.seq != slot.seq)
            continue; // confirmed, evicted, replaced, or re-admitted since
        erase_entry(it, MempoolDropReason::kExpired, now);
        expired_gen_[0].insert(slot.txid);
        ++expired;
    }
    // Age the refusal set: anything expired more than ~2 expiry periods ago
    // can be forgotten (its gossip echoes have died down).
    if (now - expired_gen_started_ >= config_.expiry) {
        expired_gen_[1] = std::move(expired_gen_[0]);
        expired_gen_[0].clear();
        expired_gen_started_ = now;
    }
    return expired;
}

std::optional<double> Mempool::best_fee_rate() const {
    if (by_fee_rate_.empty()) return std::nullopt;
    return by_fee_rate_.begin()->fee_rate;
}

double Mempool::fee_rate_floor() const {
    if (pool_.size() >= config_.max_count ||
        (config_.max_bytes != std::numeric_limits<std::size_t>::max() &&
         total_bytes_ >= config_.max_bytes)) {
        // Full: must strictly beat the worst resident entry.
        return by_fee_rate_.rbegin()->fee_rate;
    }
    return config_.min_fee_rate;
}

std::vector<TemplateEntry> Mempool::build_template(std::size_t max_bytes,
                                                   std::size_t max_count) const {
    std::vector<TemplateEntry> out;
    std::size_t used = 0;
    // Best-first walk of the maintained index; greedy knapsack skips entries
    // that no longer fit but keeps scanning for smaller ones (the historical
    // select() policy, preserved bit-for-bit).
    for (const OrderKey& key : by_fee_rate_) {
        if (out.size() >= max_count) break;
        const Entry& entry = pool_.at(key.txid);
        if (used + entry.size > max_bytes) continue;
        out.push_back(TemplateEntry{&entry.tx, entry.fee, entry.size, entry.fee_rate});
        used += entry.size;
    }
    return out;
}

std::vector<Transaction> Mempool::select(std::size_t max_bytes,
                                         std::size_t max_count) const {
    std::vector<Transaction> selected;
    for (const TemplateEntry& e : build_template(max_bytes, max_count))
        selected.push_back(*e.tx);
    return selected;
}

void Mempool::remove_confirmed(const std::vector<Hash256>& txids) {
    for (const auto& id : txids) {
        const auto it = pool_.find(id);
        if (it == pool_.end()) continue;
        erase_entry(it, std::nullopt, 0.0);
    }
}

void Mempool::add_back(const std::vector<Transaction>& txs, SimTime now) {
    // Block order guarantees ancestors precede descendants. A tx whose
    // ancestor failed re-admission (pool saturated, fee floor) must not be
    // re-admitted either: its parent exists in neither the new chain nor the
    // pool, so it would sit as an unminable orphan. Each failure therefore
    // poisons its in-batch descendants.
    std::unordered_set<Hash256> failed;
    for (const auto& tx : txs) {
        if (tx.is_coinbase()) continue;
        const bool orphaned =
            std::any_of(tx.inputs.begin(), tx.inputs.end(), [&](const auto& in) {
                return failed.contains(in.prevout.txid);
            });
        if (orphaned) {
            failed.insert(tx.txid());
            continue;
        }
        const AdmissionResult r = admit(tx, now);
        if (r != AdmissionResult::kAccepted && r != AdmissionResult::kRbfReplaced &&
            r != AdmissionResult::kAlreadyInQueue)
            failed.insert(tx.txid());
    }
}

} // namespace dlt::ledger
