#include "ledger/mempool.hpp"

#include <algorithm>

namespace dlt::ledger {

bool Mempool::add(const Transaction& tx) {
    const Hash256 id = tx.txid();
    if (pool_.contains(id)) return false;

    PoolEntry entry;
    entry.size = tx.serialized_size();
    entry.fee = tx.declared_fee;
    entry.fee_rate =
        entry.size > 0 ? static_cast<double>(entry.fee) / static_cast<double>(entry.size)
                       : 0.0;

    if (pool_.size() >= max_transactions_) {
        // Evict the lowest fee-rate entry if the newcomer beats it.
        const auto worst = by_fee_rate_.begin();
        if (worst == by_fee_rate_.end() || worst->first >= entry.fee_rate)
            return false;
        pool_.erase(worst->second);
        by_fee_rate_.erase(worst);
    }

    by_fee_rate_.emplace(entry.fee_rate, id);
    entry.tx = tx;
    pool_.emplace(id, std::move(entry));
    return true;
}

std::vector<Transaction> Mempool::select(std::size_t max_bytes,
                                         std::size_t max_count) const {
    std::vector<Transaction> selected;
    std::size_t used = 0;
    // Walk the fee index from the highest rate down.
    for (auto it = by_fee_rate_.rbegin(); it != by_fee_rate_.rend(); ++it) {
        if (selected.size() >= max_count) break;
        const PoolEntry& entry = pool_.at(it->second);
        if (used + entry.size > max_bytes) continue;
        selected.push_back(entry.tx);
        used += entry.size;
    }
    return selected;
}

void Mempool::remove_confirmed(const std::vector<Hash256>& txids) {
    for (const auto& id : txids) {
        const auto it = pool_.find(id);
        if (it == pool_.end()) continue;
        // Erase the matching index entry (equal fee rates may collide; match id).
        const auto range = by_fee_rate_.equal_range(it->second.fee_rate);
        for (auto idx = range.first; idx != range.second; ++idx) {
            if (idx->second == id) {
                by_fee_rate_.erase(idx);
                break;
            }
        }
        pool_.erase(it);
    }
}

void Mempool::add_back(const std::vector<Transaction>& txs) {
    for (const auto& tx : txs)
        if (!tx.is_coinbase()) add(tx);
}

} // namespace dlt::ledger
