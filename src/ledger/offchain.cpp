#include "ledger/offchain.hpp"

#include "crypto/sha256.hpp"

namespace dlt::ledger {

OffchainRef OffchainStore::put(Bytes payload) {
    OffchainRef ref;
    ref.digest = crypto::tagged_hash("dlt/offchain", payload);
    ref.size = payload.size();
    stored_bytes_ += static_cast<std::int64_t>(payload.size());
    blobs_.emplace(ref.digest, std::move(payload));
    return ref;
}

std::optional<Bytes> OffchainStore::get_verified(const OffchainRef& ref) const {
    const auto it = blobs_.find(ref.digest);
    if (it == blobs_.end()) return std::nullopt;
    if (crypto::tagged_hash("dlt/offchain", it->second) != ref.digest)
        return std::nullopt; // bit rot or substitution
    return it->second;
}

bool OffchainStore::forget(const OffchainRef& ref) {
    const auto it = blobs_.find(ref.digest);
    if (it == blobs_.end()) return false;
    stored_bytes_ -= static_cast<std::int64_t>(it->second.size());
    blobs_.erase(it);
    return true;
}

std::int64_t OffchainStore::bytes_saved_on_chain() const {
    return stored_bytes_ - static_cast<std::int64_t>(blobs_.size() * 32);
}

} // namespace dlt::ledger
