// Wallet: key management, UTXO tracking, coin selection, and transaction
// construction — the client-side role of §5.1's actor taxonomy ("who is sending
// transactions?"). Wallets are not peers: they hold keys and build signed
// transactions against a view of the chain.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "crypto/keys.hpp"
#include "ledger/block.hpp"
#include "ledger/transaction.hpp"
#include "ledger/utxo.hpp"

namespace dlt::ledger {

class Wallet {
public:
    /// Deterministic wallet: keys derived from a seed label ("<seed>/<index>").
    explicit Wallet(std::string seed_label);

    /// Derive (and remember) a fresh receive address.
    crypto::Address fresh_address();

    /// All addresses this wallet controls.
    const std::vector<crypto::Address>& addresses() const { return addresses_; }
    bool owns(const crypto::Address& addr) const;

    /// Scan a confirmed block and update the wallet's coin set: adds outputs
    /// paying us, removes coins we spent.
    void process_block(const Block& block);

    /// Roll back a disconnected block (reorg support): restores spent coins and
    /// forgets created ones. Blocks must be undone in reverse order.
    void undo_block(const Block& block);

    Amount balance() const;
    std::size_t coin_count() const { return coins_.size(); }

    /// Build and sign a payment of `amount` to `to`, paying `fee`, returning
    /// change to a fresh address. Greedy largest-first coin selection. Returns
    /// nullopt when funds are insufficient.
    std::optional<Transaction> pay(const crypto::Address& to, Amount amount,
                                   Amount fee);

    /// Mark a transaction's inputs as pending-spent so a second pay() cannot
    /// double-spend before confirmation (called by pay() automatically).
    void mark_pending(const Transaction& tx);

private:
    struct OwnedCoin {
        OutPoint outpoint;
        TxOutput output;
        std::size_t key_index; // which derived key controls it
        bool pending_spent = false;
    };

    const crypto::PrivateKey& key_at(std::size_t index) const { return keys_[index]; }
    std::optional<std::size_t> key_index_for(const crypto::Address& addr) const;

    std::string seed_;
    std::vector<crypto::PrivateKey> keys_;
    std::vector<crypto::Address> addresses_;
    std::vector<OwnedCoin> coins_;
};

} // namespace dlt::ledger
