#include "ledger/difficulty.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace dlt::ledger {

using crypto::U256;

U256 compact_to_target(std::uint32_t bits) {
    const std::uint32_t exponent = bits >> 24;
    const std::uint32_t mantissa = bits & 0x007FFFFF;
    U256 target(mantissa);
    if (exponent <= 3) {
        target = target >> (8 * (3 - exponent));
    } else {
        const unsigned shift = 8 * (exponent - 3);
        if (shift >= 256) return U256::zero();
        target = target << shift;
    }
    return target;
}

std::uint32_t target_to_compact(const U256& target) {
    if (target.is_zero()) return 0;
    int bits = target.highest_bit() + 1;
    int exponent = (bits + 7) / 8;
    std::uint32_t mantissa;
    if (exponent <= 3) {
        mantissa = static_cast<std::uint32_t>(target.low64() << (8 * (3 - exponent)));
    } else {
        mantissa = static_cast<std::uint32_t>(
            (target >> static_cast<unsigned>(8 * (exponent - 3))).low64());
    }
    // Avoid a set sign bit (Bitcoin quirk): bump the exponent instead.
    if (mantissa & 0x00800000) {
        mantissa >>= 8;
        ++exponent;
    }
    return (static_cast<std::uint32_t>(exponent) << 24) | (mantissa & 0x007FFFFF);
}

bool hash_meets_target(const Hash256& hash, const U256& target) {
    return U256::from_hash(hash) <= target;
}

U256 work_from_target(const U256& target) {
    // work = 2^256 / (target+1) computed as ((~target)/(target+1)) + 1 to stay
    // within 256 bits (same identity Bitcoin Core uses).
    bool carry = false;
    const U256 tplus1 = target.add(U256::one(), &carry);
    if (carry) return U256::one(); // target == 2^256-1: one unit of work
    const U256 not_target = U256::max() - target;
    return (not_target / tplus1) + U256::one();
}

std::uint32_t retarget(std::uint32_t current_bits, double actual_interval_seconds,
                       const RetargetParams& params) {
    DLT_EXPECTS(actual_interval_seconds > 0);
    const double expected =
        params.target_spacing * static_cast<double>(params.interval_blocks);
    double ratio = actual_interval_seconds / expected;
    ratio = std::min(std::max(ratio, 1.0 / params.max_adjustment), params.max_adjustment);

    // new_target = old_target * ratio, via a 32.32 fixed-point multiplier.
    const U256 old_target = compact_to_target(current_bits);
    std::uint64_t carry = 0;
    const U256 low =
        old_target.mul_u64(static_cast<std::uint64_t>(ratio * 4294967296.0), &carry);
    const U256 pow_limit = U256::max() >> params.min_difficulty_bits;
    U256 new_target;
    if ((carry >> 32) != 0) {
        // True result >= 2^256: saturate at the easiest permitted target.
        new_target = pow_limit;
    } else {
        new_target = (low >> 32) | (U256(carry) << (256 - 32));
    }
    if (new_target.is_zero()) new_target = U256::one();
    if (new_target > pow_limit) new_target = pow_limit; // never easier than limit
    return target_to_compact(new_target);
}

std::uint32_t easy_bits(unsigned difficulty_bits) {
    DLT_EXPECTS(difficulty_bits < 250);
    const U256 target = U256::max() >> difficulty_bits;
    return target_to_compact(target);
}

} // namespace dlt::ledger
