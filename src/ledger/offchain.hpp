// Off-chain data store (paper §4.5: "Off-chain data storage is a recent
// development ... in order to reduce the amount of information stored in the
// blockchain ... The trade-off is that off-chain information is no longer
// durable or immutable"). Bulky payloads live in an ordinary store; only their
// digests go on-chain. Retrieval is verified against the digest, and the store
// can lose data — the durability trade-off is part of the model.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"

namespace dlt::ledger {

/// The digest recorded on-chain for an off-chain payload.
struct OffchainRef {
    Hash256 digest;
    std::uint64_t size = 0;

    friend bool operator==(const OffchainRef&, const OffchainRef&) = default;
};

class OffchainStore {
public:
    /// Store a payload; returns the reference to record on-chain.
    OffchainRef put(Bytes payload);

    /// Fetch and verify: returns the payload only when it is present AND
    /// matches the digest (a corrupted or substituted payload is rejected).
    std::optional<Bytes> get_verified(const OffchainRef& ref) const;

    bool contains(const OffchainRef& ref) const { return blobs_.contains(ref.digest); }

    /// Simulate data loss / retention expiry: drop a payload. The on-chain
    /// digest survives; the data does not — §4.5's durability caveat.
    bool forget(const OffchainRef& ref);

    /// On-chain bytes saved by keeping this store's payloads off-chain
    /// (payload bytes minus digest bytes).
    std::int64_t bytes_saved_on_chain() const;

    std::size_t size() const { return blobs_.size(); }

private:
    std::unordered_map<Hash256, Bytes> blobs_;
    std::int64_t stored_bytes_ = 0;
};

} // namespace dlt::ledger
