#include "ledger/chain.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace dlt::ledger {

ChainStore::ChainStore(const Block& genesis) {
    genesis_hash_ = genesis.hash();
    ChainEntry entry;
    entry.block = genesis;
    entry.hash = genesis_hash_;
    entry.height = genesis.header.height;
    entry.cumulative_work = crypto::U256::one();
    entries_.emplace(genesis_hash_, std::move(entry));
    children_.emplace(genesis_hash_, std::vector<Hash256>{});
}

const ChainEntry* ChainStore::find(const Hash256& hash) const {
    const auto it = entries_.find(hash);
    return it == entries_.end() ? nullptr : &it->second;
}

bool ChainStore::insert(const Block& block, const crypto::U256& work,
                        double received_at) {
    const Hash256 hash = block.hash();
    if (entries_.contains(hash)) return false;
    const auto parent = entries_.find(block.header.prev_hash);
    if (parent == entries_.end())
        throw ValidationError("block parent unknown (orphan)");

    ChainEntry entry;
    entry.block = block;
    entry.hash = hash;
    entry.height = parent->second.height + 1;
    entry.cumulative_work = parent->second.cumulative_work + work;
    entry.received_at = received_at;
    entries_.emplace(hash, std::move(entry));
    children_[block.header.prev_hash].push_back(hash);
    children_.emplace(hash, std::vector<Hash256>{});
    return true;
}

bool ChainStore::insert_detached_root(const Block& block,
                                      const crypto::U256& cumulative_work,
                                      double received_at) {
    const Hash256 hash = block.hash();
    if (entries_.contains(hash)) return false;

    ChainEntry entry;
    entry.block = block;
    entry.hash = hash;
    entry.height = block.header.height;
    entry.cumulative_work = cumulative_work;
    entry.received_at = received_at;
    entries_.emplace(hash, std::move(entry));
    // Deliberately not registered as a child of its (absent) parent.
    children_.emplace(hash, std::vector<Hash256>{});
    return true;
}

const std::vector<Hash256>& ChainStore::children(const Hash256& hash) const {
    static const std::vector<Hash256> kEmpty;
    const auto it = children_.find(hash);
    return it == children_.end() ? kEmpty : it->second;
}

std::vector<Hash256> ChainStore::leaves() const {
    std::vector<Hash256> out;
    for (const auto& [hash, kids] : children_)
        if (kids.empty()) out.push_back(hash);
    return out;
}

Hash256 ChainStore::best_tip_by_work() const {
    const ChainEntry* best = nullptr;
    for (const auto& [hash, entry] : entries_) {
        if (!children(hash).empty()) continue;
        if (best == nullptr || entry.cumulative_work > best->cumulative_work ||
            (entry.cumulative_work == best->cumulative_work && entry.hash < best->hash))
            best = &entry;
    }
    DLT_ENSURES(best != nullptr);
    return best->hash;
}

std::size_t ChainStore::subtree_size(const Hash256& hash) const {
    DLT_EXPECTS(contains(hash));
    std::size_t count = 0;
    std::vector<Hash256> stack{hash};
    while (!stack.empty()) {
        const Hash256 cur = stack.back();
        stack.pop_back();
        ++count;
        for (const auto& child : children(cur)) stack.push_back(child);
    }
    return count;
}

Hash256 ChainStore::best_tip_by_ghost() const {
    Hash256 cursor = genesis_hash_;
    for (;;) {
        const auto& kids = children(cursor);
        if (kids.empty()) return cursor;
        const Hash256* best = nullptr;
        std::size_t best_weight = 0;
        for (const auto& kid : kids) {
            const std::size_t weight = subtree_size(kid);
            if (best == nullptr || weight > best_weight ||
                (weight == best_weight && kid < *best)) {
                best = &kid;
                best_weight = weight;
            }
        }
        cursor = *best;
    }
}

Hash256 ChainStore::ancestor(const Hash256& from, std::uint64_t steps) const {
    const ChainEntry* entry = find(from);
    DLT_EXPECTS(entry != nullptr);
    Hash256 cursor = from;
    while (steps > 0 && cursor != genesis_hash_) {
        const Hash256& parent = find(cursor)->block.header.prev_hash;
        if (!contains(parent)) break; // detached root of a pruned store
        cursor = parent;
        --steps;
    }
    return cursor;
}

const ChainEntry* ChainStore::parent_of(const Hash256& hash) const {
    const ChainEntry* parent = find(find(hash)->block.header.prev_hash);
    if (parent == nullptr)
        throw ValidationError("ancestry walk crossed a pruned chain boundary");
    return parent;
}

Hash256 ChainStore::common_ancestor(const Hash256& a, const Hash256& b) const {
    const ChainEntry* ea = find(a);
    const ChainEntry* eb = find(b);
    DLT_EXPECTS(ea != nullptr && eb != nullptr);
    Hash256 ca = a;
    Hash256 cb = b;
    std::uint64_t ha = ea->height;
    std::uint64_t hb = eb->height;
    while (ha > hb) {
        ca = parent_of(ca)->hash;
        --ha;
    }
    while (hb > ha) {
        cb = parent_of(cb)->hash;
        --hb;
    }
    while (ca != cb) {
        ca = parent_of(ca)->hash;
        cb = parent_of(cb)->hash;
    }
    return ca;
}

ChainStore::ReorgPath ChainStore::reorg_path(const Hash256& from_tip,
                                             const Hash256& to_tip) const {
    const Hash256 fork = common_ancestor(from_tip, to_tip);
    ReorgPath path;
    for (Hash256 cursor = from_tip; cursor != fork;
         cursor = find(cursor)->block.header.prev_hash)
        path.disconnect.push_back(cursor);
    for (Hash256 cursor = to_tip; cursor != fork;
         cursor = find(cursor)->block.header.prev_hash)
        path.connect.push_back(cursor);
    std::reverse(path.connect.begin(), path.connect.end());
    return path;
}

std::vector<Hash256> ChainStore::path_from_genesis(const Hash256& tip) const {
    DLT_EXPECTS(contains(tip));
    std::vector<Hash256> path;
    for (Hash256 cursor = tip;; cursor = find(cursor)->block.header.prev_hash) {
        path.push_back(cursor);
        // A detached root (pruned store) ends the walk like genesis does.
        if (cursor == genesis_hash_ ||
            !contains(find(cursor)->block.header.prev_hash))
            break;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::size_t ChainStore::stale_count(const Hash256& tip) const {
    return entries_.size() - path_from_genesis(tip).size();
}

} // namespace dlt::ledger
