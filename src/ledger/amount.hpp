// Monetary amounts and chain-wide monetary policy constants.
#pragma once

#include <cstdint>

namespace dlt::ledger {

/// Smallest currency unit (like satoshi); signed so fee arithmetic can detect
/// underflow instead of wrapping.
using Amount = std::int64_t;

inline constexpr Amount kCoin = 100'000'000; // 1 coin = 1e8 base units

/// Initial block subsidy (Bitcoin-like: 50 coins).
inline constexpr Amount kInitialSubsidy = 50 * kCoin;

/// Blocks between subsidy halvings (kept small relative to Bitcoin's 210000 so
/// simulations exercise the schedule).
inline constexpr std::uint64_t kHalvingInterval = 210'000;

/// Hard cap sanity bound used by validation.
inline constexpr Amount kMaxMoney = 21'000'000 * kCoin;

/// True when an amount is representable and within the money supply.
constexpr bool money_range(Amount value) { return value >= 0 && value <= kMaxMoney; }

/// Subsidy for a block at `height` under the halving schedule.
constexpr Amount block_subsidy(std::uint64_t height) {
    const std::uint64_t halvings = height / kHalvingInterval;
    if (halvings >= 63) return 0;
    const Amount subsidy = kInitialSubsidy >> halvings;
    return subsidy;
}

} // namespace dlt::ledger
