// SPV light client (paper §2.2: "Merkle trees are advantageous as they provide
// fast lookups of transaction inclusion for lightweight clients, who do not
// possess a full copy of the ledger. For instance, Bitcoin employs Merkle trees
// for the Simple Payment Verification protocol"). The client stores only block
// headers, subscribes to relevant addresses through a bloom filter, and
// verifies payments with Merkle proofs against its best header chain.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/uint256.hpp"
#include "datastruct/bloom.hpp"
#include "datastruct/merkle.hpp"
#include "ledger/block.hpp"
#include "ledger/difficulty.hpp"

namespace dlt::ledger {

/// What a full node serves a light client for one relevant transaction.
struct SpvPayment {
    Hash256 txid;
    Hash256 block_hash;
    datastruct::MerkleProof proof;
};

class SpvClient {
public:
    /// The client is bootstrapped from a trusted genesis header.
    explicit SpvClient(const BlockHeader& genesis);

    /// Feed a header whose parent the client already knows. Returns false for
    /// unknown parents (caller should fetch intermediate headers) and throws
    /// ValidationError when `check_pow` is set and the header fails its own
    /// difficulty target.
    bool add_header(const BlockHeader& header, bool check_pow = false);

    std::uint64_t best_height() const;
    const Hash256& best_hash() const { return best_; }
    bool knows(const Hash256& block_hash) const { return headers_.contains(block_hash); }

    /// Cumulative-work tip tracking across competing header chains: the client
    /// follows the most-work chain exactly like a full node, just headers-only.
    const BlockHeader& header_of(const Hash256& hash) const;

    /// True when `block_hash` is on the client's best chain with at least
    /// `min_confirmations` headers on top.
    bool confirmed(const Hash256& block_hash, std::uint64_t min_confirmations) const;

    /// Verify a payment: the proof must authenticate the txid against the
    /// Merkle root of a known header on the best chain.
    bool verify_payment(const SpvPayment& payment,
                        std::uint64_t min_confirmations = 1) const;

    /// Bloom filter advertising the addresses this wallet cares about; full
    /// nodes test outputs against it and forward matches with proofs.
    datastruct::BloomFilter make_address_filter(
        const std::vector<crypto::Address>& addresses, double fp_rate = 0.01) const;

    /// Storage footprint in bytes (headers only) vs what a full node holds —
    /// the lightweight-client saving the paper describes.
    std::size_t storage_bytes() const;

private:
    struct Entry {
        BlockHeader header;
        std::uint64_t height = 0;
        crypto::U256 cumulative_work;
    };

    std::unordered_map<Hash256, Entry> headers_;
    Hash256 genesis_;
    Hash256 best_;
};

} // namespace dlt::ledger
