// Blocks and headers, matching the structure of Fig. 2: previous hash, nonce,
// and Merkle tree root over the transactions, plus the fields modern chains add
// (height, timestamp, difficulty bits, state root, proposer).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "crypto/keys.hpp"
#include "ledger/transaction.hpp"

namespace dlt::ledger {

struct BlockHeader {
    Hash256 prev_hash;      // link to the parent block (Fig. 2 "Previous Hash")
    Hash256 merkle_root;    // root of the transaction tree (Fig. 2 "Tree Root Hash")
    Hash256 state_root;     // authenticated account/contract state after this block
    std::uint64_t height = 0;
    double timestamp = 0;   // virtual seconds (SimTime)
    std::uint32_t bits = 0; // compact difficulty target (PoW chains)
    std::uint64_t nonce = 0;       // PoW solution counter (Fig. 2 "Nonce")
    crypto::Address proposer;      // miner / leader / forger
    /// Consensus-specific annex: PoS stake proof, PoET wait certificate,
    /// ordering-service sequence number, Bitcoin-NG key-block marker, ...
    Bytes annex;

    friend bool operator==(const BlockHeader& a, const BlockHeader& b);

    /// Block id: sha256d over the serialized header. Cached after the first
    /// call — headers are hashed at every chain-index lookup, gossip frame, and
    /// PoW check. Code that mutates a field after calling hash() must call
    /// invalidate_hash_cache() (the PoW nonce grind is the canonical case).
    Hash256 hash() const;

    /// Drop the cached hash (after direct field mutation).
    void invalidate_hash_cache() { cached_hash_.reset(); }

    void encode(Writer& w) const;
    static BlockHeader decode(Reader& r);

private:
    mutable std::optional<Hash256> cached_hash_;
};

struct Block {
    BlockHeader header;
    std::vector<Transaction> txs;

    friend bool operator==(const Block&, const Block&) = default;

    Hash256 hash() const { return header.hash(); }

    /// Recompute the Merkle root from `txs` (must equal header.merkle_root for a
    /// valid block).
    Hash256 compute_merkle_root() const;

    /// Leaf digests (txids) in order.
    std::vector<Hash256> txids() const;

    void encode(Writer& w) const;
    static Block decode(Reader& r);

    std::size_t serialized_size() const;
};

/// The deterministic genesis block for a chain tagged by `chain_tag`.
Block make_genesis(std::string_view chain_tag, std::uint32_t initial_bits);

} // namespace dlt::ledger
