#include "ledger/spv.hpp"

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"

namespace dlt::ledger {

SpvClient::SpvClient(const BlockHeader& genesis) {
    genesis_ = genesis.hash();
    Entry entry;
    entry.header = genesis;
    entry.height = genesis.height;
    entry.cumulative_work = crypto::U256::one();
    headers_.emplace(genesis_, std::move(entry));
    best_ = genesis_;
}

bool SpvClient::add_header(const BlockHeader& header, bool check_pow) {
    const Hash256 hash = header.hash();
    if (headers_.contains(hash)) return true;
    const auto parent = headers_.find(header.prev_hash);
    if (parent == headers_.end()) return false;

    if (check_pow) {
        const auto target = compact_to_target(header.bits);
        if (!hash_meets_target(hash, target))
            throw ValidationError("spv: header fails its difficulty target");
    }

    Entry entry;
    entry.header = header;
    entry.height = parent->second.height + 1;
    entry.cumulative_work =
        parent->second.cumulative_work +
        work_from_target(compact_to_target(header.bits));
    const bool better = entry.cumulative_work > headers_.at(best_).cumulative_work;
    headers_.emplace(hash, std::move(entry));
    if (better) best_ = hash;
    return true;
}

std::uint64_t SpvClient::best_height() const { return headers_.at(best_).height; }

const BlockHeader& SpvClient::header_of(const Hash256& hash) const {
    const auto it = headers_.find(hash);
    if (it == headers_.end()) throw ValidationError("spv: unknown header");
    return it->second.header;
}

bool SpvClient::confirmed(const Hash256& block_hash,
                          std::uint64_t min_confirmations) const {
    const auto it = headers_.find(block_hash);
    if (it == headers_.end()) return false;
    const Entry& best = headers_.at(best_);
    if (best.height + 1 < it->second.height + min_confirmations) return false;

    // Walk the best chain down to the target height and compare.
    Hash256 cursor = best_;
    std::uint64_t height = best.height;
    while (height > it->second.height) {
        cursor = headers_.at(cursor).header.prev_hash;
        --height;
    }
    return cursor == block_hash;
}

bool SpvClient::verify_payment(const SpvPayment& payment,
                               std::uint64_t min_confirmations) const {
    const auto it = headers_.find(payment.block_hash);
    if (it == headers_.end()) return false;
    if (!confirmed(payment.block_hash, min_confirmations)) return false;
    const Hash256 derived =
        datastruct::merkle_root_from_proof(payment.txid, payment.proof);
    return derived == it->second.header.merkle_root;
}

datastruct::BloomFilter SpvClient::make_address_filter(
    const std::vector<crypto::Address>& addresses, double fp_rate) const {
    DLT_EXPECTS(!addresses.empty());
    auto filter = datastruct::BloomFilter::optimal(addresses.size(), fp_rate);
    for (const auto& addr : addresses) filter.insert(addr.view());
    return filter;
}

std::size_t SpvClient::storage_bytes() const {
    std::size_t total = 0;
    for (const auto& [hash, entry] : headers_) {
        Writer w;
        entry.header.encode(w);
        total += w.size();
    }
    return total;
}

} // namespace dlt::ledger
