#include "ledger/wallet.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dlt::ledger {

Wallet::Wallet(std::string seed_label) : seed_(std::move(seed_label)) {
    DLT_EXPECTS(!seed_.empty());
}

crypto::Address Wallet::fresh_address() {
    const std::size_t index = keys_.size();
    keys_.push_back(
        crypto::PrivateKey::from_seed(seed_ + "/" + std::to_string(index)));
    addresses_.push_back(keys_.back().address());
    return addresses_.back();
}

bool Wallet::owns(const crypto::Address& addr) const {
    return key_index_for(addr).has_value();
}

std::optional<std::size_t> Wallet::key_index_for(const crypto::Address& addr) const {
    for (std::size_t i = 0; i < addresses_.size(); ++i)
        if (addresses_[i] == addr) return i;
    return std::nullopt;
}

void Wallet::process_block(const Block& block) {
    for (const auto& tx : block.txs) {
        // Remove coins spent by this transaction.
        if (tx.kind == TxKind::kTransfer) {
            for (const auto& in : tx.inputs) {
                const auto it = std::find_if(
                    coins_.begin(), coins_.end(), [&](const OwnedCoin& c) {
                        return c.outpoint == in.prevout;
                    });
                if (it != coins_.end()) coins_.erase(it);
            }
        }
        // Add outputs paying one of our addresses.
        if (tx.kind == TxKind::kTransfer || tx.is_coinbase()) {
            const Hash256 id = tx.txid();
            for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
                const auto key = key_index_for(tx.outputs[i].recipient);
                if (!key) continue;
                coins_.push_back(OwnedCoin{OutPoint{id, i}, tx.outputs[i], *key, false});
            }
        }
    }
}

void Wallet::undo_block(const Block& block) {
    for (auto tx_it = block.txs.rbegin(); tx_it != block.txs.rend(); ++tx_it) {
        const auto& tx = *tx_it;
        if (tx.kind == TxKind::kTransfer || tx.is_coinbase()) {
            // Forget coins this block created for us.
            const Hash256 id = tx.txid();
            coins_.erase(std::remove_if(coins_.begin(), coins_.end(),
                                        [&](const OwnedCoin& c) {
                                            return c.outpoint.txid == id;
                                        }),
                         coins_.end());
        }
        if (tx.kind == TxKind::kTransfer) {
            // Restore coins it spent from us (we cannot know the output data
            // without the chain; the caller re-processes older blocks instead).
        }
    }
}

Amount Wallet::balance() const {
    Amount total = 0;
    for (const auto& coin : coins_)
        if (!coin.pending_spent) total += coin.output.value;
    return total;
}

std::optional<Transaction> Wallet::pay(const crypto::Address& to, Amount amount,
                                       Amount fee) {
    DLT_EXPECTS(amount > 0);
    DLT_EXPECTS(fee >= 0);

    // Greedy largest-first selection over non-pending coins.
    std::vector<OwnedCoin*> available;
    for (auto& coin : coins_)
        if (!coin.pending_spent) available.push_back(&coin);
    std::sort(available.begin(), available.end(),
              [](const OwnedCoin* a, const OwnedCoin* b) {
                  return a->output.value > b->output.value;
              });

    std::vector<OwnedCoin*> selected;
    Amount gathered = 0;
    for (OwnedCoin* coin : available) {
        if (gathered >= amount + fee) break;
        selected.push_back(coin);
        gathered += coin->output.value;
    }
    if (gathered < amount + fee) return std::nullopt;

    Transaction tx;
    tx.kind = TxKind::kTransfer;
    tx.declared_fee = fee;
    for (const OwnedCoin* coin : selected)
        tx.inputs.push_back(TxInput{coin->outpoint, {}, {}});
    tx.outputs.push_back(TxOutput{amount, to});
    const Amount change = gathered - amount - fee;
    if (change > 0) tx.outputs.push_back(TxOutput{change, fresh_address()});

    // Per-input signing: install every input's pubkey first (the sighash
    // commits to all of them), then sign each input with its own key.
    for (std::size_t i = 0; i < selected.size(); ++i)
        tx.inputs[i].pubkey = key_at(selected[i]->key_index).public_key().encode();
    const Hash256 digest = tx.sighash();
    for (std::size_t i = 0; i < selected.size(); ++i)
        tx.inputs[i].signature = key_at(selected[i]->key_index).sign(digest).encode();
    tx.invalidate_txid_cache();

    mark_pending(tx);
    return tx;
}

void Wallet::mark_pending(const Transaction& tx) {
    for (const auto& in : tx.inputs) {
        for (auto& coin : coins_)
            if (coin.outpoint == in.prevout) coin.pending_spent = true;
    }
}

} // namespace dlt::ledger
