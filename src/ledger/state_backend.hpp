// Pluggable UTXO state engine (ROADMAP item 2). UtxoSet used to be a single
// unordered_map; at the million-user scale of E25/E27 that is both a capacity
// wall (state must fit in RAM) and a hot-path wall (snapshot encode sorts the
// whole set on one thread). StateBackend abstracts the key-value state behind
// get/put/erase/iterate-sorted/batch-commit so the same ledger logic runs on:
//
//  - ShardedMemoryBackend (this header): the in-memory default. Entries are
//    range-partitioned into 16 shards by the top nibble of the txid's first
//    byte, so shard order *is* canonical snapshot order and encode_sorted can
//    sort + serialize every shard in parallel on the global ThreadPool, then
//    concatenate — byte-identical to the serial encoding at any DLT_THREADS.
//
//  - storage::LsmBackend (storage/lsm_backend.hpp): a crash-safe LSM-flavored
//    persistent engine (memtable + sorted runs + bloom filters + WAL-journaled
//    batch commits) for state that outgrows RAM.
//
// Mutations are plain blind writes; durability is explicit via commit_batch(),
// which persistent backends journal (in-memory backends ignore it). All
// backends must agree on iteration order (sorted by OutPoint) so snapshot
// digests are backend-independent.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "ledger/outpoint_hash.hpp"
#include "ledger/transaction.hpp"

namespace dlt::ledger {

class StateBackend {
public:
    using Visitor = std::function<void(const OutPoint&, const TxOutput&)>;

    virtual ~StateBackend() = default;

    virtual const char* name() const = 0;

    virtual std::optional<TxOutput> get(const OutPoint& op) const = 0;
    virtual bool contains(const OutPoint& op) const { return get(op).has_value(); }

    /// Insert unless present. Returns true when the entry was inserted.
    virtual bool insert_if_absent(const OutPoint& op, const TxOutput& out) = 0;

    /// Insert or overwrite; returns the previous value when one existed.
    virtual std::optional<TxOutput> put(const OutPoint& op, const TxOutput& out) = 0;

    /// Remove; returns the removed value when one existed.
    virtual std::optional<TxOutput> erase(const OutPoint& op) = 0;

    /// Live entry count.
    virtual std::uint64_t size() const = 0;

    /// Visit every entry in unspecified order (cheapest full scan).
    virtual void for_each(const Visitor& visit) const = 0;

    /// Visit every entry sorted by OutPoint — the canonical snapshot order
    /// every backend must agree on.
    virtual void for_each_sorted(const Visitor& visit) const = 0;

    /// Canonical snapshot body: varint entry count, then sorted entries.
    /// The default walks for_each_sorted serially; backends override it when
    /// they can build the same bytes faster (sharded parallel encode).
    virtual void encode_sorted(Writer& w) const;

    /// Durability point: journal every mutation since the previous commit
    /// under `tag` (a monotonically increasing sequence the caller assigns —
    /// PersistentNode uses its WAL seq) together with opaque recovery
    /// metadata. In-memory backends ignore it.
    virtual void commit_batch(std::uint64_t tag, ByteView meta) {
        (void)tag;
        (void)meta;
    }

    /// Highest tag made durable by commit_batch (0 when never committed or
    /// not persistent).
    virtual std::uint64_t committed_tag() const { return 0; }

    /// Metadata recorded with the highest committed tag (empty when none).
    virtual Bytes committed_meta() const { return {}; }

    /// Deep copy. Persistent backends materialize into an in-memory clone
    /// (copies share no files), so copied UtxoSets are always value types.
    virtual std::unique_ptr<StateBackend> clone() const = 0;
};

/// The in-memory engine: N-way txid-prefix-sharded hash maps. Sharding by the
/// top nibble of txid[0] keeps shards aligned with canonical sort order, so a
/// parallel per-shard sort+encode concatenates into exactly the serial bytes.
class ShardedMemoryBackend final : public StateBackend {
public:
    static constexpr std::size_t kShards = 16;

    /// Shard index of an outpoint. Txids are (double-)SHA-256 outputs, so the
    /// first byte is uniform and a 16-way prefix split balances to ~1/16 per
    /// shard without hashing.
    static std::size_t shard_of(const OutPoint& op) noexcept {
        return op.txid[0] >> 4;
    }

    const char* name() const override { return "sharded-memory"; }

    std::optional<TxOutput> get(const OutPoint& op) const override;
    bool contains(const OutPoint& op) const override;
    bool insert_if_absent(const OutPoint& op, const TxOutput& out) override;
    std::optional<TxOutput> put(const OutPoint& op, const TxOutput& out) override;
    std::optional<TxOutput> erase(const OutPoint& op) override;
    std::uint64_t size() const override { return size_; }
    void for_each(const Visitor& visit) const override;
    void for_each_sorted(const Visitor& visit) const override;

    /// Parallel snapshot build: sort + serialize each shard on the global
    /// ThreadPool (shards are disjoint and ordered), then splice the buffers
    /// after the total count. Byte-identical to the base-class serial path.
    void encode_sorted(Writer& w) const override;

    std::unique_ptr<StateBackend> clone() const override {
        return std::make_unique<ShardedMemoryBackend>(*this);
    }

private:
    using Shard = std::unordered_map<OutPoint, TxOutput, OutPointHash>;

    std::array<Shard, kShards> shards_;
    std::uint64_t size_ = 0;
};

} // namespace dlt::ledger
