// UTXO set: the spendable-coin state of Blockchain-1.0 chains, with apply/undo
// support so branch reorganizations (longest-chain and GHOST switches) can roll
// the state back and forward deterministically.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "ledger/block.hpp"
#include "ledger/transaction.hpp"

namespace dlt::ledger {

/// Everything needed to undo one block application.
struct UtxoUndo {
    /// Outputs consumed by the block, with their original data, in spend order.
    std::vector<std::pair<OutPoint, TxOutput>> spent;
    /// Outpoints created by the block.
    std::vector<OutPoint> created;

    friend bool operator==(const UtxoUndo&, const UtxoUndo&) = default;

    /// Serialization for the storage layer's per-block undo records, so a
    /// restarted node can disconnect blocks it connected in a previous life.
    void encode(Writer& w) const;
    static UtxoUndo decode(Reader& r);
};

class UtxoSet {
public:
    UtxoSet() = default;

    std::optional<TxOutput> lookup(const OutPoint& op) const;
    bool contains(const OutPoint& op) const;
    std::size_t size() const { return entries_.size(); }

    /// Total value across all unspent outputs.
    Amount total_value() const;

    /// Spendable balance of one address — O(1) via the address index.
    Amount balance_of(const crypto::Address& addr) const;

    /// All outpoints owned by an address (wallet coin selection). O(coins of
    /// that address) via the address index, not O(set size).
    std::vector<std::pair<OutPoint, TxOutput>> coins_of(const crypto::Address& addr) const;

    /// Full contents (snapshot serialization, bootstrap checkpoints).
    std::vector<std::pair<OutPoint, TxOutput>> export_all() const;

    /// Canonical snapshot serialization: entries sorted by outpoint, so equal
    /// sets always produce byte-identical (and therefore digest-identical)
    /// snapshots regardless of hash-map iteration order.
    void encode(Writer& w) const;

    /// Rebuild a set from its snapshot serialization. Rejects truncated or
    /// corrupt input with DecodeError before any large allocation.
    static UtxoSet decode(Reader& r);

    /// Insert an entry directly (snapshot restore); overwrites silently.
    void insert_raw(const OutPoint& op, const TxOutput& out);

    /// Check a transaction against the set: inputs exist, no intra-tx double
    /// spends, value in >= value out. Returns the fee (inputs - outputs) on
    /// success; throws ValidationError otherwise. Coinbases return 0.
    Amount check_transaction(const Transaction& tx) const;

    /// Validate and apply one transaction, appending to `undo`. Returns the fee.
    /// Throws ValidationError without mutating on failure.
    Amount check_and_apply(const Transaction& tx, UtxoUndo& undo);

    /// Apply a whole block (earlier txs may fund later ones). Returns the undo
    /// record. Throws ValidationError and leaves the set unchanged on any
    /// invalid spend.
    UtxoUndo apply_block(const Block& block);

    /// Revert a block using its undo record (exact inverse of apply_block).
    void undo_block(const UtxoUndo& undo);

private:
    void apply_transaction(const Transaction& tx, UtxoUndo& undo);

    struct OutPointHash {
        std::size_t operator()(const OutPoint& op) const noexcept {
            return hash_value(op.txid) ^ (op.index * 0x9E3779B9u);
        }
    };

    /// Per-address running balance + owned outpoints, kept in lockstep with
    /// entries_ through every insertion and erasure (apply, undo, raw insert),
    /// so reorgs keep the index exact.
    struct AddressEntry {
        Amount balance = 0;
        std::unordered_set<OutPoint, OutPointHash> coins;
    };

    void index_add(const OutPoint& op, const TxOutput& out);
    void index_remove(const OutPoint& op, const TxOutput& out);

    std::unordered_map<OutPoint, TxOutput, OutPointHash> entries_;
    std::unordered_map<crypto::Address, AddressEntry> by_addr_;
};

} // namespace dlt::ledger
