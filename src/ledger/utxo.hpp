// UTXO set: the spendable-coin state of Blockchain-1.0 chains, with apply/undo
// support so branch reorganizations (longest-chain and GHOST switches) can roll
// the state back and forward deterministically. Entry storage lives behind the
// pluggable StateBackend (state_backend.hpp): the default is the sharded
// in-memory engine; PersistentNode can substitute the LSM-flavored persistent
// engine for state that outgrows RAM. The address index and the running total
// value stay here, maintained in lockstep with every backend mutation.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "ledger/block.hpp"
#include "ledger/outpoint_hash.hpp"
#include "ledger/state_backend.hpp"
#include "ledger/transaction.hpp"

namespace dlt::ledger {

/// Everything needed to undo one block application.
struct UtxoUndo {
    /// Outputs consumed by the block, with their original data, in spend order.
    std::vector<std::pair<OutPoint, TxOutput>> spent;
    /// Outpoints created by the block.
    std::vector<OutPoint> created;

    friend bool operator==(const UtxoUndo&, const UtxoUndo&) = default;

    /// Serialization for the storage layer's per-block undo records, so a
    /// restarted node can disconnect blocks it connected in a previous life.
    void encode(Writer& w) const;
    static UtxoUndo decode(Reader& r);
};

class UtxoSet {
public:
    /// Default engine: sharded in-memory backend.
    UtxoSet();

    /// Adopt an existing backend (e.g. a persistent engine reopened from
    /// disk); rebuilds the address index and total from its contents.
    explicit UtxoSet(std::unique_ptr<StateBackend> backend);

    // Value semantics: copies deep-clone the backend (persistent engines
    // materialize into an in-memory clone), so a copied set never shares
    // files or state with the original.
    UtxoSet(const UtxoSet& other);
    UtxoSet& operator=(const UtxoSet& other);
    UtxoSet(UtxoSet&&) = default;
    UtxoSet& operator=(UtxoSet&&) = default;

    std::optional<TxOutput> lookup(const OutPoint& op) const;
    bool contains(const OutPoint& op) const;
    std::size_t size() const { return static_cast<std::size_t>(backend_->size()); }

    /// Total value across all unspent outputs — O(1), maintained incrementally.
    Amount total_value() const { return total_value_; }

    /// Spendable balance of one address — O(1) via the address index.
    Amount balance_of(const crypto::Address& addr) const;

    /// All outpoints owned by an address (wallet coin selection), sorted by
    /// outpoint so results are identical across backends and hash seeds.
    std::vector<std::pair<OutPoint, TxOutput>> coins_of(const crypto::Address& addr) const;

    /// Full contents (snapshot serialization, bootstrap checkpoints).
    std::vector<std::pair<OutPoint, TxOutput>> export_all() const;

    /// Canonical snapshot serialization: entries sorted by outpoint, so equal
    /// sets always produce byte-identical (and therefore digest-identical)
    /// snapshots regardless of backend or hash-map iteration order. The
    /// sharded backend builds the same bytes in parallel per shard.
    void encode(Writer& w) const;

    /// Rebuild a set from its snapshot serialization. Rejects truncated or
    /// corrupt input — including duplicate outpoints, which would silently
    /// corrupt the total and address index — with DecodeError before any
    /// large allocation.
    static UtxoSet decode(Reader& r);

    /// Insert an entry directly (snapshot restore); overwrites silently.
    void insert_raw(const OutPoint& op, const TxOutput& out);

    /// Check a transaction against the set: inputs exist, no intra-tx double
    /// spends, value in >= value out. Returns the fee (inputs - outputs) on
    /// success; throws ValidationError otherwise. Coinbases return 0.
    Amount check_transaction(const Transaction& tx) const;

    /// Validate and apply one transaction, appending to `undo`. Returns the fee.
    /// Throws ValidationError without mutating on failure.
    Amount check_and_apply(const Transaction& tx, UtxoUndo& undo);

    /// Apply a whole block (earlier txs may fund later ones). Returns the undo
    /// record. Throws ValidationError and leaves the set unchanged on any
    /// invalid spend.
    UtxoUndo apply_block(const Block& block);

    /// Revert a block using its undo record (exact inverse of apply_block).
    void undo_block(const UtxoUndo& undo);

    /// Durability point: forward to the backend's batch commit (see
    /// StateBackend::commit_batch). No-op on in-memory engines.
    void commit(std::uint64_t tag, ByteView meta) { backend_->commit_batch(tag, meta); }

    const StateBackend& backend() const { return *backend_; }

private:
    void apply_transaction(const Transaction& tx, UtxoUndo& undo);
    void rebuild_index();

    /// Per-address running balance + owned outpoints, kept in lockstep with
    /// the backend through every insertion and erasure (apply, undo, raw
    /// insert), so reorgs keep the index exact.
    struct AddressEntry {
        Amount balance = 0;
        std::unordered_set<OutPoint, OutPointHash> coins;
    };

    void index_add(const OutPoint& op, const TxOutput& out);
    void index_remove(const OutPoint& op, const TxOutput& out);

    std::unique_ptr<StateBackend> backend_;
    std::unordered_map<crypto::Address, AddressEntry> by_addr_;
    Amount total_value_ = 0;
};

} // namespace dlt::ledger
