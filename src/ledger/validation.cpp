#include "ledger/validation.hpp"

#include "common/error.hpp"

namespace dlt::ledger {

void check_block_structure(const Block& block, const ValidationRules& rules) {
    if (block.serialized_size() > rules.max_block_bytes)
        throw ValidationError("block exceeds size limit");
    if (block.txs.size() > rules.max_txs_per_block)
        throw ValidationError("block exceeds transaction count limit");
    if (block.header.merkle_root != block.compute_merkle_root())
        throw ValidationError("merkle root mismatch");

    if (rules.require_coinbase && block.header.height > 0) {
        if (block.txs.empty() || !block.txs.front().is_coinbase())
            throw ValidationError("first transaction must be coinbase");
    }
    for (std::size_t i = 0; i < block.txs.size(); ++i) {
        const auto& tx = block.txs[i];
        if (tx.is_coinbase() && i != 0)
            throw ValidationError("coinbase beyond first position");
        if (rules.sig_mode == SigCheckMode::kFull && !tx.is_coinbase() &&
            !tx.verify_signatures())
            throw ValidationError("bad transaction signature");
    }
}

UtxoUndo connect_block(const Block& block, UtxoSet& utxo,
                       const ValidationRules& rules) {
    check_block_structure(block, rules);

    UtxoUndo undo;
    Amount total_fees = 0;
    try {
        for (const auto& tx : block.txs) total_fees += utxo.check_and_apply(tx, undo);

        if (rules.require_coinbase && block.header.height > 0 && !block.txs.empty() &&
            block.txs.front().is_coinbase()) {
            Amount claimed = 0;
            for (const auto& out : block.txs.front().outputs) claimed += out.value;
            const Amount ceiling = block_subsidy(block.header.height) + total_fees;
            if (claimed > ceiling)
                throw ValidationError("coinbase claims more than subsidy plus fees");
        }
    } catch (...) {
        utxo.undo_block(undo);
        throw;
    }
    return undo;
}

} // namespace dlt::ledger
