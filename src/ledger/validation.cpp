#include "ledger/validation.hpp"

#include <optional>

#include "common/checkqueue.hpp"
#include "common/error.hpp"
#include "crypto/sigcache.hpp"
#include "obs/metrics.hpp"

namespace dlt::ledger {

namespace {

// CheckQueue lives in src/common (which obs depends on), so the queue is
// instrumented here at its call sites rather than inside the template.
struct ValidationMetrics {
    obs::Histogram& batch_jobs;     // signature jobs per CheckQueue batch
    obs::Histogram& verify_seconds; // wall-clock per parallel verification
    obs::Counter& blocks_checked;

    static ValidationMetrics& get() {
        auto& registry = obs::MetricsRegistry::global();
        static ValidationMetrics m{
            registry.histogram("validation_batch_jobs",
                               "Signature-check jobs queued per batch",
                               {1.0, 2.0, 16}),
            registry.histogram("validation_verify_seconds",
                               "Wall-clock latency of parallel batch verification"),
            registry.counter("validation_blocks_checked_total",
                             "Blocks run through structural validation")};
        return m;
    }
};

} // namespace

void check_block_structure(const Block& block, const ValidationRules& rules) {
    if (block.serialized_size() > rules.max_block_bytes)
        throw ValidationError("block exceeds size limit");
    if (block.txs.size() > rules.max_txs_per_block)
        throw ValidationError("block exceeds transaction count limit");
    if (block.header.merkle_root != block.compute_merkle_root())
        throw ValidationError("merkle root mismatch");

    if (rules.require_coinbase && block.header.height > 0) {
        if (block.txs.empty() || !block.txs.front().is_coinbase())
            throw ValidationError("first transaction must be coinbase");
    }

    const bool check_sigs = rules.sig_mode == SigCheckMode::kFull;
    // One queue for the whole block: workers verify earlier transactions'
    // signatures while this thread is still gathering jobs from later ones
    // (Bitcoin's CCheckQueue shape). Structural defects (missing signature)
    // still throw at their position; EC outcomes join at complete().
    const bool parallel = check_sigs && ThreadPool::global().worker_count() > 0;
    CheckQueue<crypto::SigCheckJob> queue;
    ValidationMetrics& metrics = ValidationMetrics::get();
    metrics.blocks_checked.inc();
    std::optional<obs::ScopedTimer> timer;
    if (parallel) timer.emplace(metrics.verify_seconds);

    std::uint64_t queued_jobs = 0;
    for (std::size_t i = 0; i < block.txs.size(); ++i) {
        const auto& tx = block.txs[i];
        if (tx.is_coinbase() && i != 0)
            throw ValidationError("coinbase beyond first position");
        if (!check_sigs || tx.is_coinbase()) continue;
        if (parallel) {
            std::vector<crypto::SigCheckJob> jobs;
            if (!tx.collect_signature_checks(jobs))
                throw ValidationError("bad transaction signature");
            queued_jobs += jobs.size();
            queue.add(std::move(jobs));
        } else if (!tx.verify_signatures()) {
            throw ValidationError("bad transaction signature");
        }
    }
    if (parallel) {
        metrics.batch_jobs.record(static_cast<double>(queued_jobs));
        if (!queue.complete()) throw ValidationError("bad transaction signature");
    }
}

bool verify_batch_signatures(const std::vector<Transaction>& txs) {
    ThreadPool& pool = ThreadPool::global();
    if (pool.worker_count() == 0) {
        for (const auto& tx : txs)
            if (!tx.verify_signatures()) return false;
        return true;
    }
    CheckQueue<crypto::SigCheckJob> queue(pool);
    ValidationMetrics& metrics = ValidationMetrics::get();
    obs::ScopedTimer timer(metrics.verify_seconds);
    bool structurally_ok = true;
    std::uint64_t queued_jobs = 0;
    for (const auto& tx : txs) {
        std::vector<crypto::SigCheckJob> jobs;
        if (!tx.collect_signature_checks(jobs)) {
            structurally_ok = false;
            break; // the batch already fails; stop gathering
        }
        queued_jobs += jobs.size();
        queue.add(std::move(jobs));
    }
    metrics.batch_jobs.record(static_cast<double>(queued_jobs));
    // Always join, even on structural failure, so in-flight checks drain.
    const bool sigs_ok = queue.complete();
    return structurally_ok && sigs_ok;
}

UtxoUndo connect_block(const Block& block, UtxoSet& utxo,
                       const ValidationRules& rules) {
    check_block_structure(block, rules);

    UtxoUndo undo;
    Amount total_fees = 0;
    try {
        for (const auto& tx : block.txs) total_fees += utxo.check_and_apply(tx, undo);

        if (rules.require_coinbase && block.header.height > 0 && !block.txs.empty() &&
            block.txs.front().is_coinbase()) {
            Amount claimed = 0;
            for (const auto& out : block.txs.front().outputs) claimed += out.value;
            const Amount ceiling = block_subsidy(block.header.height) + total_fees;
            if (claimed > ceiling)
                throw ValidationError("coinbase claims more than subsidy plus fees");
        }
    } catch (...) {
        utxo.undo_block(undo);
        throw;
    }
    return undo;
}

} // namespace dlt::ledger
