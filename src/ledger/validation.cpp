#include "ledger/validation.hpp"

#include "common/checkqueue.hpp"
#include "common/error.hpp"
#include "crypto/sigcache.hpp"

namespace dlt::ledger {

void check_block_structure(const Block& block, const ValidationRules& rules) {
    if (block.serialized_size() > rules.max_block_bytes)
        throw ValidationError("block exceeds size limit");
    if (block.txs.size() > rules.max_txs_per_block)
        throw ValidationError("block exceeds transaction count limit");
    if (block.header.merkle_root != block.compute_merkle_root())
        throw ValidationError("merkle root mismatch");

    if (rules.require_coinbase && block.header.height > 0) {
        if (block.txs.empty() || !block.txs.front().is_coinbase())
            throw ValidationError("first transaction must be coinbase");
    }

    const bool check_sigs = rules.sig_mode == SigCheckMode::kFull;
    // One queue for the whole block: workers verify earlier transactions'
    // signatures while this thread is still gathering jobs from later ones
    // (Bitcoin's CCheckQueue shape). Structural defects (missing signature)
    // still throw at their position; EC outcomes join at complete().
    const bool parallel = check_sigs && ThreadPool::global().worker_count() > 0;
    CheckQueue<crypto::SigCheckJob> queue;

    for (std::size_t i = 0; i < block.txs.size(); ++i) {
        const auto& tx = block.txs[i];
        if (tx.is_coinbase() && i != 0)
            throw ValidationError("coinbase beyond first position");
        if (!check_sigs || tx.is_coinbase()) continue;
        if (parallel) {
            std::vector<crypto::SigCheckJob> jobs;
            if (!tx.collect_signature_checks(jobs))
                throw ValidationError("bad transaction signature");
            queue.add(std::move(jobs));
        } else if (!tx.verify_signatures()) {
            throw ValidationError("bad transaction signature");
        }
    }
    if (parallel && !queue.complete())
        throw ValidationError("bad transaction signature");
}

bool verify_batch_signatures(const std::vector<Transaction>& txs) {
    ThreadPool& pool = ThreadPool::global();
    if (pool.worker_count() == 0) {
        for (const auto& tx : txs)
            if (!tx.verify_signatures()) return false;
        return true;
    }
    CheckQueue<crypto::SigCheckJob> queue(pool);
    bool structurally_ok = true;
    for (const auto& tx : txs) {
        std::vector<crypto::SigCheckJob> jobs;
        if (!tx.collect_signature_checks(jobs)) {
            structurally_ok = false;
            break; // the batch already fails; stop gathering
        }
        queue.add(std::move(jobs));
    }
    // Always join, even on structural failure, so in-flight checks drain.
    const bool sigs_ok = queue.complete();
    return structurally_ok && sigs_ok;
}

UtxoUndo connect_block(const Block& block, UtxoSet& utxo,
                       const ValidationRules& rules) {
    check_block_structure(block, rules);

    UtxoUndo undo;
    Amount total_fees = 0;
    try {
        for (const auto& tx : block.txs) total_fees += utxo.check_and_apply(tx, undo);

        if (rules.require_coinbase && block.header.height > 0 && !block.txs.empty() &&
            block.txs.front().is_coinbase()) {
            Amount claimed = 0;
            for (const auto& out : block.txs.front().outputs) claimed += out.value;
            const Amount ceiling = block_subsidy(block.header.height) + total_fees;
            if (claimed > ceiling)
                throw ValidationError("coinbase claims more than subsidy plus fees");
        }
    } catch (...) {
        utxo.undo_block(undo);
        throw;
    }
    return undo;
}

} // namespace dlt::ledger
