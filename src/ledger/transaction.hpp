// Transactions. One envelope supports the paper's three application generations:
// UTXO value transfer (Blockchain 1.0), account-model contract deployment and
// invocation (2.0), and arbitrary application payloads recorded on-chain (3.0).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "crypto/keys.hpp"
#include "crypto/sigcache.hpp"
#include "ledger/amount.hpp"

namespace dlt::ledger {

/// Reference to a previous transaction output.
struct OutPoint {
    Hash256 txid;
    std::uint32_t index = 0;

    friend auto operator<=>(const OutPoint&, const OutPoint&) = default;

    void encode(Writer& w) const;
    static OutPoint decode(Reader& r);
};

struct TxInput {
    OutPoint prevout;
    /// Compressed public key matching the spent output's address.
    Bytes pubkey;
    /// 64-byte signature over the transaction sighash.
    Bytes signature;

    friend bool operator==(const TxInput&, const TxInput&) = default;

    void encode(Writer& w) const;
    static TxInput decode(Reader& r);
};

struct TxOutput {
    Amount value = 0;
    crypto::Address recipient;

    friend bool operator==(const TxOutput&, const TxOutput&) = default;

    void encode(Writer& w) const;
    static TxOutput decode(Reader& r);
};

enum class TxKind : std::uint8_t {
    kCoinbase = 0,       // block reward, no inputs
    kTransfer = 1,       // UTXO value transfer (1.0)
    kContractDeploy = 2, // account-model: `data` is contract bytecode (2.0)
    kContractCall = 3,   // account-model: `data` is call payload (2.0)
    kRecord = 4,         // opaque application record (3.0)
};

struct Transaction {
    TxKind kind = TxKind::kTransfer;

    // UTXO family (kCoinbase / kTransfer).
    std::vector<TxInput> inputs;
    std::vector<TxOutput> outputs;

    // Account family (kContractDeploy / kContractCall / kRecord).
    Bytes sender_pubkey;      // compressed key of the caller
    std::uint64_t nonce = 0;  // caller's account nonce
    crypto::Address target;   // contract address (kContractCall)
    Amount value = 0;         // coins attached to the call
    Bytes data;               // code / calldata / record payload
    std::uint64_t gas_limit = 0;
    Amount gas_price = 0;
    Bytes account_signature;  // signature over the sighash

    /// Explicit fee for UTXO txs is implied (inputs - outputs); account txs pay
    /// gas_used * gas_price. This field lets workload generators express intent
    /// for mempool ordering before execution.
    Amount declared_fee = 0;

    bool is_coinbase() const { return kind == TxKind::kCoinbase; }
    bool uses_accounts() const {
        return kind == TxKind::kContractDeploy || kind == TxKind::kContractCall ||
               kind == TxKind::kRecord;
    }

    /// Hash over the full serialization — the transaction id (Fig. 2 leaves).
    /// Cached after the first call: transactions are value types that flow
    /// through mempools, blocks, and UTXO updates, and recomputing the double
    /// SHA-256 at every site dominates simulation cost. sign_with() refreshes
    /// the cache; code that mutates fields directly after calling txid() or
    /// sighash() must call invalidate_txid_cache().
    Hash256 txid() const;

    /// Drop both hash caches (after direct field mutation).
    void invalidate_txid_cache() {
        cached_txid_.reset();
        cached_sighash_.reset();
    }

    /// Hash all fields except signatures — the message wallets sign. Cached
    /// like txid(): every node re-derives the sighash when verifying, and the
    /// serialization cost is identical.
    Hash256 sighash() const;

    /// Sign every input (UTXO family) or the account signature with `key`.
    void sign_with(const crypto::PrivateKey& key);

    /// Verify all signatures against the embedded public keys. Does not check
    /// that pubkeys match spent outputs — that needs the UTXO set (validation.hpp).
    /// Fans per-input checks out to the global thread pool when it has workers
    /// and the transaction carries enough signatures to amortize the handoff.
    bool verify_signatures() const;

    /// Gather this transaction's signature checks as deferred jobs instead of
    /// running them, so a block validator can batch many transactions into one
    /// CheckQueue. Computes (and caches) the sighash on the calling thread —
    /// the returned jobs are pure and safe to run on any worker, but their
    /// ByteViews point into this transaction, which must stay alive and
    /// unmodified until the jobs finish. Returns false if the transaction is
    /// structurally unsigned (missing key/signature, or a non-coinbase with no
    /// inputs) — `out` is meaningless in that case. Coinbases append nothing.
    bool collect_signature_checks(std::vector<crypto::SigCheckJob>& out) const;

    friend bool operator==(const Transaction& a, const Transaction& b);

    void encode(Writer& w) const;
    static Transaction decode(Reader& r);

    std::size_t serialized_size() const;

private:
    mutable std::optional<Hash256> cached_txid_;
    mutable std::optional<Hash256> cached_sighash_;
};

/// Convenience builders used across tests, examples, and workload generators.
Transaction make_coinbase(const crypto::Address& miner, Amount reward,
                          std::uint64_t height);
Transaction make_transfer(const std::vector<OutPoint>& spends,
                          const std::vector<TxOutput>& outputs);
Transaction make_record(const crypto::PublicKey& sender, std::uint64_t nonce,
                        Bytes payload);

} // namespace dlt::ledger
