#include "obs/txlifecycle.hpp"

namespace dlt::obs {

const char* tx_drop_reason_name(TxDropReason r) {
    switch (r) {
        case TxDropReason::kEvicted: return "evicted";
        case TxDropReason::kExpired: return "expired";
        case TxDropReason::kReplaced: return "replaced";
    }
    return "unknown";
}

const std::optional<SimTime>& TxRecord::stage(TxStage s) const {
    switch (s) {
        case TxStage::kSubmitted: return submitted;
        case TxStage::kFirstSeen: return first_seen;
        case TxStage::kMempool: return mempool;
        case TxStage::kIncluded: return included;
        case TxStage::kFinal: return final_at;
        case TxStage::kDropped: return dropped;
    }
    return submitted; // unreachable
}

void TxLifecycleTracker::trace_transition(const char* name, const Hash256& txid,
                                          std::uint32_t tid, SimTime at) {
    if (tracer_ == nullptr || !tracer_->enabled()) return;
    tracer_->instant(name, "tx", at, tid,
                     {{"txid", trace_arg(txid.hex().substr(0, 16))}});
}

void TxLifecycleTracker::on_submitted(const Hash256& txid, SimTime at,
                                      std::uint32_t origin) {
    auto [it, inserted] = records_.try_emplace(txid);
    if (inserted) order_.push_back(txid);
    if (!it->second.submitted) {
        it->second.submitted = at;
        trace_transition("tx.submit", txid, origin, at);
    }
}

void TxLifecycleTracker::on_first_seen(const Hash256& txid, std::uint32_t node,
                                       SimTime at) {
    const auto it = records_.find(txid);
    if (it == records_.end()) return; // not a tracked (submitted) tx
    if (!it->second.first_seen) {
        it->second.first_seen = at;
        trace_transition("tx.first_seen", txid, node, at);
    }
}

void TxLifecycleTracker::on_mempool_accepted(const Hash256& txid, std::uint32_t node,
                                             SimTime at) {
    const auto it = records_.find(txid);
    if (it == records_.end()) return;
    if (!it->second.mempool) {
        it->second.mempool = at;
        trace_transition("tx.mempool", txid, node, at);
    }
    // A re-accept (reorg add_back, fresh re-relay) revives a dropped tx.
    if (it->second.dropped) {
        it->second.dropped.reset();
        it->second.drop_reason.reset();
    }
}

void TxLifecycleTracker::on_dropped(const Hash256& txid, std::uint32_t node,
                                    SimTime at, TxDropReason reason) {
    const auto it = records_.find(txid);
    if (it == records_.end()) return;
    TxRecord& rec = it->second;
    if (rec.included || rec.final_at) return; // confirmed txs cannot drop
    rec.dropped = at;
    rec.drop_reason = reason;
    trace_transition("tx.dropped", txid, node, at);
}

void TxLifecycleTracker::on_block_connected(std::uint64_t height,
                                            const std::vector<Hash256>& txids,
                                            SimTime at) {
    std::vector<Hash256>* pending = nullptr;
    for (const auto& txid : txids) {
        const auto it = records_.find(txid);
        if (it == records_.end()) continue;
        TxRecord& rec = it->second;
        if (rec.final_at) continue; // finality is never revoked
        rec.included = at;
        rec.inclusion_height = height;
        if (pending == nullptr) pending = &pending_finality_[height];
        pending->push_back(txid);
        trace_transition("tx.included", txid, 0, at);
    }
}

void TxLifecycleTracker::on_block_disconnected(std::uint64_t height,
                                               const std::vector<Hash256>& txids) {
    for (const auto& txid : txids) {
        const auto it = records_.find(txid);
        if (it == records_.end()) continue;
        TxRecord& rec = it->second;
        if (rec.final_at) continue;
        if (rec.inclusion_height == height) {
            rec.included.reset();
            rec.inclusion_height = 0;
        }
    }
    pending_finality_.erase(height);
}

void TxLifecycleTracker::on_tip_height(std::uint64_t height, SimTime at) {
    if (height + 1 < finality_depth_) return;
    const std::uint64_t deep = height + 1 - finality_depth_; // k confirmations
    // Heights are finalized in order, so scan the small pending set.
    std::vector<std::uint64_t> done;
    for (auto& [h, txids] : pending_finality_) {
        if (h > deep) continue;
        for (const auto& txid : txids) {
            const auto it = records_.find(txid);
            if (it == records_.end()) continue;
            TxRecord& rec = it->second;
            // Only finalize a tx still included at this height (a reorg may
            // have moved it since).
            if (rec.final_at || !rec.included || rec.inclusion_height != h) continue;
            rec.final_at = at;
            ++finalized_;
            trace_transition("tx.final", txid, 0, at);
        }
        done.push_back(h);
    }
    for (const auto h : done) pending_finality_.erase(h);
}

void TxLifecycleTracker::on_finalized(const Hash256& txid, SimTime at) {
    const auto it = records_.find(txid);
    if (it == records_.end()) return;
    TxRecord& rec = it->second;
    if (rec.final_at || !rec.included) return;
    rec.final_at = at;
    ++finalized_;
    trace_transition("tx.final", txid, 0, at);
}

std::uint64_t TxLifecycleTracker::dropped_count() const {
    std::uint64_t n = 0;
    for (const auto& [txid, rec] : records_)
        if (rec.dropped && !rec.included && !rec.final_at) ++n;
    return n;
}

const TxRecord* TxLifecycleTracker::find(const Hash256& txid) const {
    const auto it = records_.find(txid);
    return it == records_.end() ? nullptr : &it->second;
}

std::vector<double> TxLifecycleTracker::latencies(TxStage from, TxStage to) const {
    std::vector<double> out;
    for (const auto& txid : order_) {
        const auto it = records_.find(txid);
        if (it == records_.end()) continue;
        const auto& a = it->second.stage(from);
        const auto& b = it->second.stage(to);
        if (a && b) out.push_back(*b - *a);
    }
    return out;
}

void TxLifecycleTracker::record_latencies(TxStage from, TxStage to,
                                          Histogram& sink) const {
    for (const double v : latencies(from, to)) sink.record(v);
}

} // namespace dlt::obs
