#include "obs/trace.hpp"

#include <cstdio>

#include "obs/export.hpp"

namespace dlt::obs {

namespace {

/// One event as a Chrome trace_event JSON object (no trailing separator).
void append_event_json(std::string& out, const TraceEvent& e) {
    out += "{\"name\": \"" + json_escape(e.name) + "\", \"cat\": \"" +
           json_escape(e.category) + "\", \"ph\": \"" + e.phase +
           "\", \"ts\": " + json_number(e.ts_us);
    if (e.phase == 'X') out += ", \"dur\": " + json_number(e.dur_us);
    out += ", \"pid\": 0, \"tid\": " + std::to_string(e.tid);
    if (!e.args.empty()) {
        out += ", \"args\": {";
        bool first_arg = true;
        for (const auto& [key, value] : e.args) {
            if (!first_arg) out += ", ";
            first_arg = false;
            out += '"';
            out += json_escape(key);
            out += "\": ";
            out += value;
        }
        out += "}";
    }
    out += "}";
}

} // namespace

Tracer& Tracer::global() {
    static Tracer tracer;
    return tracer;
}

void Tracer::push(TraceEvent event) {
    std::lock_guard lock(m_);
    if (stream_ != nullptr) {
        // Streaming suspends the capacity cap: full chunks go to disk instead
        // of being dropped.
        events_.push_back(std::move(event));
        emitted_.fetch_add(1, std::memory_order_relaxed);
        if (events_.size() >= chunk_events_) flush_chunk_locked();
        return;
    }
    if (events_.size() >= capacity_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    events_.push_back(std::move(event));
    emitted_.fetch_add(1, std::memory_order_relaxed);
}

bool Tracer::flush_chunk_locked() {
    if (stream_ == nullptr || events_.empty()) return true;
    std::string out;
    for (const auto& e : events_) {
        out += stream_first_ ? "\n" : ",\n";
        stream_first_ = false;
        append_event_json(out, e);
    }
    events_.clear();
    return std::fwrite(out.data(), 1, out.size(), stream_) == out.size();
}

bool Tracer::open_stream(const std::string& path, std::size_t chunk_events) {
    std::lock_guard lock(m_);
    if (stream_ != nullptr) return false;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string header = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
        std::fclose(f);
        return false;
    }
    stream_ = f;
    chunk_events_ = chunk_events == 0 ? 1 : chunk_events;
    stream_first_ = true;
    return true;
}

bool Tracer::close_stream() {
    std::lock_guard lock(m_);
    if (stream_ == nullptr) return true;
    bool ok = flush_chunk_locked();
    const std::string footer = "\n]}\n";
    ok = std::fwrite(footer.data(), 1, footer.size(), stream_) == footer.size() &&
         ok;
    ok = std::fclose(stream_) == 0 && ok;
    stream_ = nullptr;
    return ok;
}

bool Tracer::streaming() const {
    std::lock_guard lock(m_);
    return stream_ != nullptr;
}

void Tracer::instant(std::string name, std::string category, SimTime at,
                     std::uint32_t tid,
                     std::vector<std::pair<std::string, std::string>> args) {
    if (!enabled()) return;
    TraceEvent e;
    e.name = std::move(name);
    e.category = std::move(category);
    e.phase = 'i';
    e.ts_us = at * 1e6;
    e.tid = tid;
    e.args = std::move(args);
    push(std::move(e));
}

void Tracer::complete(std::string name, std::string category, SimTime begin,
                      SimDuration duration, std::uint32_t tid,
                      std::vector<std::pair<std::string, std::string>> args) {
    if (!enabled()) return;
    TraceEvent e;
    e.name = std::move(name);
    e.category = std::move(category);
    e.phase = 'X';
    e.ts_us = begin * 1e6;
    e.dur_us = duration * 1e6;
    e.tid = tid;
    e.args = std::move(args);
    push(std::move(e));
}

void Tracer::counter(std::string name, SimTime at, double value) {
    if (!enabled()) return;
    TraceEvent e;
    e.name = std::move(name);
    e.category = "counter";
    e.phase = 'C';
    e.ts_us = at * 1e6;
    e.args.emplace_back("value", json_number(value));
    push(std::move(e));
}

std::size_t Tracer::size() const {
    std::lock_guard lock(m_);
    return events_.size();
}

void Tracer::clear() {
    std::lock_guard lock(m_);
    events_.clear();
    dropped_.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::events() const {
    std::lock_guard lock(m_);
    return events_;
}

std::string Tracer::chrome_trace_json() const {
    std::lock_guard lock(m_);
    std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (const auto& e : events_) {
        out += first ? "\n" : ",\n";
        first = false;
        append_event_json(out, e);
    }
    out += "\n]}\n";
    return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string body = chrome_trace_json();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return true;
}

std::string trace_arg(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    out += json_escape(s);
    out += '"';
    return out;
}
std::string trace_arg(double v) { return json_number(v); }
std::string trace_arg(std::uint64_t v) { return std::to_string(v); }

} // namespace dlt::obs
