// Process-wide observability primitives (the measurement plane DESIGN.md's
// experiments report through): lock-free counters and gauges, histograms with
// fixed log-scale buckets and quantile estimation, labeled metric families
// (e.g. per node_id or per shard), and a thread-safe registry that snapshots
// everything into Prometheus text or JSON.
//
// Determinism contract (matching the threading model): metrics are *pure
// observers*. Nothing in protocol or simulation logic may read a metric to
// make a decision, so experiment outputs are byte-identical with observability
// on or off and at any DLT_THREADS — enforced by tests/test_obs.cpp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace dlt::obs {

/// Monotonic event count. inc() is a single relaxed fetch_add (~1-2 ns), cheap
/// enough for per-message hot paths; readers see individually-exact values.
class Counter {
public:
    void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value (queue depth, cache size, current height).
class Gauge {
public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    void add(double d) {
        double cur = v_.load(std::memory_order_relaxed);
        while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
        }
    }
    double value() const { return v_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> v_{0.0};
};

/// Bucket layout for Histogram: bucket i spans (bound(i-1), bound(i)] with
/// bound(i) = first_bound * growth^i, plus one overflow bucket. Log-scale
/// buckets cover nanoseconds-to-seconds (or bytes-to-megabytes) ranges with a
/// constant relative error, which is what latency distributions need.
struct HistogramOptions {
    double first_bound = 1e-6; // upper bound of the first bucket
    double growth = 2.0;       // geometric bucket growth factor
    std::size_t bucket_count = 40; // finite buckets (an overflow bucket is added)
};

/// Fixed-bucket histogram: record() finds the bucket by binary search over the
/// precomputed bounds and does two relaxed atomic adds. Quantiles are
/// estimated by log-linear interpolation inside the covering bucket, so the
/// estimate's relative error is bounded by the growth factor.
class Histogram {
public:
    explicit Histogram(HistogramOptions options = {});

    void record(double value);

    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    double mean() const {
        const auto n = count();
        return n > 0 ? sum() / static_cast<double>(n) : 0.0;
    }

    /// Estimated q-quantile (q in [0,1]) from the bucket counts; 0 when empty.
    /// Values in the overflow bucket report the last finite bound.
    double quantile(double q) const;

    /// Upper bounds of the finite buckets (the overflow bucket is implicit).
    const std::vector<double>& bucket_bounds() const { return bounds_; }
    /// Snapshot of per-bucket counts, including the final overflow bucket.
    std::vector<std::uint64_t> bucket_counts() const;

    void reset();

private:
    std::vector<double> bounds_; // ascending upper bounds, size = bucket_count
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_; // size = bucket_count+1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// RAII wall-clock scope: records elapsed seconds into a histogram on
/// destruction. For host-side hot paths (fsync latency, signature batches);
/// virtual-time measurements go through the Tracer instead.
class ScopedTimer {
public:
    explicit ScopedTimer(Histogram& sink)
        : sink_(&sink), start_(std::chrono::steady_clock::now()) {}
    ~ScopedTimer() {
        const auto d = std::chrono::steady_clock::now() - start_;
        sink_->record(std::chrono::duration<double>(d).count());
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    Histogram* sink_;
    std::chrono::steady_clock::time_point start_;
};

/// Label values for one child of a family, in the family's label-name order:
/// {"3"} for labels {"node_id"}.
using LabelValues = std::vector<std::string>;

/// A named set of metrics of one type distinguished by label values
/// (Prometheus-style). with() returns a stable reference: children are
/// created on first use and never move or disappear.
template <typename Metric>
class Family {
public:
    Family(std::string name, std::string help, std::vector<std::string> label_names,
           HistogramOptions histogram_options = {})
        : name_(std::move(name)),
          help_(std::move(help)),
          label_names_(std::move(label_names)),
          histogram_options_(histogram_options) {}

    Metric& with(const LabelValues& values);

    /// Dense fast lane for hot single-label families indexed by a small
    /// integer (node id, shard id, scenario cell): with_index(i) is
    /// equivalent to with({std::to_string(i)}) but resolves through a
    /// lock-free pointer table — two acquire loads on the hit path instead of
    /// a shared_mutex acquisition plus a string-keyed map walk. Children are
    /// shared with with(): both paths return the same metric and exporters
    /// see exactly one child. Throws std::logic_error on a family whose label
    /// count is not 1.
    Metric& with_index(std::size_t index);

    const std::string& name() const { return name_; }
    const std::string& help() const { return help_; }
    const std::vector<std::string>& label_names() const { return label_names_; }

    /// Visit every child as (label values, metric), sorted by label values.
    template <typename Fn>
    void visit(Fn&& fn) const {
        std::shared_lock lock(m_);
        for (const auto& [values, metric] : children_) fn(values, *metric);
    }

    std::size_t size() const {
        std::shared_lock lock(m_);
        return children_.size();
    }

private:
    /// One generation of the dense index table. Grown copies replace it
    /// RCU-style: readers may still hold a pointer to an old generation, so
    /// retired slabs stay alive for the family's lifetime (growth is
    /// geometric — total retired memory is bounded by ~1× the final slab).
    struct DenseSlab {
        explicit DenseSlab(std::size_t n) : slots(n) {}
        std::vector<std::atomic<Metric*>> slots;
    };

    std::string name_;
    std::string help_;
    std::vector<std::string> label_names_;
    HistogramOptions histogram_options_;
    mutable std::shared_mutex m_;
    std::map<LabelValues, std::unique_ptr<Metric>> children_;
    std::atomic<DenseSlab*> dense_{nullptr};
    std::vector<std::unique_ptr<DenseSlab>> dense_slabs_; // guarded by m_
};

using CounterFamily = Family<Counter>;
using GaugeFamily = Family<Gauge>;
using HistogramFamily = Family<Histogram>;

/// Thread-safe name -> metric registry. Metrics are created on first lookup
/// and owned by the registry; returned references are stable for the
/// registry's lifetime. A name registered as one kind cannot be re-registered
/// as another (throws std::logic_error). global() is the process-wide instance
/// every subsystem reports into.
class MetricsRegistry {
public:
    MetricsRegistry();  // out-of-line: Entry is incomplete here
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    static MetricsRegistry& global();

    Counter& counter(const std::string& name, const std::string& help = "");
    Gauge& gauge(const std::string& name, const std::string& help = "");
    Histogram& histogram(const std::string& name, const std::string& help = "",
                         HistogramOptions options = {});

    CounterFamily& counter_family(const std::string& name, const std::string& help,
                                  std::vector<std::string> label_names);
    GaugeFamily& gauge_family(const std::string& name, const std::string& help,
                              std::vector<std::string> label_names);
    HistogramFamily& histogram_family(const std::string& name,
                                      const std::string& help,
                                      std::vector<std::string> label_names,
                                      HistogramOptions options = {});

    /// Prometheus text exposition (sorted by name, deterministic).
    std::string prometheus_text() const;

    /// JSON snapshot: {"name": value, ...} with histograms expanded to
    /// {count, sum, mean, p50, p99, buckets}. Sorted by name, deterministic.
    std::string json_snapshot() const;

    /// Write json_snapshot() / prometheus_text() to a file; returns false when
    /// the file cannot be opened (read-only working dir).
    bool write_json(const std::string& path) const;
    bool write_prometheus(const std::string& path) const;

    /// Zero every counter/gauge/histogram (children of families included).
    /// For test/bench isolation; registered names survive.
    void reset();

private:
    struct Entry; // one named metric or family, tagged by kind
    Entry& get_or_create(const std::string& name, const std::string& help, int kind);

    mutable std::shared_mutex m_;
    std::map<std::string, std::unique_ptr<Entry>> entries_;

    friend struct RegistryAccess; // exporters iterate entries_
};

template <typename Metric>
Metric& Family<Metric>::with(const LabelValues& values) {
    {
        std::shared_lock lock(m_);
        if (const auto it = children_.find(values); it != children_.end())
            return *it->second;
    }
    std::unique_lock lock(m_);
    auto& slot = children_[values];
    if (slot == nullptr) {
        if constexpr (std::is_same_v<Metric, Histogram>)
            slot = std::make_unique<Histogram>(histogram_options_);
        else
            slot = std::make_unique<Metric>();
    }
    return *slot;
}

template <typename Metric>
Metric& Family<Metric>::with_index(std::size_t index) {
    if (DenseSlab* slab = dense_.load(std::memory_order_acquire);
        slab != nullptr && index < slab->slots.size()) {
        if (Metric* hit = slab->slots[index].load(std::memory_order_acquire))
            return *hit;
    }
    if (label_names_.size() != 1)
        throw std::logic_error("with_index requires a single-label family: " + name_);
    // Miss: create/find the shared child, then publish its pointer in a slab
    // slot so every later with_index(index) takes the lock-free path.
    Metric& child = with({std::to_string(index)});
    std::unique_lock lock(m_);
    DenseSlab* cur = dense_.load(std::memory_order_relaxed);
    if (cur == nullptr || index >= cur->slots.size()) {
        std::size_t n = cur != nullptr ? cur->slots.size() : 64;
        while (n <= index) n *= 2;
        auto grown = std::make_unique<DenseSlab>(n);
        if (cur != nullptr)
            for (std::size_t i = 0; i < cur->slots.size(); ++i)
                grown->slots[i].store(cur->slots[i].load(std::memory_order_relaxed),
                                      std::memory_order_relaxed);
        cur = grown.get();
        dense_slabs_.push_back(std::move(grown));
        dense_.store(cur, std::memory_order_release);
    }
    cur->slots[index].store(&child, std::memory_order_release);
    return child;
}

} // namespace dlt::obs
