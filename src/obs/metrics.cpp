#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <stdexcept>

#include "obs/export.hpp"

namespace dlt::obs {

// --- Histogram -----------------------------------------------------------------

Histogram::Histogram(HistogramOptions options) {
    if (options.bucket_count == 0) options.bucket_count = 1;
    if (!(options.growth > 1.0)) options.growth = 2.0;
    if (!(options.first_bound > 0.0)) options.first_bound = 1e-6;
    bounds_.reserve(options.bucket_count);
    double bound = options.first_bound;
    for (std::size_t i = 0; i < options.bucket_count; ++i) {
        bounds_.push_back(bound);
        bound *= options.growth;
    }
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::record(double value) {
    // Bucket i holds values in (bounds[i-1], bounds[i]]; the final slot is the
    // overflow bucket for values beyond the last finite bound.
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[index].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + value, std::memory_order_relaxed)) {
    }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
    std::vector<std::uint64_t> out(bounds_.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

double Histogram::quantile(double q) const {
    const auto counts = bucket_counts();
    std::uint64_t total = 0;
    for (const auto c : counts) total += c;
    if (total == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-quantile among `total` samples (1-based, ceil convention).
    const std::uint64_t rank =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       std::ceil(q * static_cast<double>(total))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0) continue;
        if (seen + counts[i] < rank) {
            seen += counts[i];
            continue;
        }
        // The rank lands in bucket i. Interpolate log-linearly between the
        // bucket's bounds; the overflow bucket reports the last finite bound.
        if (i >= bounds_.size()) return bounds_.back();
        const double hi = bounds_[i];
        const double lo = i == 0 ? hi / 2.0 : bounds_[i - 1];
        const double frac = static_cast<double>(rank - seen) /
                            static_cast<double>(counts[i]);
        return lo * std::pow(hi / lo, frac);
    }
    return bounds_.back();
}

void Histogram::reset() {
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

// --- MetricsRegistry -----------------------------------------------------------

namespace {
enum Kind {
    kCounter,
    kGauge,
    kHistogram,
    kCounterFamily,
    kGaugeFamily,
    kHistogramFamily
};

const char* kind_name(int kind) {
    switch (kind) {
        case kCounter: return "counter";
        case kGauge: return "gauge";
        case kHistogram: return "histogram";
        case kCounterFamily: return "counter family";
        case kGaugeFamily: return "gauge family";
        case kHistogramFamily: return "histogram family";
    }
    return "?";
}
} // namespace

struct MetricsRegistry::Entry {
    int kind;
    std::string help;
    // Exactly one of these is set, per `kind`.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<CounterFamily> counter_family;
    std::unique_ptr<GaugeFamily> gauge_family;
    std::unique_ptr<HistogramFamily> histogram_family;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Entry& MetricsRegistry::get_or_create(const std::string& name,
                                                       const std::string& help,
                                                       int kind) {
    {
        std::shared_lock lock(m_);
        if (const auto it = entries_.find(name); it != entries_.end()) {
            if (it->second->kind != kind)
                throw std::logic_error("metric '" + name + "' already registered as " +
                                       kind_name(it->second->kind));
            return *it->second;
        }
    }
    std::unique_lock lock(m_);
    auto& slot = entries_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Entry>();
        slot->kind = kind;
        slot->help = help;
    } else if (slot->kind != kind) {
        throw std::logic_error("metric '" + name + "' already registered as " +
                               kind_name(slot->kind));
    }
    return *slot;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help) {
    Entry& e = get_or_create(name, help, kCounter);
    std::unique_lock lock(m_);
    if (e.counter == nullptr) e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
    Entry& e = get_or_create(name, help, kGauge);
    std::unique_lock lock(m_);
    if (e.gauge == nullptr) e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      HistogramOptions options) {
    Entry& e = get_or_create(name, help, kHistogram);
    std::unique_lock lock(m_);
    if (e.histogram == nullptr) e.histogram = std::make_unique<Histogram>(options);
    return *e.histogram;
}

CounterFamily& MetricsRegistry::counter_family(const std::string& name,
                                               const std::string& help,
                                               std::vector<std::string> label_names) {
    Entry& e = get_or_create(name, help, kCounterFamily);
    std::unique_lock lock(m_);
    if (e.counter_family == nullptr)
        e.counter_family =
            std::make_unique<CounterFamily>(name, help, std::move(label_names));
    return *e.counter_family;
}

GaugeFamily& MetricsRegistry::gauge_family(const std::string& name,
                                           const std::string& help,
                                           std::vector<std::string> label_names) {
    Entry& e = get_or_create(name, help, kGaugeFamily);
    std::unique_lock lock(m_);
    if (e.gauge_family == nullptr)
        e.gauge_family =
            std::make_unique<GaugeFamily>(name, help, std::move(label_names));
    return *e.gauge_family;
}

HistogramFamily& MetricsRegistry::histogram_family(
    const std::string& name, const std::string& help,
    std::vector<std::string> label_names, HistogramOptions options) {
    Entry& e = get_or_create(name, help, kHistogramFamily);
    std::unique_lock lock(m_);
    if (e.histogram_family == nullptr)
        e.histogram_family = std::make_unique<HistogramFamily>(
            name, help, std::move(label_names), options);
    return *e.histogram_family;
}

// --- Exporters -----------------------------------------------------------------

namespace {

std::string label_suffix(const std::vector<std::string>& names,
                         const LabelValues& values) {
    std::string out = "{";
    for (std::size_t i = 0; i < names.size() && i < values.size(); ++i) {
        if (i > 0) out += ",";
        out += names[i] + "=\"" + json_escape(values[i]) + "\"";
    }
    out += "}";
    return out;
}

void prometheus_histogram(std::string& out, const std::string& name,
                          const std::string& labels, const Histogram& h) {
    const auto counts = h.bucket_counts();
    const auto& bounds = h.bucket_bounds();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        cumulative += counts[i];
        std::string le = labels.empty() ? "{" : labels.substr(0, labels.size() - 1) + ",";
        out += name + "_bucket" + le + "le=\"" + json_number(bounds[i]) + "\"} " +
               std::to_string(cumulative) + "\n";
    }
    cumulative += counts.back();
    std::string le = labels.empty() ? "{" : labels.substr(0, labels.size() - 1) + ",";
    out += name + "_bucket" + le + "le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += name + "_sum" + labels + " " + json_number(h.sum()) + "\n";
    out += name + "_count" + labels + " " + std::to_string(h.count()) + "\n";
}

std::string histogram_json(const Histogram& h) {
    std::string out = "{\"count\": " + std::to_string(h.count()) +
                      ", \"sum\": " + json_number(h.sum()) +
                      ", \"mean\": " + json_number(h.mean()) +
                      ", \"p50\": " + json_number(h.quantile(0.5)) +
                      ", \"p90\": " + json_number(h.quantile(0.9)) +
                      ", \"p99\": " + json_number(h.quantile(0.99)) + "}";
    return out;
}

} // namespace

std::string MetricsRegistry::prometheus_text() const {
    std::shared_lock lock(m_);
    std::string out;
    for (const auto& [name, entry] : entries_) {
        if (!entry->help.empty())
            out += "# HELP " + name + " " + entry->help + "\n";
        switch (entry->kind) {
            case kCounter:
                out += "# TYPE " + name + " counter\n";
                out += name + " " + std::to_string(entry->counter->value()) + "\n";
                break;
            case kGauge:
                out += "# TYPE " + name + " gauge\n";
                out += name + " " + json_number(entry->gauge->value()) + "\n";
                break;
            case kHistogram:
                out += "# TYPE " + name + " histogram\n";
                prometheus_histogram(out, name, "", *entry->histogram);
                break;
            case kCounterFamily:
                out += "# TYPE " + name + " counter\n";
                entry->counter_family->visit(
                    [&](const LabelValues& values, const Counter& c) {
                        out += name +
                               label_suffix(entry->counter_family->label_names(),
                                            values) +
                               " " + std::to_string(c.value()) + "\n";
                    });
                break;
            case kGaugeFamily:
                out += "# TYPE " + name + " gauge\n";
                entry->gauge_family->visit(
                    [&](const LabelValues& values, const Gauge& g) {
                        out += name +
                               label_suffix(entry->gauge_family->label_names(),
                                            values) +
                               " " + json_number(g.value()) + "\n";
                    });
                break;
            case kHistogramFamily:
                out += "# TYPE " + name + " histogram\n";
                entry->histogram_family->visit(
                    [&](const LabelValues& values, const Histogram& h) {
                        prometheus_histogram(
                            out, name,
                            label_suffix(entry->histogram_family->label_names(),
                                         values),
                            h);
                    });
                break;
        }
    }
    return out;
}

std::string MetricsRegistry::json_snapshot() const {
    std::shared_lock lock(m_);
    JsonObjectWriter w;
    for (const auto& [name, entry] : entries_) {
        switch (entry->kind) {
            case kCounter:
                w.field_uint(name, entry->counter->value());
                break;
            case kGauge:
                w.field_number(name, entry->gauge->value());
                break;
            case kHistogram:
                w.field_raw(name, histogram_json(*entry->histogram));
                break;
            case kCounterFamily:
                entry->counter_family->visit(
                    [&](const LabelValues& values, const Counter& c) {
                        w.field_uint(
                            name + label_suffix(
                                       entry->counter_family->label_names(), values),
                            c.value());
                    });
                break;
            case kGaugeFamily:
                entry->gauge_family->visit(
                    [&](const LabelValues& values, const Gauge& g) {
                        w.field_number(
                            name + label_suffix(entry->gauge_family->label_names(),
                                                values),
                            g.value());
                    });
                break;
            case kHistogramFamily:
                entry->histogram_family->visit(
                    [&](const LabelValues& values, const Histogram& h) {
                        w.field_raw(
                            name + label_suffix(
                                       entry->histogram_family->label_names(), values),
                            histogram_json(h));
                    });
                break;
        }
    }
    return w.str();
}

bool MetricsRegistry::write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string body = json_snapshot();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return true;
}

bool MetricsRegistry::write_prometheus(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string body = prometheus_text();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return true;
}

void MetricsRegistry::reset() {
    std::shared_lock lock(m_);
    for (const auto& [name, entry] : entries_) {
        switch (entry->kind) {
            case kCounter: entry->counter->reset(); break;
            case kGauge: entry->gauge->set(0); break;
            case kHistogram: entry->histogram->reset(); break;
            case kCounterFamily:
                entry->counter_family->visit(
                    [](const LabelValues&, const Counter& c) {
                        const_cast<Counter&>(c).reset();
                    });
                break;
            case kGaugeFamily:
                entry->gauge_family->visit([](const LabelValues&, const Gauge& g) {
                    const_cast<Gauge&>(g).set(0);
                });
                break;
            case kHistogramFamily:
                entry->histogram_family->visit(
                    [](const LabelValues&, const Histogram& h) {
                        const_cast<Histogram&>(h).reset();
                    });
                break;
        }
    }
}

} // namespace dlt::obs
