// Transaction lifecycle tracker: stamps the virtual times of each stage a
// transaction passes through — submit → gossip-first-seen → mempool-accept →
// block-inclusion → k-deep-finality — so experiments report end-to-end
// confirmation-latency *distributions* instead of ad-hoc means.
//
// The tracker is a pure observer fed from consensus/network callbacks; it is
// reorg-aware (a disconnected block un-stamps inclusion; finality is only
// stamped once a tx sits >= `finality_depth` blocks under the tip and is never
// revoked, mirroring the k-confirmations rule of §2.4). When a Tracer is
// attached, every transition also lands in the Chrome trace as an instant
// event on the observing node's track.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dlt::obs {

enum class TxStage { kSubmitted, kFirstSeen, kMempool, kIncluded, kFinal, kDropped };

/// Why an observed mempool shed a transaction unconfirmed. Mirrors
/// ledger::MempoolDropReason without an obs -> ledger dependency.
enum class TxDropReason : std::uint8_t { kEvicted, kExpired, kReplaced };
const char* tx_drop_reason_name(TxDropReason r);

/// Per-transaction stage timestamps (virtual seconds). A missing stage means
/// the transition has not (yet) happened.
struct TxRecord {
    std::optional<SimTime> submitted;
    std::optional<SimTime> first_seen; // first gossip delivery at a non-origin peer
    std::optional<SimTime> mempool;    // first mempool accept anywhere
    std::optional<SimTime> included;   // block inclusion on the observed chain
    std::optional<SimTime> final_at;   // k-deep on the observed chain
    std::optional<SimTime> dropped;    // shed by the observed mempool, unconfirmed
    std::optional<TxDropReason> drop_reason;
    std::uint64_t inclusion_height = 0;

    const std::optional<SimTime>& stage(TxStage s) const;
};

class TxLifecycleTracker {
public:
    /// `finality_depth` = confirmations required for kFinal (k in "k-deep").
    explicit TxLifecycleTracker(std::uint64_t finality_depth = 6,
                                Tracer* tracer = nullptr)
        : finality_depth_(finality_depth == 0 ? 1 : finality_depth),
          tracer_(tracer) {}

    // --- Feed (called by the instrumented stack) ---------------------------------

    void on_submitted(const Hash256& txid, SimTime at, std::uint32_t origin = 0);
    void on_first_seen(const Hash256& txid, std::uint32_t node, SimTime at);
    void on_mempool_accepted(const Hash256& txid, std::uint32_t node, SimTime at);
    /// The observed mempool shed this tx unconfirmed (evicted / expired /
    /// RBF-replaced) — an explicit terminal stamp so shed transactions stop
    /// reading as infinite confirmation latency. Ignored once included; a
    /// later re-accept (reorg add_back, re-relay) clears the stamp.
    void on_dropped(const Hash256& txid, std::uint32_t node, SimTime at,
                    TxDropReason reason);
    /// A block on the observed (peer-0 canonical) chain connected; `txids` are
    /// its transactions (coinbase included is fine — untracked ids are ignored).
    void on_block_connected(std::uint64_t height, const std::vector<Hash256>& txids,
                            SimTime at);
    /// The same block disconnected in a reorg: inclusion stamps are revoked.
    void on_block_disconnected(std::uint64_t height,
                               const std::vector<Hash256>& txids);
    /// Observed chain tip moved; finalizes every tx whose inclusion height is
    /// >= finality_depth blocks deep.
    void on_tip_height(std::uint64_t height, SimTime at);
    /// Direct finality stamp for consensus families whose finality is not
    /// depth-based: PBFT's execute step (deterministic finality at commit) and
    /// the DAG ledger's confirmation-weight threshold. Requires a prior
    /// inclusion stamp; like k-deep finality, it is never revoked.
    void on_finalized(const Hash256& txid, SimTime at);

    // --- Queries -----------------------------------------------------------------

    const TxRecord* find(const Hash256& txid) const;
    std::size_t tracked() const { return records_.size(); }
    std::uint64_t finalized() const { return finalized_; }
    /// Transactions whose latest stamp is a terminal drop (never included).
    std::uint64_t dropped_count() const;
    std::uint64_t finality_depth() const { return finality_depth_; }

    /// Latencies (virtual seconds) of every tx that completed `from -> to`,
    /// in txid-insertion order (deterministic).
    std::vector<double> latencies(TxStage from, TxStage to) const;

    /// Record the `from -> to` latencies into a histogram (e.g. a registry
    /// histogram named confirmation_latency_seconds).
    void record_latencies(TxStage from, TxStage to, Histogram& sink) const;

private:
    void trace_transition(const char* name, const Hash256& txid, std::uint32_t tid,
                          SimTime at);

    std::uint64_t finality_depth_;
    Tracer* tracer_;
    std::unordered_map<Hash256, TxRecord> records_;
    std::vector<Hash256> order_; // insertion order for deterministic iteration
    /// Blocks included but not yet k-deep: height -> txids awaiting finality.
    std::unordered_map<std::uint64_t, std::vector<Hash256>> pending_finality_;
    std::uint64_t finalized_ = 0;
};

} // namespace dlt::obs
