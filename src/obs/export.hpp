// Shared serialization for the observability layer: JSON escaping/number
// formatting and an ordered flat-object writer. This is the one JSON emitter
// in the codebase — the metrics snapshot exporter, the Chrome-trace writer,
// and bench/bench_util.hpp's BENCH_<id>.json reports all format through it, so
// escaping and number formatting cannot drift between producers.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dlt::obs {

/// Escape a string for inclusion inside JSON double quotes.
std::string json_escape(const std::string& s);

/// Shortest round-trippable-enough representation ("%.6g", matching the
/// historical BENCH_<id>.json schema). NaN/inf are not valid JSON: emitted as 0.
std::string json_number(double v);

/// Flat JSON object with insertion-ordered fields, pretty-printed one field
/// per line with two-space indent (the BENCH_<id>.json shape). Values are
/// stored pre-encoded; setting an existing key overwrites in place.
class JsonObjectWriter {
public:
    void field_string(const std::string& name, const std::string& value) {
        // Sequential appends: GCC 12's -Wrestrict mis-fires on chained
        // operator+ over a temporary string.
        std::string quoted;
        quoted.reserve(value.size() + 2);
        quoted += '"';
        quoted += json_escape(value);
        quoted += '"';
        set(name, std::move(quoted));
    }
    void field_number(const std::string& name, double value) {
        set(name, json_number(value));
    }
    void field_uint(const std::string& name, std::uint64_t value) {
        set(name, std::to_string(value));
    }
    /// `value` must already be valid JSON (nested object, array, bool, ...).
    void field_raw(const std::string& name, std::string value) {
        set(name, std::move(value));
    }

    bool empty() const { return fields_.empty(); }

    /// Render the object ("{\n  \"k\": v,\n ...\n}\n").
    std::string str() const;

    /// Write str() to `path`; false when the file cannot be opened.
    bool write_file(const std::string& path) const;

private:
    void set(const std::string& name, std::string value);

    std::vector<std::pair<std::string, std::string>> fields_;
};

} // namespace dlt::obs
