#include "obs/export.hpp"

#include <cmath>
#include <cstdio>

namespace dlt::obs {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

std::string json_number(double v) {
    if (!std::isfinite(v)) return "0";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

void JsonObjectWriter::set(const std::string& name, std::string value) {
    for (auto& [existing, v] : fields_) {
        if (existing == name) {
            v = std::move(value);
            return;
        }
    }
    fields_.emplace_back(name, std::move(value));
}

std::string JsonObjectWriter::str() const {
    std::string out = "{";
    bool first = true;
    for (const auto& [name, value] : fields_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "  \"" + json_escape(name) + "\": " + value;
    }
    out += "\n}\n";
    return out;
}

bool JsonObjectWriter::write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string body = str();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return true;
}

} // namespace dlt::obs
