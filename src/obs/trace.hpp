// Structured event tracer, sim-time aware. Subsystems emit named events with
// *virtual* timestamps (SimTime seconds from the discrete-event scheduler);
// the buffer serializes to Chrome trace_event JSON, so a whole experiment run
// — mining, gossip arrival, reorgs, tx lifecycle transitions — can be opened
// in chrome://tracing or https://ui.perfetto.dev with one node per track.
//
// Tracing is an observer: emitting events never feeds back into the
// simulation, and the global tracer is OFF by default so hot paths pay only a
// relaxed atomic load when disabled. The buffer is bounded; events past the
// cap are counted in dropped() instead of growing without limit.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace dlt::obs {

/// One Chrome trace_event. `ts`/`dur` are microseconds of *virtual* time; the
/// track is (pid, tid) — we use pid 0 for the simulation and tid = node id.
/// `args` values are pre-encoded JSON (use TraceArg helpers below).
struct TraceEvent {
    std::string name;
    std::string category;
    char phase = 'i'; // 'i' instant, 'X' complete (with dur), 'C' counter
    double ts_us = 0;
    double dur_us = 0;
    std::uint32_t tid = 0;
    std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
public:
    static constexpr std::size_t kDefaultCapacity = 1 << 20;

    explicit Tracer(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}
    ~Tracer() { close_stream(); }
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// The process-wide tracer experiments toggle; disabled by default.
    static Tracer& global();

    void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /// Instant event at sim-time `at` on node `tid`.
    void instant(std::string name, std::string category, SimTime at,
                 std::uint32_t tid = 0,
                 std::vector<std::pair<std::string, std::string>> args = {});

    /// Complete event (a span) covering [begin, begin+duration] of sim-time.
    void complete(std::string name, std::string category, SimTime begin,
                  SimDuration duration, std::uint32_t tid = 0,
                  std::vector<std::pair<std::string, std::string>> args = {});

    /// Counter track (renders as a stacked chart in the viewer).
    void counter(std::string name, SimTime at, double value);

    std::size_t size() const;
    std::uint64_t dropped() const {
        return dropped_.load(std::memory_order_relaxed);
    }
    /// Total events accepted (buffered or already streamed to disk). With
    /// streaming on, emitted() keeps counting while size() stays bounded by
    /// the chunk size.
    std::uint64_t emitted() const {
        return emitted_.load(std::memory_order_relaxed);
    }
    void clear();

    // --- Streaming mode ---------------------------------------------------------
    //
    // Long experiments (E25's million-user runs, E26's DAG sweeps) emit far
    // more events than the bounded buffer holds; instead of dropping the
    // tail, streaming writes the same Chrome JSON incrementally: events
    // accumulate up to `chunk_events`, each full chunk is appended to the
    // file, and close_stream() finishes the JSON document. While a stream is
    // open the capacity cap (and dropped() growth) is suspended — nothing is
    // lost, it is on disk.

    /// Start streaming to `path` (truncates). False if the file cannot open
    /// or a stream is already open.
    bool open_stream(const std::string& path, std::size_t chunk_events = 8192);
    /// Flush pending events and complete the JSON document. Safe to call with
    /// no open stream (no-op). Returns false on write failure.
    bool close_stream();
    bool streaming() const;

    /// Copy of the buffered events (tests, post-processing).
    std::vector<TraceEvent> events() const;

    /// Serialize to Chrome trace_event JSON ({"traceEvents": [...]}).
    std::string chrome_trace_json() const;
    /// Write chrome_trace_json() to `path`; false when the file cannot open.
    bool write_chrome_trace(const std::string& path) const;

private:
    void push(TraceEvent event);
    /// Serialize the buffered events to the stream and clear them (m_ held).
    bool flush_chunk_locked();

    std::atomic<bool> enabled_{false};
    std::size_t capacity_;
    mutable std::mutex m_;
    std::vector<TraceEvent> events_;
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> emitted_{0};
    std::FILE* stream_ = nullptr;
    std::size_t chunk_events_ = 0;
    bool stream_first_ = true; // no event written to the stream yet
};

/// Pre-encode a trace arg value as JSON.
std::string trace_arg(const std::string& s);
std::string trace_arg(double v);
std::string trace_arg(std::uint64_t v);

} // namespace dlt::obs
