#include "storage/recordio.hpp"

#include "common/error.hpp"
#include "storage/crc32.hpp"

namespace dlt::storage {

namespace {

std::uint32_t read_u32le(ByteView buf, std::uint64_t offset) {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(buf[offset + i]) << (8 * i);
    return v;
}

void put_u32le(Bytes& out, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

} // namespace

Bytes frame_record(std::uint32_t magic, ByteView payload) {
    Bytes out;
    out.reserve(kRecordHeaderSize + payload.size());
    put_u32le(out, magic);
    put_u32le(out, static_cast<std::uint32_t>(payload.size()));
    put_u32le(out, crc32c(payload));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

ScanResult scan_records(ByteView file, std::uint32_t magic,
                        const std::function<void(std::uint64_t, ByteView)>& on_record) {
    ScanResult result;
    std::uint64_t pos = 0;
    while (file.size() - pos >= kRecordHeaderSize) {
        const std::uint32_t rec_magic = read_u32le(file, pos);
        const std::uint32_t length = read_u32le(file, pos + 4);
        const std::uint32_t crc = read_u32le(file, pos + 8);
        if (rec_magic != magic) break;
        if (length > file.size() - pos - kRecordHeaderSize) break; // torn payload
        const ByteView payload = file.subspan(pos + kRecordHeaderSize, length);
        if (crc32c(payload) != crc) break;
        on_record(pos, payload);
        ++result.records;
        pos += kRecordHeaderSize + length;
    }
    result.valid_end = pos;
    result.truncated = file.size() - pos;
    return result;
}

Bytes read_record(ByteView file, std::uint64_t offset, std::uint32_t magic) {
    if (offset + kRecordHeaderSize > file.size())
        throw StorageError("record header past end of file");
    const std::uint32_t rec_magic = read_u32le(file, offset);
    const std::uint32_t length = read_u32le(file, offset + 4);
    const std::uint32_t crc = read_u32le(file, offset + 8);
    if (rec_magic != magic) throw StorageError("record magic mismatch");
    if (length > file.size() - offset - kRecordHeaderSize)
        throw StorageError("record length overruns file");
    const ByteView payload = file.subspan(offset + kRecordHeaderSize, length);
    if (crc32c(payload) != crc) throw StorageError("record checksum mismatch");
    return Bytes(payload.begin(), payload.end());
}

} // namespace dlt::storage
