// Low-level file primitives for the persistency layer: an append-only writer
// with explicit fsync-point control, a positional reader, and the
// CrashInjector fault hook the crash-recovery tests use to kill a node at an
// arbitrary byte offset (including mid-record, producing torn writes exactly
// like a power cut would).
#pragma once

#include <cstdint>
#include <filesystem>
#include <limits>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace dlt::storage {

enum class FsyncMode : std::uint8_t {
    kAlways = 0, // fsync at every commit point (durable, slower)
    kNever = 1,  // rely on OS writeback (fast, loses the tail on power cut)
};

/// Thrown when a CrashInjector trips: the process is considered dead from the
/// storage layer's point of view. Distinct from StorageError so tests can tell
/// a simulated crash apart from a real I/O failure.
class CrashError : public StorageError {
public:
    using StorageError::StorageError;
};

/// Fault-injection hook shared by every write path of one node. Once armed
/// with a byte budget, the injector lets exactly `budget` more bytes reach the
/// file system; the write that would exceed it is truncated to the budget (a
/// torn write) and CrashError is thrown. Every subsequent write also throws,
/// so a "crashed" node cannot accidentally keep making progress.
class CrashInjector {
public:
    /// Crash after `budget_bytes` more bytes have been written (0 = the very
    /// next write dies without touching the file).
    void arm(std::uint64_t budget_bytes) {
        budget_ = budget_bytes;
        armed_ = true;
        crashed_ = false;
    }

    void disarm() { armed_ = false; }

    bool crashed() const { return crashed_; }
    std::uint64_t total_written() const { return written_; }

    /// Cumulative stream offsets at which a write completed intact — one per
    /// record append (WAL, block, undo), i.e. every record boundary in the
    /// combined write stream. The crash matrix aims byte budgets at exactly
    /// these offsets instead of sampling blindly.
    const std::vector<std::uint64_t>& write_boundaries() const { return boundaries_; }

    /// Called by AppendFile before writing `want` bytes: returns how many may
    /// actually be written. Sets the crashed flag when the budget is exceeded;
    /// the caller writes the admitted prefix and then raises CrashError.
    std::uint64_t admit(std::uint64_t want) {
        if (crashed_) return 0;
        if (!armed_) {
            written_ += want;
            boundaries_.push_back(written_);
            return want;
        }
        if (want <= budget_) {
            budget_ -= want;
            written_ += want;
            boundaries_.push_back(written_);
            return want;
        }
        const std::uint64_t allowed = budget_;
        budget_ = 0;
        written_ += allowed;
        crashed_ = true;
        return allowed;
    }

private:
    bool armed_ = false;
    bool crashed_ = false;
    std::uint64_t budget_ = 0;
    std::uint64_t written_ = 0;
    std::vector<std::uint64_t> boundaries_;
};

/// Append-only file handle (creates the file when absent). All writes funnel
/// through the optional CrashInjector; sync() is a real fsync so the WAL can
/// define durable commit points.
class AppendFile {
public:
    AppendFile(const std::filesystem::path& path, CrashInjector* injector = nullptr);
    ~AppendFile();

    AppendFile(const AppendFile&) = delete;
    AppendFile& operator=(const AppendFile&) = delete;

    /// Append `data` at the end of the file. Throws CrashError (after writing
    /// the admitted prefix) when the injector trips, StorageError on real I/O
    /// failure.
    void append(ByteView data);

    /// Flush OS buffers to stable storage (fsync). No-op on an empty budget of
    /// pending data is fine — call it at commit points.
    void sync();

    /// Current file size in bytes (logical end of the log).
    std::uint64_t size() const { return size_; }

    /// Cut the file back to `new_size` bytes (torn-tail repair, WAL reset).
    void truncate(std::uint64_t new_size);

    const std::filesystem::path& path() const { return path_; }

private:
    std::filesystem::path path_;
    CrashInjector* injector_ = nullptr;
    int fd_ = -1;
    std::uint64_t size_ = 0;
};

/// Positional reader (pread-style): stateless reads at absolute offsets, used
/// by the BlockStore to serve random block lookups without a seek cursor.
class RandomAccessFile {
public:
    explicit RandomAccessFile(const std::filesystem::path& path);
    ~RandomAccessFile();

    RandomAccessFile(const RandomAccessFile&) = delete;
    RandomAccessFile& operator=(const RandomAccessFile&) = delete;

    /// Read up to `length` bytes at `offset`; returns the bytes actually read
    /// (shorter at end-of-file).
    Bytes read_at(std::uint64_t offset, std::size_t length) const;

    std::uint64_t size() const;

private:
    std::filesystem::path path_;
    int fd_ = -1;
};

/// Whole-file read; returns an empty buffer when the file does not exist.
Bytes read_file(const std::filesystem::path& path);

/// Atomic whole-file write: write to `<path>.tmp`, fsync, rename over `path`.
/// Readers never observe a half-written file.
void write_file_atomic(const std::filesystem::path& path, ByteView data);

} // namespace dlt::storage
