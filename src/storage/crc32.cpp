#include "storage/crc32.hpp"

#include <array>

namespace dlt::storage {

namespace {

// Reflected lookup table for polynomial 0x1EDC6F41 (bit-reversed: 0x82F63B78),
// built once at static-initialization time.
std::array<std::uint32_t, 256> build_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
        table[i] = crc;
    }
    return table;
}

const std::array<std::uint32_t, 256> kTable = build_table();

} // namespace

std::uint32_t crc32c(ByteView data, std::uint32_t seed) {
    std::uint32_t crc = ~seed;
    for (const std::uint8_t byte : data)
        crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFFu];
    return ~crc;
}

} // namespace dlt::storage
