// LSM-flavored persistent UTXO state engine (ROADMAP item 2, E28). State that
// outgrows RAM lives in immutable sorted run files on disk; recent mutations
// live in a sorted memtable journaled through the shared storage::Wal, so a
// batch commit is durable the moment its WAL record is fsynced and crash
// recovery composes with PersistentNode's own journal (see DESIGN.md "State
// engine" and src/storage/README.md for the on-disk format).
//
// Write path:   put/erase mutate the memtable and queue ops in a pending
//               batch; commit_batch(tag, meta) journals the batch to the
//               state WAL (the durability point). When the memtable exceeds
//               its limit the whole table is flushed to a new sorted run
//               (data blocks + sparse index + bloom filter, all CRC-framed)
//               and the WAL resets — the run now carries tag + meta.
// Read path:    memtable first, then runs newest-generation-first; each run
//               is consulted through its bloom filter (negative lookups skip
//               the disk entirely), a binary-searched sparse index, and an
//               LRU cache of decoded data blocks.
// Compaction:   when the run count reaches the trigger, a full k-way merge
//               rewrites every run into one (newest generation wins,
//               tombstones dropped). Flush and compaction run synchronously
//               at commit boundaries — never on background threads — so
//               results are deterministic at any DLT_THREADS.
// Crash safety: runs are written to a .tmp file, fsynced, then renamed; a
//               crash at any byte offset leaves either the old WAL + old runs
//               (replay rebuilds the memtable) or the new run + a stale WAL
//               whose replay is idempotent. A new compacted run records the
//               generations it supersedes, so a crash between rename and
//               old-run deletion is healed on open.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "ledger/state_backend.hpp"
#include "storage/file.hpp"
#include "storage/lru.hpp"
#include "storage/wal.hpp"

namespace dlt::storage {

struct LsmOptions {
    /// Memtable entries that trigger a flush at the next commit boundary.
    std::size_t memtable_limit = 4096;
    /// Run-file count that triggers a full merge at the next commit boundary.
    std::size_t compact_trigger = 6;
    /// Decoded data blocks held in the shared block cache.
    std::size_t block_cache_capacity = 256;
    CrashInjector* injector = nullptr;
    FsyncMode fsync = FsyncMode::kAlways;
};

class LsmBackend final : public ledger::StateBackend {
public:
    using OutPoint = ledger::OutPoint;
    using TxOutput = ledger::TxOutput;

    struct Stats {
        std::uint64_t runs = 0;             // live sorted-run files
        std::uint64_t memtable_entries = 0; // keys resident in the memtable
        std::uint64_t flushes = 0;          // memtable flushes this session
        std::uint64_t compactions = 0;      // full merges this session
        std::uint64_t run_probes = 0;       // run lookups attempted
        std::uint64_t bloom_skips = 0;      // run lookups the bloom rejected
        std::uint64_t wal_replayed = 0;     // batch records replayed on open
    };

    /// Open (or create) the engine's files under `dir`, replaying the state
    /// WAL into the memtable and healing any interrupted flush/compaction.
    explicit LsmBackend(const std::filesystem::path& dir, LsmOptions options = {});
    ~LsmBackend() override;

    const char* name() const override { return "lsm"; }

    std::optional<TxOutput> get(const OutPoint& op) const override;
    bool insert_if_absent(const OutPoint& op, const TxOutput& out) override;
    std::optional<TxOutput> put(const OutPoint& op, const TxOutput& out) override;
    std::optional<TxOutput> erase(const OutPoint& op) override;
    std::uint64_t size() const override { return live_size_; }
    void for_each(const Visitor& visit) const override;
    void for_each_sorted(const Visitor& visit) const override;

    void commit_batch(std::uint64_t tag, ByteView meta) override;
    std::uint64_t committed_tag() const override { return committed_tag_; }
    Bytes committed_meta() const override { return committed_meta_; }

    /// Copies materialize into the in-memory engine: a clone is a plain value
    /// snapshot sharing no files with this backend.
    std::unique_ptr<ledger::StateBackend> clone() const override;

    Stats stats() const;

private:
    struct Op {
        bool is_put = false;
        OutPoint key;
        TxOutput value; // meaningful only for puts
    };

    struct Cell {
        OutPoint key;
        bool live = false; // false = tombstone
        TxOutput value;
    };

    struct BlockRef {
        OutPoint first_key;
        std::uint64_t offset = 0; // frame offset in the run file
        std::uint32_t cells = 0;
    };

    struct Run {
        std::uint64_t generation = 0;
        std::uint64_t entry_count = 0;
        std::uint64_t max_tag = 0;
        std::uint64_t covers_below_gen = 0;
        Bytes meta;
        std::vector<BlockRef> index;
        std::uint8_t bloom_probes = 0;
        std::uint64_t bloom_bits = 0;
        Bytes bloom;
        std::filesystem::path path;
        std::unique_ptr<RandomAccessFile> file;

        bool bloom_may_contain(const OutPoint& key) const;
    };

    std::filesystem::path run_path(std::uint64_t generation) const;
    void load_run(const std::filesystem::path& path);
    void write_run(const std::vector<Cell>& cells, std::uint64_t generation,
                   std::uint64_t max_tag, std::uint64_t covers_below_gen,
                   ByteView meta);
    std::shared_ptr<const std::vector<Cell>> read_block(const Run& run,
                                                        const BlockRef& block) const;
    /// Lookup in one run: outer nullopt = absent, inner nullopt = tombstone.
    std::optional<std::optional<TxOutput>> find_in_run(const Run& run,
                                                       const OutPoint& key) const;
    void flush_memtable();
    void compact();
    void merge_all(const std::function<void(const Cell&)>& emit) const;
    void update_gauges() const;

    std::filesystem::path dir_;
    LsmOptions options_;

    /// Sorted write buffer; nullopt marks a tombstone shadowing older runs.
    std::map<OutPoint, std::optional<TxOutput>> memtable_;
    std::vector<Op> pending_; // mutations since the last commit_batch
    std::vector<Run> runs_;   // oldest generation first
    std::unique_ptr<Wal> wal_;

    std::uint64_t next_generation_ = 1;
    std::uint64_t live_size_ = 0;
    std::uint64_t committed_tag_ = 0;
    Bytes committed_meta_;

    mutable LruCache<std::uint64_t, std::shared_ptr<const std::vector<Cell>>>
        block_cache_;
    mutable std::uint64_t run_probes_ = 0;
    mutable std::uint64_t bloom_skips_ = 0;
    std::uint64_t flushes_ = 0;
    std::uint64_t compactions_ = 0;
    std::uint64_t wal_replayed_ = 0;
};

} // namespace dlt::storage
