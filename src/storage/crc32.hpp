// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum every on-disk
// record in the storage layer carries. Chosen over CRC-32 (IEEE) for its
// better burst-error detection; implemented as a standard reflected
// table-driven loop so no platform intrinsics are required.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace dlt::storage {

/// CRC-32C over `data`, starting from `seed` (pass a previous result to
/// checksum a logical record spread over several buffers).
std::uint32_t crc32c(ByteView data, std::uint32_t seed = 0);

} // namespace dlt::storage
