#include "storage/file.hpp"

#include <cerrno>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace dlt::storage {

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::filesystem::path& path) {
    throw StorageError(what + " " + path.string() + ": " + std::strerror(errno));
}

} // namespace

// --- AppendFile --------------------------------------------------------------------

AppendFile::AppendFile(const std::filesystem::path& path, CrashInjector* injector)
    : path_(path), injector_(injector) {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) throw_errno("open for append", path);
    struct stat st{};
    if (::fstat(fd_, &st) != 0) throw_errno("fstat", path);
    size_ = static_cast<std::uint64_t>(st.st_size);
}

AppendFile::~AppendFile() {
    if (fd_ >= 0) ::close(fd_);
}

void AppendFile::append(ByteView data) {
    std::uint64_t allowed = data.size();
    bool crash = false;
    if (injector_ != nullptr) {
        allowed = injector_->admit(data.size());
        crash = allowed < data.size();
    }
    std::size_t written = 0;
    while (written < allowed) {
        const ssize_t n = ::write(fd_, data.data() + written,
                                  static_cast<std::size_t>(allowed) - written);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("write", path_);
        }
        written += static_cast<std::size_t>(n);
    }
    size_ += written;
    if (crash)
        throw CrashError("simulated crash: write to " + path_.string() +
                         " torn after " + std::to_string(written) + "/" +
                         std::to_string(data.size()) + " bytes");
}

void AppendFile::sync() {
    if (::fsync(fd_) != 0) throw_errno("fsync", path_);
}

void AppendFile::truncate(std::uint64_t new_size) {
    if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0)
        throw_errno("ftruncate", path_);
    size_ = new_size;
}

// --- RandomAccessFile --------------------------------------------------------------

RandomAccessFile::RandomAccessFile(const std::filesystem::path& path) : path_(path) {
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) throw_errno("open for read", path);
}

RandomAccessFile::~RandomAccessFile() {
    if (fd_ >= 0) ::close(fd_);
}

Bytes RandomAccessFile::read_at(std::uint64_t offset, std::size_t length) const {
    Bytes out(length);
    std::size_t got = 0;
    while (got < length) {
        const ssize_t n = ::pread(fd_, out.data() + got, length - got,
                                  static_cast<off_t>(offset + got));
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("pread", path_);
        }
        if (n == 0) break; // end of file
        got += static_cast<std::size_t>(n);
    }
    out.resize(got);
    return out;
}

std::uint64_t RandomAccessFile::size() const {
    struct stat st{};
    if (::fstat(fd_, &st) != 0) throw_errno("fstat", path_);
    return static_cast<std::uint64_t>(st.st_size);
}

// --- Whole-file helpers ------------------------------------------------------------

Bytes read_file(const std::filesystem::path& path) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return {};
    const RandomAccessFile file(path);
    const std::uint64_t size = file.size();
    return file.read_at(0, static_cast<std::size_t>(size));
}

void write_file_atomic(const std::filesystem::path& path, ByteView data) {
    const std::filesystem::path tmp = path.string() + ".tmp";
    {
        const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd < 0) throw_errno("open for atomic write", tmp);
        std::size_t written = 0;
        while (written < data.size()) {
            const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
            if (n < 0) {
                if (errno == EINTR) continue;
                ::close(fd);
                throw_errno("write", tmp);
            }
            written += static_cast<std::size_t>(n);
        }
        if (::fsync(fd) != 0) {
            ::close(fd);
            throw_errno("fsync", tmp);
        }
        ::close(fd);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        throw StorageError("rename " + tmp.string() + " -> " + path.string() + ": " +
                           ec.message());
}

} // namespace dlt::storage
