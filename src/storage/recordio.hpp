// Shared on-disk record framing for the append-only files of the storage
// layer (WAL, block file, undo file). Every record is
//
//   [u32 magic][u32 length][u32 crc32c(payload)][payload bytes]
//
// little-endian, with a per-file magic so a stray file cannot be replayed as
// the wrong log. scan() walks a file image record by record and stops at the
// first torn or corrupt frame, reporting the byte offset where the valid
// prefix ends — the open path truncates the file there (crash repair).
#pragma once

#include <cstdint>
#include <functional>

#include "common/bytes.hpp"

namespace dlt::storage {

inline constexpr std::size_t kRecordHeaderSize = 12;

/// Frame one record (header + payload) into `out`.
Bytes frame_record(std::uint32_t magic, ByteView payload);

struct ScanResult {
    std::uint64_t records = 0;       // valid records seen
    std::uint64_t valid_end = 0;     // file offset where the valid prefix ends
    std::uint64_t truncated = 0;     // bytes past valid_end (torn/corrupt tail)
};

/// Walk `file` (a full in-memory image), invoking `on_record(offset, payload)`
/// for every intact record. Stops at the first frame whose header is
/// incomplete, whose length overruns the file, whose magic differs, or whose
/// CRC fails — everything from there on counts as the torn tail.
ScanResult scan_records(ByteView file, std::uint32_t magic,
                        const std::function<void(std::uint64_t, ByteView)>& on_record);

/// Validate and extract one record payload at `offset` of `file` (used by the
/// BlockStore to re-check a record read back from disk). Throws StorageError
/// on any mismatch.
Bytes read_record(ByteView file, std::uint64_t offset, std::uint32_t magic);

} // namespace dlt::storage
