#include "storage/snapshot.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"
#include "storage/file.hpp"
#include "storage/recordio.hpp"

namespace dlt::storage {

namespace {
constexpr std::uint32_t kSnapMagic = 0x534E4150; // "SNAP"
constexpr std::uint32_t kSnapVersion = 1;
// Same tag scaling::make_checkpoint commits to, so a disk snapshot's digest is
// interchangeable with an in-memory checkpoint's.
constexpr std::string_view kDigestTag = "dlt/utxo-snapshot";
} // namespace

scaling::Checkpoint Snapshot::to_checkpoint() const {
    scaling::Checkpoint cp;
    cp.height = height;
    cp.block_hash = block_hash;
    cp.utxo_snapshot = utxo_snapshot;
    cp.snapshot_digest = digest;
    return cp;
}

SnapshotManager::SnapshotManager(const std::filesystem::path& dir) : dir_(dir) {
    std::filesystem::create_directories(dir_);
}

Snapshot SnapshotManager::make(const ledger::UtxoSet& utxo, std::uint64_t height,
                               const Hash256& block_hash, std::uint64_t wal_seq) {
    Snapshot snap;
    snap.height = height;
    snap.block_hash = block_hash;
    snap.wal_seq = wal_seq;
    snap.utxo_snapshot = encode_to_bytes(utxo);
    snap.digest = crypto::tagged_hash(kDigestTag, snap.utxo_snapshot);
    return snap;
}

std::filesystem::path SnapshotManager::save(const Snapshot& snapshot) const {
    Writer w;
    w.u32(kSnapVersion);
    w.u64(snapshot.height);
    w.fixed(snapshot.block_hash);
    w.fixed(snapshot.digest);
    w.u64(snapshot.wal_seq);
    w.blob(snapshot.utxo_snapshot);
    const Bytes frame = frame_record(kSnapMagic, w.data());

    const std::filesystem::path path =
        dir_ / ("snapshot-" + std::to_string(snapshot.height) + ".snap");
    {
        auto& registry = obs::MetricsRegistry::global();
        obs::ScopedTimer timer(registry.histogram(
            "snapshot_write_seconds", "Wall-clock latency of snapshot writes"));
        write_file_atomic(path, frame);
        registry.counter("snapshot_writes_total", "Snapshots written").inc();
        registry
            .counter("snapshot_bytes_written_total", "Snapshot bytes written")
            .inc(frame.size());
    }
    return path;
}

Snapshot SnapshotManager::load(const std::filesystem::path& path) const {
    const Bytes image = read_file(path);
    if (image.empty()) throw StorageError("snapshot missing or empty: " + path.string());
    const Bytes payload = read_record(ByteView(image), 0, kSnapMagic);
    if (image.size() != kRecordHeaderSize + payload.size())
        throw StorageError("snapshot has trailing garbage: " + path.string());

    Reader r(payload);
    const std::uint32_t version = r.u32();
    if (version != kSnapVersion)
        throw StorageError("unsupported snapshot version " + std::to_string(version));
    Snapshot snap;
    snap.height = r.u64();
    snap.block_hash = r.fixed<32>();
    snap.digest = r.fixed<32>();
    snap.wal_seq = r.u64();
    snap.utxo_snapshot = r.blob();
    r.expect_done();

    if (crypto::tagged_hash(kDigestTag, snap.utxo_snapshot) != snap.digest)
        throw StorageError("snapshot digest mismatch: " + path.string());
    return snap;
}

std::vector<std::filesystem::path> SnapshotManager::list() const {
    std::vector<std::pair<std::uint64_t, std::filesystem::path>> found;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.starts_with("snapshot-") && name.ends_with(".snap")) {
            const std::string digits = name.substr(9, name.size() - 9 - 5);
            try {
                found.emplace_back(std::stoull(digits), entry.path());
            } catch (const std::exception&) {
                // not one of ours; ignore
            }
        }
    }
    std::sort(found.begin(), found.end());
    std::vector<std::filesystem::path> paths;
    paths.reserve(found.size());
    for (auto& [height, path] : found) paths.push_back(std::move(path));
    return paths;
}

std::optional<Snapshot> SnapshotManager::load_latest() const {
    const auto paths = list();
    for (auto it = paths.rbegin(); it != paths.rend(); ++it) {
        try {
            return load(*it);
        } catch (const Error& e) {
            DLT_LOG(kWarn, "storage")
                << "skipping corrupt snapshot " << it->string() << ": " << e.what();
        }
    }
    return std::nullopt;
}

void SnapshotManager::prune(std::size_t keep) const {
    const auto paths = list();
    if (paths.size() <= keep) return;
    for (std::size_t i = 0; i + keep < paths.size(); ++i) {
        std::error_code ec;
        std::filesystem::remove(paths[i], ec);
    }
}

} // namespace dlt::storage
