// Intrusive-free LRU cache: a doubly-linked recency list plus a hash index
// into it. Used by the BlockStore to keep recently decoded blocks in memory so
// hot reads skip the disk + decode path entirely.
#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace dlt::storage {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
public:
    explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

    /// Look up `key`, promoting it to most-recently-used on a hit.
    std::optional<Value> get(const Key& key) {
        const auto it = index_.find(key);
        if (it == index_.end()) {
            ++misses_;
            return std::nullopt;
        }
        ++hits_;
        order_.splice(order_.begin(), order_, it->second);
        return it->second->second;
    }

    /// Insert or refresh `key`; evicts the least-recently-used entry when full.
    /// A capacity of zero disables caching entirely.
    void put(const Key& key, Value value) {
        if (capacity_ == 0) return;
        const auto it = index_.find(key);
        if (it != index_.end()) {
            it->second->second = std::move(value);
            order_.splice(order_.begin(), order_, it->second);
            return;
        }
        if (order_.size() >= capacity_) {
            index_.erase(order_.back().first);
            order_.pop_back();
            ++evictions_;
        }
        order_.emplace_front(key, std::move(value));
        index_.emplace(key, order_.begin());
    }

    bool contains(const Key& key) const { return index_.contains(key); }

    void clear() {
        order_.clear();
        index_.clear();
    }

    std::size_t size() const { return order_.size(); }
    std::size_t capacity() const { return capacity_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

private:
    std::size_t capacity_;
    std::list<std::pair<Key, Value>> order_; // front = most recent
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator, Hash>
        index_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace dlt::storage
