// State snapshots: atomic on-disk UTXO/chain-state checkpoints. Each snapshot
// is one CRC-framed file written with write-temp + rename, so a crash during
// snapshotting leaves at most a stale `.tmp` — never a half-written snapshot.
// Snapshots carry the WAL sequence number they cover, letting recovery skip
// journal records the snapshot already includes, and they convert losslessly
// to scaling::Checkpoint so fast bootstrap (E14) can serve them straight from
// disk.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "scaling/bootstrap.hpp"

namespace dlt::storage {

struct Snapshot {
    std::uint64_t height = 0;
    Hash256 block_hash;          // tip the snapshot state corresponds to
    Hash256 digest;              // tagged hash over utxo_snapshot
    std::uint64_t wal_seq = 0;   // last WAL record folded into this state
    Bytes utxo_snapshot;         // canonical UtxoSet serialization

    /// Bootstrap-compatible view (same digest tag as scaling::make_checkpoint).
    scaling::Checkpoint to_checkpoint() const;
};

class SnapshotManager {
public:
    explicit SnapshotManager(const std::filesystem::path& dir);

    /// Build a snapshot of `utxo` at (`height`, `block_hash`) covering WAL
    /// records up to `wal_seq`.
    static Snapshot make(const ledger::UtxoSet& utxo, std::uint64_t height,
                         const Hash256& block_hash, std::uint64_t wal_seq);

    /// Persist atomically as `snapshot-<height>.snap`; returns the final path.
    std::filesystem::path save(const Snapshot& snapshot) const;

    /// Strict load: throws StorageError/DecodeError on framing, field, or
    /// digest corruption. Never reads past the buffer.
    Snapshot load(const std::filesystem::path& path) const;

    /// Newest snapshot that loads and verifies; corrupt files are skipped
    /// (with a warning) in favour of older ones — a corrupt latest snapshot
    /// degrades bootstrap, it must not brick the node.
    std::optional<Snapshot> load_latest() const;

    /// Snapshot files present, sorted by height ascending.
    std::vector<std::filesystem::path> list() const;

    /// Delete all but the `keep` newest snapshots.
    void prune(std::size_t keep) const;

private:
    std::filesystem::path dir_;
};

} // namespace dlt::storage
