#include "storage/lsm_backend.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/serialize.hpp"
#include "obs/metrics.hpp"
#include "storage/recordio.hpp"

namespace dlt::storage {

namespace {

constexpr std::uint32_t kRunMagic = 0x53524E31; // "SRN1"
constexpr std::uint32_t kRunVersion = 1;

// Record types inside a run file, in file order.
constexpr std::uint8_t kRunHeader = 1;
constexpr std::uint8_t kRunData = 2;
constexpr std::uint8_t kRunIndex = 3;
constexpr std::uint8_t kRunBloom = 4;

// State-WAL record type: one journaled mutation batch.
constexpr std::uint8_t kWalBatch = 1;

// Fixed cell footprint: OutPoint (36) + live flag (1) + TxOutput (28). Fixed
// size keeps binary search inside a decoded block trivial; tombstones carry a
// zeroed value.
constexpr std::size_t kCellBytes = 65;
constexpr std::size_t kCellsPerBlock = 256; // ~16.6 KiB data blocks

// Bloom sizing: ~10 bits/key with 6 probes gives ~1% false positives.
constexpr std::uint64_t kBloomBitsPerKey = 10;
constexpr std::uint8_t kBloomProbes = 6;

std::uint64_t splitmix64(std::uint64_t h) {
    h += 0x9E3779B97F4A7C15ull;
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBull;
    h ^= h >> 31;
    return h;
}

// Double hashing: probe i tests bit (h1 + i*h2) mod bits.
std::pair<std::uint64_t, std::uint64_t> bloom_hashes(const ledger::OutPoint& key) {
    const std::uint64_t h1 = ledger::OutPointHash{}(key);
    const std::uint64_t h2 = splitmix64(h1) | 1; // odd, never degenerate
    return {h1, h2};
}

} // namespace

bool LsmBackend::Run::bloom_may_contain(const OutPoint& key) const {
    if (bloom_bits == 0) return entry_count > 0;
    const auto [h1, h2] = bloom_hashes(key);
    for (std::uint8_t i = 0; i < bloom_probes; ++i) {
        const std::uint64_t bit = (h1 + i * h2) % bloom_bits;
        if (!(bloom[bit >> 3] & (1u << (bit & 7)))) return false;
    }
    return true;
}

LsmBackend::LsmBackend(const std::filesystem::path& dir, LsmOptions options)
    : dir_(dir), options_(options), block_cache_(options.block_cache_capacity) {
    std::filesystem::create_directories(dir_);

    // Heal interrupted flushes/compactions: a .tmp never renamed is garbage.
    std::vector<std::filesystem::path> run_files;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.ends_with(".tmp")) {
            std::filesystem::remove(entry.path(), ec);
        } else if (name.starts_with("run-") && name.ends_with(".run")) {
            run_files.push_back(entry.path());
        }
    }
    std::sort(run_files.begin(), run_files.end());
    for (const auto& path : run_files) load_run(path);

    // A compacted run supersedes every generation below covers_below_gen; a
    // crash between its rename and the old-run deletion leaves both on disk.
    std::uint64_t covers = 0;
    for (const Run& run : runs_) covers = std::max(covers, run.covers_below_gen);
    if (covers > 0) {
        std::erase_if(runs_, [&](Run& run) {
            if (run.generation >= covers) return false;
            run.file.reset();
            std::error_code rm;
            std::filesystem::remove(run.path, rm);
            return true;
        });
    }
    for (const Run& run : runs_) {
        next_generation_ = std::max(next_generation_, run.generation + 1);
        if (run.max_tag >= committed_tag_) {
            committed_tag_ = run.max_tag;
            committed_meta_ = run.meta;
        }
    }

    // Replay the journaled batches into the memtable. Replay is idempotent:
    // a batch already folded into a run (crash between run rename and WAL
    // reset) re-applies the identical blind writes.
    WalOptions wal_options;
    wal_options.injector = options_.injector;
    wal_options.fsync = options_.fsync;
    wal_ = std::make_unique<Wal>(dir_ / "state.wal", wal_options);
    for (const auto& rec : wal_->records()) {
        if (rec.type != kWalBatch)
            throw StorageError("unknown state-WAL record type " +
                               std::to_string(rec.type));
        Reader r{ByteView(rec.payload)};
        const std::uint64_t tag = r.u64();
        Bytes meta = r.blob();
        const std::uint64_t ops = r.varint_count(1 + 36);
        for (std::uint64_t i = 0; i < ops; ++i) {
            const std::uint8_t kind = r.u8();
            const auto key = OutPoint::decode(r);
            if (kind == 1) {
                memtable_[key] = TxOutput::decode(r);
            } else if (kind == 0) {
                memtable_[key] = std::nullopt;
            } else {
                throw StorageError("corrupt state-WAL batch op");
            }
        }
        r.expect_done();
        if (tag >= committed_tag_) {
            committed_tag_ = tag;
            committed_meta_ = std::move(meta);
        }
        ++wal_replayed_;
    }

    // Live entry count: one merged pass over memtable + runs.
    live_size_ = 0;
    merge_all([this](const Cell&) { ++live_size_; });
    update_gauges();
}

LsmBackend::~LsmBackend() = default;

std::filesystem::path LsmBackend::run_path(std::uint64_t generation) const {
    char name[32];
    std::snprintf(name, sizeof(name), "run-%08llu.run",
                  static_cast<unsigned long long>(generation));
    return dir_ / name;
}

void LsmBackend::load_run(const std::filesystem::path& path) {
    const Bytes image = read_file(path);
    Run run;
    run.path = path;
    bool saw_header = false;
    bool saw_index = false;
    const ScanResult scan = scan_records(
        ByteView(image), kRunMagic, [&](std::uint64_t offset, ByteView payload) {
            (void)offset;
            Reader r(payload);
            switch (r.u8()) {
            case kRunHeader: {
                const std::uint32_t version = r.u32();
                if (version != kRunVersion)
                    throw StorageError("unsupported run version " +
                                       std::to_string(version));
                run.generation = r.u64();
                run.entry_count = r.u64();
                const std::uint32_t cells_per_block = r.u32();
                if (cells_per_block != kCellsPerBlock)
                    throw StorageError("unsupported run block size");
                run.max_tag = r.u64();
                run.covers_below_gen = r.u64();
                run.meta = r.blob();
                r.expect_done();
                saw_header = true;
                break;
            }
            case kRunData:
                break; // decoded lazily through the block cache
            case kRunIndex: {
                const std::uint64_t blocks = r.varint_count(36 + 8 + 4);
                run.index.reserve(blocks);
                for (std::uint64_t i = 0; i < blocks; ++i) {
                    BlockRef ref;
                    ref.first_key = OutPoint::decode(r);
                    ref.offset = r.u64();
                    ref.cells = r.u32();
                    run.index.push_back(ref);
                }
                r.expect_done();
                saw_index = true;
                break;
            }
            case kRunBloom: {
                run.bloom_probes = r.u8();
                run.bloom_bits = r.u64();
                run.bloom = r.blob();
                r.expect_done();
                if (run.bloom.size() * 8 < run.bloom_bits)
                    throw StorageError("run bloom filter shorter than declared");
                break;
            }
            default:
                throw StorageError("unknown run record type in " + path.string());
            }
        });
    // Runs are renamed into place only after a full write + fsync, so a
    // partial file is corruption, not a crash artifact.
    if (scan.valid_end != image.size() || !saw_header || !saw_index)
        throw StorageError("corrupt or truncated run file: " + path.string());
    run.file = std::make_unique<RandomAccessFile>(path);
    runs_.push_back(std::move(run));
    std::sort(runs_.begin(), runs_.end(), [](const Run& a, const Run& b) {
        return a.generation < b.generation;
    });
}

void LsmBackend::write_run(const std::vector<Cell>& cells, std::uint64_t generation,
                           std::uint64_t max_tag, std::uint64_t covers_below_gen,
                           ByteView meta) {
    const std::filesystem::path final_path = run_path(generation);
    std::filesystem::path tmp_path = final_path;
    tmp_path += ".tmp";
    {
        AppendFile out(tmp_path, options_.injector);

        Writer h;
        h.u8(kRunHeader);
        h.u32(kRunVersion);
        h.u64(generation);
        h.u64(cells.size());
        h.u32(kCellsPerBlock);
        h.u64(max_tag);
        h.u64(covers_below_gen);
        h.blob(meta);
        out.append(frame_record(kRunMagic, h.data()));

        std::vector<BlockRef> index;
        index.reserve(cells.size() / kCellsPerBlock + 1);
        for (std::size_t start = 0; start < cells.size(); start += kCellsPerBlock) {
            const std::size_t count =
                std::min(kCellsPerBlock, cells.size() - start);
            Writer d;
            d.u8(kRunData);
            for (std::size_t i = start; i < start + count; ++i) {
                const Cell& cell = cells[i];
                cell.key.encode(d);
                d.u8(cell.live ? 1 : 0);
                (cell.live ? cell.value : TxOutput{}).encode(d);
            }
            index.push_back({cells[start].key, out.size(),
                             static_cast<std::uint32_t>(count)});
            out.append(frame_record(kRunMagic, d.data()));
        }

        Writer ix;
        ix.u8(kRunIndex);
        ix.varint(index.size());
        for (const BlockRef& ref : index) {
            ref.first_key.encode(ix);
            ix.u64(ref.offset);
            ix.u32(ref.cells);
        }
        out.append(frame_record(kRunMagic, ix.data()));

        const std::uint64_t bloom_bits =
            std::max<std::uint64_t>(64, cells.size() * kBloomBitsPerKey);
        Bytes bloom((bloom_bits + 7) / 8, 0);
        for (const Cell& cell : cells) {
            const auto [h1, h2] = bloom_hashes(cell.key);
            for (std::uint8_t i = 0; i < kBloomProbes; ++i) {
                const std::uint64_t bit = (h1 + i * h2) % bloom_bits;
                bloom[bit >> 3] |= static_cast<std::uint8_t>(1u << (bit & 7));
            }
        }
        Writer b;
        b.u8(kRunBloom);
        b.u8(kBloomProbes);
        b.u64(bloom_bits);
        b.blob(bloom);
        out.append(frame_record(kRunMagic, b.data()));

        if (options_.fsync == FsyncMode::kAlways) out.sync();
    }
    std::filesystem::rename(tmp_path, final_path);
    load_run(final_path);
}

std::shared_ptr<const std::vector<LsmBackend::Cell>> LsmBackend::read_block(
    const Run& run, const BlockRef& block) const {
    const std::uint64_t cache_key = run.generation * 0x100000000ull + block.offset;
    if (auto cached = block_cache_.get(cache_key)) return *cached;

    const std::size_t payload_len = 1 + block.cells * kCellBytes;
    const Bytes frame = run.file->read_at(block.offset, kRecordHeaderSize + payload_len);
    if (frame.size() != kRecordHeaderSize + payload_len)
        throw StorageError("run data block truncated on disk");
    const Bytes payload = read_record(ByteView(frame), 0, kRunMagic);
    Reader r{ByteView(payload)};
    if (r.u8() != kRunData) throw StorageError("run data block has wrong type");
    auto cells = std::make_shared<std::vector<Cell>>();
    cells->reserve(block.cells);
    for (std::uint32_t i = 0; i < block.cells; ++i) {
        Cell cell;
        cell.key = OutPoint::decode(r);
        cell.live = r.u8() != 0;
        cell.value = TxOutput::decode(r);
        cells->push_back(cell);
    }
    r.expect_done();
    std::shared_ptr<const std::vector<Cell>> shared = std::move(cells);
    block_cache_.put(cache_key, shared);
    return shared;
}

std::optional<std::optional<LsmBackend::TxOutput>> LsmBackend::find_in_run(
    const Run& run, const OutPoint& key) const {
    ++run_probes_;
    obs::MetricsRegistry::global()
        .counter("state_run_probes_total", "Sorted-run lookups attempted")
        .inc();
    if (!run.bloom_may_contain(key)) {
        ++bloom_skips_;
        obs::MetricsRegistry::global()
            .counter("state_bloom_skips_total",
                     "Run lookups skipped by the bloom filter")
            .inc();
        return std::nullopt;
    }
    if (run.index.empty()) return std::nullopt;
    // Last block whose first key is <= key.
    auto it = std::upper_bound(
        run.index.begin(), run.index.end(), key,
        [](const OutPoint& k, const BlockRef& b) { return k < b.first_key; });
    if (it == run.index.begin()) return std::nullopt;
    --it;
    const auto cells = read_block(run, *it);
    const auto cell = std::lower_bound(
        cells->begin(), cells->end(), key,
        [](const Cell& c, const OutPoint& k) { return c.key < k; });
    if (cell == cells->end() || !(cell->key == key)) return std::nullopt;
    if (!cell->live) return std::make_optional(std::optional<TxOutput>{});
    return std::make_optional(std::optional<TxOutput>{cell->value});
}

std::optional<LsmBackend::TxOutput> LsmBackend::get(const OutPoint& op) const {
    const auto it = memtable_.find(op);
    if (it != memtable_.end()) return it->second;
    for (auto run = runs_.rbegin(); run != runs_.rend(); ++run)
        if (const auto found = find_in_run(*run, op)) return *found;
    return std::nullopt;
}

bool LsmBackend::insert_if_absent(const OutPoint& op, const TxOutput& out) {
    if (get(op)) return false;
    memtable_[op] = out;
    pending_.push_back({true, op, out});
    ++live_size_;
    return true;
}

std::optional<LsmBackend::TxOutput> LsmBackend::put(const OutPoint& op,
                                                    const TxOutput& out) {
    const auto previous = get(op);
    memtable_[op] = out;
    pending_.push_back({true, op, out});
    if (!previous) ++live_size_;
    return previous;
}

std::optional<LsmBackend::TxOutput> LsmBackend::erase(const OutPoint& op) {
    const auto previous = get(op);
    if (!previous) return std::nullopt;
    memtable_[op] = std::nullopt; // tombstone shadows older runs
    pending_.push_back({false, op, {}});
    --live_size_;
    return previous;
}

void LsmBackend::merge_all(const std::function<void(const Cell&)>& emit) const {
    // K-way merge: memtable shadows every run; among runs the highest
    // generation wins. Tombstones suppress older values and are not emitted.
    struct Cursor {
        const Run* run = nullptr;
        std::size_t block = 0;
        std::size_t cell = 0;
        std::shared_ptr<const std::vector<Cell>> cells;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(runs_.size());
    for (const Run& run : runs_)
        if (!run.index.empty()) {
            Cursor c;
            c.run = &run;
            c.cells = read_block(run, run.index[0]);
            cursors.push_back(std::move(c));
        }
    auto mem = memtable_.begin();

    const auto advance = [&](Cursor& c) {
        if (++c.cell < c.cells->size()) return;
        c.cell = 0;
        if (++c.block < c.run->index.size()) {
            c.cells = read_block(*c.run, c.run->index[c.block]);
        } else {
            c.cells.reset(); // exhausted
        }
    };

    for (;;) {
        const OutPoint* min_key = nullptr;
        if (mem != memtable_.end()) min_key = &mem->first;
        for (const Cursor& c : cursors) {
            if (!c.cells) continue;
            const OutPoint& key = (*c.cells)[c.cell].key;
            if (min_key == nullptr || key < *min_key) min_key = &key;
        }
        if (min_key == nullptr) break;
        const OutPoint key = *min_key;

        // Newest source holding `key` wins: memtable, then highest generation
        // (cursors are ordered oldest generation first).
        bool live = false;
        bool from_mem = false;
        TxOutput value;
        if (mem != memtable_.end() && mem->first == key) {
            live = mem->second.has_value();
            if (live) value = *mem->second;
            from_mem = true;
            ++mem;
        }
        for (Cursor& c : cursors) {
            if (!c.cells) continue;
            const Cell& cell = (*c.cells)[c.cell];
            if (!(cell.key == key)) continue;
            if (!from_mem) { // higher generations overwrite lower ones
                live = cell.live;
                value = cell.value;
            }
            advance(c);
        }
        if (live) emit({key, true, value});
    }
}

void LsmBackend::for_each(const Visitor& visit) const { for_each_sorted(visit); }

void LsmBackend::for_each_sorted(const Visitor& visit) const {
    merge_all([&](const Cell& cell) { visit(cell.key, cell.value); });
}

void LsmBackend::update_gauges() const {
    auto& registry = obs::MetricsRegistry::global();
    registry
        .gauge("state_memtable_bytes",
               "Approximate bytes resident in the state-engine memtable")
        .set(static_cast<double>(memtable_.size() * kCellBytes));
    registry.gauge("state_runs", "Live sorted-run files of the state engine")
        .set(static_cast<double>(runs_.size()));
}

void LsmBackend::commit_batch(std::uint64_t tag, ByteView meta) {
    // Durability point: the batch is committed once its WAL record is down.
    Writer w;
    w.u64(tag);
    w.blob(meta);
    w.varint(pending_.size());
    for (const Op& op : pending_) {
        w.u8(op.is_put ? 1 : 0);
        op.key.encode(w);
        if (op.is_put) op.value.encode(w);
    }
    wal_->append(kWalBatch, w.data());
    pending_.clear();
    committed_tag_ = tag;
    committed_meta_ = Bytes(meta.begin(), meta.end());

    // Maintenance runs only here, at commit boundaries, so on-disk layout is a
    // pure function of the commit sequence — deterministic at any DLT_THREADS.
    if (memtable_.size() >= options_.memtable_limit) {
        if (runs_.size() + 1 >= options_.compact_trigger) {
            compact();
        } else {
            flush_memtable();
        }
    }
    update_gauges();
}

void LsmBackend::flush_memtable() {
    if (memtable_.empty()) return;
    std::vector<Cell> cells;
    cells.reserve(memtable_.size());
    for (const auto& [key, value] : memtable_) {
        Cell cell;
        cell.key = key;
        cell.live = value.has_value();
        if (value) cell.value = *value;
        cells.push_back(cell);
    }
    write_run(cells, next_generation_++, committed_tag_, 0,
              ByteView(committed_meta_));
    memtable_.clear();
    // Every journaled batch is now folded into the run (which carries the
    // committed tag + meta); the WAL can restart empty.
    wal_->reset();
    ++flushes_;
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("state_runs_flushed_total", "Memtable flushes to sorted runs")
        .inc();
    registry
        .counter("state_flush_bytes_total", "Cell bytes written by memtable flushes")
        .inc(cells.size() * kCellBytes);
}

void LsmBackend::compact() {
    // Full merge of memtable + every run. Because the merge covers the whole
    // key space, tombstones have nothing left to shadow and are dropped.
    std::uint64_t bytes_in = memtable_.size() * kCellBytes;
    for (const Run& run : runs_) bytes_in += run.entry_count * kCellBytes;

    std::vector<Cell> cells;
    cells.reserve(live_size_);
    merge_all([&](const Cell& cell) { cells.push_back(cell); });
    DLT_INVARIANT(cells.size() == live_size_);

    const std::uint64_t generation = next_generation_++;
    std::vector<Run> old_runs;
    old_runs.swap(runs_);
    try {
        write_run(cells, generation, committed_tag_, generation,
                  ByteView(committed_meta_));
    } catch (...) {
        // Crash (or I/O failure) mid-write: the old runs are still the truth.
        runs_.swap(old_runs);
        throw;
    }
    for (Run& run : old_runs) {
        run.file.reset();
        std::error_code ec;
        std::filesystem::remove(run.path, ec);
    }
    block_cache_.clear();
    memtable_.clear();
    wal_->reset();
    ++compactions_;
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("state_compactions_total", "Full state-engine merges").inc();
    registry
        .counter("state_compaction_bytes_in_total", "Cell bytes read by compactions")
        .inc(bytes_in);
    registry
        .counter("state_compaction_bytes_out_total",
                 "Cell bytes written by compactions")
        .inc(cells.size() * kCellBytes);
}

std::unique_ptr<ledger::StateBackend> LsmBackend::clone() const {
    auto copy = std::make_unique<ledger::ShardedMemoryBackend>();
    for_each_sorted([&](const OutPoint& op, const TxOutput& out) {
        copy->insert_if_absent(op, out);
    });
    return copy;
}

LsmBackend::Stats LsmBackend::stats() const {
    Stats s;
    s.runs = runs_.size();
    s.memtable_entries = memtable_.size();
    s.flushes = flushes_;
    s.compactions = compactions_;
    s.run_probes = run_probes_;
    s.bloom_skips = bloom_skips_;
    s.wal_replayed = wal_replayed_;
    return s;
}

} // namespace dlt::storage
