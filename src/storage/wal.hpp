// Write-ahead log. Append-only sequence of CRC-framed records, each carrying a
// monotonically increasing sequence number (LSN). A record is committed once
// append() + sync() return; on open the log replays the valid prefix and
// truncates any torn tail (a crash mid-write), so the committed prefix is
// exactly what survives a crash at any byte offset.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "storage/file.hpp"

namespace dlt::storage {

struct WalRecord {
    std::uint64_t seq = 0;
    std::uint8_t type = 0;
    Bytes payload;
};

struct WalOptions {
    CrashInjector* injector = nullptr;
    FsyncMode fsync = FsyncMode::kAlways;
};

class Wal {
public:
    struct OpenStats {
        std::uint64_t records_recovered = 0;
        std::uint64_t truncated_bytes = 0; // torn tail repaired on open
    };

    /// Open (or create) the log at `path`, replaying existing records into
    /// memory and repairing any torn tail.
    explicit Wal(const std::filesystem::path& path, WalOptions options = {});

    /// Records recovered by the constructor, in commit order.
    const std::vector<WalRecord>& records() const { return records_; }
    const OpenStats& open_stats() const { return open_stats_; }

    /// Append a record and make it durable per the fsync policy. Returns the
    /// record's sequence number. Throws CrashError when the injector trips —
    /// the partially written frame is exactly what the torn-tail repair
    /// discards on the next open.
    std::uint64_t append(std::uint8_t type, ByteView payload);

    /// Force an fsync regardless of the configured policy.
    void sync();

    /// Truncate the log to empty (after a snapshot makes its contents
    /// redundant). Sequence numbers keep increasing across resets so stale
    /// records can never be mistaken for new ones.
    void reset();

    /// Raise the next sequence number to at least `seq`. Callers that learn a
    /// sequence floor from elsewhere (a snapshot's covered-seq after the WAL
    /// was reset) must apply it before appending, or fresh records could be
    /// mistaken for already-covered ones.
    void ensure_next_seq_at_least(std::uint64_t seq) {
        if (seq > next_seq_) next_seq_ = seq;
    }

    std::uint64_t last_seq() const { return next_seq_ - 1; }
    std::uint64_t size_bytes() const { return file_->size(); }

private:
    std::unique_ptr<AppendFile> file_;
    FsyncMode fsync_mode_;
    std::uint64_t next_seq_ = 1;
    std::vector<WalRecord> records_;
    OpenStats open_stats_;
};

} // namespace dlt::storage
