#include "storage/wal.hpp"

#include "common/serialize.hpp"
#include "obs/metrics.hpp"
#include "storage/recordio.hpp"

namespace dlt::storage {

namespace {
constexpr std::uint32_t kWalMagic = 0x57414C31; // "WAL1"

struct WalMetrics {
    obs::Histogram& sync_seconds;
    obs::Counter& appends;
    obs::Counter& bytes_appended;

    static WalMetrics& get() {
        auto& registry = obs::MetricsRegistry::global();
        static WalMetrics m{
            registry.histogram("wal_sync_seconds",
                               "Wall-clock latency of WAL fsync calls"),
            registry.counter("wal_appends_total", "Records appended to the WAL"),
            registry.counter("wal_bytes_appended_total",
                             "Framed bytes appended to the WAL")};
        return m;
    }
};
} // namespace

Wal::Wal(const std::filesystem::path& path, WalOptions options)
    : fsync_mode_(options.fsync) {
    const Bytes image = read_file(path);
    // A record whose sequence number breaks the strictly increasing order is
    // treated like a torn frame: it and everything after it are discarded
    // (stale frames from a previous log generation must never replay).
    std::uint64_t valid_end = 0;
    bool stopped = false;
    scan_records(ByteView(image), kWalMagic,
                 [this, &valid_end, &stopped](std::uint64_t offset, ByteView payload) {
                     if (stopped) return;
                     Reader r(payload);
                     WalRecord rec;
                     rec.seq = r.u64();
                     rec.type = r.u8();
                     rec.payload = r.bytes(r.remaining());
                     if (!records_.empty() && rec.seq != next_seq_) {
                         stopped = true;
                         return;
                     }
                     next_seq_ = rec.seq + 1;
                     records_.push_back(std::move(rec));
                     valid_end = offset + kRecordHeaderSize + payload.size();
                 });
    open_stats_.records_recovered = records_.size();
    open_stats_.truncated_bytes = image.size() - valid_end;

    file_ = std::make_unique<AppendFile>(path, options.injector);
    if (file_->size() > valid_end) file_->truncate(valid_end);
}

std::uint64_t Wal::append(std::uint8_t type, ByteView payload) {
    const std::uint64_t seq = next_seq_;
    Writer w;
    w.u64(seq);
    w.u8(type);
    w.bytes(payload);
    const Bytes frame = frame_record(kWalMagic, w.data());
    WalMetrics& metrics = WalMetrics::get();
    file_->append(frame); // CrashError propagates with the frame torn
    metrics.appends.inc();
    metrics.bytes_appended.inc(frame.size());
    if (fsync_mode_ == FsyncMode::kAlways) {
        obs::ScopedTimer timer(metrics.sync_seconds);
        file_->sync();
    }
    ++next_seq_;
    return seq;
}

void Wal::sync() {
    obs::ScopedTimer timer(WalMetrics::get().sync_seconds);
    file_->sync();
}

void Wal::reset() {
    file_->truncate(0);
    file_->sync();
    records_.clear();
}

} // namespace dlt::storage
