// Durable block storage: an append-only, CRC-framed block file plus a
// parallel undo file (the per-block UTXO undo data reorgs need), with an
// in-memory hash → file-location index rebuilt by scanning on open and an LRU
// cache of decoded blocks in front of the disk read path.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "ledger/block.hpp"
#include "ledger/utxo.hpp"
#include "storage/file.hpp"
#include "storage/lru.hpp"

namespace dlt::storage {

struct BlockStoreOptions {
    std::size_t cache_capacity = 64; // decoded blocks held in memory
    CrashInjector* injector = nullptr;
    FsyncMode fsync = FsyncMode::kAlways;
};

struct BlockStoreStats {
    std::uint64_t blocks_indexed = 0;   // entries recovered by the open scan
    std::uint64_t truncated_bytes = 0;  // torn tails repaired across both files
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_evictions = 0;
};

struct PruneResult {
    std::uint64_t blocks_pruned = 0;
    std::uint64_t bytes_reclaimed = 0; // across block + undo files
};

class BlockStore {
public:
    /// Open (or create) `blocks.dat` + `undo.dat` inside `dir`, rebuilding the
    /// height/hash index by scanning the block file and truncating torn tails.
    explicit BlockStore(const std::filesystem::path& dir, BlockStoreOptions options = {});

    /// Append a block and its undo record. Durable once the call returns
    /// (fsync per policy). Appending an already stored block is a no-op.
    void append(const ledger::Block& block, const ledger::UtxoUndo& undo);

    bool contains(const Hash256& hash) const { return index_.contains(hash); }
    std::size_t size() const { return index_.size(); }

    /// Decoded block by hash — served from the LRU cache when hot, re-read,
    /// CRC-checked, and decoded from disk when cold. Returns nullptr when the
    /// hash is unknown.
    std::shared_ptr<const ledger::Block> read_block(const Hash256& hash);

    /// Undo data recorded when `hash` was appended. Throws StorageError when
    /// absent (the block was never durably stored).
    ledger::UtxoUndo read_undo(const Hash256& hash);

    /// Stored height of a block (from the index; no disk read).
    std::optional<std::uint64_t> height_of(const Hash256& hash) const;

    /// All stored blocks as (hash, height), sorted by height then hash — the
    /// order a chain index can be rebuilt in (parents before children).
    std::vector<std::pair<Hash256, std::uint64_t>> all_blocks() const;

    BlockStoreStats stats() const;

    /// Drop every block below `height` from the block file and compact the
    /// undo file to the surviving blocks (undo data of pruned and orphaned
    /// blocks is discarded). Call only once the pruned range is covered by a
    /// durable snapshot: disconnecting below the prune point becomes
    /// impossible (read_undo throws), and a restarted chain index anchors at
    /// a detached root (ChainStore::insert_detached_root) instead of genesis.
    /// Both files are rewritten to `.rewrite` temporaries, fsynced, the prune
    /// floor is committed (prune.meta, atomic), then the temporaries are
    /// renamed into place — a crash at any byte offset leaves either the old
    /// files or the pruned ones, never a torn mix.
    PruneResult prune_below(std::uint64_t height);

    /// Height below which blocks have been pruned (0 = nothing pruned).
    std::uint64_t pruned_below() const { return pruned_below_; }

private:
    struct Location {
        std::uint64_t offset = 0; // frame start in the file
        std::uint32_t length = 0; // payload length
        std::uint64_t height = 0;
    };

    Bytes read_payload(const RandomAccessFile& file, const Location& loc,
                       std::uint32_t magic, const char* what) const;

    std::filesystem::path blocks_path_;
    std::filesystem::path undo_path_;
    FsyncMode fsync_mode_;

    std::unique_ptr<AppendFile> blocks_out_;
    std::unique_ptr<AppendFile> undo_out_;
    std::unique_ptr<RandomAccessFile> blocks_in_;
    std::unique_ptr<RandomAccessFile> undo_in_;

    CrashInjector* injector_ = nullptr;

    std::unordered_map<Hash256, Location> index_;
    std::unordered_map<Hash256, Location> undo_index_;
    LruCache<Hash256, std::shared_ptr<const ledger::Block>> cache_;
    std::uint64_t truncated_bytes_ = 0;
    std::uint64_t indexed_on_open_ = 0;
    std::uint64_t pruned_below_ = 0;
};

} // namespace dlt::storage
