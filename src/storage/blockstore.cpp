#include "storage/blockstore.hpp"

#include <algorithm>

#include "common/serialize.hpp"
#include "obs/metrics.hpp"
#include "storage/recordio.hpp"

namespace dlt::storage {

namespace {
constexpr std::uint32_t kBlockMagic = 0x424C4B31; // "BLK1"
constexpr std::uint32_t kUndoMagic = 0x554E4431;  // "UND1"
constexpr std::uint32_t kPruneMagic = 0x50524E31; // "PRN1"
} // namespace

BlockStore::BlockStore(const std::filesystem::path& dir, BlockStoreOptions options)
    : blocks_path_(dir / "blocks.dat"),
      undo_path_(dir / "undo.dat"),
      fsync_mode_(options.fsync),
      injector_(options.injector),
      cache_(options.cache_capacity) {
    std::filesystem::create_directories(dir);

    // Heal an interrupted prune: .rewrite temporaries never renamed are
    // garbage, and the committed prune floor (if any) still applies.
    for (const char* stray : {"blocks.dat.rewrite", "undo.dat.rewrite"}) {
        std::error_code ec;
        std::filesystem::remove(dir / stray, ec);
    }
    const Bytes prune_image = read_file(dir / "prune.meta");
    if (!prune_image.empty()) {
        const Bytes payload = read_record(ByteView(prune_image), 0, kPruneMagic);
        Reader r{ByteView(payload)};
        pruned_below_ = r.u64();
        r.expect_done();
    }

    // Index rebuild: scan the block file, decoding every intact record. A
    // record whose payload fails to decode (CRC collision or software bug)
    // ends the valid prefix exactly like a torn frame would.
    const Bytes block_image = read_file(blocks_path_);
    std::uint64_t valid_end = 0;
    bool decode_failed = false;
    const ScanResult block_scan = scan_records(
        ByteView(block_image), kBlockMagic,
        [&](std::uint64_t offset, ByteView payload) {
            if (decode_failed) return;
            try {
                const auto block = decode_from_bytes<ledger::Block>(payload);
                index_[block.hash()] = {offset, static_cast<std::uint32_t>(payload.size()),
                                        block.header.height};
                valid_end = offset + kRecordHeaderSize + payload.size();
            } catch (const DecodeError&) {
                decode_failed = true;
            }
        });
    if (!decode_failed) valid_end = block_scan.valid_end;
    indexed_on_open_ = index_.size();
    truncated_bytes_ = block_image.size() - valid_end;

    const Bytes undo_image = read_file(undo_path_);
    std::uint64_t undo_valid_end = 0;
    bool undo_decode_failed = false;
    const ScanResult undo_scan = scan_records(
        ByteView(undo_image), kUndoMagic,
        [&](std::uint64_t offset, ByteView payload) {
            if (undo_decode_failed) return;
            if (payload.size() < Hash256::size()) {
                undo_decode_failed = true;
                return;
            }
            const Hash256 hash = Hash256::from_bytes(payload.subspan(0, Hash256::size()));
            undo_index_[hash] = {offset, static_cast<std::uint32_t>(payload.size()), 0};
            undo_valid_end = offset + kRecordHeaderSize + payload.size();
        });
    if (!undo_decode_failed) undo_valid_end = undo_scan.valid_end;
    truncated_bytes_ += undo_image.size() - undo_valid_end;

    blocks_out_ = std::make_unique<AppendFile>(blocks_path_, options.injector);
    undo_out_ = std::make_unique<AppendFile>(undo_path_, options.injector);
    if (blocks_out_->size() > valid_end) blocks_out_->truncate(valid_end);
    if (undo_out_->size() > undo_valid_end) undo_out_->truncate(undo_valid_end);
    blocks_in_ = std::make_unique<RandomAccessFile>(blocks_path_);
    undo_in_ = std::make_unique<RandomAccessFile>(undo_path_);
}

void BlockStore::append(const ledger::Block& block, const ledger::UtxoUndo& undo) {
    const Hash256 hash = block.hash();
    if (index_.contains(hash)) return;

    // Undo first: a crash mid-block-write then leaves an orphan undo record
    // (harmless), never a committed block without its undo data.
    Writer uw;
    uw.fixed(hash);
    undo.encode(uw);
    const Bytes undo_frame = frame_record(kUndoMagic, uw.data());
    const std::uint64_t undo_offset = undo_out_->size();
    undo_out_->append(undo_frame);

    const Bytes payload = encode_to_bytes(block);
    const Bytes frame = frame_record(kBlockMagic, payload);
    const std::uint64_t offset = blocks_out_->size();
    blocks_out_->append(frame);
    if (fsync_mode_ == FsyncMode::kAlways) {
        undo_out_->sync();
        blocks_out_->sync();
    }

    undo_index_[hash] = {undo_offset, static_cast<std::uint32_t>(uw.size()), 0};
    index_[hash] = {offset, static_cast<std::uint32_t>(payload.size()),
                    block.header.height};
    cache_.put(hash, std::make_shared<const ledger::Block>(block));
}

Bytes BlockStore::read_payload(const RandomAccessFile& file, const Location& loc,
                               std::uint32_t magic, const char* what) const {
    const Bytes frame = file.read_at(loc.offset, kRecordHeaderSize + loc.length);
    if (frame.size() != kRecordHeaderSize + loc.length)
        throw StorageError(std::string(what) + " record truncated on disk");
    return read_record(ByteView(frame), 0, magic);
}

std::shared_ptr<const ledger::Block> BlockStore::read_block(const Hash256& hash) {
    if (auto cached = cache_.get(hash)) return *cached;
    const auto it = index_.find(hash);
    if (it == index_.end()) return nullptr;
    const Bytes payload = read_payload(*blocks_in_, it->second, kBlockMagic, "block");
    auto block =
        std::make_shared<const ledger::Block>(decode_from_bytes<ledger::Block>(payload));
    if (block->hash() != hash)
        throw StorageError("block file corrupt: stored block hash mismatch");
    cache_.put(hash, block);
    return block;
}

ledger::UtxoUndo BlockStore::read_undo(const Hash256& hash) {
    const auto it = undo_index_.find(hash);
    if (it == undo_index_.end())
        throw StorageError("no undo record for block " + hash.hex());
    const Bytes payload = read_payload(*undo_in_, it->second, kUndoMagic, "undo");
    Reader r(payload);
    const Hash256 stored = r.fixed<32>();
    if (stored != hash) throw StorageError("undo file corrupt: keyed hash mismatch");
    const auto undo = ledger::UtxoUndo::decode(r);
    r.expect_done();
    return undo;
}

std::optional<std::uint64_t> BlockStore::height_of(const Hash256& hash) const {
    const auto it = index_.find(hash);
    if (it == index_.end()) return std::nullopt;
    return it->second.height;
}

std::vector<std::pair<Hash256, std::uint64_t>> BlockStore::all_blocks() const {
    std::vector<std::pair<Hash256, std::uint64_t>> out;
    out.reserve(index_.size());
    for (const auto& [hash, loc] : index_) out.emplace_back(hash, loc.height);
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
        return a.second != b.second ? a.second < b.second : a.first < b.first;
    });
    return out;
}

PruneResult BlockStore::prune_below(std::uint64_t height) {
    PruneResult result;
    if (height <= pruned_below_) return result;

    const std::uint64_t old_bytes = blocks_out_->size() + undo_out_->size();
    const std::filesystem::path dir = blocks_path_.parent_path();
    const std::filesystem::path blocks_tmp = dir / "blocks.dat.rewrite";
    const std::filesystem::path undo_tmp = dir / "undo.dat.rewrite";

    // Rewrite surviving records in height order (the index-rebuild order), so
    // the pruned files are a deterministic function of the kept set.
    std::unordered_map<Hash256, Location> new_index;
    std::unordered_map<Hash256, Location> new_undo_index;
    {
        AppendFile blocks_rw(blocks_tmp, injector_);
        AppendFile undo_rw(undo_tmp, injector_);
        for (const auto& [hash, block_height] : all_blocks()) {
            if (block_height < height) {
                ++result.blocks_pruned;
                continue;
            }
            const Location& loc = index_.at(hash);
            const Bytes payload = read_payload(*blocks_in_, loc, kBlockMagic, "block");
            new_index[hash] = {blocks_rw.size(),
                               static_cast<std::uint32_t>(payload.size()),
                               block_height};
            blocks_rw.append(frame_record(kBlockMagic, payload));

            // Undo compaction: carry an undo record only for a kept block
            // (orphan undos — crash artifacts — are dropped here too).
            const auto undo_it = undo_index_.find(hash);
            if (undo_it == undo_index_.end()) continue;
            const Bytes undo_payload =
                read_payload(*undo_in_, undo_it->second, kUndoMagic, "undo");
            new_undo_index[hash] = {undo_rw.size(),
                                    static_cast<std::uint32_t>(undo_payload.size()),
                                    0};
            undo_rw.append(frame_record(kUndoMagic, undo_payload));
        }
        blocks_rw.sync();
        undo_rw.sync();
        result.bytes_reclaimed = old_bytes - (blocks_rw.size() + undo_rw.size());
    }

    // Commit the prune floor before swapping files: if we crash between the
    // meta write and the renames, the floor is merely conservative (blocks
    // below it still exist and index fine).
    Writer w;
    w.u64(height);
    write_file_atomic(dir / "prune.meta", frame_record(kPruneMagic, w.data()));

    blocks_out_.reset();
    undo_out_.reset();
    blocks_in_.reset();
    undo_in_.reset();
    std::filesystem::rename(blocks_tmp, blocks_path_);
    std::filesystem::rename(undo_tmp, undo_path_);
    blocks_out_ = std::make_unique<AppendFile>(blocks_path_, injector_);
    undo_out_ = std::make_unique<AppendFile>(undo_path_, injector_);
    blocks_in_ = std::make_unique<RandomAccessFile>(blocks_path_);
    undo_in_ = std::make_unique<RandomAccessFile>(undo_path_);

    index_ = std::move(new_index);
    undo_index_ = std::move(new_undo_index);
    cache_.clear();
    pruned_below_ = height;

    auto& registry = obs::MetricsRegistry::global();
    registry.counter("block_files_pruned_total", "Blocks dropped by prune_below")
        .inc(result.blocks_pruned);
    registry
        .counter("block_prune_bytes_reclaimed_total",
                 "Bytes reclaimed from block + undo files by pruning")
        .inc(result.bytes_reclaimed);
    return result;
}

BlockStoreStats BlockStore::stats() const {
    BlockStoreStats s;
    s.blocks_indexed = indexed_on_open_;
    s.truncated_bytes = truncated_bytes_;
    s.cache_hits = cache_.hits();
    s.cache_misses = cache_.misses();
    s.cache_evictions = cache_.evictions();
    return s;
}

} // namespace dlt::storage
