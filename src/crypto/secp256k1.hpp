// secp256k1 elliptic-curve arithmetic and ECDSA, implemented from scratch on top
// of U256: fast special-form reduction mod p = 2^256 - 2^32 - 977, Jacobian point
// arithmetic, deterministic (RFC-6979) nonces, low-s signatures, compressed
// public-key encoding with point decompression.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "crypto/uint256.hpp"

namespace dlt::crypto::secp256k1 {

/// Field prime p and group order n.
const U256& field_prime();
const U256& group_order();

// --- Field arithmetic mod p ---------------------------------------------------

U256 fe_add(const U256& a, const U256& b);
U256 fe_sub(const U256& a, const U256& b);
U256 fe_mul(const U256& a, const U256& b);
U256 fe_sqr(const U256& a);
/// Inverse via Fermat's little theorem; a must be non-zero mod p.
U256 fe_inv(const U256& a);
/// Square root (p ≡ 3 mod 4); returns nullopt when `a` is a non-residue.
std::optional<U256> fe_sqrt(const U256& a);

// --- Scalar arithmetic mod n ---------------------------------------------------

U256 sc_add(const U256& a, const U256& b);
U256 sc_mul(const U256& a, const U256& b);
U256 sc_inv(const U256& a);
/// Reduce an arbitrary 256-bit value (e.g. a hash) into [0, n).
U256 sc_reduce(const U256& a);

// --- Points ---------------------------------------------------------------------

/// Affine curve point; (0,0) with infinity=true is the identity.
struct Point {
    U256 x;
    U256 y;
    bool infinity = true;

    friend bool operator==(const Point&, const Point&) = default;
};

/// The standard generator G.
const Point& generator();

/// True when the point satisfies y^2 = x^3 + 7 (or is infinity).
bool is_on_curve(const Point& p);

Point add(const Point& a, const Point& b);
Point negate(const Point& p);
/// Scalar multiplication k*P (k interpreted mod n).
Point multiply(const U256& k, const Point& p);
/// u1*G + u2*P, the ECDSA verification combination.
Point double_multiply(const U256& u1, const U256& u2, const Point& p);

/// Compressed SEC1 encoding (33 bytes: 02/03 || x). Throws CryptoError at infinity.
Bytes encode_compressed(const Point& p);
/// Decode a compressed point; throws CryptoError on malformed input or
/// off-curve x.
Point decode_compressed(ByteView bytes33);

// --- ECDSA ------------------------------------------------------------------------

struct Signature {
    U256 r;
    U256 s;

    friend bool operator==(const Signature&, const Signature&) = default;

    /// Fixed 64-byte r||s encoding.
    Bytes encode() const;
    static Signature decode(ByteView bytes64);
};

/// Deterministic nonce per RFC 6979 (HMAC-SHA256 construction).
U256 rfc6979_nonce(const U256& priv, const Hash256& msg_hash);

/// Sign a 32-byte message hash. priv must be in [1, n). Produces low-s signatures.
Signature sign(const U256& priv, const Hash256& msg_hash);

/// Verify a signature against a public-key point.
bool verify(const Point& pub, const Hash256& msg_hash, const Signature& sig);

/// Derive the public point priv*G; priv must be in [1, n).
Point derive_public(const U256& priv);

} // namespace dlt::crypto::secp256k1
